"""Shim for offline legacy editable installs (`pip install -e . --no-use-pep517`)."""
from setuptools import setup

setup()
