"""Consistent-hash ring mapping fingerprints to worker shards.

The routing substrate of the cluster: each worker owns an arc of the
64-bit hash space, subdivided into *virtual nodes* so ownership stays
balanced as workers join and leave.  Keys (representative fingerprints,
tenant labels) are positioned by SHA-1, so routing is deterministic
across processes, hash seeds and restarts — the property the champion
tie-break fix in :mod:`repro.baselines.sparse_indexing` exists to
guarantee.

Adding a node moves only the keys that fall on the new node's arcs
(~``1/n`` of the space); every other key keeps its owner.  That minimal
movement is what makes :mod:`repro.cluster.rebalance`'s shard split
affordable.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Iterable

from ..hashing import sha1

__all__ = ["DEFAULT_VNODES", "HashRing"]

#: Virtual nodes per worker.  64 keeps worst-case ownership skew under
#: ~15% for small clusters while the routing table stays tiny.
DEFAULT_VNODES = 64

_SPACE = 1 << 64


class HashRing:
    """Consistent hashing with virtual nodes over SHA-1 positions."""

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._members: set[str] = set()
        self._points: list[tuple[int, str]] = []  # sorted (position, node)
        self._positions: list[int] = []  # parallel position array for bisect
        for node in nodes:
            self.add_node(node)

    @staticmethod
    def _position(label: bytes) -> int:
        """64-bit ring position of an arbitrary byte label."""
        return int.from_bytes(sha1(label)[:8], "big")

    def _reindex(self) -> None:
        self._points.sort()
        self._positions = [pos for pos, _node in self._points]

    # -- membership ------------------------------------------------------

    @property
    def nodes(self) -> tuple[str, ...]:
        """Current members, sorted by name."""
        return tuple(sorted(self._members))

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node: str) -> bool:
        return node in self._members

    def add_node(self, node: str) -> None:
        """Join a worker: place its virtual nodes on the ring."""
        if not node:
            raise ValueError("node name must be non-empty")
        if node in self._members:
            raise ValueError(f"node {node!r} already on the ring")
        self._members.add(node)
        for v in range(self.vnodes):
            pos = self._position(f"{node}|vnode{v}".encode())
            self._points.append((pos, node))
        self._reindex()

    def remove_node(self, node: str) -> None:
        """Leave: the departing node's arcs fall to their successors."""
        if node not in self._members:
            raise ValueError(f"node {node!r} not on the ring")
        self._members.discard(node)
        self._points = [(pos, n) for pos, n in self._points if n != node]
        self._reindex()

    # -- routing ---------------------------------------------------------

    def route(self, key: bytes) -> str:
        """The node owning ``key`` (first vnode clockwise of its position)."""
        if not self._points:
            raise RuntimeError("ring has no nodes")
        pos = self._position(bytes(key))
        i = bisect_right(self._positions, pos)
        if i == len(self._points):
            i = 0  # wrap past the highest vnode to the first
        return self._points[i][1]

    def route_label(self, label: str) -> str:
        """Route a textual key (tenant id, file id) by its UTF-8 bytes."""
        return self.route(label.encode())

    # -- accounting ------------------------------------------------------

    def ownership(self) -> dict[str, float]:
        """Fraction of the hash space each node owns, summing to 1.0."""
        if not self._points:
            return {}
        shares: dict[str, float] = {node: 0.0 for node in self.nodes}
        prev = self._points[-1][0] - _SPACE  # wraparound arc start
        for pos, node in self._points:
            shares[node] += (pos - prev) / _SPACE
            prev = pos
        return shares

    def routing_table_bytes(self) -> int:
        """RAM held by the routing table (Table III-style accounting).

        Each vnode point costs an 8-byte position plus an 8-byte node
        reference; each member additionally stores its name once.
        """
        points = len(self._points) * 16
        names = sum(len(node.encode()) + 49 for node in self._members)
        return points + names

    def describe(self) -> dict[str, object]:
        """Ring summary for metrics/debug output."""
        return {
            "nodes": list(self.nodes),
            "vnodes": self.vnodes,
            "points": len(self._points),
            "routing_table_bytes": self.routing_table_bytes(),
            "ownership": {k: round(v, 4) for k, v in sorted(self.ownership().items())},
        }
