"""Fingerprint-routed deduplication cluster.

The "one system, N workers" layer over the single-process pipeline:
stateless :class:`~repro.cluster.worker.ShardWorker`\\ s own manifest
shards on a shared backend, a
:class:`~repro.cluster.router.ClusterRouter` routes incoming segments
by representative fingerprint over a consistent-hash
:class:`~repro.cluster.ring.HashRing`, and
:func:`~repro.cluster.rebalance.split_shard` grows the fleet by
splitting the hottest shard with measured cost.

See DESIGN.md §8 for the architecture (ring, routing key, rebalance,
failure model) and ``benchmarks/bench_cluster_scaling.py`` for the
cross-shard DER / makespan / RAM trade measurements.
"""

from .fingerprint import (
    FINGERPRINT_MODES,
    hooks_of,
    representative,
    route_segment,
    routing_key,
)
from .rebalance import RebalanceReport, hottest_shard, split_shard
from .ring import DEFAULT_VNODES, HashRing
from .router import (
    META_NAMESPACE,
    RECIPE_NAMESPACE,
    WAL_NAMESPACE,
    ClusterConfig,
    ClusterError,
    ClusterRecipe,
    ClusterRouter,
    SegmentPlacement,
)
from .worker import SHARD_PREFIX, ShardWorker, shard_prefix, validate_worker_name

__all__ = [
    "DEFAULT_VNODES",
    "FINGERPRINT_MODES",
    "META_NAMESPACE",
    "RECIPE_NAMESPACE",
    "SHARD_PREFIX",
    "WAL_NAMESPACE",
    "ClusterConfig",
    "ClusterError",
    "ClusterRecipe",
    "ClusterRouter",
    "HashRing",
    "RebalanceReport",
    "SegmentPlacement",
    "ShardWorker",
    "hooks_of",
    "hottest_shard",
    "representative",
    "route_segment",
    "routing_key",
    "shard_prefix",
    "split_shard",
    "validate_worker_name",
]
