"""Shard rebalancing: split the hottest shard onto a new worker.

Consistent hashing makes the migration *bounded*: joining one worker
claims ~``1/(n+1)`` of the hash space, so only the segments whose
canonical routing key (pinned in their cluster recipes at ingest time)
now lands on the new node move.  Segments placed elsewhere — including
hook-vote placements that differ from their canonical key — stay put.

Migration is restore-and-reingest: the old owner reconstructs each
moving segment byte-for-byte, the new owner deduplicates it into its
empty shard, and the recipe entry is rewritten.  The old shard keeps
the chunk bytes (garbage collection's job), but drops the segment's
file manifest so ownership stays single-homed.  The measured cost —
moved bytes and device-model seconds — is what
``benchmarks/bench_cluster_scaling.py`` reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from .router import ClusterRouter, SegmentPlacement

__all__ = ["RebalanceReport", "hottest_shard", "split_shard"]


@dataclass(frozen=True)
class RebalanceReport:
    """What one shard split did and what it cost."""

    hot_node: str
    new_node: str
    segments_moved: int
    bytes_moved: int
    recipes_updated: int
    #: Device-model seconds spent by the migration (old shard's restore
    #: reads + new shard's dedup work), measured as the delta of both
    #: workers' simulated run time across the pass.
    seconds: float
    #: Chunk bytes still held by the hot shard after the split (freed
    #: only by garbage collection).
    residual_hot_bytes: int

    def as_dict(self) -> dict[str, object]:
        """JSON-safe form for bench reports and logs."""
        return {
            "hot_node": self.hot_node,
            "new_node": self.new_node,
            "segments_moved": self.segments_moved,
            "bytes_moved": self.bytes_moved,
            "recipes_updated": self.recipes_updated,
            "seconds": self.seconds,
            "residual_hot_bytes": self.residual_hot_bytes,
        }


def hottest_shard(router: ClusterRouter) -> str:
    """The worker holding the most chunk bytes (ties: lowest name)."""
    return min(
        sorted(router.workers),
        key=lambda name: (-router.workers[name].stored_chunk_bytes(), name),
    )


def split_shard(
    router: ClusterRouter,
    hot: str | None = None,
    new_node: str | None = None,
) -> RebalanceReport:
    """Join a new worker and migrate the hot shard's reclaimed segments."""
    router.flush()
    hot = hot or hottest_shard(router)
    if hot not in router.workers:
        raise ValueError(f"unknown worker {hot!r}")
    if new_node is None:
        serial = len(router.workers)
        while f"worker-{serial:02d}" in router.workers:
            serial += 1
        new_node = f"worker-{serial:02d}"

    old_worker = router.workers[hot]
    new_worker = router.add_worker(new_node)

    device = router.device
    cost_before = device.dedup_time(old_worker.snapshot()) + device.dedup_time(
        new_worker.snapshot()
    )

    moved_segments = 0
    moved_bytes = 0
    recipes_updated = 0
    for file_id in router.recipe_ids():
        recipe = router.get_recipe(file_id)
        changed = False
        updated: list[SegmentPlacement] = []
        for placement in recipe.segments:
            if (
                placement.node == hot
                and router.ring.route(placement.fingerprint) == new_node
            ):
                data = old_worker.restore_segment(placement.segment_id)
                new_worker.ingest_segment(placement.segment_id, data)
                old_worker.forget_segment(placement.segment_id)
                updated.append(
                    SegmentPlacement(
                        new_node, placement.segment_id, placement.size,
                        placement.fingerprint,
                    )
                )
                moved_segments += 1
                moved_bytes += placement.size
                changed = True
            else:
                updated.append(placement)
        if changed:
            router.put_recipe(
                type(recipe)(file_id=recipe.file_id, segments=tuple(updated))
            )
            recipes_updated += 1

    seconds = (
        device.dedup_time(old_worker.snapshot())
        + device.dedup_time(new_worker.snapshot())
        - cost_before
    )
    router.metrics.counter("cluster.rebalance.segments_moved").inc(moved_segments)
    router.metrics.counter("cluster.rebalance.bytes_moved").inc(moved_bytes)
    return RebalanceReport(
        hot_node=hot,
        new_node=new_node,
        segments_moved=moved_segments,
        bytes_moved=moved_bytes,
        recipes_updated=recipes_updated,
        seconds=max(0.0, seconds),
        residual_hot_bytes=old_worker.stored_chunk_bytes(),
    )
