"""One cluster worker: a deduplicator owning a manifest shard.

A :class:`ShardWorker` is *stateless* in the cluster sense: everything
it must remember lives on its shard view of the shared backend (a
:class:`~repro.storage.backend.PrefixedBackend` under
``shard.<name>.``), and its RAM indexes are rebuilt from that view by
``warm_start`` after a crash.  The coordinator treats workers as
disposable — :meth:`respawn` produces a fresh worker over the same
shard, mirroring a process restart on the same disk.

Crash recovery is delegated to :func:`repro.storage.recover.recover`:
objects torn by a mid-segment death are quarantined, then the
coordinator replays the write-ahead journal entries the dead worker
never acknowledged.
"""

from __future__ import annotations

import re
from typing import cast

from ..core.base import Deduplicator, DedupStats
from ..core.config import DedupConfig
from ..obs import MetricsRegistry, Telemetry
from ..registry import resolve
from ..storage import DiskModel, StorageBackend
from ..storage.backend import PrefixedBackend
from ..storage.file_manifest import FileManifestStore
from ..storage.recover import RecoveryReport, recover
from ..storage.verify import IntegrityReport, verify_store

__all__ = ["SHARD_PREFIX", "ShardWorker", "shard_prefix", "validate_worker_name"]

#: Namespace prefix under which every worker's shard lives on the
#: shared backend: ``shard.<worker>.<namespace>``.
SHARD_PREFIX = "shard."

_WORKER_NAME = re.compile(r"^[a-z0-9][a-z0-9_-]{0,63}$")


def validate_worker_name(name: str) -> str:
    """Worker names are namespace components: lowercase, no dots."""
    if not _WORKER_NAME.match(name):
        raise ValueError(
            f"invalid worker name {name!r}: need ^[a-z0-9][a-z0-9_-]{{0,63}}$"
        )
    return name


def shard_prefix(name: str) -> str:
    """The backend namespace prefix of a worker's shard."""
    return f"{SHARD_PREFIX}{validate_worker_name(name)}."


class ShardWorker:
    """A deduplicator bound to one shard of the shared backend."""

    def __init__(
        self,
        name: str,
        backend: StorageBackend,
        algo: str = "bf-mhd",
        config: DedupConfig | None = None,
        collect_metrics: bool = False,
        view: StorageBackend | None = None,
    ) -> None:
        self.name = validate_worker_name(name)
        self.algo = algo
        self.config = config or DedupConfig()
        self.collect_metrics = collect_metrics
        self._shared = backend
        #: The worker's slice of the shared backend.  Tests may inject a
        #: wrapped view (fault injection); by default it is the
        #: ``shard.<name>.`` prefix of the shared backend.
        self.view: StorageBackend = (
            view if view is not None else PrefixedBackend(backend, shard_prefix(name))
        )
        dedup_cls = cast("type[Deduplicator]", resolve(algo))
        self._dedup = dedup_cls(self.config, backend=self.view)
        if collect_metrics:
            self._dedup.telemetry = Telemetry()
        #: Segments successfully ingested since this object was built
        #: (not since the shard was created — a respawn resets it).
        self.segments_ingested = 0

    # -- segment I/O -----------------------------------------------------

    def ingest_segment(self, segment_id: str, data: bytes) -> None:
        """Deduplicate one routed segment into the shard."""
        from ..workloads.machine import BackupFile

        self._dedup.ingest(BackupFile(segment_id, data))
        self.segments_ingested += 1

    def restore_segment(self, segment_id: str) -> bytes:
        """Reconstruct a segment byte-for-byte from the shard."""
        return self._dedup.restore(segment_id)

    def has_segment(self, segment_id: str) -> bool:
        """Whether the shard holds a durable manifest for the segment."""
        key = FileManifestStore.key_for(segment_id)
        return self.view.exists(DiskModel.FILE_MANIFEST, key)

    def forget_segment(self, segment_id: str) -> None:
        """Drop a migrated segment's file manifest (rebalance bookkeeping).

        Chunk data is left in place for garbage collection — only the
        restore entry point moves to the new owner.
        """
        self.view.delete(DiskModel.FILE_MANIFEST, FileManifestStore.key_for(segment_id))

    # -- lifecycle -------------------------------------------------------

    def finalize(self) -> DedupStats:
        """Flush the shard's dedup state and return its statistics."""
        return self._dedup.finalize()

    def snapshot(self) -> DedupStats:
        """Point-in-time statistics without finalizing."""
        return self._dedup.snapshot_stats()

    def stored_chunk_bytes(self) -> int:
        """Durable chunk bytes on the shard (the rebalancer's heat)."""
        return self.view.bytes_stored(DiskModel.CHUNK)

    def warm_start(self) -> int:
        """Rebuild the dedup's RAM indexes from the shard."""
        return self._dedup.warm_start()

    def recover(self, check_hashes: bool = False) -> RecoveryReport:
        """Quarantine-repair the shard after a crash."""
        return recover(self.view, check_hashes=check_hashes)

    def fsck(self, check_entry_hashes: bool = False) -> IntegrityReport:
        """Full-store integrity check of the shard view."""
        return verify_store(self.view, check_entry_hashes=check_entry_hashes)

    def respawn(self) -> ShardWorker:
        """A fresh worker over the same shard, as after a process restart.

        The shard is quarantine-repaired first, then the new worker
        warm-starts its RAM indexes from the surviving objects.  The
        caller (coordinator) is responsible for replaying any journal
        entries the dead worker never acknowledged.
        """
        self.recover()
        replacement = ShardWorker(
            self.name,
            self._shared,
            algo=self.algo,
            config=self.config,
            collect_metrics=self.collect_metrics,
            view=self.view,
        )
        replacement.warm_start()
        return replacement

    def metrics_registry(self) -> MetricsRegistry | None:
        """The worker's telemetry registry when metrics are collected."""
        tel = self._dedup.telemetry
        return tel.registry if tel.enabled else None
