"""Representative-fingerprint routing keys.

Two routing keys, both borrowed from baselines already in the tree:

* **min-digest** — Extreme Binning's Broder min-wise representative
  (``min(digests)``, see
  :class:`~repro.baselines.extreme_binning.ExtremeBinningDeduplicator`):
  similar segments share their minimum chunk digest with high
  probability, so they land on the same shard and deduplicate against
  each other.
* **hook-votes** — Sparse Indexing's sampled hooks (``digest mod SD ==
  0``, the exact predicate of
  ``SparseIndexingDeduplicator._is_hook``): each hook votes for the
  ring node that owns it, the plurality wins.  More robust than a
  single representative when a segment straddles two locality runs.
  Ties are pinned by
  :func:`repro.baselines.sparse_indexing.rank_champions` — the same
  deterministic ``(-votes, key)`` order the champion-selection bugfix
  introduced, so routing never depends on arrival order.

A segment with no hooks (short segment, unlucky sample) falls back to
the min-digest key in either mode.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from ..baselines.sparse_indexing import rank_champions
from ..hashing import Digest
from .ring import HashRing

__all__ = [
    "FINGERPRINT_MODES",
    "hooks_of",
    "representative",
    "route_segment",
    "routing_key",
]

#: Valid values for :attr:`repro.cluster.router.ClusterConfig.fingerprint`
#: (``"auto"`` resolves to one of these via registry capabilities).
FINGERPRINT_MODES = ("hook-votes", "min-digest")


def representative(digests: Sequence[Digest]) -> Digest:
    """Extreme Binning's representative: the minimum chunk digest."""
    if not digests:
        raise ValueError("cannot take a representative of zero digests")
    return min(digests)


def hooks_of(digests: Sequence[Digest], sd: int) -> list[Digest]:
    """Sparse Indexing's sample: digests with ``digest mod SD == 0``."""
    if sd < 1:
        raise ValueError(f"sd must be >= 1, got {sd}")
    return [d for d in digests if int.from_bytes(d[:8], "little") % sd == 0]


def routing_key(digests: Sequence[Digest], sd: int) -> Digest:
    """The canonical single-digest key of a segment.

    The minimum hook when the segment has hooks, else the min-digest
    representative.  This is the key persisted in cluster recipes and
    re-evaluated by the rebalancer after ring membership changes.
    """
    hooks = hooks_of(digests, sd)
    return min(hooks) if hooks else representative(digests)


def route_segment(
    ring: HashRing,
    digests: Sequence[Digest],
    sd: int,
    mode: str = "hook-votes",
) -> str:
    """The worker a segment should go to.

    ``mode="min-digest"`` routes by the single representative;
    ``mode="hook-votes"`` lets every hook vote for its ring owner and
    takes the deterministic plurality.
    """
    if mode not in FINGERPRINT_MODES:
        raise ValueError(f"mode must be one of {FINGERPRINT_MODES}, got {mode!r}")
    if mode == "min-digest":
        return ring.route(representative(digests))
    hooks = hooks_of(digests, sd)
    if not hooks:
        return ring.route(representative(digests))
    votes: Counter[str] = Counter(ring.route(h) for h in hooks)
    winner: str = rank_champions(votes, limit=1)[0]
    return winner
