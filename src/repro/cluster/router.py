"""The cluster coordinator: fingerprint-routed segment dispatch.

``ClusterRouter`` turns N :class:`~repro.cluster.worker.ShardWorker`\\ s
into one deduplicating system:

1. incoming files are chunked and hashed once at the edge, grouped
   into segments of ``DedupConfig.segment_bytes`` (the paper's
   ``ECS·SD·5`` setting);
2. each segment is routed by representative fingerprint over the
   consistent-hash ring (:mod:`repro.cluster.fingerprint`) and queued
   on its worker's dispatch batch;
3. a **write-ahead journal** entry (namespace ``cluster.wal`` on the
   shared backend) records the segment's bytes and destination before
   dispatch, and is deleted only after the worker acknowledges the
   ingest.  A worker dying mid-segment therefore loses nothing: the
   shard is quarantine-repaired by
   :func:`repro.storage.recover.recover`, the worker is respawned over
   the surviving objects, and the unacknowledged journal entries are
   replayed;
4. a **cluster recipe** (namespace ``cluster.recipe``) maps each file
   to its ordered segment placements; restore concatenates per-worker
   segment restores.  The recipe also pins each segment's canonical
   :func:`~repro.cluster.fingerprint.routing_key` so the rebalancer
   can re-evaluate placement after ring changes without re-reading
   data.

Workers re-chunk and re-hash the segment bytes they receive — the
routing tax of a shared-nothing design; the fleet-level cost shows up
in :meth:`ClusterRouter.finalize`'s :class:`~repro.parallel.FleetResult`
(the per-shard fleet substrate reused as-is).
"""

from __future__ import annotations

import json
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from ..analysis.timing import DeviceModel
from ..chunking import StreamStats, VectorizedChunker
from ..core.config import DedupConfig
from ..hashing import Digest, sha1, sha1_many
from ..obs import MetricsRegistry
from ..parallel import FleetResult, ShardResult
from ..registry import capabilities
from ..storage import StorageBackend
from ..storage.verify import IntegrityReport
from ..workloads.machine import BackupFile
from .fingerprint import route_segment, routing_key
from .ring import DEFAULT_VNODES, HashRing
from .worker import ShardWorker

__all__ = [
    "META_NAMESPACE",
    "RECIPE_NAMESPACE",
    "WAL_NAMESPACE",
    "ClusterConfig",
    "ClusterError",
    "ClusterRecipe",
    "ClusterRouter",
    "SegmentPlacement",
]

#: Shared-backend namespaces owned by the coordinator (never prefixed
#: under a shard, so worker recovery sweeps cannot touch them).
WAL_NAMESPACE = "cluster.wal"
RECIPE_NAMESPACE = "cluster.recipe"
META_NAMESPACE = "cluster.meta"

_MEMBERS_KEY = sha1(b"cluster|members")


class ClusterError(RuntimeError):
    """A cluster-level failure (unroutable segment, worker crash loop)."""


@dataclass(frozen=True)
class ClusterConfig:
    """Coordinator settings."""

    #: Algorithm every worker runs (any registry name).
    algo: str = "bf-mhd"
    dedup: DedupConfig = field(default_factory=DedupConfig)
    #: Virtual nodes per worker on the ring.
    vnodes: int = DEFAULT_VNODES
    #: Segment size in bytes; 0 uses ``dedup.segment_bytes`` (ECS·SD·5).
    segment_bytes: int = 0
    #: Segments queued per worker before the batch is dispatched.
    batch_segments: int = 8
    #: Routing-key mode: ``auto`` | ``hook-votes`` | ``min-digest``.
    #: ``auto`` picks hook votes when the algorithm persists hooks
    #: (registry capability), else the min-digest representative.
    fingerprint: str = "auto"
    #: Consecutive crashes tolerated per worker before giving up.
    max_respawns: int = 3
    #: Attach metrics-only telemetry to each worker.
    collect_metrics: bool = False

    def effective_segment_bytes(self) -> int:
        """The configured segment size, defaulting to ``dedup.segment_bytes``."""
        return self.segment_bytes or self.dedup.segment_bytes

    def fingerprint_mode(self) -> str:
        """Resolve ``auto`` to a concrete routing-key mode by capability."""
        if self.fingerprint != "auto":
            return self.fingerprint
        return "hook-votes" if "hooks" in capabilities(self.algo) else "min-digest"


@dataclass(frozen=True)
class SegmentPlacement:
    """One segment of a file: where it lives and how it routes."""

    node: str
    segment_id: str
    size: int
    #: Canonical routing key (:func:`repro.cluster.fingerprint.routing_key`);
    #: the rebalancer re-routes this digest after ring changes.
    fingerprint: Digest


@dataclass(frozen=True)
class ClusterRecipe:
    """A file's ordered segment placements (the cluster restore map)."""

    file_id: str
    segments: tuple[SegmentPlacement, ...]

    @property
    def size(self) -> int:
        """Total file size (the sum of its segment sizes)."""
        return sum(s.size for s in self.segments)

    def to_bytes(self) -> bytes:
        """Serialise to the canonical JSON form stored on the backend."""
        payload = {
            "file": self.file_id,
            "segments": [
                [p.node, p.segment_id, p.size, p.fingerprint.hex()]
                for p in self.segments
            ],
        }
        return json.dumps(payload, sort_keys=True).encode()

    @classmethod
    def from_bytes(cls, raw: bytes) -> ClusterRecipe:
        """Parse a recipe previously written by :meth:`to_bytes`."""
        payload = json.loads(raw.decode())
        segments = tuple(
            SegmentPlacement(node, seg_id, int(size), Digest(bytes.fromhex(fp)))
            for node, seg_id, size, fp in payload["segments"]
        )
        return cls(file_id=payload["file"], segments=segments)

    @staticmethod
    def key_for(file_id: str) -> Digest:
        """The backend key a file's recipe is stored under."""
        return sha1(b"recipe|" + file_id.encode())


@dataclass
class _PendingSegment:
    """A routed segment waiting in its worker's dispatch batch.

    ``attempts`` counts crashed ingests; each retry runs under an
    attempt-suffixed segment id (``<id>~rN``) because the crashed
    attempt may have durably written containers derived from the
    original id.  ``final_id`` is the id that actually landed — the one
    the recipe records.
    """

    segment_id: str
    data: bytes
    fingerprint: Digest
    wal_key: Digest
    node: str
    attempts: int = 0
    final_id: str | None = None

    def next_id(self) -> str:
        return (
            self.segment_id
            if self.attempts == 0
            else f"{self.segment_id}~r{self.attempts}"
        )


def _encode_wal(node: str, segment_id: str, data: bytes) -> bytes:
    header = json.dumps({"node": node, "segment": segment_id}, sort_keys=True).encode()
    return header + b"\0" + data


def _decode_wal(raw: bytes) -> tuple[str, str, bytes]:
    cut = raw.index(b"\0")
    header = json.loads(raw[:cut].decode())
    return str(header["node"]), str(header["segment"]), raw[cut + 1 :]


class ClusterRouter:
    """Coordinator over a ring of shard workers on one shared backend."""

    def __init__(
        self,
        backend: StorageBackend,
        workers: int | Sequence[str] = 4,
        config: ClusterConfig | None = None,
        device: DeviceModel | None = None,
        view_factory: Callable[[str, StorageBackend], StorageBackend] | None = None,
    ) -> None:
        self.backend = backend
        self.config = config or ClusterConfig()
        self.device = device or DeviceModel()
        #: Test seam: wraps a worker's shard view (fault injection).
        self._view_factory = view_factory
        self.metrics = MetricsRegistry()
        self._mode = self.config.fingerprint_mode()
        self._chunker = VectorizedChunker(self.config.dedup.small_chunker_config())
        self._pending: dict[str, list[_PendingSegment]] = {}
        self._crashes: dict[str, int] = {}
        self._finalized = False

        persisted = self._load_members()
        if persisted is not None:
            names = persisted  # warm restart: membership is durable state
        elif isinstance(workers, int):
            if workers < 1:
                raise ValueError(f"workers must be >= 1, got {workers}")
            names = [f"worker-{i:02d}" for i in range(workers)]
        else:
            names = list(workers)
        if not names:
            raise ValueError("cluster needs at least one worker")
        self.ring = HashRing(names, vnodes=self.config.vnodes)
        self.workers: dict[str, ShardWorker] = {}
        for name in names:
            self.workers[name] = self._make_worker(name)
        if persisted is not None:
            # Warm restart: the previous coordinator may have died with
            # shards mid-write — quarantine-repair each one before the
            # RAM indexes are rebuilt over it (recover is a no-op on a
            # clean shard).
            for w in self.workers.values():
                w.recover()
                w.warm_start()
        self._save_members()
        self._update_ring_metrics()

    # -- membership ------------------------------------------------------

    def _make_worker(self, name: str) -> ShardWorker:
        view = self._view_factory(name, self.backend) if self._view_factory else None
        return ShardWorker(
            name,
            self.backend,
            algo=self.config.algo,
            config=self.config.dedup,
            collect_metrics=self.config.collect_metrics,
            view=view,
        )

    def _load_members(self) -> list[str] | None:
        if not self.backend.exists(META_NAMESPACE, _MEMBERS_KEY):
            return None
        names = json.loads(self.backend.get(META_NAMESPACE, _MEMBERS_KEY).decode())
        return [str(n) for n in names]

    def _save_members(self) -> None:
        raw = json.dumps(sorted(self.workers), sort_keys=True).encode()
        self.backend.put(META_NAMESPACE, _MEMBERS_KEY, raw)

    def add_worker(self, name: str) -> ShardWorker:
        """Join a new worker (an empty shard) to the ring."""
        if name in self.workers:
            raise ValueError(f"worker {name!r} already in the cluster")
        worker = self._make_worker(name)
        self.workers[name] = worker
        self.ring.add_node(name)
        self._save_members()
        self._update_ring_metrics()
        return worker

    # -- ingest ----------------------------------------------------------

    def put_file(self, file: BackupFile) -> ClusterRecipe:
        """Route one file's segments to the fleet; returns its recipe.

        The recipe is persisted only after every segment of the file is
        acknowledged, so a recipe's existence implies the file is fully
        restorable.
        """
        if self._finalized:
            raise ClusterError("cluster already finalized")
        segments: list[_PendingSegment] = []
        seg_parts: list[bytes] = []
        seg_digests: list[Digest] = []
        seg_size = 0
        seg_limit = self.config.effective_segment_bytes()
        stream = StreamStats()

        def cut_segment() -> None:
            nonlocal seg_parts, seg_digests, seg_size
            segments.append(
                self._route(file.file_id, len(segments), b"".join(seg_parts), seg_digests)
            )
            seg_parts, seg_digests, seg_size = [], [], 0

        with file.open() as reader:
            for batch in self._chunker.chunk_stream(reader, stats=stream):
                digests = sha1_many(chunk.data for chunk in batch)
                for chunk, digest in zip(batch, digests, strict=True):
                    # Copy out of the chunker's carry buffer: the view
                    # is reused by the next window, the segment is not.
                    seg_parts.append(chunk.data.tobytes())
                    seg_digests.append(digest)
                    seg_size += chunk.size
                    if seg_size >= seg_limit:
                        cut_segment()
        if seg_parts:
            cut_segment()
        self.flush()
        placements: list[SegmentPlacement] = []
        for seg in segments:
            if seg.final_id is None:  # flush() acks every queued segment
                raise ClusterError(f"segment {seg.segment_id!r} was never dispatched")
            placements.append(
                SegmentPlacement(seg.node, seg.final_id, len(seg.data), seg.fingerprint)
            )
        recipe = ClusterRecipe(file_id=file.file_id, segments=tuple(placements))
        self.backend.put(RECIPE_NAMESPACE, recipe.key_for(file.file_id), recipe.to_bytes())
        self.metrics.counter("cluster.files").inc()
        return recipe

    def _route(
        self, file_id: str, index: int, data: bytes, digests: list[Digest]
    ) -> _PendingSegment:
        segment_id = f"{file_id}#seg{index:05d}"
        node = route_segment(self.ring, digests, self.config.dedup.sd, self._mode)
        fingerprint = routing_key(digests, self.config.dedup.sd)
        wal_key = sha1(b"wal|" + segment_id.encode())
        self.backend.put(WAL_NAMESPACE, wal_key, _encode_wal(node, segment_id, data))
        seg = _PendingSegment(segment_id, data, fingerprint, wal_key, node)
        queue = self._pending.setdefault(node, [])
        queue.append(seg)
        self.metrics.counter("cluster.route.segments").inc()
        self.metrics.counter(f"cluster.route.segments.{node}").inc()
        self.metrics.counter(f"cluster.route.bytes.{node}").inc(len(data))
        if len(queue) >= self.config.batch_segments:
            self._dispatch(node)
        return seg

    def flush(self) -> None:
        """Dispatch every queued batch (put_file calls this per file)."""
        for node in sorted(self._pending):
            self._dispatch(node)

    def _dispatch(self, node: str) -> None:
        for seg in self._pending.pop(node, []):
            self._ingest_acked(seg)

    def _ingest_acked(self, seg: _PendingSegment) -> None:
        """Ingest one segment, respawning the worker on a crash.

        The journal entry is deleted only on acknowledgment.  A retry
        re-ingests the coordinator's copy of the bytes — the same bytes
        a cold-restart replay would read back from the journal — under
        an attempt-suffixed segment id, because the crashed attempt may
        have durably written containers derived from the original id
        (container ids are content- and id-addressed, never reopenable).
        A crash that landed *after* the segment became durable is
        detected and acknowledged rather than retried.
        """
        while True:
            worker = self.workers[seg.node]
            tried = seg.next_id()
            try:
                worker.ingest_segment(tried, seg.data)
            except Exception as exc:  # noqa: BLE001 - worker failure isolation: any death must not sink the cluster
                self._on_worker_crash(seg.node, exc)
                if self.workers[seg.node].has_segment(tried):
                    # The worker died between its last durable write and
                    # the ack: the segment survived quarantine intact.
                    pass
                else:
                    seg.attempts += 1
                    continue
            seg.final_id = tried
            self.backend.delete(WAL_NAMESPACE, seg.wal_key)
            self.metrics.counter("cluster.segments.acked").inc()
            return

    def _on_worker_crash(self, node: str, exc: BaseException) -> None:
        crashes = self._crashes.get(node, 0) + 1
        self._crashes[node] = crashes
        self.metrics.counter("cluster.worker.crashes").inc()
        if crashes > self.config.max_respawns:
            raise ClusterError(
                f"worker {node!r} crashed {crashes} times; giving up"
            ) from exc
        # Quarantine-repair the shard, then warm-start a replacement
        # over the surviving objects (worker.respawn does both).
        self.workers[node] = self.workers[node].respawn()
        self.metrics.counter("cluster.worker.respawns").inc()

    def replay_wal(self) -> int:
        """Re-ingest journal entries no worker ever acknowledged.

        The cold-restart half of crash recovery: a coordinator that
        finds journal entries on startup re-dispatches them (the shard
        quarantine sweep has already run via worker warm restart).
        Entries whose segment already landed durably (the crash hit
        between the last write and the ack) are simply acknowledged;
        the rest are re-ingested under a ``~replay`` id so they cannot
        collide with containers of the interrupted attempt.  Idempotent
        — an empty journal is a no-op.
        """
        replayed = 0
        for key in sorted(self.backend.keys(WAL_NAMESPACE)):
            node, segment_id, data = _decode_wal(self.backend.get(WAL_NAMESPACE, key))
            if node not in self.workers:
                # Its owner left the ring: re-route by content.
                node = self.ring.route(sha1(data))
            worker = self.workers[node]
            if not worker.has_segment(segment_id):
                worker.ingest_segment(f"{segment_id}~replay", data)
            self.backend.delete(WAL_NAMESPACE, key)
            replayed += 1
        if replayed:
            self.metrics.counter("cluster.wal.replayed").inc(replayed)
        return replayed

    # -- restore ---------------------------------------------------------

    def recipe_ids(self) -> list[str]:
        """File ids of every persisted cluster recipe."""
        ids: list[str] = []
        for key in self.backend.keys(RECIPE_NAMESPACE):
            ids.append(ClusterRecipe.from_bytes(self.backend.get(RECIPE_NAMESPACE, key)).file_id)
        return sorted(ids)

    def get_recipe(self, file_id: str) -> ClusterRecipe:
        """The persisted recipe of ``file_id`` (``KeyError`` if absent)."""
        key = ClusterRecipe.key_for(file_id)
        if not self.backend.exists(RECIPE_NAMESPACE, key):
            raise KeyError(f"no cluster recipe for {file_id!r}")
        return ClusterRecipe.from_bytes(self.backend.get(RECIPE_NAMESPACE, key))

    def put_recipe(self, recipe: ClusterRecipe) -> None:
        """Persist an updated recipe (rebalance bookkeeping)."""
        self.backend.put(RECIPE_NAMESPACE, recipe.key_for(recipe.file_id), recipe.to_bytes())

    def restore_file(self, file_id: str) -> bytes:
        """Reassemble a file from its per-worker segment restores."""
        recipe = self.get_recipe(file_id)
        return b"".join(
            self.workers[p.node].restore_segment(p.segment_id) for p in recipe.segments
        )

    # -- lifecycle -------------------------------------------------------

    def finalize(self) -> FleetResult:
        """Flush and finalize every worker; the fleet-level aggregate.

        Reuses :class:`repro.parallel.FleetResult` verbatim — the
        cluster *is* the per-shard fleet with routing in front — so
        every existing aggregate (makespan vs aggregate seconds, DER,
        CPU, pipeline) applies unchanged.
        """
        self.flush()
        if self._finalized:
            raise ClusterError("cluster already finalized")
        self._finalized = True
        shards: list[ShardResult] = []
        for name in sorted(self.workers):
            worker = self.workers[name]
            stats = worker.finalize()
            shards.append(
                ShardResult(
                    shard=name,
                    stats=stats,
                    dedup_seconds=self.device.dedup_time(stats),
                    metrics=worker.metrics_registry(),
                )
            )
        return FleetResult(shards=tuple(shards))

    def fsck(self, check_entry_hashes: bool = False) -> dict[str, IntegrityReport]:
        """Per-shard integrity reports (all must be ``ok``)."""
        return {
            name: self.workers[name].fsck(check_entry_hashes)
            for name in sorted(self.workers)
        }

    # -- metrics ---------------------------------------------------------

    def _update_ring_metrics(self) -> None:
        self.metrics.gauge("cluster.ring.nodes").set(len(self.ring))
        self.metrics.gauge("cluster.ring.routing_table_bytes").set(
            self.ring.routing_table_bytes()
        )
        for node, share in sorted(self.ring.ownership().items()):
            self.metrics.gauge(f"cluster.ring.ownership_ppm.{node}").set(
                int(share * 1_000_000)
            )
