"""SubChunk — anchor-driven subchunk deduplication (Romanski et al.,
SYSTOR'11), as characterised in the paper's Sections II & IV.

The pipeline:

1. Chunk the stream at the big granularity ``ECS · SD``; query every
   big chunk for duplication (Table II charges ``(N+D)/SD`` big-chunk
   queries — these are *not* Bloom-gated because every previously seen
   big-chunk hash is kept in the index).
2. Re-chunk **every** non-duplicate big chunk into small chunks and
   deduplicate each individually.
3. The non-duplicate small chunks of one big chunk are coalesced into
   one DiskChunk *container* — hence ``N/SD`` container inodes.
4. The per-file manifest records small-chunk→container mappings: 36
   bytes per small chunk plus the shared 28-byte container-group
   header (:class:`repro.storage.multi_manifest.MultiManifest`), i.e.
   Table I's ``36·N + 28·N/SD`` manifest bytes.
5. One Hook per manifest ("each Manifest is conservatively allocated
   with one Hook"), so ``F`` hook inodes.

Because the container mappings do not preserve locality *between* big
chunks, a duplicate slice can straddle mappings that are no longer
cached, costing extra manifest loads — the paper's stated reason for
SubChunk's throughput deficit.
"""

from __future__ import annotations

from ..chunking import VectorizedChunker
from ..hashing import Digest, sha1, sha1_many
from ..storage import DiskModel, FileManifest
from ..storage.multi_manifest import MultiEntry, MultiManifest, MultiManifestStore
from ..workloads.machine import BackupFile
from ..core.base import Deduplicator
from ..core.manifest_cache import ManifestCache

__all__ = ["SubChunkDeduplicator"]


class SubChunkDeduplicator(Deduplicator):
    """Re-chunk-everything, container-coalescing deduplicator."""

    name = "subchunk"

    def __init__(self, config=None, backend=None):
        super().__init__(config, backend)
        self.big_chunker = VectorizedChunker(self.config.big_chunker_config())
        self.small_chunker = VectorizedChunker(self.config.small_chunker_config())
        self.multi_store = MultiManifestStore(self.backend, self.meter)
        self.cache = ManifestCache(self.multi_store, self.config.cache_manifests)
        # Big-chunk identity index: big digest -> the extent list that
        # reconstructs it.  Kept in RAM (the SYSTOR design's index);
        # each probe is metered as an on-disk query per Table II.
        self._big_index: dict[Digest, tuple[tuple[Digest, int, int], ...]] = {}
        self._container_serial = 0
        self._manifest: MultiManifest | None = None
        self._fm: FileManifest | None = None

    def _stream_chunker(self) -> VectorizedChunker:
        return self.big_chunker

    def _begin_file(self, file: BackupFile) -> None:
        fid = file.file_id.encode()
        self._manifest = MultiManifest(sha1(fid + b"|manifest"))
        self.cache.add(self._manifest, pin=True)
        self._fm = FileManifest(file.file_id)

    def _ingest_chunks(self, batch) -> None:
        manifest, fm = self._manifest, self._fm
        big_digests = sha1_many(big.data for big in batch)
        for big, big_digest in zip(batch, big_digests, strict=True):
            self.cpu.hashed += big.size
            # Big-chunk duplication query (one metered disk query).
            self.meter.record(DiskModel.HOOK, "query", 0)
            extents = self._big_index.get(big_digest)
            if extents is not None:
                self._count_duplicate(big.size)
                for container_id, offset, size in extents:
                    fm.append(container_id, offset, size)
                continue
            self._ingest_small(big, big_digest, manifest, fm)

    def _end_file(self) -> None:
        manifest = self._manifest
        if manifest.entries:
            self.multi_store.put(manifest)
            # One Hook per manifest (the paper's conservative allocation).
            self.hooks.put(manifest.entries[0].digest, manifest.manifest_id)
        self.cache.reindex(manifest)
        self.cache.unpin(manifest.manifest_id)
        self.file_manifests.put(self._fm)
        self._observe_ram(self.cache.ram_bytes() + self.extra_index_bytes())
        self._manifest = None
        self._fm = None

    def _ingest_small(
        self,
        big,
        big_digest: Digest,
        manifest: MultiManifest,
        fm: FileManifest,
    ) -> None:
        """Re-chunk a non-duplicate big chunk; coalesce its new smalls."""
        small_chunks = self.small_chunker.chunk(big.data)
        self.cpu.chunked += big.size
        container_id = sha1(big_digest + self._container_serial.to_bytes(8, "little"))
        self._container_serial += 1
        writer = None
        extents: list[tuple[Digest, int, int]] = []
        small_digests = sha1_many(chunk.data for chunk in small_chunks)
        for chunk, digest in zip(small_chunks, small_digests, strict=True):
            self.cpu.hashed += chunk.size
            hit = self._lookup_small(digest, manifest)
            if hit is not None:
                self._count_duplicate(chunk.size)
                extents.append(hit)
                fm.append(*hit)
                continue
            self._count_unique(chunk.size)
            if writer is None:
                writer = self.chunks.open_container(container_id)
            offset = writer.append(chunk.data)
            manifest.append(MultiEntry(digest, container_id, offset, chunk.size))
            if self.bloom is not None:
                self.bloom.add(digest)
            extents.append((container_id, offset, chunk.size))
            fm.append(container_id, offset, chunk.size)
        if writer is not None:
            writer.close()
        self._big_index[big_digest] = self._coalesce(extents)

    @staticmethod
    def _coalesce(
        extents: list[tuple[Digest, int, int]]
    ) -> tuple[tuple[Digest, int, int], ...]:
        out: list[tuple[Digest, int, int]] = []
        for cid, off, size in extents:
            if out and out[-1][0] == cid and out[-1][1] + out[-1][2] == off:
                out[-1] = (cid, out[-1][1], out[-1][2] + size)
            else:
                out.append((cid, off, size))
        return tuple(out)

    def _lookup_small(
        self, digest: Digest, current: MultiManifest
    ) -> tuple[Digest, int, int] | None:
        idx = current.find(digest)
        if idx is None:
            manifest = self.cache.search(digest)
            if manifest is None:
                if self.bloom is not None and digest not in self.bloom:
                    return None
                # Only one hook per manifest exists, so most on-disk
                # probes miss and the duplicate is missed with them —
                # the locality loss the paper attributes to SubChunk.
                manifest_id = self.hooks.lookup(digest)
                if manifest_id is None:
                    return None
                manifest = self.cache.load(manifest_id)
            idx = manifest.find(digest)
            if idx is None:
                return None
            current = manifest
        e = current.entries[idx]
        return (e.container_id, e.offset, e.size)

    def extra_index_bytes(self) -> int:
        """RAM held by the big-chunk index (hash + extent tuples)."""
        total = 0
        for extents in self._big_index.values():
            total += 20 + len(extents) * 36
        return total

    def _flush(self) -> None:
        self.cache.flush()
