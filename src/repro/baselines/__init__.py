"""Baseline and related-work deduplication algorithms.

The four the paper evaluates against (CDC, Bimodal, SubChunk,
SparseIndexing) plus the three its related-work section discusses
(Fingerdiff, FBC, Extreme Binning), implemented in full.
"""

from .bimodal import BimodalDeduplicator
from .cdc import CDCDeduplicator
from .extreme_binning import ExtremeBinningDeduplicator
from .fbc import FBCDeduplicator
from .fingerdiff import FingerdiffDeduplicator
from .sparse_indexing import SparseIndexingDeduplicator
from .subchunk import SubChunkDeduplicator

__all__ = [
    "BimodalDeduplicator",
    "CDCDeduplicator",
    "ExtremeBinningDeduplicator",
    "FBCDeduplicator",
    "FingerdiffDeduplicator",
    "SparseIndexingDeduplicator",
    "SubChunkDeduplicator",
]
