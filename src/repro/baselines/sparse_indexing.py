"""Sparse Indexing (Lillibridge et al., FAST'09) — sampling + locality.

The design the paper benchmarks against (and whose manifest/hook tools
MHD borrows):

1. The stream is chunked at ``ECS`` and grouped into *segments* of
   roughly ``ECS · SD · 5`` bytes (the paper's setting).
2. Chunk hashes are sampled into *hooks* with probability ``1/SD``
   (``digest mod SD == 0``), giving ~``(N+D)/SD`` hooks over the whole
   input — sampled from the *input*, duplicates included, which is why
   the paper's Fig. 7(a) shows SparseIndexing with the most inodes.
3. The **sparse index** maps each hook to at most 5 manifests (LRU) —
   and lives in RAM (Table III reports its size).  Hooks are also
   persisted as write-once files for recovery, as inode-bearing
   metadata.
4. For each incoming segment, the manifests sharing the most hooks
   with it are loaded as *champions* (≤ 10); the segment is
   deduplicated only against its champions (duplicates elsewhere are
   deliberately missed).
5. A new manifest records **every** chunk of the segment — duplicate
   or not — preserving stream locality ("one hash may be recorded
   multiple times"), which is why SparseIndexing's manifest volume is
   the largest in Fig. 7(b).
"""

from __future__ import annotations

from collections import Counter

from ..chunking import VectorizedChunker
from ..hashing import Digest, sha1, sha1_many
from ..storage import FileManifest
from ..storage.disk_model import DiskModel
from ..storage.multi_manifest import MultiEntry, MultiManifest, MultiManifestStore
from ..workloads.machine import BackupFile
from ..core.base import Deduplicator
from ..core.manifest_cache import ManifestCache

__all__ = ["SparseIndexingDeduplicator", "rank_champions"]

#: Paper settings: champions per segment, manifests per hook.
MAX_CHAMPIONS = 10
MAX_MANIFESTS_PER_HOOK = 5


def rank_champions(votes: Counter, limit: int = MAX_CHAMPIONS) -> list:
    """Rank vote winners deterministically: most votes first, ties pinned.

    ``Counter.most_common`` breaks ties by insertion order, which here
    depends on hook/segment arrival order — unstable across warm
    restarts and unusable as a routing key.  Ties are pinned with an
    explicit ``(-votes, key)`` sort so equal-vote candidates always
    rank in ascending key order, independent of how the counter was
    populated.  Keys only need to be orderable (digests, node names).
    """
    ranked = sorted(votes.items(), key=lambda kv: (-kv[1], kv[0]))
    return [key for key, _count in ranked[:limit]]


class SparseIndexingDeduplicator(Deduplicator):
    """Segment-based, champion-driven deduplicator."""

    name = "sparse-indexing"

    def __init__(self, config=None, backend=None):
        super().__init__(config, backend)
        # The sparse index replaces the Bloom filter entirely ("no
        # confirmation by disk look-up is needed").
        self.bloom = None
        self.chunker = VectorizedChunker(self.config.small_chunker_config())
        self.multi_store = MultiManifestStore(self.backend, self.meter)
        self.cache = ManifestCache(self.multi_store, self.config.cache_manifests)
        # The in-RAM sparse index: hook digest -> up to 5 manifest ids,
        # most recent last.
        self._sparse: dict[Digest, list[Digest]] = {}
        self._segment_serial = 0
        self._file_id: str | None = None
        self._fm: FileManifest | None = None
        self._segment: list[tuple] = []  # (digest, chunk)
        self._seg_bytes = 0

    # -- sampling --------------------------------------------------------

    def _is_hook(self, digest: Digest) -> bool:
        return int.from_bytes(digest[:8], "little") % self.config.sd == 0

    def sparse_index_bytes(self) -> int:
        """RAM held by the sparse index (Table III's reported figure)."""
        # Key (20 B) + list overhead approximation + 20 B per manifest id.
        return sum(20 + 16 + 20 * len(v) for v in self._sparse.values())

    def extra_index_bytes(self) -> int:
        return 0  # the sparse index is RAM, not persistent metadata

    # -- ingest ----------------------------------------------------------

    def _begin_file(self, file: BackupFile) -> None:
        self._file_id = file.file_id
        self._fm = FileManifest(file.file_id)
        self._segment, self._seg_bytes = [], 0

    def _ingest_chunks(self, batch) -> None:
        digests = sha1_many(chunk.data for chunk in batch)
        for chunk, digest in zip(batch, digests, strict=True):
            self.cpu.hashed += chunk.size
            self._segment.append((digest, chunk))
            self._seg_bytes += chunk.size
            if self._seg_bytes >= self.config.segment_bytes:
                self._dedup_segment(self._file_id, self._segment, self._fm)
                self._segment, self._seg_bytes = [], 0

    def _end_file(self) -> None:
        if self._segment:
            self._dedup_segment(self._file_id, self._segment, self._fm)
            self._segment, self._seg_bytes = [], 0
        self.file_manifests.put(self._fm)
        self._observe_ram(self.cache.ram_bytes() + self.sparse_index_bytes())
        self._file_id = None
        self._fm = None

    def _dedup_segment(self, file_id: str, segment: list[tuple], fm: FileManifest) -> None:
        seg_id = sha1(f"{file_id}|seg{self._segment_serial}".encode())
        self._segment_serial += 1
        hooks = [d for d, _ in segment if self._is_hook(d)]

        champions = self._choose_champions(hooks)
        candidates: dict[Digest, tuple[Digest, int, int]] = {}
        for champ in champions:
            for e in champ.entries:
                candidates.setdefault(e.digest, (e.container_id, e.offset, e.size))

        manifest = MultiManifest(seg_id)
        writer = None
        local: dict[Digest, tuple[Digest, int, int]] = {}
        for digest, chunk in segment:
            extent = local.get(digest) or candidates.get(digest)
            if extent is not None:
                self._count_duplicate(chunk.size)
            else:
                self._count_unique(chunk.size)
                if writer is None:
                    writer = self.chunks.open_container(seg_id)
                offset = writer.append(chunk.data)
                extent = (seg_id, offset, chunk.size)
                local[digest] = extent
            manifest.append(MultiEntry(digest, *extent))
            fm.append(*extent)
        if writer is not None:
            writer.close()
        self.multi_store.put(manifest)
        self.cache.add(manifest)
        self.cache.reindex(manifest)

        # Register the segment's hooks: in RAM and as write-once files.
        for h in hooks:
            ids = self._sparse.setdefault(h, [])
            if seg_id in ids:
                continue
            ids.append(seg_id)
            if len(ids) > MAX_MANIFESTS_PER_HOOK:
                ids.pop(0)  # LRU: drop the oldest mapping
            self.hooks.put(h, seg_id)

    def _choose_champions(self, hooks: list[Digest]) -> list[MultiManifest]:
        """Greedy hook-vote champion selection (≤ MAX_CHAMPIONS loads)."""
        votes: Counter[Digest] = Counter()
        for h in hooks:
            for mid in self._sparse.get(h, ()):
                votes[mid] += 1
        return [self.cache.load(mid) for mid in rank_champions(votes)]

    def _flush(self) -> None:
        self.cache.flush()

    # -- restart ---------------------------------------------------------

    def warm_start(self) -> int:
        """Rebuild the RAM sparse index from the persisted hook files.

        Hooks are write-once on disk, so each rebuilt entry holds the
        *first* manifest that registered the hook (the live LRU keeps up
        to :data:`MAX_MANIFESTS_PER_HOOK`).  The rebuild iterates hooks
        in sorted digest order so two processes warm-starting from the
        same store produce byte-identical indexes regardless of backend
        enumeration order.
        """
        count = super().warm_start()
        for raw in sorted(self.backend.keys(DiskModel.HOOK)):
            hook = Digest(raw)
            mid = self.hooks.get(hook)
            ids = self._sparse.setdefault(hook, [])
            if mid not in ids:
                ids.append(mid)
        return count
