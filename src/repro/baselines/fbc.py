"""FBC — Frequency-Based Chunking (Lu, Jin & Du, MASCOTS'10).

Discussed in the paper's related work as the third member of the
big-chunk-first family: where Bimodal re-chunks at *transition points*
and SubChunk re-chunks *everything*, FBC re-chunks a non-duplicate big
chunk only when frequency information "estimated from data that have
been previously processed" suggests duplicate small chunks hide inside
it.

This implementation keeps a Count-Min sketch of every small-chunk
digest that has streamed past (frequencies are approximate by design —
an exact table would be a full index).  A non-duplicate big chunk is
re-chunked when at least ``min_frequent`` of its small chunks have an
estimated frequency ≥ ``frequency_threshold``.  The frequency probe
hashes every small chunk of every non-duplicate big chunk, and a
re-chunk pass hashes them again — FBC's real two-pass CPU cost, and
both passes are charged to the CPU meter.
"""

from __future__ import annotations

from ..chunking import Chunk
from ..hashing import sha1_many
from ..hashing.sketch import CountMinSketch
from .bimodal import BimodalDeduplicator

__all__ = ["FBCDeduplicator"]


class FBCDeduplicator(BimodalDeduplicator):
    """Selective re-chunking driven by a chunk-frequency sketch."""

    name = "fbc"

    def __init__(
        self,
        config=None,
        backend=None,
        frequency_threshold: int = 2,
        min_frequent: int = 1,
        sketch_width: int = 1 << 14,
    ):
        super().__init__(config, backend)
        if frequency_threshold < 1 or min_frequent < 1:
            raise ValueError("frequency_threshold and min_frequent must be >= 1")
        self.frequency_threshold = frequency_threshold
        self.min_frequent = min_frequent
        self.sketch = CountMinSketch(width=sketch_width)
        #: big chunks re-chunked because of frequency evidence
        self.frequency_rechunks = 0

    def _small_digests(self, big: Chunk) -> list[bytes]:
        digests: list[bytes] = list(
            sha1_many(chunk.data for chunk in self.small_chunker.chunk(big.data))
        )
        self.cpu.chunked += big.size
        self.cpu.hashed += big.size
        return digests

    def _should_rechunk(self, big: Chunk, prev_hit, next_hit) -> bool:
        digests = self._small_digests(big)
        frequent = sum(
            1
            for d in digests
            if self.sketch.estimate(d) >= self.frequency_threshold
        )
        # Every observed small chunk feeds the sketch — this is the
        # "data that have been previously processed".
        for d in digests:
            self.sketch.add(d)
        if frequent >= self.min_frequent:
            self.frequency_rechunks += 1
            return True
        return False

    def _observe_ram(self, current_bytes: int) -> None:
        # The sketch is RAM, not persistent metadata: fold it into the
        # peak-RAM figure so FBC's footprint is comparable to MHD's
        # bloom + cache budget.
        super()._observe_ram(current_bytes + self.sketch.size_bytes)
