"""Extreme Binning (Bhagwat, Eshghi, Long & Lillibridge, MASCOTS'09).

The paper's related work: "Extreme Binning uses one chunk from each
file to represent the corresponding file.  If the representative chunk
is found to be a duplicate, data locality information of the
corresponding file is loaded into the RAM.  As only one disk access is
needed per file, the throughput of the Extreme Binning algorithm is
comparatively high."

Design reproduced here:

* a file's **representative** is the minimum chunk digest of its chunk
  set (the Broder min-wise choice the original paper uses);
* the RAM **primary index** maps representative → (whole-file hash,
  bin address).  A whole-file hash match short-circuits everything:
  the file is a complete duplicate;
* on a representative hit, the **bin** — a digest → extent table for
  every chunk of every file that shared the representative — is loaded
  from disk (the one disk access per file), the new file is
  deduplicated against it, and the grown bin is written back;
* on a representative miss, the file's chunks are all stored and a new
  bin is created.  Duplicates between files in *different* bins are
  deliberately missed — Extreme Binning's scalability trade.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chunking import Chunk, VectorizedChunker
from ..core.base import Deduplicator
from ..core.config import DedupConfig
from ..hashing import Digest, Hasher, sha1, sha1_many
from ..storage import FileManifest, StorageBackend
from ..storage.multi_manifest import MultiEntry, MultiManifest, MultiManifestStore
from ..workloads.machine import BackupFile

__all__ = ["ExtremeBinningDeduplicator"]


@dataclass
class _PrimaryEntry:
    whole_file_hash: Digest
    bin_id: Digest


class ExtremeBinningDeduplicator(Deduplicator):
    """Representative-chunk binning with one disk access per file."""

    name = "extreme-binning"

    def __init__(
        self,
        config: DedupConfig | None = None,
        backend: StorageBackend | None = None,
    ) -> None:
        super().__init__(config, backend)
        # The primary index replaces the Bloom filter entirely.
        self.bloom = None
        self.chunker = VectorizedChunker(self.config.small_chunker_config())
        self.bin_store = MultiManifestStore(self.backend, self.meter)
        self._primary: dict[Digest, _PrimaryEntry] = {}
        self._bin_serial = 0
        #: whole files skipped via the whole-file-hash shortcut
        self.whole_file_hits = 0
        # Per-file accumulation state (reset by _begin_file).
        self._file_id: str | None = None
        self._chunks: list[Chunk] = []
        self._digests: list[Digest] = []
        self._whole = Hasher()

    def primary_index_bytes(self) -> int:
        """RAM held by the primary index (representative -> bin)."""
        return len(self._primary) * (20 + 20 + 20 + 16)

    def _begin_file(self, file: BackupFile) -> None:
        self._file_id = file.file_id
        # Binning is a per-file decision (representative = min digest,
        # whole-file hash): chunks accumulate until end of file.  The
        # whole-file hash is computed incrementally so the stream is
        # still read through the bounded window.
        self._chunks: list[Chunk] = []
        self._digests: list[Digest] = []
        self._whole = Hasher()

    def _ingest_chunks(self, batch: list[Chunk]) -> None:
        self._digests.extend(sha1_many(chunk.data for chunk in batch))
        for chunk in batch:
            self._whole.update(chunk.data)
            self.cpu.hashed += 2 * chunk.size
        self._chunks.extend(batch)

    def _end_file(self) -> None:
        chunks, digests = self._chunks, self._digests
        self._chunks, self._digests = [], []
        fm = FileManifest(self._file_id)
        if not chunks:
            self.file_manifests.put(fm)
            return
        whole = self._whole.digest()
        representative = min(digests)

        primary = self._primary.get(representative)
        if primary is not None and primary.whole_file_hash == whole:
            # Complete duplicate: restore by aliasing the previous file.
            self.whole_file_hits += 1
            bin_manifest = self.bin_store.get(primary.bin_id)  # the 1 disk access
            self._count_whole_file_dup(chunks, digests, bin_manifest, fm)
            self.file_manifests.put(fm)
            return

        if primary is not None:
            bin_manifest = self.bin_store.get(primary.bin_id)  # the 1 disk access
        else:
            self._bin_serial += 1
            bin_manifest = MultiManifest(
                sha1(b"bin|%d" % self._bin_serial + representative)
            )

        container_id = sha1(self._file_id.encode())
        writer = None
        for chunk, digest in zip(chunks, digests, strict=True):
            idx = bin_manifest.find(digest)
            if idx is not None:
                e = bin_manifest.entries[idx]
                self._count_duplicate(chunk.size)
                fm.append(e.container_id, e.offset, e.size)
                continue
            self._count_unique(chunk.size)
            if writer is None:
                writer = self.chunks.open_container(container_id)
            offset = writer.append(chunk.data)
            bin_manifest.append(MultiEntry(digest, container_id, offset, chunk.size))
            fm.append(container_id, offset, chunk.size)
        if writer is not None:
            writer.close()

        self.bin_store.put(bin_manifest)  # write-back (new or grown)
        self._primary[representative] = _PrimaryEntry(whole, bin_manifest.manifest_id)
        self.file_manifests.put(fm)
        self._observe_ram(self.primary_index_bytes())

    def _count_whole_file_dup(
        self,
        chunks: list[Chunk],
        digests: list[Digest],
        bin_manifest: MultiManifest,
        fm: FileManifest,
    ) -> None:
        """Rebuild the file manifest for a complete duplicate from its bin."""
        for chunk, digest in zip(chunks, digests, strict=True):
            idx = bin_manifest.find(digest)
            if idx is None:
                raise AssertionError(
                    "whole-file hash matched but a chunk is missing from the bin"
                )
            e = bin_manifest.entries[idx]
            self._count_duplicate(chunk.size)
            fm.append(e.container_id, e.offset, e.size)
