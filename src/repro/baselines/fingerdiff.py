"""Fingerdiff (Bobbarjung, Jagannathan & Dubnicki, ToS 2006).

The paper's related work credits Fingerdiff with the coalescing idea
MHD's SHM refines: "Fingerdiff coalesce[s] contiguous non-duplicate
chunks up to a maximal number into one big chunk stored on the disk",
but criticises it because "a database is needed to index each chunk.
The assumption that the database can fit into the RAM might not be
realistic in practical systems."

This implementation is faithful to both properties:

* the stream is chunked at the *small* granularity (``ECS``) and every
  small chunk ("subchunk") is looked up in a full **in-RAM database**
  mapping digest → stored extent;
* consecutive non-duplicate subchunks are coalesced, up to
  ``max_subchunks`` (= ``SD``, to match the granularity convention the
  paper uses for the other algorithms), into one stored chunk with one
  manifest entry — so manifests stay small like MHD's, but the RAM
  database grows with ``N`` like CDC's hook count.

``database_bytes()`` exposes the RAM cost the ICPP paper objects to;
the ablation bench plots it against MHD's bloom+cache budget.
"""

from __future__ import annotations

from ..chunking import VectorizedChunker
from ..hashing import Digest, sha1, sha1_many, sha1_spans
from ..storage import FileManifest, Manifest
from ..storage.manifest import ENTRY_SIZE, ManifestEntry
from ..workloads.machine import BackupFile
from ..core.base import Deduplicator
from ..core.manifest_cache import ManifestCache

__all__ = ["FingerdiffDeduplicator"]


class FingerdiffDeduplicator(Deduplicator):
    """Subchunk dedup with coalesced storage and a full RAM index."""

    name = "fingerdiff"

    def __init__(self, config=None, backend=None, max_subchunks: int | None = None):
        super().__init__(config, backend)
        self.chunker = VectorizedChunker(self.config.small_chunker_config())
        self.cache = ManifestCache(self.manifests, self.config.cache_manifests)
        if max_subchunks is not None and max_subchunks < 1:
            raise ValueError(f"max_subchunks must be >= 1, got {max_subchunks}")
        self.max_subchunks = max_subchunks if max_subchunks is not None else self.config.sd
        # The in-RAM subchunk database: digest -> (container, offset, size).
        self._db: dict[Digest, tuple[Digest, int, int]] = {}
        # Per-file state (reset by _begin_file).
        self._container_id: Digest | None = None
        self._manifest: Manifest | None = None
        self._fm: FileManifest | None = None
        self._writer = None
        self._pending: list[tuple[Digest, memoryview, int]] = []

    def database_bytes(self) -> int:
        """RAM held by the subchunk database (the paper's objection)."""
        return len(self._db) * (20 + 36 + 16)

    def _begin_file(self, file: BackupFile) -> None:
        fid = file.file_id.encode()
        self._container_id = sha1(fid)
        self._manifest = Manifest(
            sha1(fid + b"|manifest"), self._container_id, entry_size=ENTRY_SIZE
        )
        self.cache.add(self._manifest, pin=True)
        self._fm = FileManifest(file.file_id)
        self._writer = None
        self._pending = []  # (digest, data, size) of the open coalesce run

    def _flush_pending(self) -> None:
        pending = self._pending
        if not pending:
            return
        if self._writer is None:
            self._writer = self.chunks.open_container(self._container_id)
        writer = self._writer
        base = writer.size
        total = 0
        for digest, data, size in pending:
            offset = writer.append(data)
            self._db[digest] = (self._container_id, offset, size)
            self._fm.append(self._container_id, offset, size)
            total += size
        # One coalesced manifest entry for the whole run; the spans
        # are hashed incrementally without a join copy.
        coalesced = sha1_spans(d for _, d, _ in pending)
        self.cpu.hashed += total
        self._manifest.append(ManifestEntry(coalesced, base, total, is_hook=True))
        pending.clear()

    def _ingest_chunks(self, batch) -> None:
        digests = sha1_many(chunk.data for chunk in batch)
        for chunk, digest in zip(batch, digests, strict=True):
            self.cpu.hashed += chunk.size
            extent = self._db.get(digest)
            if extent is not None:
                self._flush_pending()
                self._count_duplicate(chunk.size)
                self._fm.append(*extent)
                continue
            self._count_unique(chunk.size)
            self._pending.append((digest, chunk.data, chunk.size))
            if len(self._pending) >= self.max_subchunks:
                self._flush_pending()

    def _end_file(self) -> None:
        self._flush_pending()
        manifest = self._manifest
        if self._writer is not None:
            self._writer.close()
        if manifest.entries:
            self.manifests.put(manifest)
            self.hooks.put(manifest.entries[0].digest, manifest.manifest_id)
        self.cache.reindex(manifest)
        self.cache.unpin(manifest.manifest_id)
        self.file_manifests.put(self._fm)
        self._observe_ram(self.cache.ram_bytes() + self.database_bytes())
        self._manifest = None
        self._fm = None
        self._writer = None

    def _flush(self) -> None:
        self.cache.flush()
