"""Plain CDC deduplication — the paper's "CDC" comparison column.

The classic LBFS-style design: every chunk (at granularity ``ECS``) is
individually indexed.  Each unique chunk gets a manifest entry (36
bytes) *and* its own on-disk Hook file — which is why Table I charges
CDC ``N`` hook inodes and ``36·N`` manifest bytes, the metadata burden
MHD's SHM exists to remove.  Data locality is still exploited through
the shared manifest LRU cache (one manifest per file), and the Bloom
filter suppresses disk lookups for never-seen hashes, matching the
"with Bloom Filter" row of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chunking import VectorizedChunker
from ..hashing import Digest, sha1, sha1_many
from ..storage import FileManifest, Manifest
from ..storage.manifest import ENTRY_SIZE, ManifestEntry
from ..workloads.machine import BackupFile
from ..core.base import Deduplicator
from ..core.manifest_cache import ManifestCache

__all__ = ["CDCDeduplicator"]


@dataclass
class _FileState:
    """Per-file ingest state threaded through the batch hooks."""

    container_id: Digest
    manifest: Manifest
    fm: FileManifest
    writer: object | None = None


class CDCDeduplicator(Deduplicator):
    """Full-index content-defined-chunking deduplicator."""

    name = "cdc"

    def __init__(self, config=None, backend=None, chunker_cls=VectorizedChunker):
        super().__init__(config, backend)
        self.chunker = chunker_cls(self.config.small_chunker_config())
        self.cache = ManifestCache(self.manifests, self.config.cache_manifests)
        self._ctx: _FileState | None = None

    def _begin_file(self, file: BackupFile) -> None:
        fid = file.file_id.encode()
        container_id = sha1(fid)
        manifest = Manifest(sha1(fid + b"|manifest"), container_id, entry_size=ENTRY_SIZE)
        self.cache.add(manifest, pin=True)
        self._ctx = _FileState(
            container_id=container_id,
            manifest=manifest,
            fm=FileManifest(file.file_id),
        )

    def _ingest_chunks(self, batch) -> None:
        ctx = self._ctx
        manifest, fm = ctx.manifest, ctx.fm
        digests = sha1_many(chunk.data for chunk in batch)
        for chunk, digest in zip(batch, digests, strict=True):
            self.cpu.hashed += chunk.size
            hit = self._lookup(digest, manifest)
            if hit is not None:
                owner, entry = hit
                self._count_duplicate(chunk.size)
                fm.append(owner.chunk_id, entry.offset, entry.size)
                continue
            self._count_unique(chunk.size)
            if ctx.writer is None:
                ctx.writer = self.chunks.open_container(ctx.container_id)
            offset = ctx.writer.append(chunk.data)
            manifest.append(ManifestEntry(digest, offset, chunk.size, is_hook=True))
            self.hooks.put(digest, manifest.manifest_id)
            if self.bloom is not None:
                self.bloom.add(digest)
            fm.append(ctx.container_id, offset, chunk.size)

    def _end_file(self) -> None:
        ctx = self._ctx
        self.cache.reindex(ctx.manifest)
        if ctx.writer is not None:
            ctx.writer.close()
        if ctx.manifest.entries:
            self.manifests.put(ctx.manifest)
        self.cache.unpin(ctx.manifest.manifest_id)
        self.file_manifests.put(ctx.fm)
        self._observe_ram(self.cache.ram_bytes())
        self._ctx = None

    def _lookup(
        self, digest: Digest, current: Manifest
    ) -> tuple[Manifest, ManifestEntry] | None:
        # The in-progress manifest's own hash table is consulted first:
        # its digests enter the cache-wide index only at file end.
        idx = current.find(digest)
        if idx is not None:
            return current, current.entries[idx]
        manifest = self.cache.search(digest)
        if manifest is None:
            if self.bloom is not None and digest not in self.bloom:
                return None
            manifest_id = self.hooks.lookup(digest)
            if manifest_id is None:
                return None
            manifest = self.cache.load(manifest_id)
        idx = manifest.find(digest)
        if idx is None:
            return None
        return manifest, manifest.entries[idx]

    def _flush(self) -> None:
        self.cache.flush()
