"""Bimodal chunking deduplication (Kruus, Ungureanu & Dubnicki, FAST'10).

The big-chunk-first strategy the paper compares against:

1. The stream is chunked at the *big* granularity ``ECS · SD``.
2. Each big chunk is queried for duplication (Bloom-gated on-disk
   lookup, as in the paper's improved "with bloom filter" variant).
3. Non-duplicate big chunks at **transition points** — adjacent to a
   duplicate chunk in the stream — are re-chunked at the small
   granularity ``ECS`` and each small chunk deduplicated individually.
4. Everything stored (big chunks and small chunks alike) gets one
   manifest entry *and one on-disk Hook file*, which is why Table I
   charges Bimodal ``N/SD + 2L(SD-1)`` hook inodes: re-chunking at the
   2·L transition points mints ``SD``-ish new hooks each.

Duplicate data *inside* non-duplicate big chunks away from transition
points is missed — the DER deficit the paper's Fig. 8 shows.
"""

from __future__ import annotations

from ..chunking import Chunk, VectorizedChunker
from ..hashing import Digest, sha1
from ..storage import FileManifest, Manifest
from ..storage.manifest import ENTRY_SIZE, ManifestEntry
from ..workloads.machine import BackupFile
from ..core.base import Deduplicator
from ..core.manifest_cache import ManifestCache

__all__ = ["BimodalDeduplicator"]


class BimodalDeduplicator(Deduplicator):
    """Big-chunk-first, transition-point re-chunking deduplicator."""

    name = "bimodal"

    def __init__(self, config=None, backend=None):
        super().__init__(config, backend)
        self.big_chunker = VectorizedChunker(self.config.big_chunker_config())
        self.small_chunker = VectorizedChunker(self.config.small_chunker_config())
        self.cache = ManifestCache(self.manifests, self.config.cache_manifests)
        #: big chunks re-chunked at transition points (diagnostic)
        self.rechunked_big = 0

    def _ingest_file(self, file: BackupFile) -> None:
        data = file.data
        fid = file.file_id.encode()
        container_id = sha1(fid)
        manifest = Manifest(
            sha1(fid + b"|manifest"), container_id, entry_size=ENTRY_SIZE
        )
        self.cache.add(manifest, pin=True)
        writer = None
        fm = FileManifest(file.file_id)

        big_chunks = self.big_chunker.chunk(data)
        self.cpu.chunked += len(data)
        # Phase 1: duplicate status of every big chunk (the paper's
        # "(N+D)/SD big chunk queries" when unfiltered).
        digests: list[Digest] = []
        hits: list[tuple[Manifest, ManifestEntry] | None] = []
        for chunk in big_chunks:
            digest = sha1(chunk.data)
            digests.append(digest)
            self.cpu.hashed += chunk.size
            hits.append(self._lookup(digest, manifest, key=digest))

        # Phase 2: store / re-chunk.
        for i, chunk in enumerate(big_chunks):
            hit = hits[i]
            if hit is not None:
                owner, entry = hit
                self._count_duplicate(chunk.size)
                fm.append(owner.chunk_id, entry.offset, entry.size)
                continue
            if self._should_rechunk(i, big_chunks, hits):
                self.rechunked_big += 1
                writer = self._ingest_small(chunk, manifest, container_id, writer, fm)
            else:
                self._count_unique(chunk.size)
                writer = writer or self.chunks.open_container(container_id)
                offset = writer.append(chunk.data)
                self._store_entry(manifest, digests[i], offset, chunk.size)
                fm.append(container_id, offset, chunk.size)

        self.cache.reindex(manifest)
        if writer is not None:
            writer.close()
        if manifest.entries:
            self.manifests.put(manifest)
        self.cache.unpin(manifest.manifest_id)
        self.file_manifests.put(fm)
        self._observe_ram(self.cache.ram_bytes())

    def _should_rechunk(self, i: int, big_chunks: list[Chunk], hits: list) -> bool:
        """Bimodal's transition-point rule: re-chunk a non-duplicate big
        chunk iff a stream neighbour is duplicate.  Subclasses (FBC)
        substitute their own selection strategy."""
        return (i > 0 and hits[i - 1] is not None) or (
            i + 1 < len(hits) and hits[i + 1] is not None
        )

    def _ingest_small(
        self,
        big: Chunk,
        manifest: Manifest,
        container_id: Digest,
        writer,
        fm: FileManifest,
    ):
        """Re-chunk one transition big chunk and dedup its small chunks."""
        small_chunks = self.small_chunker.chunk(bytes(big.data))
        self.cpu.chunked += big.size
        for chunk in small_chunks:
            digest = sha1(chunk.data)
            self.cpu.hashed += chunk.size
            hit = self._lookup(digest, manifest, key=digest)
            if hit is not None:
                owner, entry = hit
                self._count_duplicate(chunk.size)
                fm.append(owner.chunk_id, entry.offset, entry.size)
                continue
            self._count_unique(chunk.size)
            writer = writer or self.chunks.open_container(container_id)
            offset = writer.append(chunk.data)
            self._store_entry(manifest, digest, offset, chunk.size)
            fm.append(container_id, offset, chunk.size)
        return writer

    def _store_entry(
        self, manifest: Manifest, digest: Digest, offset: int, size: int
    ) -> None:
        manifest.append(ManifestEntry(digest, offset, size, is_hook=True))
        self.hooks.put(digest, manifest.manifest_id)
        if self.bloom is not None:
            self.bloom.add(digest)

    def _lookup(
        self, digest: Digest, current: Manifest, key: Digest
    ) -> tuple[Manifest, ManifestEntry] | None:
        idx = current.find(digest)
        if idx is not None:
            return current, current.entries[idx]
        manifest = self.cache.search(digest)
        if manifest is None:
            if self.bloom is not None and digest not in self.bloom:
                return None
            manifest_id = self.hooks.lookup(digest)
            if manifest_id is None:
                return None
            manifest = self.cache.load(manifest_id)
        idx = manifest.find(digest)
        if idx is None:
            return None
        return manifest, manifest.entries[idx]

    def _flush(self) -> None:
        self.cache.flush()
