"""Bimodal chunking deduplication (Kruus, Ungureanu & Dubnicki, FAST'10).

The big-chunk-first strategy the paper compares against:

1. The stream is chunked at the *big* granularity ``ECS · SD``.
2. Each big chunk is queried for duplication (Bloom-gated on-disk
   lookup, as in the paper's improved "with bloom filter" variant).
3. Non-duplicate big chunks at **transition points** — adjacent to a
   duplicate chunk in the stream — are re-chunked at the small
   granularity ``ECS`` and each small chunk deduplicated individually.
4. Everything stored (big chunks and small chunks alike) gets one
   manifest entry *and one on-disk Hook file*, which is why Table I
   charges Bimodal ``N/SD + 2L(SD-1)`` hook inodes: re-chunking at the
   2·L transition points mints ``SD``-ish new hooks each.

Duplicate data *inside* non-duplicate big chunks away from transition
points is missed — the DER deficit the paper's Fig. 8 shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chunking import Chunk, VectorizedChunker
from ..hashing import Digest, sha1, sha1_many
from ..storage import FileManifest, Manifest
from ..storage.manifest import ENTRY_SIZE, ManifestEntry
from ..workloads.machine import BackupFile
from ..core.base import Deduplicator
from ..core.manifest_cache import ManifestCache

__all__ = ["BimodalDeduplicator"]

#: A resolved big-chunk lookup: (owning manifest, entry) or None.
_Hit = "tuple[Manifest, ManifestEntry] | None"


@dataclass
class _FileState:
    """Per-file state: the one-big-chunk lookahead window.

    Bimodal's transition rule needs the duplicate status of the *next*
    big chunk, so a big chunk is committed only once its successor has
    been looked up (or the file ended).
    """

    container_id: Digest
    manifest: Manifest
    fm: FileManifest
    writer: object | None = None
    # (chunk, digest, hit) awaiting their successor's hit status.
    pending: list = field(default_factory=list)
    prev_hit: object = None  # hit status of the last committed big chunk


class BimodalDeduplicator(Deduplicator):
    """Big-chunk-first, transition-point re-chunking deduplicator."""

    name = "bimodal"

    def __init__(self, config=None, backend=None):
        super().__init__(config, backend)
        self.big_chunker = VectorizedChunker(self.config.big_chunker_config())
        self.small_chunker = VectorizedChunker(self.config.small_chunker_config())
        self.cache = ManifestCache(self.manifests, self.config.cache_manifests)
        #: big chunks re-chunked at transition points (diagnostic)
        self.rechunked_big = 0
        self._ctx: _FileState | None = None

    def _stream_chunker(self) -> VectorizedChunker:
        return self.big_chunker

    def _begin_file(self, file: BackupFile) -> None:
        fid = file.file_id.encode()
        container_id = sha1(fid)
        manifest = Manifest(
            sha1(fid + b"|manifest"), container_id, entry_size=ENTRY_SIZE
        )
        self.cache.add(manifest, pin=True)
        self._ctx = _FileState(
            container_id=container_id,
            manifest=manifest,
            fm=FileManifest(file.file_id),
        )

    def _ingest_chunks(self, batch) -> None:
        ctx = self._ctx
        digests = sha1_many(chunk.data for chunk in batch)
        for chunk, digest in zip(batch, digests, strict=True):
            self.cpu.hashed += chunk.size
            hit = self._lookup(digest, ctx.manifest, key=digest)
            if hit is not None and hit[0] is ctx.manifest:
                # The big-chunk query is defined against *previous*
                # files' state (the classic design looks every big
                # chunk up before storing any); a hit on this file's
                # own in-progress manifest is therefore a miss.
                hit = None
            ctx.pending.append((chunk, digest, hit))
            while len(ctx.pending) >= 2:
                entry = ctx.pending.pop(0)
                self._commit_big(ctx, *entry, next_hit=ctx.pending[0][2])

    def _end_file(self) -> None:
        ctx = self._ctx
        if ctx.pending:
            self._commit_big(ctx, *ctx.pending.pop(0), next_hit=None)
        self.cache.reindex(ctx.manifest)
        if ctx.writer is not None:
            ctx.writer.close()
        if ctx.manifest.entries:
            self.manifests.put(ctx.manifest)
        self.cache.unpin(ctx.manifest.manifest_id)
        self.file_manifests.put(ctx.fm)
        self._observe_ram(self.cache.ram_bytes())
        self._ctx = None

    def _commit_big(self, ctx: _FileState, chunk, digest, hit, next_hit) -> None:
        """Store / re-chunk one big chunk whose neighbours are decided."""
        if hit is not None:
            owner, entry = hit
            self._count_duplicate(chunk.size)
            ctx.fm.append(owner.chunk_id, entry.offset, entry.size)
        elif self._should_rechunk(chunk, ctx.prev_hit, next_hit):
            self.rechunked_big += 1
            ctx.writer = self._ingest_small(
                chunk, ctx.manifest, ctx.container_id, ctx.writer, ctx.fm
            )
        else:
            self._count_unique(chunk.size)
            ctx.writer = ctx.writer or self.chunks.open_container(ctx.container_id)
            offset = ctx.writer.append(chunk.data)
            self._store_entry(ctx.manifest, digest, offset, chunk.size)
            ctx.fm.append(ctx.container_id, offset, chunk.size)
        ctx.prev_hit = hit

    def _should_rechunk(self, big: Chunk, prev_hit, next_hit) -> bool:
        """Bimodal's transition-point rule: re-chunk a non-duplicate big
        chunk iff a stream neighbour is duplicate.  Subclasses (FBC)
        substitute their own selection strategy."""
        return prev_hit is not None or next_hit is not None

    def _ingest_small(
        self,
        big: Chunk,
        manifest: Manifest,
        container_id: Digest,
        writer,
        fm: FileManifest,
    ):
        """Re-chunk one transition big chunk and dedup its small chunks."""
        # The big chunk's view is chunked in place — no bytes() copy.
        small_chunks = self.small_chunker.chunk(big.data)
        self.cpu.chunked += big.size
        small_digests = sha1_many(chunk.data for chunk in small_chunks)
        for chunk, digest in zip(small_chunks, small_digests, strict=True):
            self.cpu.hashed += chunk.size
            hit = self._lookup(digest, manifest, key=digest)
            if hit is not None:
                owner, entry = hit
                self._count_duplicate(chunk.size)
                fm.append(owner.chunk_id, entry.offset, entry.size)
                continue
            self._count_unique(chunk.size)
            writer = writer or self.chunks.open_container(container_id)
            offset = writer.append(chunk.data)
            self._store_entry(manifest, digest, offset, chunk.size)
            fm.append(container_id, offset, chunk.size)
        return writer

    def _store_entry(
        self, manifest: Manifest, digest: Digest, offset: int, size: int
    ) -> None:
        manifest.append(ManifestEntry(digest, offset, size, is_hook=True))
        self.hooks.put(digest, manifest.manifest_id)
        if self.bloom is not None:
            self.bloom.add(digest)

    def _lookup(
        self, digest: Digest, current: Manifest, key: Digest
    ) -> tuple[Manifest, ManifestEntry] | None:
        idx = current.find(digest)
        if idx is not None:
            return current, current.entries[idx]
        manifest = self.cache.search(digest)
        if manifest is None:
            if self.bloom is not None and digest not in self.bloom:
                return None
            manifest_id = self.hooks.lookup(digest)
            if manifest_id is None:
                return None
            manifest = self.cache.load(manifest_id)
        idx = manifest.find(digest)
        if idx is None:
            return None
        return manifest, manifest.entries[idx]

    def _flush(self) -> None:
        self.cache.flush()
