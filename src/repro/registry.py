"""The one place mapping algorithm names to deduplicator classes.

``cli.py``, ``parallel.py``, the examples and the benchmark harness all
need the same nine-entry name → class table; maintaining parallel
copies let them drift.  They now all call :func:`resolve` /
:func:`available` here.

The table is populated lazily so importing :mod:`repro.registry` stays
cheap and multiprocessing workers (``parallel.py``) can resolve names
after pickling without dragging every deduplicator through the fork.
"""

from __future__ import annotations

from collections.abc import Callable

__all__ = ["available", "capabilities", "describe", "entries", "resolve"]

_REGISTRY: dict[str, Callable] = {}

#: Structural traits per algorithm, used by callers that adapt to the
#: algorithm's index shape rather than its name — e.g. the cluster
#: router picks its fingerprint mode from these:
#:
#: ``hooks``            persists sampled hook files (warm_start can
#:                      rebuild a RAM index from them);
#: ``segments``         groups the stream into multi-chunk segments;
#: ``representative``   routes whole files by a min-digest
#:                      representative (Extreme Binning).
_CAPABILITIES: dict[str, frozenset[str]] = {
    "bf-mhd": frozenset({"hooks"}),
    "si-mhd": frozenset({"hooks"}),
    "cdc": frozenset({"hooks"}),
    "bimodal": frozenset({"hooks"}),
    "subchunk": frozenset({"hooks"}),
    "sparse-indexing": frozenset({"hooks", "segments"}),
    "fingerdiff": frozenset({"hooks"}),
    "fbc": frozenset(),
    "extreme-binning": frozenset({"representative"}),
}

#: One-line description per algorithm (``repro list`` output); kept
#: here rather than on the classes so the list prints without
#: importing every deduplicator.
_DESCRIPTIONS: dict[str, str] = {
    "bf-mhd": "MHD with Bloom-filtered hook index (the paper's main system)",
    "si-mhd": "MHD with a sparse in-RAM hook index instead of the Bloom filter",
    "cdc": "plain content-defined chunking with a full chunk index (baseline)",
    "bimodal": "bimodal chunking: big chunks, re-chunked small at dup boundaries",
    "subchunk": "two-level chunk/sub-chunk dedup with per-bin manifests",
    "sparse-indexing": "Lillibridge-style sampled sparse index over segments",
    "fingerdiff": "Fingerdiff: variable-granularity super-chunks",
    "fbc": "frequency-based chunking around popular chunk boundaries",
    "extreme-binning": "Extreme Binning: one representative chunk id per file bin",
}


def _populate() -> None:
    from .baselines import (
        BimodalDeduplicator,
        CDCDeduplicator,
        ExtremeBinningDeduplicator,
        FBCDeduplicator,
        FingerdiffDeduplicator,
        SparseIndexingDeduplicator,
        SubChunkDeduplicator,
    )
    from .core import MHDDeduplicator, SIMHDDeduplicator

    _REGISTRY.update(
        {
            "bf-mhd": MHDDeduplicator,
            "si-mhd": SIMHDDeduplicator,
            "cdc": CDCDeduplicator,
            "bimodal": BimodalDeduplicator,
            "subchunk": SubChunkDeduplicator,
            "sparse-indexing": SparseIndexingDeduplicator,
            "fingerdiff": FingerdiffDeduplicator,
            "fbc": FBCDeduplicator,
            "extreme-binning": ExtremeBinningDeduplicator,
        }
    )


def available() -> tuple[str, ...]:
    """Registered algorithm names, in registration order."""
    if not _REGISTRY:
        _populate()
    return tuple(_REGISTRY)


def describe(name: str) -> str:
    """One-line description of a registered algorithm."""
    if name not in available():
        raise ValueError(f"unknown algorithm {name!r}")
    return _DESCRIPTIONS.get(name, "(no description)")


def entries() -> list[tuple[str, str]]:
    """``(name, one-line description)`` for every algorithm, in order."""
    return [(name, describe(name)) for name in available()]


def capabilities(name: str) -> frozenset[str]:
    """Structural traits of a registered algorithm (see ``_CAPABILITIES``)."""
    if name not in available():
        raise ValueError(f"unknown algorithm {name!r}")
    return _CAPABILITIES.get(name, frozenset())


def resolve(name: str) -> Callable:
    """The deduplicator class registered under ``name``.

    Raises ``ValueError`` (listing the valid names) for unknown names.
    """
    if not _REGISTRY:
        _populate()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; available: {', '.join(_REGISTRY)}"
        ) from None
