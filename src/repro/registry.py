"""The one place mapping algorithm names to deduplicator classes.

``cli.py``, ``parallel.py``, the examples and the benchmark harness all
need the same nine-entry name → class table; maintaining parallel
copies let them drift.  They now all call :func:`resolve` /
:func:`available` here.

The table is populated lazily so importing :mod:`repro.registry` stays
cheap and multiprocessing workers (``parallel.py``) can resolve names
after pickling without dragging every deduplicator through the fork.
"""

from __future__ import annotations

from collections.abc import Callable

__all__ = ["available", "resolve"]

_REGISTRY: dict[str, Callable] = {}


def _populate() -> None:
    from .baselines import (
        BimodalDeduplicator,
        CDCDeduplicator,
        ExtremeBinningDeduplicator,
        FBCDeduplicator,
        FingerdiffDeduplicator,
        SparseIndexingDeduplicator,
        SubChunkDeduplicator,
    )
    from .core import MHDDeduplicator, SIMHDDeduplicator

    _REGISTRY.update(
        {
            "bf-mhd": MHDDeduplicator,
            "si-mhd": SIMHDDeduplicator,
            "cdc": CDCDeduplicator,
            "bimodal": BimodalDeduplicator,
            "subchunk": SubChunkDeduplicator,
            "sparse-indexing": SparseIndexingDeduplicator,
            "fingerdiff": FingerdiffDeduplicator,
            "fbc": FBCDeduplicator,
            "extreme-binning": ExtremeBinningDeduplicator,
        }
    )


def available() -> tuple[str, ...]:
    """Registered algorithm names, in registration order."""
    if not _REGISTRY:
        _populate()
    return tuple(_REGISTRY)


def resolve(name: str) -> Callable:
    """The deduplicator class registered under ``name``.

    Raises ``ValueError`` (listing the valid names) for unknown names.
    """
    if not _REGISTRY:
        _populate()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; available: {', '.join(_REGISTRY)}"
        ) from None
