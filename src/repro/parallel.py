"""Sharded, multi-process deduplication.

The paper's introduction motivates MHD with distributed deployments:
"Metadata related overhead also greatly impacts the deduplication
performance in distributed systems related applications such as large
scale data backup."  The standard way such systems scale is *routing*:
the stream is sharded (here: by machine, the natural unit of a backup
fleet), each shard is deduplicated independently by its own node, and
duplicates *across* shards are deliberately missed — trading a little
DER for linear scale-out, exactly like Extreme Binning's bins or
HYDRAstor's supernodes.

This module runs one deduplicator per shard in a ``multiprocessing``
pool (the guides' standard CPython answer to CPU-bound parallelism —
chunking and SHA-1 hold the GIL) and folds the per-shard
:class:`~repro.core.base.DedupStats` into a fleet-level aggregate.
The simulated wall time of the fleet is the *maximum* shard time
(nodes run concurrently), which the aggregate's ThroughputRatio
reflects.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import warnings
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable
from typing import Any

from .analysis.timing import DeviceModel
from .core.base import CpuWork, DedupStats, PipelineStats
from .core.config import DedupConfig
from .obs import MetricsRegistry, Telemetry
from .workloads.machine import BackupFile

__all__ = [
    "FleetExecutor",
    "FleetResult",
    "SerialLane",
    "ShardFailure",
    "ShardResult",
    "dedup_sharded",
    "shard_by_machine",
]


# -- in-process fleet: shared thread pool with serial lanes ----------------


class SerialLane:
    """A FIFO lane over a shared pool: one task of this lane at a time.

    Tasks submitted to one lane run in submission order with no
    overlap, while tasks of *other* lanes run concurrently on the same
    worker pool.  This is the service's execution shape: each dedup
    session is a lane (its operations must stay ordered — open, then
    writes, then commit), the fleet of sessions shares the pool.

    The lane holds no thread while idle: a "pump" task is submitted to
    the pool when work arrives and exits when the queue drains.
    """

    def __init__(self, pool: ThreadPoolExecutor) -> None:
        self._pool = pool
        self._lock = threading.Lock()
        self._queue: deque[tuple[Future[Any], Callable[[], object]]] = deque()
        self._pumping = False

    @property
    def depth(self) -> int:
        """Tasks queued behind the one currently running (if any)."""
        with self._lock:
            return len(self._queue)

    def submit(self, fn: Callable[[], object]) -> Future[Any]:
        """Enqueue a zero-argument callable; returns its future.

        Raises :class:`RuntimeError` (propagated from the pool) when
        the fleet is shut down — after failing every future the lane
        had queued, so no caller is left waiting on a wake-up that can
        never come.
        """
        fut: Future[Any] = Future()
        with self._lock:
            self._queue.append((fut, fn))
            start_pump = not self._pumping
            self._pumping = True
        if start_pump:
            try:
                self._pool.submit(self._pump)
            except RuntimeError:
                # Pool shut down: no pump will ever drain the queue.
                # Strand nothing — fail the queued futures (ours, plus
                # any a racing submit added behind it) and reset the
                # pump flag so the lane stays consistent.
                with self._lock:
                    stranded = list(self._queue)
                    self._queue.clear()
                    self._pumping = False
                for stranded_fut, _ in stranded:
                    if stranded_fut.set_running_or_notify_cancel():
                        stranded_fut.set_exception(
                            RuntimeError("fleet executor is shut down")
                        )
                raise
        return fut

    def _pump(self) -> None:
        while True:
            with self._lock:
                if not self._queue:
                    self._pumping = False
                    return
                fut, fn = self._queue.popleft()
            if not fut.set_running_or_notify_cancel():
                continue
            try:
                fut.set_result(fn())
            except BaseException as e:  # noqa: BLE001 - delivered via the future
                fut.set_exception(e)


class FleetExecutor:
    """Shared thread pool handing out :class:`SerialLane` views.

    The multiprocessing pool below scales CPU-bound batch runs; the
    service cannot use it — sessions share live objects (one backend,
    tenant ledgers, locks) that must not cross a process boundary, and
    its work is dominated by per-session ordering anyway.  A thread
    fleet with serial lanes gives the right semantics; hashing releases
    the GIL often enough for streams to overlap I/O.

    ``thread_name_prefix`` names the worker threads (``fleet-N`` by
    default) — the handle the continuous profiler's
    :class:`~repro.obs.profile.StackSampler` filters on to sample only
    dedup work, and the prefix the DDC102 "fleet threads never wait"
    lint reasons about.
    """

    #: Default worker-thread name prefix; the profiler filters on it.
    THREAD_NAME_PREFIX = "fleet"

    def __init__(
        self, workers: int | None = None, thread_name_prefix: str | None = None
    ) -> None:
        if workers is None:
            workers = min(32, (os.cpu_count() or 1) + 4)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.thread_name_prefix = thread_name_prefix or self.THREAD_NAME_PREFIX
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=self.thread_name_prefix
        )

    def lane(self) -> SerialLane:
        """A new serial lane over the shared pool."""
        return SerialLane(self._pool)

    def submit(self, fn: Callable[[], object]) -> Future[Any]:
        """Run an unordered task directly on the pool."""
        return self._pool.submit(fn)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; optionally wait for queued tasks."""
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> FleetExecutor:
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.shutdown(wait=True)


def shard_by_machine(files: Iterable[BackupFile]) -> dict[str, list[BackupFile]]:
    """Group a backup stream by its machine prefix (``pcNN/...``)."""
    shards: dict[str, list[BackupFile]] = {}
    for f in files:
        shards.setdefault(f.file_id.split("/", 1)[0], []).append(f)
    return shards


@dataclass(frozen=True)
class ShardResult:
    """One shard's outcome."""

    shard: str
    stats: DedupStats
    dedup_seconds: float
    #: The shard worker's telemetry registry (``None`` unless the run
    #: was launched with ``collect_metrics=True``).  Registries are
    #: picklable by design, so they cross the pool boundary unchanged.
    metrics: MetricsRegistry | None = None


@dataclass(frozen=True)
class ShardFailure:
    """One shard that produced no result.

    ``kind`` is ``"error"`` when the worker raised (the exception text
    is preserved) or ``"lost"`` when the worker died without reporting
    back at all — an OOM-kill or hard crash; a pool respawns the worker
    but the task's result never arrives, so loss is detected by the
    per-shard timeout.
    """

    shard: str
    error: str
    kind: str = "error"


class _SpeedupValue(float):
    """Float that tolerates the legacy ``fleet.speedup()`` call form."""

    def __call__(self) -> float:
        warnings.warn(
            "FleetResult.speedup is now a property; drop the ()",
            DeprecationWarning,
            stacklevel=2,
        )
        return float(self)


@dataclass(frozen=True)
class FleetResult:
    """Aggregate over all shards.

    Aggregates cover the *surviving* shards; shards that failed are
    listed on :attr:`failures` and contribute nothing to the sums.
    """

    shards: tuple[ShardResult, ...]
    failures: tuple[ShardFailure, ...] = field(default=())

    @property
    def ok(self) -> bool:
        """True when every shard produced a result."""
        return not self.failures

    @property
    def input_bytes(self) -> int:
        """Total bytes ingested across every shard."""
        return sum(s.stats.input_bytes for s in self.shards)

    @property
    def stored_chunk_bytes(self) -> int:
        """Chunk bytes stored by all shards combined."""
        return sum(s.stats.stored_chunk_bytes for s in self.shards)

    @property
    def metadata_bytes(self) -> int:
        """Metadata bytes across all shards combined."""
        return sum(s.stats.metadata_bytes for s in self.shards)

    @property
    def data_only_der(self) -> float:
        """Fleet-level DER excluding metadata."""
        return self.input_bytes / max(1, self.stored_chunk_bytes)

    @property
    def real_der(self) -> float:
        """Fleet-level DER including metadata."""
        return self.input_bytes / max(1, self.stored_chunk_bytes + self.metadata_bytes)

    @property
    def makespan_seconds(self) -> float:
        """Fleet wall time = slowest shard (nodes run concurrently)."""
        return max((s.dedup_seconds for s in self.shards), default=0.0)

    @property
    def aggregate_seconds(self) -> float:
        """Total node-seconds spent (the cost, not the latency)."""
        return sum(s.dedup_seconds for s in self.shards)

    @property
    def speedup(self) -> float:
        """Aggregate work / makespan — the scale-out win.

        A property like every other aggregate (callers that forgot the
        ``()`` used to get a truthy bound method silently).  The value
        still answers the legacy call form with a
        :class:`DeprecationWarning`.
        """
        return _SpeedupValue(self.aggregate_seconds / max(1e-12, self.makespan_seconds))

    @property
    def cpu(self) -> CpuWork:
        """Fleet-total CPU work (chunked/hashed/compared bytes summed)."""
        total = CpuWork()
        for s in self.shards:
            total.chunked += s.stats.cpu.chunked
            total.hashed += s.stats.cpu.hashed
            total.compared += s.stats.cpu.compared
        return total

    @property
    def pipeline(self) -> PipelineStats:
        """Fleet-total pipeline counters (peak buffer is the max shard).

        Counters sum (batches, windows, stalls, streamed files);
        ``peak_buffer_bytes`` takes the worst shard, since shards run in
        separate processes and never share one buffer.
        """
        total = PipelineStats()
        for s in self.shards:
            p = s.stats.pipeline
            total.batches += p.batches
            total.windows += p.windows
            total.stalls += p.stalls
            total.streamed_files += p.streamed_files
            if p.peak_buffer_bytes > total.peak_buffer_bytes:
                total.peak_buffer_bytes = p.peak_buffer_bytes
        return total

    def metrics(self) -> MetricsRegistry:
        """Merge every shard's telemetry registry into one.

        Merge order does not matter (counters add, gauges max,
        histograms add bucket-wise).  Empty unless the run collected
        metrics; the result is a fresh registry, never a shard's own.
        """
        merged = MetricsRegistry()
        for s in self.shards:
            if s.metrics is not None:
                merged.merge(s.metrics)
        return merged


# -- worker ----------------------------------------------------------------


def _run_shard(
    args: tuple[str, str, DedupConfig, list[BackupFile], DeviceModel, bool]
) -> ShardResult:
    # Name → class resolution happens inside the worker (the registry
    # populates lazily), keeping this function pickle-friendly.
    from .registry import resolve

    shard, algo, config, files, device, collect_metrics = args
    dedup = resolve(algo)(config)
    tel: Telemetry | None = None
    if collect_metrics:
        tel = Telemetry()  # metrics only; sinks live in the parent
        dedup.telemetry = tel
    stats = dedup.process(files)
    return ShardResult(
        shard=shard,
        stats=stats,
        dedup_seconds=device.dedup_time(stats),
        metrics=tel.registry if tel is not None else None,
    )


def dedup_sharded(
    files: Iterable[BackupFile],
    algo: str = "bf-mhd",
    config: DedupConfig | None = None,
    workers: int | None = None,
    device: DeviceModel | None = None,
    shard_fn: Callable[[Iterable[BackupFile]], dict[str, list[BackupFile]]] = shard_by_machine,
    collect_metrics: bool = False,
    executor: str = "process",
    shard_timeout: float | None = None,
) -> FleetResult:
    """Deduplicate a corpus sharded across worker processes.

    Parameters
    ----------
    workers:
        Pool size; ``None`` uses one process per shard (capped at CPU
        count), ``1`` runs in-process (deterministic, debuggable).
    collect_metrics:
        Attach a metrics-only telemetry context to each shard worker;
        the per-shard registries come back on the
        :class:`ShardResult`\\ s and merge via
        :meth:`FleetResult.metrics`.
    executor:
        ``"process"`` (default) uses a multiprocessing pool —
        CPython's answer to CPU-bound scale-out.  ``"thread"`` runs
        the shards on a :class:`FleetExecutor` thread pool instead:
        slower for pure CPU work (the GIL), but shards share the
        parent's memory, which is what the service's in-process
        execution substrate needs and what debuggers prefer.
    shard_timeout:
        Seconds to wait for each shard's result before declaring the
        worker lost (``kind="lost"`` on :attr:`FleetResult.failures`).
        ``None`` waits forever — a SIGKILLed pool worker's task simply
        never reports back, so deployments that must survive OOM kills
        should set a bound.

    Shard results are collected per shard: one worker raising (or dying)
    costs only that shard, every surviving :class:`ShardResult` is
    returned and the casualty is reported on
    :attr:`FleetResult.failures`.
    """
    from .registry import resolve

    config = config or DedupConfig()
    device = device or DeviceModel()
    resolve(algo)  # fail fast on unknown algorithms
    shards = shard_fn(files)
    if not shards:
        return FleetResult(shards=())
    jobs = [
        (shard, algo, config, shard_files, device, collect_metrics)
        for shard, shard_files in sorted(shards.items())
    ]
    if executor not in ("process", "thread"):
        raise ValueError(f"executor must be 'process' or 'thread', got {executor!r}")
    if workers is None:
        workers = min(len(jobs), mp.cpu_count())
    results: list[ShardResult] = []
    failures: list[ShardFailure] = []

    def record_failure(shard: str, exc: BaseException) -> None:
        failures.append(ShardFailure(shard, f"{type(exc).__name__}: {exc}"))

    if workers <= 1 or len(jobs) == 1:
        for job in jobs:
            try:
                results.append(_run_shard(job))
            except Exception as e:  # noqa: BLE001 - shard isolation: one shard's crash must not sink the fleet
                record_failure(job[0], e)
    elif executor == "thread":
        with FleetExecutor(workers=min(workers, len(jobs))) as fleet:
            futures = [(job[0], fleet.submit(lambda j=job: _run_shard(j))) for job in jobs]
            for shard, fut in futures:
                try:
                    results.append(fut.result(timeout=shard_timeout))
                except FutureTimeout:
                    failures.append(
                        ShardFailure(shard, f"no result within {shard_timeout}s", kind="lost")
                    )
                except Exception as e:  # noqa: BLE001 - shard isolation (see above)
                    record_failure(shard, e)
    else:
        # apply_async, not map(): map() is all-or-nothing — one dead
        # worker (OOM-kill) used to discard every completed shard.
        # Per-shard results stream back independently instead.
        with mp.Pool(processes=min(workers, len(jobs))) as pool:
            pending = [(job[0], pool.apply_async(_run_shard, (job,))) for job in jobs]
            pool.close()
            for shard, handle in pending:
                try:
                    results.append(handle.get(shard_timeout))
                except mp.TimeoutError:
                    # A killed worker's task vanishes: the pool respawns
                    # the process but this handle never completes.
                    failures.append(
                        ShardFailure(
                            shard,
                            f"no result within {shard_timeout}s (worker lost)",
                            kind="lost",
                        )
                    )
                except Exception as e:  # noqa: BLE001 - shard isolation (see above)
                    record_failure(shard, e)
    return FleetResult(shards=tuple(results), failures=tuple(failures))
