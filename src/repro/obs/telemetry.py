"""The telemetry facade: one object wiring registry, tracer and sinks.

Instrumented code (the dedup stack) sees exactly one handle — a
:class:`Telemetry` — and asks it for three things:

* ``tel.registry`` — the process-local metrics registry;
* ``tel.span(name, ...)`` — a stage span (no-op when tracing is off);
* ``tel.heartbeat_tick(...)`` — rate-limited live-progress callback.

The module-level :data:`NULL_TELEMETRY` singleton is the default on
every :class:`~repro.core.base.Deduplicator`: its ``enabled`` flag is
``False``, so hot-path instrumentation guards (``if tel.enabled:``)
skip all metric work, and ``span()`` returns the shared
:data:`~repro.obs.trace.NULL_SPAN` without reading the clock.  The
test suite asserts the null registry stays empty across an ingest —
any unguarded instrumentation shows up as a failure.

Observation is **read-only** by decree (dedupcheck rule DDC007): this
package never imports the dedup core and never mutates dedup state;
data flows in through calls the instrumented code makes.
"""

from __future__ import annotations

import logging
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from .metrics import MetricsRegistry
from .sinks import Sink
from .trace import NULL_SPAN, NullSpan, Span, Tracer

__all__ = [
    "HeartbeatEvent",
    "Telemetry",
    "NULL_TELEMETRY",
    "note_anomaly",
    "runtime_anomalies",
]

logger = logging.getLogger("repro.obs")


@dataclass(frozen=True)
class HeartbeatEvent:
    """Live-progress snapshot handed to the heartbeat callback."""

    files: int  # files fully ingested so far
    input_bytes: int  # bytes ingested so far
    unique_bytes: int  # bytes resolved unique so far
    duplicate_bytes: int  # bytes resolved duplicate so far
    tenant: str = ""  # owning tenant ("" outside the service)
    active_sessions: int = 0  # server-wide live sessions at beat time

    @property
    def der_so_far(self) -> float:
        """Running data-only DER estimate (input / unique bytes)."""
        return self.input_bytes / max(1, self.unique_bytes)


class Telemetry:
    """One run's telemetry context (registry + optional tracing/heartbeat).

    Parameters
    ----------
    sinks:
        Zero or more :class:`~repro.obs.sinks.Sink` objects.  With no
        sinks, metrics are still collected (read them off
        :attr:`registry`) but no spans are produced.
    heartbeat:
        Optional callback receiving :class:`HeartbeatEvent`; invoked at
        most once per ``heartbeat_files`` files or ``heartbeat_bytes``
        input bytes, whichever fires first.
    io_probe:
        Optional ``() -> (disk_ops, disk_bytes)`` sampler attached to
        every span (set automatically when a telemetry object is handed
        to a deduplicator).
    trace_id / origin:
        Cross-process trace context for the tracer (see
        :class:`~repro.obs.trace.Tracer`); a server session passes the
        trace id received from its client so both processes' spans
        share one id.
    tenant:
        Tenant label stamped on heartbeat events ("" outside the
        service).
    active_sessions:
        Optional supplier of the server-wide live-session count,
        sampled at each heartbeat.
    """

    def __init__(
        self,
        sinks: tuple[Sink, ...] | list[Sink] = (),
        heartbeat: Callable[[HeartbeatEvent], None] | None = None,
        heartbeat_files: int = 32,
        heartbeat_bytes: int = 64 << 20,
        io_probe: Callable[[], tuple[int, int]] | None = None,
        trace_id: str = "",
        origin: str = "",
        tenant: str = "",
        active_sessions: Callable[[], int] | None = None,
    ) -> None:
        if heartbeat_files < 1 or heartbeat_bytes < 1:
            raise ValueError("heartbeat intervals must be >= 1")
        self.registry = MetricsRegistry()
        self.sinks: tuple[Sink, ...] = tuple(sinks)
        self.heartbeat = heartbeat
        self.heartbeat_files = heartbeat_files
        self.heartbeat_bytes = heartbeat_bytes
        self.tenant = tenant
        self.active_sessions = active_sessions
        self._hb_next_files = heartbeat_files
        self._hb_next_bytes = heartbeat_bytes
        self._tracer: Tracer | None = (
            Tracer(
                [s.emit_span for s in self.sinks],
                io_probe=io_probe,
                trace_id=trace_id,
                origin=origin,
            )
            if self.sinks
            else None
        )
        self._closed = False

    # ---- capability flags (what instrumentation guards check) ----------

    @property
    def enabled(self) -> bool:
        """Whether metric collection is on (``False`` only on the null)."""
        return True

    @property
    def tracing(self) -> bool:
        """Whether spans are live (any sink attached)."""
        return self._tracer is not None

    @property
    def trace_id(self) -> str:
        """The cross-process trace id ("" when tracing is off)."""
        return self._tracer.trace_id if self._tracer is not None else ""

    # ---- spans -----------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span | NullSpan:
        """A context manager timing one pipeline stage.

        Returns the shared no-op span when tracing is off, so call
        sites can use ``with tel.span("store"):`` unconditionally.
        """
        tracer = self._tracer
        if tracer is None:
            return NULL_SPAN
        return tracer.span(name, attrs or None)

    def closed_span(
        self,
        name: str,
        duration: float,
        parent: int = -1,
        attrs: dict[str, Any] | None = None,
    ) -> int:
        """Report an already-measured interval as a span (thread-safe).

        No-op (returns -1) when tracing is off.  Used by the service's
        event loop to attribute waits — lock acquisition, rate-limit
        sleeps, queue back-pressure — to a session trace whose stack
        lives on a lane thread.
        """
        tracer = self._tracer
        if tracer is None:
            return -1
        return tracer.closed_span(name, duration, parent=parent, attrs=attrs)

    def span_ref(self, span_id: int) -> str:
        """Cross-process reference for one of this trace's spans."""
        tracer = self._tracer
        if tracer is None:
            return ""
        return tracer.ref(span_id)

    def set_io_probe(self, probe: Callable[[], tuple[int, int]] | None) -> None:
        """(Re)attach the I/O sampler spans use for attribution."""
        if self._tracer is not None:
            self._tracer.io_probe = probe

    # ---- heartbeat -------------------------------------------------------

    def heartbeat_tick(
        self, files: int, input_bytes: int, unique_bytes: int, duplicate_bytes: int
    ) -> None:
        """Maybe invoke the heartbeat callback (rate-limited).

        Called by the deduplicator after every file; fires the callback
        when the configured file- or byte-interval has elapsed since
        the previous beat.
        """
        if self.heartbeat is None:
            return
        if files < self._hb_next_files and input_bytes < self._hb_next_bytes:
            return
        self._hb_next_files = files + self.heartbeat_files
        self._hb_next_bytes = input_bytes + self.heartbeat_bytes
        self.heartbeat(
            HeartbeatEvent(
                files=files,
                input_bytes=input_bytes,
                unique_bytes=unique_bytes,
                duplicate_bytes=duplicate_bytes,
                tenant=self.tenant,
                active_sessions=(
                    self.active_sessions() if self.active_sessions is not None else 0
                ),
            )
        )

    # ---- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Deliver the final registry to every sink and close them.

        Idempotent; call once the run is finalized.  Metrics reach
        sinks only here (they are cumulative — streaming them would be
        redundant).
        """
        if self._closed:
            return
        self._closed = True
        for sink in self.sinks:
            sink.emit_metrics(self.registry)
        for sink in self.sinks:
            sink.close()


class _NullTelemetry(Telemetry):
    """The disabled default: no metrics, no spans, no heartbeat.

    ``enabled`` is ``False`` so guarded instrumentation skips metric
    updates entirely; the inherited registry exists (type-uniform call
    sites) but is asserted empty by the zero-overhead tests.
    """

    @property
    def enabled(self) -> bool:
        """Always ``False`` — instrumentation guards skip all work."""
        return False

    def span(self, name: str, **attrs: Any) -> Span | NullSpan:
        """Always the shared no-op span."""
        return NULL_SPAN


#: Shared disabled telemetry; the default on every deduplicator.
NULL_TELEMETRY: Telemetry = _NullTelemetry()


# -- process-global anomaly channel ----------------------------------------

#: Registry collecting runtime anomaly counters (negative I/O deltas,
#: clamped statistics, ...) regardless of any per-run telemetry.
_RUNTIME = MetricsRegistry()


def note_anomaly(name: str, detail: str = "", count: int = 1) -> None:
    """Record runtime anomalies: count them and log one warning.

    The counter lives in a process-global registry (readable via
    :func:`runtime_anomalies`) so low-level code — e.g.
    :meth:`repro.storage.disk_model.IOSnapshot.__sub__` clamping a
    negative delta, or :func:`repro.storage.recover.recover` reporting
    its repairs — can report through the telemetry layer without
    holding a per-run handle.  ``count`` batches repeated occurrences
    of one anomaly kind into a single warning line.
    """
    _RUNTIME.counter(f"anomaly.{name}").inc(count)
    if detail:
        logger.warning("%s: %s", name, detail)
    else:
        logger.warning("%s", name)


def runtime_anomalies() -> dict[str, Any]:
    """Snapshot of the process-global anomaly counters."""
    return _RUNTIME.as_dict()
