"""Aggregate a span trace into a per-stage attribution table.

The partition invariant this module relies on: a span's *self time* is
its duration minus the durations of its **direct** children, so the
self times of all spans in a well-nested trace sum exactly to the root
span's duration.  That makes the attribution table conservative — no
stage is double-counted, and the "self" column answers "where did the
wall-clock actually go".

I/O attribution works the same way on the ``io_ops``/``io_bytes``
attrs the tracer's probe stamps on each span: a span's self I/O is its
delta minus its direct children's deltas.

Cross-process traces: :func:`merge_traces` takes span lists from
several JSONL files (client + server sessions), rebases their
per-tracer span ids into one id space and resolves
``attrs["remote_parent"]`` refs (``"<origin>#<span_id>"``) into real
parent links, producing a single tree :func:`summarize` can attribute.
Spans named with the ``wait.`` prefix (lock waits, rate-limit sleeps,
queue back-pressure) are wait-time; everything else is work-time — the
:attr:`TraceSummary.wait_s` / :attr:`TraceSummary.work_s` split.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from .trace import SpanEvent, parse_span_ref

__all__ = [
    "StageRow",
    "TraceSummary",
    "summarize",
    "render_table",
    "merge_traces",
    "WAIT_PREFIX",
]

#: Span-name prefix marking time spent *waiting* (locks, rate limits,
#: queue back-pressure) rather than doing dedup work.
WAIT_PREFIX = "wait."


@dataclass
class StageRow:
    """Aggregated figures for all spans sharing one stage name."""

    name: str
    count: int = 0
    total_s: float = 0.0  # sum of durations (includes child time)
    self_s: float = 0.0  # sum of durations minus direct-child time
    io_ops: int = 0  # self I/O operations (probe delta attribution)
    io_bytes: int = 0  # self I/O bytes

    def merge_span(self, duration: float, self_s: float, ops: int, nbytes: int) -> None:
        """Fold one span's figures into the row."""
        self.count += 1
        self.total_s += duration
        self.self_s += self_s
        self.io_ops += ops
        self.io_bytes += nbytes


@dataclass
class TraceSummary:
    """The full attribution result for one trace."""

    rows: list[StageRow] = field(default_factory=list)
    run_s: float = 0.0  # sum of root-span durations
    span_count: int = 0

    @property
    def covered_s(self) -> float:
        """Total self time across all stages (== run_s when well nested)."""
        return sum(r.self_s for r in self.rows)

    @property
    def coverage(self) -> float:
        """Fraction of the run duration the stage self-times account for."""
        if self.run_s <= 0.0:
            return 0.0
        return self.covered_s / self.run_s

    @property
    def wait_s(self) -> float:
        """Self time in ``wait.*`` stages (lock/rate/queue waits)."""
        return sum(r.self_s for r in self.rows if r.name.startswith(WAIT_PREFIX))

    @property
    def work_s(self) -> float:
        """Self time everywhere else (actual dedup/protocol work)."""
        return self.covered_s - self.wait_s


def summarize(spans: list[SpanEvent]) -> TraceSummary:
    """Collapse a span list into per-stage rows sorted by self time.

    Raises ``ValueError`` when the trace is structurally invalid
    (duplicate span ids or a parent reference to an unknown span), so
    the ``trace-view`` CLI fails loudly on corrupt files.
    """
    by_id: dict[int, SpanEvent] = {}
    for ev in spans:
        if ev.span_id in by_id:
            raise ValueError(f"duplicate span id {ev.span_id}")
        by_id[ev.span_id] = ev
    child_time: dict[int, float] = {}
    child_ops: dict[int, int] = {}
    child_bytes: dict[int, int] = {}
    for ev in spans:
        if ev.parent != -1:
            if ev.parent not in by_id:
                raise ValueError(f"span {ev.span_id} references unknown parent {ev.parent}")
            child_time[ev.parent] = child_time.get(ev.parent, 0.0) + ev.duration
            child_ops[ev.parent] = child_ops.get(ev.parent, 0) + int(ev.attrs.get("io_ops", 0))
            child_bytes[ev.parent] = child_bytes.get(ev.parent, 0) + int(
                ev.attrs.get("io_bytes", 0)
            )
    rows: dict[str, StageRow] = {}
    summary = TraceSummary(span_count=len(spans))
    for ev in spans:
        self_s = max(0.0, ev.duration - child_time.get(ev.span_id, 0.0))
        self_ops = max(0, int(ev.attrs.get("io_ops", 0)) - child_ops.get(ev.span_id, 0))
        self_bytes = max(
            0, int(ev.attrs.get("io_bytes", 0)) - child_bytes.get(ev.span_id, 0)
        )
        row = rows.get(ev.name)
        if row is None:
            row = rows[ev.name] = StageRow(name=ev.name)
        row.merge_span(ev.duration, self_s, self_ops, self_bytes)
        if ev.parent == -1:
            summary.run_s += ev.duration
    summary.rows = sorted(rows.values(), key=lambda r: r.self_s, reverse=True)
    return summary


def merge_traces(traces: Sequence[list[SpanEvent]]) -> list[SpanEvent]:
    """Stitch span lists from several trace files into one tree.

    Span ids are per-tracer ordinals, so each input list gets its ids
    rebased into one shared id space (keyed by the span's ``origin``,
    or by file position for legacy origin-less traces).  A root span
    carrying ``attrs["remote_parent"] = "<origin>#<span_id>"`` is then
    re-parented onto the referenced span when the referenced trace is
    present — unresolvable refs are left as roots, so a server trace
    still summarizes alone.  Raises ``ValueError`` on id collisions or
    dangling in-file parents, mirroring :func:`summarize`.

    Per-process ``start`` offsets are *not* rebased (each tracer has
    its own epoch); attribution rests on durations only.
    """
    remap: dict[tuple[str, int], int] = {}
    next_id = 1
    for i, spans in enumerate(traces):
        for ev in spans:
            key = (ev.origin or f"<file{i}>", ev.span_id)
            if key in remap:
                raise ValueError(f"duplicate span id {ev.span_id} for origin {key[0]!r}")
            remap[key] = next_id
            next_id += 1
    merged: list[SpanEvent] = []
    for i, spans in enumerate(traces):
        origin_key = f"<file{i}>"
        for ev in spans:
            key = ev.origin or origin_key
            if ev.parent != -1:
                parent = remap.get((key, ev.parent))
                if parent is None:
                    raise ValueError(
                        f"span {ev.span_id} ({key!r}) references unknown parent {ev.parent}"
                    )
            else:
                parent = -1
                ref = ev.attrs.get("remote_parent")
                if isinstance(ref, str):
                    parsed = parse_span_ref(ref)
                    if parsed is not None:
                        parent = remap.get(parsed, -1)
            merged.append(
                SpanEvent(
                    name=ev.name,
                    span_id=remap[(key, ev.span_id)],
                    parent=parent,
                    start=ev.start,
                    duration=ev.duration,
                    attrs=ev.attrs,
                    trace_id=ev.trace_id,
                    origin=ev.origin,
                )
            )
    return merged


def _human_bytes(n: int) -> str:
    """Render a byte count with a binary unit suffix."""
    v = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if v < 1024.0 or unit == "GiB":
            return f"{v:.1f} {unit}" if unit != "B" else f"{int(v)} B"
        v /= 1024.0
    return f"{int(n)} B"  # pragma: no cover - loop always returns


def render_table(summary: TraceSummary) -> str:
    """Render the attribution table as aligned monospace text."""
    headers = ("stage", "count", "total s", "self s", "self %", "io ops", "io bytes")
    body: list[tuple[str, ...]] = []
    run = summary.run_s if summary.run_s > 0.0 else 1.0
    for r in summary.rows:
        body.append(
            (
                r.name,
                str(r.count),
                f"{r.total_s:.4f}",
                f"{r.self_s:.4f}",
                f"{100.0 * r.self_s / run:.1f}",
                str(r.io_ops),
                _human_bytes(r.io_bytes),
            )
        )
    covered = summary.covered_s if summary.covered_s > 0.0 else 1.0
    body.append(
        (
            "(wait)",
            "",
            "",
            f"{summary.wait_s:.4f}",
            f"{100.0 * summary.wait_s / covered:.1f}",
            "",
            "",
        )
    )
    body.append(
        (
            "(work)",
            "",
            "",
            f"{summary.work_s:.4f}",
            f"{100.0 * summary.work_s / covered:.1f}",
            "",
            "",
        )
    )
    body.append(
        (
            "(run)",
            str(summary.span_count),
            f"{summary.run_s:.4f}",
            f"{summary.covered_s:.4f}",
            f"{100.0 * summary.coverage:.1f}",
            "",
            "",
        )
    )
    widths = [
        max(len(headers[i]), max((len(row[i]) for row in body), default=0))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        for row in body
    )
    return "\n".join(lines)
