"""Process-local metrics: counters, gauges and fixed-bucket histograms.

The registry is the quantitative half of the telemetry layer (the
tracing half lives in :mod:`repro.obs.trace`).  Design constraints,
in order:

* **Cheap.**  A metric handle is fetched with one dict lookup and
  updated with one integer add; hot paths cache handles and skip even
  the lookup.  No locks — the registry is process-local by contract
  (each ``multiprocessing`` shard owns its own).
* **Picklable.**  Instances hold only plain containers so a worker
  process can return its registry through a ``multiprocessing`` pool
  result unchanged.
* **Mergeable.**  :meth:`MetricsRegistry.merge` folds another registry
  in; the operation is associative and commutative (counters add,
  gauges keep the max, histograms add bucket-wise), so fleet
  aggregation order never changes the result.

Histograms use *fixed* bucket upper bounds declared at creation, the
Prometheus cumulative-friendly shape: merging two histograms is legal
exactly when their bounds are identical, which :meth:`Histogram.merge`
enforces.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SIZE_BUCKETS",
    "COUNT_BUCKETS",
]

#: Power-of-two byte-size bounds (64 B … 1 MiB) for chunk/extent
#: size distributions — wide enough for every ECS the paper sweeps.
SIZE_BUCKETS: tuple[float, ...] = tuple(float(1 << p) for p in range(6, 21))

#: Small-integer bounds for event-count distributions (extension
#: lengths, group sizes).
COUNT_BUCKETS: tuple[float, ...] = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the counter."""
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.value})"

    # __slots__ classes need explicit pickle support.
    def __getstate__(self) -> int:
        """Pickle as the bare value."""
        return self.value

    def __setstate__(self, state: int) -> None:
        """Restore from the bare value."""
        self.value = state


class Gauge:
    """A point-in-time numeric metric (last-write-wins; merge keeps max).

    Used for high-water marks (peak RAM, peak buffer) — hence the
    max-merge across shards, which preserves "worst observed anywhere".
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        """Set the gauge to ``v``."""
        self.value = v

    def set_max(self, v: float) -> None:
        """Raise the gauge to ``v`` if it is a new high-water mark."""
        if v > self.value:
            self.value = v

    def __repr__(self) -> str:
        return f"Gauge({self.value})"

    def __getstate__(self) -> float:
        """Pickle as the bare value."""
        return self.value

    def __setstate__(self, state: float) -> None:
        """Restore from the bare value."""
        self.value = state


class Histogram:
    """Fixed-bucket histogram (cumulative-compatible, Prometheus-style).

    ``bounds`` are strictly increasing upper bounds; an implicit
    ``+Inf`` bucket catches the overflow.  ``counts[i]`` is the number
    of observations ``<= bounds[i]`` *exclusive of lower buckets* (the
    per-bucket, not cumulative, representation — cumulative sums are
    derived at exposition time).
    """

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        b = tuple(float(x) for x in bounds)
        if any(b[i] >= b[i + 1] for i in range(len(b) - 1)):
            raise ValueError(f"bucket bounds must be strictly increasing: {b}")
        self.bounds = b
        self.counts = [0] * (len(b) + 1)  # last slot is +Inf
        self.total = 0
        self.sum = 0.0

    def observe(self, v: float) -> None:
        """Record one observation."""
        self.counts[self._slot(v)] += 1
        self.total += 1
        self.sum += v

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations (one pass, no intermediate list)."""
        slot = self._slot
        counts = self.counts
        n = 0
        s = 0.0
        for v in values:
            counts[slot(v)] += 1
            n += 1
            s += v
        self.total += n
        self.sum += s

    def _slot(self, v: float) -> int:
        """Index of the first bucket whose bound is >= ``v`` (binary search)."""
        bounds = self.bounds
        lo, hi = 0, len(bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if v <= bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def cumulative(self) -> list[int]:
        """Cumulative bucket counts (``le=bound`` semantics), +Inf last."""
        out: list[int] = []
        acc = 0
        for c in self.counts:
            acc += c
            out.append(acc)
        return out

    def merge(self, other: Histogram) -> None:
        """Fold ``other`` into this histogram (identical bounds required)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.sum += other.sum

    def __repr__(self) -> str:
        return f"Histogram(n={self.total}, sum={self.sum})"

    def __getstate__(self) -> dict[str, Any]:
        """Pickle as a plain dict of the slot values."""
        return {
            "bounds": self.bounds,
            "counts": self.counts,
            "total": self.total,
            "sum": self.sum,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        """Restore the slot values."""
        self.bounds = state["bounds"]
        self.counts = state["counts"]
        self.total = state["total"]
        self.sum = state["sum"]


class MetricsRegistry:
    """Name → metric table for one process (or one fleet shard).

    Names are dotted lowercase paths (``disk.chunk.write.ops``,
    ``mhd.hhr.splits`` — see docs/OBSERVABILITY.md for the catalogue).
    ``counter``/``gauge``/``histogram`` get-or-create, so call sites
    never need existence checks; asking for an existing name with a
    different metric kind raises ``TypeError``.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type) -> Counter | Gauge | Histogram | None:
        m = self._metrics.get(name)
        if m is None:
            return None
        if type(m) is not kind:
            raise TypeError(
                f"metric {name!r} already registered as {type(m).__name__}, "
                f"not {kind.__name__}"
            )
        return m

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        m = self._get(name, Counter)
        if m is None:
            m = Counter()
            self._metrics[name] = m
        assert isinstance(m, Counter)
        return m

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        m = self._get(name, Gauge)
        if m is None:
            m = Gauge()
            self._metrics[name] = m
        assert isinstance(m, Gauge)
        return m

    def histogram(self, name: str, bounds: Sequence[float] = SIZE_BUCKETS) -> Histogram:
        """Get or create the histogram called ``name``.

        ``bounds`` only matters on first creation; a later fetch with
        different bounds raises ``ValueError`` (bounds are part of the
        metric's identity — silent mismatch would corrupt merges).
        """
        m = self._get(name, Histogram)
        if m is None:
            m = Histogram(bounds)
            self._metrics[name] = m
        assert isinstance(m, Histogram)
        if m.bounds != tuple(float(x) for x in bounds):
            raise ValueError(
                f"histogram {name!r} already registered with bounds {m.bounds}"
            )
        return m

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> tuple[str, ...]:
        """All registered metric names, sorted."""
        return tuple(sorted(self._metrics))

    def items(self) -> list[tuple[str, Counter | Gauge | Histogram]]:
        """(name, metric) pairs, sorted by name."""
        return sorted(self._metrics.items())

    def merge(self, other: MetricsRegistry) -> None:
        """Fold another registry into this one (associative/commutative).

        Counters add, gauges keep the max, histograms add bucket-wise.
        Metrics present only in ``other`` are deep-copied in so later
        updates to either registry stay independent.
        """
        for name, m in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                if isinstance(m, Counter):
                    self.counter(name).inc(m.value)
                elif isinstance(m, Gauge):
                    self.gauge(name).set(m.value)
                else:
                    self.histogram(name, m.bounds).merge(m)
                continue
            if type(mine) is not type(m):
                raise TypeError(
                    f"cannot merge metric {name!r}: {type(mine).__name__} "
                    f"vs {type(m).__name__}"
                )
            if isinstance(mine, Counter):
                assert isinstance(m, Counter)
                mine.inc(m.value)
            elif isinstance(mine, Gauge):
                assert isinstance(m, Gauge)
                mine.set_max(m.value)
            else:
                assert isinstance(mine, Histogram) and isinstance(m, Histogram)
                mine.merge(m)

    def filtered(self, prefix: str) -> MetricsRegistry:
        """A new registry holding copies of metrics named ``prefix``*.

        The copies are independent (the same deep-copy semantics as
        :meth:`merge` into an empty registry), so subsystem views —
        e.g. the cluster's ``cluster.`` slice of a fleet registry — can
        be exported or merged onward without aliasing the source.
        """
        out = MetricsRegistry()
        for name, m in self._metrics.items():
            if not name.startswith(prefix):
                continue
            if isinstance(m, Counter):
                out.counter(name).inc(m.value)
            elif isinstance(m, Gauge):
                out.gauge(name).set(m.value)
            else:
                out.histogram(name, m.bounds).merge(m)
        return out

    def as_dict(self) -> dict[str, Any]:
        """JSON-serialisable snapshot of every metric."""
        out: dict[str, Any] = {}
        for name, m in self.items():
            if isinstance(m, Counter):
                out[name] = m.value
            elif isinstance(m, Gauge):
                out[name] = m.value
            else:
                out[name] = {
                    "bounds": list(m.bounds),
                    "counts": list(m.counts),
                    "count": m.total,
                    "sum": m.sum,
                }
        return out
