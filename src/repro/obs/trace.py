"""Pipeline span tracing: nested timed events over the ingest stages.

A :class:`Tracer` hands out :class:`Span` context managers; entering a
span pushes it on the tracer's stack (establishing parentage), exiting
stamps the duration and emits a :class:`SpanEvent` to every sink.  The
event schema is deliberately flat and JSON-friendly so a trace file is
replayable (see :mod:`repro.obs.traceview` and docs/OBSERVABILITY.md):

========  =====================================================
field     meaning
========  =====================================================
name      stage name (``run``, ``file``, ``chunk``, ``hash``,
          ``index``, ``store``, ``end_file``, ``verify`` …)
span_id   per-tracer ordinal, unique within one trace
parent    ``span_id`` of the enclosing span (-1 at the root)
start     seconds since the tracer's epoch (perf-counter clock)
duration  seconds between enter and exit
attrs     small JSON-safe dict (file ids, batch sizes, metered
          ``io_ops``/``io_bytes`` deltas from the I/O probe)
========  =====================================================

The clock lives *here*, not in the algorithm packages — dedupcheck's
DDC004 bans wall-clock reads from ``repro/core``/``chunking``/
``baselines``, so instrumented code only ever calls through this
module (and through no-op spans when tracing is off).

Cross-process stitching (the distributed half): every tracer carries a
``trace_id`` (random 128-bit hex, W3C-traceparent flavoured) and an
``origin`` naming the process/component that produced the trace.  Both
are stamped on each :class:`SpanEvent`.  A span in *another* process is
referenced by a **span ref** ``"<origin>#<span_id>"``; carrying one in
a span's ``attrs["remote_parent"]`` lets
:func:`repro.obs.traceview.merge_traces` resolve it into a real parent
link, so one trace id stitches client → server → ingest into a single
tree.  Old trace files without these fields load with the empty-string
defaults and keep working.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "SpanEvent",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "Tracer",
    "new_trace_id",
    "span_ref",
    "parse_span_ref",
]


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 lowercase hex chars."""
    return os.urandom(16).hex()


def span_ref(origin: str, span_id: int) -> str:
    """Cross-process span reference: ``"<origin>#<span_id>"``."""
    return f"{origin}#{span_id}"


def parse_span_ref(ref: str) -> tuple[str, int] | None:
    """Split a span ref back into ``(origin, span_id)``; None if malformed."""
    origin, sep, tail = ref.rpartition("#")
    if not sep:
        return None
    try:
        return origin, int(tail)
    except ValueError:
        return None


@dataclass(frozen=True)
class SpanEvent:
    """One completed span, as delivered to sinks (and trace files)."""

    name: str
    span_id: int
    parent: int
    start: float
    duration: float
    attrs: dict[str, Any] = field(default_factory=dict)
    trace_id: str = ""  # shared across processes participating in one trace
    origin: str = ""  # which tracer (process/component) produced the span

    def as_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (the JSONL trace record body)."""
        d: dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent": self.parent,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }
        if self.trace_id:
            d["trace_id"] = self.trace_id
        if self.origin:
            d["origin"] = self.origin
        return d

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> SpanEvent:
        """Rebuild a span event from its :meth:`as_dict` form."""
        return cls(
            name=str(d["name"]),
            span_id=int(d["span_id"]),
            parent=int(d["parent"]),
            start=float(d["start"]),
            duration=float(d["duration"]),
            attrs=dict(d.get("attrs", {})),
            trace_id=str(d.get("trace_id", "")),
            origin=str(d.get("origin", "")),
        )


class NullSpan:
    """The no-op span: entering and exiting does nothing.

    A single module-level instance (:data:`NULL_SPAN`) is returned by
    disabled telemetry, so the disabled path allocates nothing and
    never reads the clock.
    """

    __slots__ = ()

    def __enter__(self) -> NullSpan:
        """No-op."""
        return self

    def __exit__(self, *exc: object) -> None:
        """No-op."""

    def set_attr(self, name: str, value: Any) -> None:
        """No-op."""


#: Shared no-op span returned whenever tracing is disabled.
NULL_SPAN = NullSpan()


class Span:
    """A live span; use as a context manager around one pipeline stage."""

    __slots__ = ("_tracer", "name", "span_id", "parent", "start", "attrs", "_io0")

    def __init__(self, tracer: Tracer, name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = -1
        self.parent = -1
        self.start = 0.0
        self._io0: tuple[int, int] | None = None

    def set_attr(self, name: str, value: Any) -> None:
        """Attach one attribute to the span (any JSON-safe value)."""
        self.attrs[name] = value

    def __enter__(self) -> Span:
        """Start the clock and push this span on the tracer stack."""
        tracer = self._tracer
        self.span_id = tracer._next_id()
        self.parent = tracer._stack[-1] if tracer._stack else -1
        tracer._stack.append(self.span_id)
        if tracer.io_probe is not None:
            self._io0 = tracer.io_probe()
        self.start = time.perf_counter() - tracer.epoch
        return self

    def __exit__(self, *exc: object) -> None:
        """Stop the clock, pop the stack and emit the event to the sinks."""
        tracer = self._tracer
        duration = time.perf_counter() - tracer.epoch - self.start
        if tracer._stack and tracer._stack[-1] == self.span_id:
            tracer._stack.pop()
        if self._io0 is not None and tracer.io_probe is not None:
            ops1, bytes1 = tracer.io_probe()
            self.attrs["io_ops"] = ops1 - self._io0[0]
            self.attrs["io_bytes"] = bytes1 - self._io0[1]
        tracer._emit(
            SpanEvent(
                name=self.name,
                span_id=self.span_id,
                parent=self.parent,
                start=self.start,
                duration=duration,
                attrs=self.attrs,
                trace_id=tracer.trace_id,
                origin=tracer.origin,
            )
        )


class Tracer:
    """Produces nested spans and fans completed events out to sinks.

    Parameters
    ----------
    emit:
        Callables receiving each completed :class:`SpanEvent` (the
        sinks' ``emit_span`` methods).
    io_probe:
        Optional zero-argument callable returning cumulative
        ``(disk_ops, disk_bytes)``; when set, every span carries the
        I/O delta observed while it was open (``attrs["io_ops"]`` /
        ``attrs["io_bytes"]``) — the data behind ``trace-view``'s I/O
        attribution columns.
    trace_id:
        The cross-process trace id stamped on every span; generated
        fresh when empty.  A server continuing a client's trace passes
        the id it received over the wire.
    origin:
        Name of the process/component producing this trace (``client``,
        ``server s3``, …); makes span ids globally unique as
        ``"<origin>#<span_id>"`` refs so traces from several files can
        be merged.

    The span *stack* (parentage) is single-threaded by design — one
    tracer belongs to one run or one session lane.  Id allocation and
    sink emission are lock-protected, so other threads (e.g. the
    server's event loop) may safely report after-the-fact
    :meth:`closed_span` events into the same trace.
    """

    __slots__ = (
        "epoch",
        "io_probe",
        "trace_id",
        "origin",
        "_emitters",
        "_stack",
        "_lock",
        "_counter",
    )

    def __init__(
        self,
        emit: Sequence[Callable[[SpanEvent], None]],
        io_probe: Callable[[], tuple[int, int]] | None = None,
        trace_id: str = "",
        origin: str = "",
    ) -> None:
        self.epoch = time.perf_counter()
        self.io_probe = io_probe
        self.trace_id = trace_id or new_trace_id()
        self.origin = origin
        self._emitters = tuple(emit)
        self._stack: list[int] = []
        self._lock = threading.Lock()
        self._counter = 0

    def _next_id(self) -> int:
        with self._lock:
            self._counter += 1
            return self._counter

    def span(self, name: str, attrs: dict[str, Any] | None = None) -> Span:
        """A new span named after one pipeline stage (not yet entered)."""
        return Span(self, name, {} if attrs is None else attrs)

    def closed_span(
        self,
        name: str,
        duration: float,
        parent: int = -1,
        attrs: dict[str, Any] | None = None,
    ) -> int:
        """Emit an already-finished span ending *now* (thread-safe).

        The parentage stack is not touched, so any thread may report a
        measured interval — e.g. the server's event loop attributing a
        rate-limit sleep or lock wait to a session whose lane thread
        owns the stack.  Returns the new span's id.
        """
        end = time.perf_counter() - self.epoch
        span_id = self._next_id()
        self._emit(
            SpanEvent(
                name=name,
                span_id=span_id,
                parent=parent,
                start=max(0.0, end - duration),
                duration=duration,
                attrs={} if attrs is None else attrs,
                trace_id=self.trace_id,
                origin=self.origin,
            )
        )
        return span_id

    def ref(self, span_id: int) -> str:
        """The cross-process reference for one of this tracer's spans."""
        return span_ref(self.origin, span_id)

    def _emit(self, event: SpanEvent) -> None:
        with self._lock:
            for emit in self._emitters:
                emit(event)
