"""Per-tenant SLO tracking: rolling windows and burn-rate alerting.

An :class:`SLOSpec` declares one objective over a rolling window —
"99% of sessions commit in under 5 s", "95% of admission attempts are
not rejected".  The :class:`SLOEngine` consumes the service's raw
events (session completions with latency + outcome, admission
attempts with accept/reject), maintains time-bucketed counts per
tenant, and evaluates each spec as a **burn rate**:

    burn = (bad / total) / (1 - objective)

i.e. how many times faster than budgeted the tenant is consuming its
error budget (1.0 = exactly on budget).  Alerting is multi-window in
the SRE-workbook style: an alert fires only when *both* the long
window and a short window burn above ``burn_alert``, so a brief blip
after a quiet hour cannot fire, and a recovered tenant stops alerting
as soon as the short window cools.  Alerts are routed through the
anomaly channel (:func:`~repro.obs.telemetry.note_anomaly` by
default) and debounced for one short window.

The engine is stdlib-only and clock-injectable — burn-rate tests run
on a synthetic clock with no sleeps.  Like the rest of ``repro.obs``
it is a read-only leaf (dedupcheck DDC007): it observes service events
and never mutates dedup or service state.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from .metrics import MetricsRegistry
from .telemetry import note_anomaly

__all__ = ["SLOSpec", "SLOEngine", "DEFAULT_SLOS"]

#: Valid spec kinds and the event streams they are evaluated over.
_KINDS = ("latency", "error_rate", "rejection_rate")


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective evaluated per tenant.

    ``kind`` picks the event stream: ``latency`` (bad = session slower
    than ``threshold_s``), ``error_rate`` (bad = session aborted or
    failed), ``rejection_rate`` (bad = admission attempt refused by
    quota/rate/busy).  ``objective`` is the target *good* fraction
    (0.99 → 1% error budget).
    """

    name: str
    kind: str
    objective: float
    threshold_s: float = 1.0  # latency kind only
    window_s: float = 3600.0  # long (budget) window
    short_window_s: float = 300.0  # confirmation window
    burn_alert: float = 6.0  # fire when both windows burn >= this

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r} (expected one of {_KINDS})")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {self.objective}")
        if not 0.0 < self.short_window_s <= self.window_s:
            raise ValueError("short_window_s must be in (0, window_s]")
        if self.burn_alert <= 0.0:
            raise ValueError("burn_alert must be positive")

    def as_dict(self) -> dict[str, Any]:
        """JSON form for the ``/slo`` endpoint."""
        return {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "threshold_s": self.threshold_s,
            "window_s": self.window_s,
            "short_window_s": self.short_window_s,
            "burn_alert": self.burn_alert,
        }


#: The service's stock objectives; ``DedupServer`` installs these when
#: no explicit engine is passed.
DEFAULT_SLOS: tuple[SLOSpec, ...] = (
    SLOSpec(name="session-latency-p50", kind="latency", objective=0.50, threshold_s=1.0),
    SLOSpec(name="session-latency-p99", kind="latency", objective=0.99, threshold_s=5.0),
    SLOSpec(name="session-errors", kind="error_rate", objective=0.99),
    SLOSpec(name="admission-rejections", kind="rejection_rate", objective=0.95),
)


class _Window:
    """Time-bucketed event counts for one tenant (ring by bucket index)."""

    __slots__ = ("bucket_s", "horizon_s", "buckets")

    def __init__(self, bucket_s: float, horizon_s: float) -> None:
        self.bucket_s = bucket_s
        self.horizon_s = horizon_s
        self.buckets: dict[int, dict[str, float]] = {}

    def add(self, now: float, key: str, amount: float = 1.0) -> None:
        idx = int(now // self.bucket_s)
        bucket = self.buckets.get(idx)
        if bucket is None:
            bucket = self.buckets[idx] = {}
            self._prune(idx)
        bucket[key] = bucket.get(key, 0.0) + amount

    def _prune(self, newest_idx: int) -> None:
        oldest_live = newest_idx - int(self.horizon_s // self.bucket_s) - 1
        for idx in [i for i in self.buckets if i < oldest_live]:
            del self.buckets[idx]

    def total(self, now: float, key: str, window_s: float) -> float:
        first = int((now - window_s) // self.bucket_s) + 1
        return sum(
            counts.get(key, 0.0) for idx, counts in self.buckets.items() if idx >= first
        )


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (0 when empty)."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


class SLOEngine:
    """Evaluates :class:`SLOSpec` objectives over per-tenant windows.

    Parameters
    ----------
    specs:
        The objectives to track (same set for every tenant).
    clock:
        Monotonic-seconds source; injectable so tests can drive burn
        rates synthetically, with no sleeps.
    anomaly:
        Alert channel — called as ``anomaly(name, detail)`` when a
        spec's multi-window burn trips; defaults to the process-global
        :func:`~repro.obs.telemetry.note_anomaly`.
    bucket_s:
        Window bucket granularity.
    latency_keep:
        How many recent session latencies per tenant back the reported
        p50/p99 observations.

    All methods are thread-safe; the service calls them from its event
    loop, tests and benchmarks from arbitrary threads.
    """

    def __init__(
        self,
        specs: Sequence[SLOSpec] = DEFAULT_SLOS,
        clock: Callable[[], float] = time.monotonic,
        anomaly: Callable[[str, str], None] | None = None,
        bucket_s: float = 10.0,
        latency_keep: int = 512,
    ) -> None:
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO spec names in {names}")
        self.specs: tuple[SLOSpec, ...] = tuple(specs)
        self._clock = clock
        self._anomaly: Callable[[str, str], None] = (
            anomaly if anomaly is not None else note_anomaly
        )
        self._bucket_s = bucket_s
        self._latency_keep = latency_keep
        self._horizon_s = max((s.window_s for s in self.specs), default=3600.0)
        self._lock = threading.Lock()
        self._windows: dict[str, _Window] = {}
        self._latencies: dict[str, deque[tuple[float, float]]] = {}
        self._muted_until: dict[tuple[str, str], float] = {}

    # ---- event intake ----------------------------------------------------

    def record_session(self, tenant: str, duration_s: float, ok: bool = True) -> None:
        """One finished session: commit latency and outcome."""
        with self._lock:
            now = self._clock()
            win = self._window(tenant)
            win.add(now, "sessions")
            if not ok:
                win.add(now, "errors")
            for spec in self.specs:
                if spec.kind == "latency" and duration_s > spec.threshold_s:
                    win.add(now, f"slow.{spec.name}")
            lat = self._latencies.setdefault(tenant, deque(maxlen=self._latency_keep))
            lat.append((now, duration_s))
            self._check_alerts(tenant, now)

    def record_admission(self, tenant: str, rejected: bool = False) -> None:
        """One admission attempt (open or put); ``rejected`` = refused."""
        with self._lock:
            now = self._clock()
            win = self._window(tenant)
            win.add(now, "admissions")
            if rejected:
                win.add(now, "rejections")
            self._check_alerts(tenant, now)

    # ---- evaluation ------------------------------------------------------

    def burn_rates(self, tenant: str, spec: SLOSpec) -> tuple[float, float]:
        """(long-window, short-window) burn rate for one tenant/spec."""
        with self._lock:
            now = self._clock()
            win = self._windows.get(tenant)
            if win is None:
                return (0.0, 0.0)
            return (
                self._burn(win, spec, spec.window_s, now),
                self._burn(win, spec, spec.short_window_s, now),
            )

    def snapshot(self) -> dict[str, Any]:
        """The full ``/slo`` document: specs plus per-tenant evaluation."""
        with self._lock:
            now = self._clock()
            tenants: dict[str, Any] = {}
            for tenant, win in sorted(self._windows.items()):
                cutoff = now - self._horizon_s
                lat = sorted(d for ts, d in self._latencies.get(tenant, ()) if ts >= cutoff)
                slos: dict[str, Any] = {}
                for spec in self.specs:
                    bad, total = self._bad_total(win, spec, spec.window_s, now)
                    long_burn = self._burn(win, spec, spec.window_s, now)
                    short_burn = self._burn(win, spec, spec.short_window_s, now)
                    slos[spec.name] = {
                        "kind": spec.kind,
                        "objective": spec.objective,
                        "bad": bad,
                        "total": total,
                        "burn_long": long_burn,
                        "burn_short": short_burn,
                        "alerting": self._alerting(spec, long_burn, short_burn, total),
                    }
                tenants[tenant] = {
                    "latency": {
                        "count": len(lat),
                        "p50_s": _percentile(lat, 0.50),
                        "p99_s": _percentile(lat, 0.99),
                    },
                    "slos": slos,
                }
            return {"specs": [s.as_dict() for s in self.specs], "tenants": tenants}

    def gauge_registries(self) -> dict[str, MetricsRegistry]:
        """Fresh per-tenant registries of ``slo.*`` gauges for /metrics."""
        doc = self.snapshot()
        out: dict[str, MetricsRegistry] = {}
        for tenant, entry in doc["tenants"].items():
            reg = MetricsRegistry()
            reg.gauge("slo.latency_p50_s").set(entry["latency"]["p50_s"])
            reg.gauge("slo.latency_p99_s").set(entry["latency"]["p99_s"])
            for name, ev in entry["slos"].items():
                reg.gauge(f"slo.burn_long.{name}").set(ev["burn_long"])
                reg.gauge(f"slo.burn_short.{name}").set(ev["burn_short"])
                reg.gauge(f"slo.alerting.{name}").set(1.0 if ev["alerting"] else 0.0)
            out[tenant] = reg
        return out

    # ---- internals -------------------------------------------------------

    def _window(self, tenant: str) -> _Window:
        win = self._windows.get(tenant)
        if win is None:
            win = self._windows[tenant] = _Window(self._bucket_s, self._horizon_s)
        return win

    @staticmethod
    def _bad_total(
        win: _Window, spec: SLOSpec, window_s: float, now: float
    ) -> tuple[float, float]:
        if spec.kind == "latency":
            return win.total(now, f"slow.{spec.name}", window_s), win.total(
                now, "sessions", window_s
            )
        if spec.kind == "error_rate":
            return win.total(now, "errors", window_s), win.total(now, "sessions", window_s)
        return win.total(now, "rejections", window_s), win.total(now, "admissions", window_s)

    def _burn(self, win: _Window, spec: SLOSpec, window_s: float, now: float) -> float:
        bad, total = self._bad_total(win, spec, window_s, now)
        if total <= 0.0:
            return 0.0
        return (bad / total) / (1.0 - spec.objective)

    @staticmethod
    def _alerting(spec: SLOSpec, long_burn: float, short_burn: float, total: float) -> bool:
        return total > 0.0 and long_burn >= spec.burn_alert and short_burn >= spec.burn_alert

    def _check_alerts(self, tenant: str, now: float) -> None:
        # Caller holds the lock.  Debounced one short window per
        # (tenant, spec) so a sustained burn logs once per window, not
        # once per event.
        win = self._windows[tenant]
        for spec in self.specs:
            long_burn = self._burn(win, spec, spec.window_s, now)
            short_burn = self._burn(win, spec, spec.short_window_s, now)
            _, total = self._bad_total(win, spec, spec.window_s, now)
            if not self._alerting(spec, long_burn, short_burn, total):
                continue
            muted = self._muted_until.get((tenant, spec.name), 0.0)
            if now < muted:
                continue
            self._muted_until[(tenant, spec.name)] = now + spec.short_window_s
            self._anomaly(
                f"slo.{spec.name}",
                f"tenant={tenant} burn_long={long_burn:.1f} "
                f"burn_short={short_burn:.1f} objective={spec.objective}",
            )
