"""Observability for the dedup stack: metrics, spans and sinks.

``repro.obs`` is a deliberate *leaf* package — it imports nothing from
the rest of :mod:`repro` (dedupcheck rule DDC007 enforces this, along
with read-only observation), so any layer of the stack can depend on
it without cycles.  The pieces:

* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` — picklable, mergeable process-local metrics.
* :class:`Tracer` / spans (:mod:`repro.obs.trace`) — nested timed
  events over the chunk→hash→index→store pipeline.
* Sinks (:mod:`repro.obs.sinks`) — ``NullSink`` (default, zero
  overhead), ``InMemorySink`` (tests), ``JsonlTraceSink`` (replayable
  trace file), ``PromTextSink`` (Prometheus text exposition).
* :class:`Telemetry` / :data:`NULL_TELEMETRY` — the facade the stack
  holds; see docs/OBSERVABILITY.md for the metric catalogue and trace
  schema.
* :class:`SLOEngine` (:mod:`repro.obs.slo`) — per-tenant rolling-window
  objectives with multi-window burn-rate alerting.
* :class:`StackSampler` (:mod:`repro.obs.profile`) — continuous
  profiling to collapsed-stack (flamegraph) output.
"""

from .metrics import (
    COUNT_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .sinks import (
    NULL_SINK,
    InMemorySink,
    JsonlTraceSink,
    NullSink,
    PromTextSink,
    Sink,
    load_trace,
    prom_text,
    prom_text_multi,
)
from .profile import StackSampler
from .slo import DEFAULT_SLOS, SLOEngine, SLOSpec
from .telemetry import (
    NULL_TELEMETRY,
    HeartbeatEvent,
    Telemetry,
    note_anomaly,
    runtime_anomalies,
)
from .trace import (
    NULL_SPAN,
    NullSpan,
    Span,
    SpanEvent,
    Tracer,
    new_trace_id,
    parse_span_ref,
    span_ref,
)
from .traceview import (
    WAIT_PREFIX,
    StageRow,
    TraceSummary,
    merge_traces,
    render_table,
    summarize,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SIZE_BUCKETS",
    "COUNT_BUCKETS",
    "Sink",
    "NullSink",
    "NULL_SINK",
    "InMemorySink",
    "JsonlTraceSink",
    "PromTextSink",
    "load_trace",
    "prom_text",
    "prom_text_multi",
    "Telemetry",
    "NULL_TELEMETRY",
    "HeartbeatEvent",
    "note_anomaly",
    "runtime_anomalies",
    "SpanEvent",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "Tracer",
    "new_trace_id",
    "span_ref",
    "parse_span_ref",
    "StageRow",
    "TraceSummary",
    "summarize",
    "render_table",
    "merge_traces",
    "WAIT_PREFIX",
    "SLOSpec",
    "SLOEngine",
    "DEFAULT_SLOS",
    "StackSampler",
]
