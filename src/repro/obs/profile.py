"""Continuous profiling: a stdlib-only background stack sampler.

:class:`StackSampler` wakes every ``interval_s`` seconds, snapshots
every live thread's Python stack via :func:`sys._current_frames`, and
accumulates **collapsed stacks** — the flamegraph input format, one
line per distinct stack::

    repro.cli:main;repro.core.base:process;repro.chunking.cdc:split 42

(frames root→leaf joined by ``;``, then a space and the sample count;
frame labels are ``module:function``).  Feed the output straight to
``flamegraph.pl`` or any speedscope-compatible viewer.

Sampling is wait-free for the profiled threads — no sys.settrace, no
instrumentation; cost is one frame walk per live thread per tick in
the sampler's own daemon thread.  A ``thread_prefixes`` filter narrows
attention to e.g. the service's fleet workers (threads named
``fleet-…``) so event-loop bookkeeping does not drown out dedup work.

Attachment points: ``repro-dedup profile -- <subcommand …>`` wraps any
CLI run, ``repro-dedup serve --profile out.collapsed`` profiles a
server until shutdown, and the benchmark suite's ``--profile`` flag
profiles a whole bench session (see benchmarks/conftest.py).
"""

from __future__ import annotations

import sys
import threading
from collections.abc import Sequence
from pathlib import Path
from types import FrameType

__all__ = ["StackSampler", "collapse_frame"]


def collapse_frame(frame: FrameType) -> str:
    """Label one frame as ``module:function`` for the collapsed stack."""
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{frame.f_code.co_name}"


class StackSampler:
    """Samples all thread stacks into collapsed-stack counts.

    Parameters
    ----------
    interval_s:
        Target sampling period (wall clock).
    thread_prefixes:
        Only sample threads whose name starts with one of these
        prefixes; ``None`` samples every thread except the sampler
        itself.
    max_depth:
        Stacks deeper than this are truncated at the root end (the
        leaf frames — where time is actually spent — are kept).

    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    Thread-safe; :meth:`collapsed` may be read while sampling.
    """

    def __init__(
        self,
        interval_s: float = 0.005,
        thread_prefixes: Sequence[str] | None = None,
        max_depth: int = 64,
    ) -> None:
        if interval_s <= 0.0:
            raise ValueError("interval_s must be positive")
        self.interval_s = interval_s
        self.thread_prefixes = tuple(thread_prefixes) if thread_prefixes is not None else None
        self.max_depth = max_depth
        self._counts: dict[str, int] = {}
        self._samples = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ---- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Start the sampling daemon thread (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="obs-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling and join the sampler thread (idempotent).

        The join is bounded: the sampler wakes at least every
        ``interval_s``, so a generous multiple of that is enough, and
        the thread is a daemon — a (never observed) straggler cannot
        hang interpreter shutdown.
        """
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=max(1.0, self.interval_s * 10))
        self._thread = None

    def __enter__(self) -> StackSampler:
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ---- sampling --------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    def sample_once(self) -> None:
        """Take one sample of every eligible thread (also callable
        directly from tests — no background thread required)."""
        me = threading.get_ident()
        names = {t.ident: t.name for t in threading.enumerate() if t.ident is not None}
        frames = sys._current_frames()
        with self._lock:
            self._samples += 1
            for ident, frame in frames.items():
                if ident == me:
                    continue
                name = names.get(ident, "?")
                if self.thread_prefixes is not None and not name.startswith(
                    self.thread_prefixes
                ):
                    continue
                stack = self._walk(frame)
                if stack:
                    self._counts[stack] = self._counts.get(stack, 0) + 1

    def _walk(self, frame: FrameType | None) -> str:
        labels: list[str] = []
        while frame is not None and len(labels) < self.max_depth:
            labels.append(collapse_frame(frame))
            frame = frame.f_back
        labels.reverse()
        return ";".join(labels)

    # ---- output ----------------------------------------------------------

    @property
    def samples(self) -> int:
        """Number of sampling ticks taken so far."""
        with self._lock:
            return self._samples

    def collapsed(self) -> str:
        """The accumulated profile in collapsed-stack format."""
        with self._lock:
            items = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return "\n".join(f"{stack} {count}" for stack, count in items)

    def write(self, path: str | Path) -> int:
        """Write the collapsed profile to ``path``; returns stack count."""
        text = self.collapsed()
        Path(path).write_text(text + "\n" if text else "", encoding="utf-8")
        return 0 if not text else text.count("\n") + 1
