"""Pluggable telemetry sinks.

A sink receives the two telemetry products: completed trace spans
(:class:`~repro.obs.trace.SpanEvent`, streamed as they close) and the
final :class:`~repro.obs.metrics.MetricsRegistry` (delivered once, at
:meth:`~repro.obs.telemetry.Telemetry.close` time).  Four
implementations cover the matrix:

* :class:`NullSink` — the default; every method is a no-op, keeping
  the disabled path free of I/O and allocations.
* :class:`InMemorySink` — buffers everything in lists; what tests use.
* :class:`JsonlTraceSink` — appends one JSON object per line to a
  *replayable* trace file (``{"type": "span", ...}`` records, plus one
  trailing ``{"type": "metrics", ...}`` record), parsed back by
  :func:`load_trace`.
* :class:`PromTextSink` — renders the registry in Prometheus text
  exposition format (version 0.0.4) at close; spans are ignored.
"""

from __future__ import annotations

import json
import re
from typing import IO, Protocol, runtime_checkable

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import SpanEvent

__all__ = [
    "Sink",
    "NullSink",
    "NULL_SINK",
    "InMemorySink",
    "JsonlTraceSink",
    "PromTextSink",
    "load_trace",
    "prom_text",
    "prom_text_multi",
]


@runtime_checkable
class Sink(Protocol):
    """Structural contract every telemetry sink implements."""

    def emit_span(self, event: SpanEvent) -> None:
        """Receive one completed span."""
        ...

    def emit_metrics(self, registry: MetricsRegistry) -> None:
        """Receive the final metrics registry (once, at close)."""
        ...

    def close(self) -> None:
        """Flush and release any underlying resources."""
        ...


class NullSink:
    """Discards everything (the default sink)."""

    def emit_span(self, event: SpanEvent) -> None:
        """Discard the span."""

    def emit_metrics(self, registry: MetricsRegistry) -> None:
        """Discard the registry."""

    def close(self) -> None:
        """Nothing to release."""


#: Shared default instance.
NULL_SINK = NullSink()


class InMemorySink:
    """Buffers spans and metrics in plain lists (for tests)."""

    def __init__(self) -> None:
        self.spans: list[SpanEvent] = []
        self.registries: list[MetricsRegistry] = []
        self.closed = False

    def emit_span(self, event: SpanEvent) -> None:
        """Append the span to :attr:`spans`."""
        self.spans.append(event)

    def emit_metrics(self, registry: MetricsRegistry) -> None:
        """Append the registry to :attr:`registries`."""
        self.registries.append(registry)

    def close(self) -> None:
        """Mark the sink closed (buffers stay readable)."""
        self.closed = True


class JsonlTraceSink:
    """Writes a replayable JSON-lines trace file.

    Each span becomes ``{"type": "span", ...SpanEvent.as_dict()}``; the
    final registry becomes one ``{"type": "metrics", "metrics": {...}}``
    line.  The format is append-only and crash-tolerant: every line is
    a complete JSON document, so a truncated file loses at most its
    last record.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh: IO[str] | None = open(path, "w", encoding="utf-8")

    def _write(self, record: dict[str, object]) -> None:
        if self._fh is None:
            raise ValueError(f"trace sink {self.path!r} already closed")
        json.dump(record, self._fh, separators=(",", ":"))
        self._fh.write("\n")

    def emit_span(self, event: SpanEvent) -> None:
        """Append one ``span`` record."""
        record: dict[str, object] = {"type": "span"}
        record.update(event.as_dict())
        self._write(record)

    def emit_metrics(self, registry: MetricsRegistry) -> None:
        """Append the ``metrics`` record."""
        self._write({"type": "metrics", "metrics": registry.as_dict()})

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def load_trace(path: str) -> tuple[list[SpanEvent], dict[str, object]]:
    """Parse a :class:`JsonlTraceSink` file back into events + metrics.

    Returns ``(spans, metrics_dict)``; ``metrics_dict`` is empty when
    the trace carries no metrics record.  Raises ``ValueError`` on
    malformed lines (the trace-view CLI surfaces this as a failure).
    """
    spans: list[SpanEvent] = []
    metrics: dict[str, object] = {}
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as e:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {e}") from e
            kind = record.get("type")
            if kind == "span":
                spans.append(SpanEvent.from_dict(record))
            elif kind == "metrics":
                metrics = dict(record.get("metrics", {}))
            else:
                raise ValueError(f"{path}:{lineno}: unknown record type {kind!r}")
    return spans, metrics


# -- Prometheus text exposition --------------------------------------------

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _prom_name(name: str) -> str:
    """Sanitise a dotted metric name into a Prometheus identifier."""
    out = "repro_" + re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not _NAME_OK.match(out):  # pragma: no cover - sanitiser guarantees this
        raise ValueError(f"unrepresentable metric name {name!r}")
    return out


def _fmt(v: float) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if isinstance(v, int) or v == int(v):
        return str(int(v))
    return repr(v)


def prom_text(registry: MetricsRegistry) -> str:
    """Render a registry in Prometheus text exposition format 0.0.4.

    Counters gain the conventional ``_total`` suffix; histograms expand
    into cumulative ``_bucket{le="..."}`` series plus ``_sum`` and
    ``_count``.
    """
    lines: list[str] = []
    for name, metric in registry.items():
        pname = _prom_name(name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {pname}_total counter")
            lines.append(f"{pname}_total {_fmt(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_fmt(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {pname} histogram")
            cumulative = metric.cumulative()
            for bound, count in zip(metric.bounds, cumulative):
                lines.append(f'{pname}_bucket{{le="{_fmt(bound)}"}} {count}')
            lines.append(f'{pname}_bucket{{le="+Inf"}} {cumulative[-1]}')
            lines.append(f"{pname}_sum {_fmt(metric.sum)}")
            lines.append(f"{pname}_count {metric.total}")
    return "\n".join(lines) + ("\n" if lines else "")


def _prom_label_value(v: str) -> str:
    """Escape a label value per the exposition format rules."""
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_str(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_prom_label_value(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def prom_text_multi(
    groups: list[tuple[dict[str, str], MetricsRegistry]],
) -> str:
    """Render several registries as one labeled Prometheus exposition.

    Each ``(labels, registry)`` group contributes its samples with the
    given label set attached (e.g. ``{"tenant": "alice"}`` — how the
    service's ``/metrics`` endpoint separates tenants sharing one
    store).  Unlike concatenating :func:`prom_text` outputs, the
    ``# TYPE`` line for each metric name appears exactly once, before
    all of its labeled series, as the format requires.  Metrics that
    appear under several groups must be of one kind; mismatches raise
    ``ValueError``.
    """
    by_name: dict[str, list[tuple[dict[str, str], Counter | Gauge | Histogram]]] = {}
    for labels, registry in groups:
        for name, metric in registry.items():
            series = by_name.setdefault(name, [])
            if series and type(series[0][1]) is not type(metric):
                raise ValueError(
                    f"metric {name!r} has conflicting kinds across label sets"
                )
            series.append((labels, metric))
    lines: list[str] = []
    for name, series in by_name.items():
        pname = _prom_name(name)
        first = series[0][1]
        if isinstance(first, Counter):
            lines.append(f"# TYPE {pname}_total counter")
            for labels, metric in series:
                assert isinstance(metric, Counter)
                lines.append(f"{pname}_total{_labels_str(labels)} {_fmt(metric.value)}")
        elif isinstance(first, Gauge):
            lines.append(f"# TYPE {pname} gauge")
            for labels, metric in series:
                assert isinstance(metric, Gauge)
                lines.append(f"{pname}{_labels_str(labels)} {_fmt(metric.value)}")
        elif isinstance(first, Histogram):
            lines.append(f"# TYPE {pname} histogram")
            for labels, metric in series:
                assert isinstance(metric, Histogram)
                cumulative = metric.cumulative()
                for bound, count in zip(metric.bounds, cumulative):
                    le = dict(labels, le=_fmt(bound))
                    lines.append(f"{pname}_bucket{_labels_str(le)} {count}")
                inf = dict(labels, le="+Inf")
                lines.append(f"{pname}_bucket{_labels_str(inf)} {cumulative[-1]}")
                lines.append(f"{pname}_sum{_labels_str(labels)} {_fmt(metric.sum)}")
                lines.append(f"{pname}_count{_labels_str(labels)} {metric.total}")
    return "\n".join(lines) + ("\n" if lines else "")


class PromTextSink:
    """Writes the final registry as a Prometheus text exposition file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._registry: MetricsRegistry | None = None

    def emit_span(self, event: SpanEvent) -> None:
        """Spans are not representable in the exposition format."""

    def emit_metrics(self, registry: MetricsRegistry) -> None:
        """Remember the registry for rendering at :meth:`close`."""
        self._registry = registry

    def close(self) -> None:
        """Render and write the exposition file."""
        registry = self._registry if self._registry is not None else MetricsRegistry()
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.write(prom_text(registry))
