"""repro — reproduction of "Hysteresis Re-chunking Based Metadata
Harnessing Deduplication of Disk Images" (Zhou & Wen, ICPP 2013).

Public API overview
-------------------
* :class:`repro.MHDDeduplicator` — the paper's BF-MHD algorithm.
* :mod:`repro.baselines` — CDC, Bimodal, SubChunk, SparseIndexing.
* :class:`repro.DedupConfig` — the ECS/SD parameterisation.
* :mod:`repro.chunking` — vectorised content-defined chunkers.
* :mod:`repro.storage` — metered disk substrate (chunks, manifests,
  hooks, file manifests) over memory or directory backends.
* :mod:`repro.workloads` — synthetic disk-image backup corpora.
* :mod:`repro.analysis` — Table I/II formulas, timing model, reports.

Quickstart::

    from repro import DedupConfig, MHDDeduplicator
    from repro.workloads import tiny_corpus

    dedup = MHDDeduplicator(DedupConfig(ecs=1024, sd=8))
    stats = dedup.process(tiny_corpus())
    print(stats.real_der, stats.metadata_ratio)
"""

from .analysis import AlgorithmRun, DeviceModel, evaluate
from .baselines import (
    BimodalDeduplicator,
    CDCDeduplicator,
    ExtremeBinningDeduplicator,
    FBCDeduplicator,
    FingerdiffDeduplicator,
    SparseIndexingDeduplicator,
    SubChunkDeduplicator,
)
from .chunking import ChunkerConfig, VectorizedChunker
from .core import DedupConfig, DedupStats, Deduplicator, MHDDeduplicator, SIMHDDeduplicator
from .registry import available, resolve
from .workloads import BackupCorpus, CorpusConfig

__version__ = "1.0.0"

__all__ = [
    "AlgorithmRun",
    "DeviceModel",
    "evaluate",
    "BimodalDeduplicator",
    "CDCDeduplicator",
    "SparseIndexingDeduplicator",
    "SubChunkDeduplicator",
    "ExtremeBinningDeduplicator",
    "FBCDeduplicator",
    "FingerdiffDeduplicator",
    "SIMHDDeduplicator",
    "ChunkerConfig",
    "VectorizedChunker",
    "DedupConfig",
    "DedupStats",
    "Deduplicator",
    "MHDDeduplicator",
    "BackupCorpus",
    "CorpusConfig",
    "available",
    "resolve",
    "__version__",
]
