"""In-memory Bloom filter used to avoid disk lookups for new hashes.

The paper configures a 100 MB in-memory Bloom filter for the Bimodal,
SubChunk and BF-MHD prototypes.  Before querying the on-disk Hook
store for an incoming chunk hash, the deduplicator consults the filter:
a negative answer proves the hash has never been stored, so the chunk
is non-duplicate and no disk access is needed.  A positive answer may
be a false positive, in which case the (wasted) Hook lookup still
happens — exactly the behaviour the paper's Table II "with Bloom
Filter" rows assume.

The implementation is a flat NumPy ``uint8`` bit array with ``k``
probe positions derived from a digest by double hashing (Kirsch &
Mitzenmacher), which lets us split one SHA-1 into two 64-bit values
instead of computing ``k`` independent hashes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from .digest import Digest

__all__ = ["BloomFilter", "optimal_num_hashes", "optimal_bits"]


def optimal_num_hashes(bits: int, expected_items: int) -> int:
    """Optimal number of probes ``k = (m/n) ln 2`` clamped to ``[1, 16]``."""
    if expected_items <= 0:
        return 1
    k = round(bits / expected_items * math.log(2))
    return max(1, min(16, k))


def optimal_bits(expected_items: int, fp_rate: float) -> int:
    """Bits required for a target false-positive rate.

    ``m = -n ln p / (ln 2)^2``; returns at least 64 bits.
    """
    if not 0.0 < fp_rate < 1.0:
        raise ValueError(f"fp_rate must be in (0, 1), got {fp_rate}")
    if expected_items <= 0:
        return 64
    m = -expected_items * math.log(fp_rate) / (math.log(2) ** 2)
    return max(64, int(math.ceil(m)))


@dataclass
class BloomStats:
    """Counters describing filter usage, reported by experiments."""

    adds: int = 0
    queries: int = 0
    positives: int = 0

    @property
    def negatives(self) -> int:
        return self.queries - self.positives


class BloomFilter:
    """Fixed-size Bloom filter over 20-byte digests.

    Parameters
    ----------
    size_bytes:
        RAM budget for the bit array.  The paper uses 100 MB; scaled
        experiments size the filter with :meth:`for_expected_items`.
    num_hashes:
        Number of probe positions per item; if ``None`` it is chosen
        assuming the filter will be loaded to ~50% of its bits.
    """

    def __init__(self, size_bytes: int, num_hashes: int | None = None) -> None:
        if size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {size_bytes}")
        self._bits = np.zeros(size_bytes, dtype=np.uint8)
        self._num_bits = size_bytes * 8
        # Heuristic: assume the operator sized the array for its load.
        self._k = num_hashes if num_hashes is not None else 7
        if self._k < 1:
            raise ValueError(f"num_hashes must be >= 1, got {num_hashes}")
        self.stats = BloomStats()

    @classmethod
    def for_expected_items(
        cls, expected_items: int, fp_rate: float = 0.01
    ) -> BloomFilter:
        """Construct a filter sized for ``expected_items`` at ``fp_rate``."""
        bits = optimal_bits(expected_items, fp_rate)
        size_bytes = (bits + 7) // 8
        return cls(size_bytes, optimal_num_hashes(size_bytes * 8, expected_items))

    @property
    def size_bytes(self) -> int:
        """RAM occupied by the bit array (the paper's 100 MB budget)."""
        return self._bits.nbytes

    @property
    def num_hashes(self) -> int:
        """Probe positions tested per membership operation."""
        return self._k

    def _positions(self, digest: Digest) -> npt.NDArray[np.int64]:
        # Double hashing: derive k positions from two 64-bit halves of
        # the digest.  SHA-1 is 20 bytes; use bytes [0:8] and [8:16].
        h1 = int.from_bytes(digest[0:8], "little")
        h2 = int.from_bytes(digest[8:16], "little") | 1  # force odd
        ks = np.arange(self._k, dtype=np.uint64)
        with np.errstate(over="ignore"):
            idx = np.uint64(h1 & (2**64 - 1)) + ks * np.uint64(h2 & (2**64 - 1))
        out: npt.NDArray[np.int64] = (idx % np.uint64(self._num_bits)).astype(
            np.int64
        )
        return out

    def add(self, digest: Digest) -> None:
        """Insert a digest (sets its k probe bits)."""
        pos = self._positions(digest)
        # bitwise_or.at handles duplicate byte indices (plain fancy
        # |= silently drops all but one update per repeated index).
        np.bitwise_or.at(
            self._bits, pos >> 3, np.left_shift(np.uint8(1), (pos & 7).astype(np.uint8))
        )
        self.stats.adds += 1

    def __contains__(self, digest: Digest) -> bool:
        """Membership query; ``False`` is definitive, ``True`` may be a FP."""
        pos = self._positions(digest)
        hit = bool(
            np.all(self._bits[pos >> 3] & np.left_shift(np.uint8(1), (pos & 7).astype(np.uint8)))
        )
        self.stats.queries += 1
        if hit:
            self.stats.positives += 1
        return hit

    def fill_ratio(self) -> float:
        """Fraction of bits set — diagnostic for over-full filters."""
        return float(np.unpackbits(self._bits).mean())

    def theoretical_fp_rate(self, items: int) -> float:
        """Expected false-positive probability after ``items`` inserts."""
        m, k = self._num_bits, self._k
        return (1.0 - math.exp(-k * items / m)) ** k
