"""Count-Min sketch — approximate frequency counting for FBC.

The FBC algorithm (Lu, Jin & Du, MASCOTS'10; discussed in the paper's
related work) re-chunks selectively "based on the frequency
information of chunks estimated from data that have been previously
processed".  Estimating chunk frequencies exactly would need a
full-index-sized table — the very thing frequency-based chunking
exists to avoid — so FBC uses a sketch.

Standard Count-Min: a ``depth × width`` matrix of counters; an item
increments one counter per row (chosen by row-specific hashes of its
digest); the frequency estimate is the *minimum* over its counters,
which over-estimates with probability ``≤ (e/width)^depth`` and never
under-estimates.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from .digest import Digest

__all__ = ["CountMinSketch"]


class CountMinSketch:
    """Count-Min frequency sketch over 20-byte digests."""

    def __init__(self, width: int = 1 << 14, depth: int = 4) -> None:
        if width < 16 or depth < 1:
            raise ValueError(f"need width >= 16 and depth >= 1, got {width}x{depth}")
        self._width = width
        self._depth = depth
        self._table = np.zeros((depth, width), dtype=np.uint32)
        self.items_added = 0

    @property
    def size_bytes(self) -> int:
        """RAM held by the counter matrix."""
        return self._table.nbytes

    def _columns(self, digest: Digest) -> npt.NDArray[np.int64]:
        # Row-specific columns by double hashing two 64-bit digest halves.
        h1 = int.from_bytes(digest[0:8], "little")
        h2 = int.from_bytes(digest[8:16], "little") | 1
        ds = np.arange(self._depth, dtype=np.uint64)
        with np.errstate(over="ignore"):
            idx = np.uint64(h1 & (2**64 - 1)) + ds * np.uint64(h2 & (2**64 - 1))
        out: npt.NDArray[np.int64] = (idx % np.uint64(self._width)).astype(np.int64)
        return out

    def add(self, digest: Digest, count: int = 1) -> None:
        """Record ``count`` occurrences of ``digest``."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        cols = self._columns(digest)
        rows = np.arange(self._depth)
        # np.add.at handles the (impossible here, but cheap) repeated
        # (row, col) pairs correctly.
        np.add.at(self._table, (rows, cols), count)
        self.items_added += count

    def estimate(self, digest: Digest) -> int:
        """Frequency estimate: never below the true count."""
        cols = self._columns(digest)
        rows = np.arange(self._depth)
        return int(self._table[rows, cols].min())

    def __contains__(self, digest: Digest) -> bool:
        """True when the item has (probably) been seen at least once."""
        return self.estimate(digest) > 0
