"""Hashing primitives: SHA-1 content digests and the Bloom filter."""

from .bloom import BloomFilter, optimal_bits, optimal_num_hashes
from .digest import (
    HASH_SIZE,
    Digest,
    Hasher,
    StagedHasher,
    blake2b20,
    blake2b20_many,
    hex_short,
    sha1,
    sha1_many,
    sha1_spans,
)
from .sketch import CountMinSketch

__all__ = [
    "BloomFilter",
    "optimal_bits",
    "optimal_num_hashes",
    "HASH_SIZE",
    "Digest",
    "Hasher",
    "StagedHasher",
    "blake2b20",
    "blake2b20_many",
    "hex_short",
    "sha1",
    "sha1_many",
    "sha1_spans",
    "CountMinSketch",
]
