"""Content hashing primitives.

The paper's systems identify data by SHA-1 digests.  Three digest
roles appear throughout the codebase:

* **chunk hash** — SHA-1 over a single content-defined chunk's bytes.
* **merged hash** — SHA-1 over the concatenation of several contiguous
  chunks (the Sampling-and-Hash-Merging representation of ``SD-1``
  chunks as a single manifest entry).
* **address hash** — the name of a hash-addressable file (DiskChunk,
  Manifest, Hook) on the simulated disk.

All digests are raw 20-byte ``bytes`` values; :data:`HASH_SIZE` is the
constant the paper uses when budgeting metadata bytes (each Hook file
holds one 20-byte address).
"""

from __future__ import annotations

import hashlib
from typing import Iterable

__all__ = [
    "HASH_SIZE",
    "Digest",
    "sha1",
    "sha1_spans",
    "hex_short",
]

#: Size in bytes of a SHA-1 digest (the paper's 20-byte hash values).
HASH_SIZE = 20

#: Type alias for a raw digest value.
Digest = bytes


def sha1(data: bytes | bytearray | memoryview) -> Digest:
    """Return the 20-byte SHA-1 digest of ``data``.

    This is the content hash used for duplicate detection in every
    algorithm in the repository.
    """
    return hashlib.sha1(data).digest()


def sha1_spans(parts: Iterable[bytes | memoryview]) -> Digest:
    """Return the SHA-1 digest of the concatenation of ``parts``.

    Used by SHM to compute one *merged hash* over ``SD-1`` contiguous
    chunks without materialising their concatenation, and by HHR when
    re-hashing sub-spans of a reloaded DiskChunk region.
    """
    h = hashlib.sha1()
    for part in parts:
        h.update(part)
    return h.digest()


def hex_short(digest: Digest, length: int = 10) -> str:
    """Human-readable short form of a digest for logs and examples."""
    return digest.hex()[:length]
