"""Content hashing primitives.

The paper's systems identify data by SHA-1 digests.  Three digest
roles appear throughout the codebase:

* **chunk hash** — SHA-1 over a single content-defined chunk's bytes.
* **merged hash** — SHA-1 over the concatenation of several contiguous
  chunks (the Sampling-and-Hash-Merging representation of ``SD-1``
  chunks as a single manifest entry).
* **address hash** — the name of a hash-addressable file (DiskChunk,
  Manifest, Hook) on the simulated disk.

All digests are raw 20-byte values wrapped in the :data:`Digest`
``NewType`` — a ``bytes`` at runtime, but a distinct type to the
checker, so arbitrary byte strings can't silently flow into digest
positions.  :data:`HASH_SIZE` is the constant the paper uses when
budgeting metadata bytes (each Hook file holds one 20-byte address).

This module is the *only* place allowed to touch :mod:`hashlib`
(dedupcheck rule DDC001): routing every digest through one door keeps
the paper's 20-byte metadata budget a fact rather than a convention.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable
from typing import NewType

__all__ = [
    "HASH_SIZE",
    "Digest",
    "Hasher",
    "StagedHasher",
    "sha1",
    "sha1_many",
    "sha1_spans",
    "blake2b20",
    "blake2b20_many",
    "hex_short",
]

#: Size in bytes of a SHA-1 digest (the paper's 20-byte hash values).
HASH_SIZE = 20

#: A raw 20-byte digest.  ``NewType`` is erased at runtime (a plain
#: ``bytes``), so digests remain usable as dict keys and struct fields;
#: statically it marks the boundary where arbitrary bytes become
#: content/address hashes.
Digest = NewType("Digest", bytes)


def sha1(data: bytes | bytearray | memoryview) -> Digest:
    """Return the 20-byte SHA-1 digest of ``data``.

    This is the content hash used for duplicate detection in every
    algorithm in the repository.
    """
    return Digest(hashlib.sha1(data).digest())


def sha1_many(parts: Iterable[bytes | bytearray | memoryview]) -> list[Digest]:
    """SHA-1 each element of ``parts``; the batch form of :func:`sha1`.

    The ingest hot path hashes every chunk of a batch back to back;
    hoisting the constructor lookup out of the loop and keeping the
    loop free of per-call attribute resolution is worth a few percent
    of wall clock at 4 KiB chunk sizes — small, but this is the single
    hottest loop in the pipeline, and the batch form also gives the
    telemetry layer one span per batch instead of one per chunk.
    Accepts ``memoryview`` spans directly, so callers feed zero-copy
    chunk views straight from :meth:`Chunker.chunk_stream`.
    """
    ctor = hashlib.sha1
    return [Digest(ctor(p).digest()) for p in parts]


def sha1_spans(parts: Iterable[bytes | bytearray | memoryview]) -> Digest:
    """Return the SHA-1 digest of the concatenation of ``parts``.

    Used by SHM to compute one *merged hash* over ``SD-1`` contiguous
    chunks without materialising their concatenation, and by HHR when
    re-hashing sub-spans of a reloaded DiskChunk region.
    """
    h = hashlib.sha1()
    for part in parts:
        h.update(part)
    return Digest(h.digest())


class Hasher:
    """Incremental SHA-1 accumulator.

    For callers that fold a long stream into one digest without
    materialising it — e.g. Extreme Binning's whole-file hash, built
    chunk by chunk as batches arrive.  Wraps the stdlib object so that
    algorithm modules never import :mod:`hashlib` directly (DDC001).
    """

    __slots__ = ("_h",)

    def __init__(self, data: bytes | bytearray | memoryview = b"") -> None:
        self._h = hashlib.sha1(data)

    def update(self, data: bytes | bytearray | memoryview) -> None:
        """Fold ``data`` into the running digest."""
        self._h.update(data)

    def digest(self) -> Digest:
        """The 20-byte digest of everything fed so far."""
        return Digest(self._h.digest())


def blake2b20(data: bytes | bytearray | memoryview) -> bytes:
    """160-bit BLAKE2b digest of ``data`` (*not* a :data:`Digest`).

    The optional fast first pass of the staged hashing scheme: same
    20-byte width as SHA-1 so collision budgets match, but it is an
    *identity probe*, not a content address — the return type is plain
    ``bytes`` so the checker stops it from leaking into manifest or
    store positions, which are SHA-1 by the paper's definition.

    Honesty note on speed: BLAKE2b wins on machines whose SHA-1 runs in
    pure software; on CPUs with SHA-NI extensions (most post-2017 x86),
    hardware SHA-1 is *faster* than software BLAKE2b and staging only
    pays via :class:`StagedHasher`'s dedup memoisation, not via the
    primitive itself.  ``benchmarks/bench_throughput.py`` measures both
    so the trade-off is recorded per machine rather than assumed.
    """
    return hashlib.blake2b(data, digest_size=HASH_SIZE).digest()


def blake2b20_many(parts: Iterable[bytes | bytearray | memoryview]) -> list[bytes]:
    """Batch form of :func:`blake2b20` (see :func:`sha1_many`)."""
    ctor = hashlib.blake2b
    return [ctor(p, digest_size=HASH_SIZE).digest() for p in parts]


class StagedHasher:
    """Two-stage chunk hashing: BLAKE2b probe, SHA-1 confirmed once.

    Every chunk is probed with :func:`blake2b20`; the canonical SHA-1
    is computed only the *first* time a probe value is seen and memoised
    for every later duplicate.  On duplicate-heavy corpora (the entire
    premise of this repository) the SHA-1 cost therefore scales with
    *unique* bytes while the cheap probe scales with total bytes.

    This is an estimation/catalog-path tool — e.g.
    :func:`repro.workloads.traces.trace_corpus` — **not** a store-path
    replacement: content addresses written to a store must be the SHA-1
    of every unique chunk regardless, so staging saves nothing there.
    Correctness rests on the probe being collision-resistant at the
    same 160-bit width as SHA-1 itself; a probe collision between
    distinct contents would alias their digests, with the same (2^-80)
    birthday budget the paper already accepts for SHA-1.
    """

    __slots__ = ("_by_probe", "probe_hits")

    def __init__(self) -> None:
        self._by_probe: dict[bytes, Digest] = {}
        #: Chunks whose SHA-1 was served from the memo (duplicates).
        self.probe_hits = 0

    def digest(self, data: bytes | bytearray | memoryview) -> Digest:
        """The SHA-1 of ``data``, via the staged probe-then-confirm path."""
        probe = hashlib.blake2b(data, digest_size=HASH_SIZE).digest()
        cached = self._by_probe.get(probe)
        if cached is not None:
            self.probe_hits += 1
            return cached
        d = Digest(hashlib.sha1(data).digest())
        self._by_probe[probe] = d
        return d

    def digest_many(
        self, parts: Iterable[bytes | bytearray | memoryview]
    ) -> list[Digest]:
        """Batch form of :meth:`digest`."""
        return [self.digest(p) for p in parts]

    @property
    def unique_seen(self) -> int:
        """Distinct contents confirmed with a real SHA-1 so far."""
        return len(self._by_probe)


def hex_short(digest: Digest, length: int = 10) -> str:
    """Human-readable short form of a digest for logs and examples."""
    return digest.hex()[:length]
