"""Content hashing primitives.

The paper's systems identify data by SHA-1 digests.  Three digest
roles appear throughout the codebase:

* **chunk hash** — SHA-1 over a single content-defined chunk's bytes.
* **merged hash** — SHA-1 over the concatenation of several contiguous
  chunks (the Sampling-and-Hash-Merging representation of ``SD-1``
  chunks as a single manifest entry).
* **address hash** — the name of a hash-addressable file (DiskChunk,
  Manifest, Hook) on the simulated disk.

All digests are raw 20-byte values wrapped in the :data:`Digest`
``NewType`` — a ``bytes`` at runtime, but a distinct type to the
checker, so arbitrary byte strings can't silently flow into digest
positions.  :data:`HASH_SIZE` is the constant the paper uses when
budgeting metadata bytes (each Hook file holds one 20-byte address).

This module is the *only* place allowed to touch :mod:`hashlib`
(dedupcheck rule DDC001): routing every digest through one door keeps
the paper's 20-byte metadata budget a fact rather than a convention.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable
from typing import NewType

__all__ = [
    "HASH_SIZE",
    "Digest",
    "Hasher",
    "sha1",
    "sha1_spans",
    "hex_short",
]

#: Size in bytes of a SHA-1 digest (the paper's 20-byte hash values).
HASH_SIZE = 20

#: A raw 20-byte digest.  ``NewType`` is erased at runtime (a plain
#: ``bytes``), so digests remain usable as dict keys and struct fields;
#: statically it marks the boundary where arbitrary bytes become
#: content/address hashes.
Digest = NewType("Digest", bytes)


def sha1(data: bytes | bytearray | memoryview) -> Digest:
    """Return the 20-byte SHA-1 digest of ``data``.

    This is the content hash used for duplicate detection in every
    algorithm in the repository.
    """
    return Digest(hashlib.sha1(data).digest())


def sha1_spans(parts: Iterable[bytes | bytearray | memoryview]) -> Digest:
    """Return the SHA-1 digest of the concatenation of ``parts``.

    Used by SHM to compute one *merged hash* over ``SD-1`` contiguous
    chunks without materialising their concatenation, and by HHR when
    re-hashing sub-spans of a reloaded DiskChunk region.
    """
    h = hashlib.sha1()
    for part in parts:
        h.update(part)
    return Digest(h.digest())


class Hasher:
    """Incremental SHA-1 accumulator.

    For callers that fold a long stream into one digest without
    materialising it — e.g. Extreme Binning's whole-file hash, built
    chunk by chunk as batches arrive.  Wraps the stdlib object so that
    algorithm modules never import :mod:`hashlib` directly (DDC001).
    """

    __slots__ = ("_h",)

    def __init__(self, data: bytes | bytearray | memoryview = b"") -> None:
        self._h = hashlib.sha1(data)

    def update(self, data: bytes | bytearray | memoryview) -> None:
        """Fold ``data`` into the running digest."""
        self._h.update(data)

    def digest(self) -> Digest:
        """The 20-byte digest of everything fed so far."""
        return Digest(self._h.digest())


def hex_short(digest: Digest, length: int = 10) -> str:
    """Human-readable short form of a digest for logs and examples."""
    return digest.hex()[:length]
