"""Tenant isolation over one shared physical store.

A *tenant* is a named, fully-isolated keyspace inside one backend: all
four object-store namespaces (chunk/manifest/hook/file_manifest) plus
their quarantine shadows live under the tenant's namespace prefix
``tenant.<id>.``, materialised as a
:class:`~repro.storage.backend.PrefixedBackend` view.  Everything
above the backend — deduplicators, verification, GC, recovery — runs
unchanged against the view, which is the whole point: tenancy is a
storage-layer property, not something every algorithm needs to know
about.

The :class:`TenantRegistry` is the control plane: it owns the shared
backend, registers tenants with their quotas and rate limits, rebuilds
the usage ledger of returning tenants from their stored bytes, and
keeps the per-tenant metrics registries that the ``/metrics`` endpoint
renders with ``tenant`` labels.

**Thread safety.**  The registry's own table is locked, and the
explicitly-locked pieces of tenant state —
:class:`~repro.service.quotas.QuotaLedger`,
:class:`~repro.service.quotas.TokenBucket`, ``Tenant.lock`` — are safe
to touch from any thread.  The per-tenant
:class:`~repro.obs.metrics.MetricsRegistry` is *not* internally locked
(by design: it is the same lock-free, picklable registry the dedup
core uses process-locally), so every shared-tenant-registry access
goes through the :meth:`Tenant.inc_metric` /
:meth:`Tenant.merge_metrics` / :meth:`Tenant.metrics_snapshot`
helpers, which serialise on ``Tenant.metrics_lock``.  Session worker
threads mutate through the helpers; ``/metrics`` renders from
snapshots, never from the live registry.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field

from ..obs.metrics import MetricsRegistry
from ..storage import PrefixedBackend, StorageBackend
from .quotas import QuotaLedger, TenantQuota, TokenBucket

__all__ = ["TENANT_PREFIX", "Tenant", "TenantRegistry", "tenant_namespace_prefix"]

#: Prefix under which every tenant's namespaces live on the shared
#: backend.  Contains a dot, so it can never collide with the four
#: store namespaces or with ``quarantine.*`` shadows of a untenanted
#: store.
TENANT_PREFIX = "tenant."

#: Tenant ids are DNS-label-ish: they appear in namespace names (and
#: thus directory names under a DirectoryBackend) and in Prometheus
#: label values, so keep them boring.
_TENANT_ID = re.compile(r"^[a-z0-9][a-z0-9_-]{0,63}$")


def tenant_namespace_prefix(tenant_id: str) -> str:
    """The backend namespace prefix of one tenant (``tenant.<id>.``)."""
    return f"{TENANT_PREFIX}{tenant_id}."


def validate_tenant_id(tenant_id: str) -> str:
    """Return ``tenant_id`` or raise ``ValueError`` for unusable ids."""
    if not _TENANT_ID.match(tenant_id):
        raise ValueError(
            f"invalid tenant id {tenant_id!r}: need lowercase "
            "[a-z0-9][a-z0-9_-]{0,63}"
        )
    return tenant_id


@dataclass
class Tenant:
    """One tenant's control-plane state.

    ``lock`` serialises sessions: the store layout (container ids
    derived from file ids, warm-started RAM indexes) assumes one writer
    per tenant keyspace at a time, so concurrent sessions for one
    tenant queue on this lock while sessions of *different* tenants
    proceed in parallel.
    """

    tenant_id: str
    view: StorageBackend
    ledger: QuotaLedger
    bucket: TokenBucket
    #: Live service-side metrics for this tenant (ingest counters,
    #: session counts) plus every committed session's dedup registry
    #: merged in — what ``/metrics`` renders under ``tenant="<id>"``.
    #: The registry itself is lock-free; never touch it directly from
    #: concurrent code — use the locked helpers below.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Guards :attr:`metrics` (session lane threads increment while the
    #: event loop renders ``/metrics``).
    metrics_lock: threading.Lock = field(default_factory=threading.Lock)
    #: Monotonic per-tenant session counter (session id suffix).
    sessions_opened: int = 0

    def inc_metric(self, name: str, n: int = 1) -> None:
        """Atomically increment one of this tenant's counters."""
        with self.metrics_lock:
            self.metrics.counter(name).inc(n)

    def merge_metrics(self, other: MetricsRegistry) -> None:
        """Atomically fold a (private, unshared) registry into ours."""
        with self.metrics_lock:
            self.metrics.merge(other)

    def metrics_snapshot(self) -> MetricsRegistry:
        """A consistent point-in-time copy, safe to read lock-free."""
        snap = MetricsRegistry()
        with self.metrics_lock:
            snap.merge(self.metrics)
        return snap


class TenantRegistry:
    """Registry of tenants sharing one physical backend.

    Parameters
    ----------
    backend:
        The shared physical store.  Tenants only ever see
        :class:`PrefixedBackend` views of it.
    default_quota:
        Quota applied to tenants registered without an explicit one.
    default_rate_bytes:
        Token-bucket rate (bytes/s) for tenants registered without an
        explicit one; 0 disables rate limiting.
    """

    def __init__(
        self,
        backend: StorageBackend,
        default_quota: TenantQuota | None = None,
        default_rate_bytes: float = 0.0,
        default_burst_bytes: float | None = None,
    ) -> None:
        self.backend = backend
        self.default_quota = default_quota or TenantQuota()
        self.default_rate_bytes = default_rate_bytes
        self.default_burst_bytes = default_burst_bytes
        self._tenants: dict[str, Tenant] = {}
        self._lock = threading.Lock()

    def view(self, tenant_id: str) -> PrefixedBackend:
        """A fresh storage view of one tenant's keyspace."""
        return PrefixedBackend(self.backend, tenant_namespace_prefix(tenant_id))

    def register(
        self,
        tenant_id: str,
        quota: TenantQuota | None = None,
        rate_bytes: float | None = None,
        burst_bytes: float | None = None,
    ) -> Tenant:
        """Register (or fetch) a tenant; idempotent for existing ids.

        Limits are **first-registration-sticky**: the quota and rate of
        a tenant are fixed by whoever registers it first (explicitly or
        from the defaults) and live until the process restarts.  A
        later ``register`` passing *different* explicit limits raises
        ``ValueError`` rather than silently keeping the old ones —
        with no authentication on the protocol, silently ignoring the
        arguments would let operators believe a limit change took
        effect when it did not.  Re-registering with the same limits
        (or with none) is the idempotent fetch path.

        A returning tenant — one whose prefix already holds objects on
        the backend — starts its quota ledger from the bytes its
        keyspace currently stores: input-byte history is not
        recoverable from a deduplicated store, so the stored footprint
        is the honest (dedup-favouring) lower bound, and it makes a
        service restart strictly *more* permissive than the live
        accounting, never less.
        """
        validate_tenant_id(tenant_id)
        with self._lock:
            existing = self._tenants.get(tenant_id)
            if existing is not None:
                self._check_limit_conflict(
                    existing, quota, rate_bytes, burst_bytes
                )
                return existing
            view = self.view(tenant_id)
            stored = sum(view.bytes_stored(ns) for ns in view.namespaces())
            files = view.object_count("file_manifest")
            tenant = Tenant(
                tenant_id=tenant_id,
                view=view,
                ledger=QuotaLedger(
                    quota if quota is not None else self.default_quota,
                    bytes_used=stored,
                    files_used=files,
                ),
                bucket=TokenBucket(
                    rate_bytes if rate_bytes is not None else self.default_rate_bytes,
                    burst_bytes if burst_bytes is not None else self.default_burst_bytes,
                ),
            )
            self._tenants[tenant_id] = tenant
            return tenant

    @staticmethod
    def _check_limit_conflict(
        tenant: Tenant,
        quota: TenantQuota | None,
        rate_bytes: float | None,
        burst_bytes: float | None,
    ) -> None:
        """Raise ``ValueError`` if explicit args differ from the registered ones."""
        conflicts: list[str] = []
        if quota is not None and quota != tenant.ledger.quota:
            q = tenant.ledger.quota
            conflicts.append(
                f"quota is fixed at max_bytes={q.max_bytes}/"
                f"max_files={q.max_files}, got "
                f"max_bytes={quota.max_bytes}/max_files={quota.max_files}"
            )
        if rate_bytes is not None and rate_bytes != tenant.bucket.rate:
            conflicts.append(
                f"rate_bytes is fixed at {tenant.bucket.rate}, got {rate_bytes}"
            )
        if burst_bytes is not None and burst_bytes != tenant.bucket.burst:
            conflicts.append(
                f"burst_bytes is fixed at {tenant.bucket.burst}, got {burst_bytes}"
            )
        if conflicts:
            raise ValueError(
                f"tenant {tenant.tenant_id!r} limits are first-registration-"
                f"sticky: " + "; ".join(conflicts)
            )

    def get(self, tenant_id: str) -> Tenant:
        """A registered tenant; raises ``KeyError`` for unknown ids."""
        with self._lock:
            try:
                return self._tenants[tenant_id]
            except KeyError:
                raise KeyError(f"tenant {tenant_id!r} not registered") from None

    def registered(self) -> list[str]:
        """Ids of explicitly registered tenants (sorted)."""
        with self._lock:
            return sorted(self._tenants)

    def discover(self) -> list[str]:
        """Tenant ids present on the backend (registered or not).

        Walks the physical namespaces for ``tenant.<id>.*`` prefixes —
        how a restarted service finds the tenants a previous process
        served.
        """
        found: set[str] = set()
        for ns in self.backend.namespaces():
            if not ns.startswith(TENANT_PREFIX):
                continue
            rest = ns[len(TENANT_PREFIX):]
            tenant_id = rest.split(".", 1)[0]
            if _TENANT_ID.match(tenant_id):
                found.add(tenant_id)
        return sorted(found | set(self.registered()))

    def active_sessions(self) -> int:
        """How many tenants have a session open right now.

        A tenant's session lock is held exactly while a session is
        open (``DedupSession.open`` takes it, commit/abort release
        it), so the held-lock count *is* the live session count — the
        figure stamped on heartbeat events.
        """
        with self._lock:
            return sum(1 for t in self._tenants.values() if t.lock.locked())

    def metrics_by_tenant(self) -> list[tuple[str, MetricsRegistry]]:
        """(tenant_id, registry snapshot) pairs for ``/metrics``.

        Snapshots, not live registries: session lane threads keep
        mutating tenant metrics while the exposition renders, so each
        tenant's state is copied under its ``metrics_lock`` first.
        """
        with self._lock:
            tenants = sorted(self._tenants.items())
        return [(tid, t.metrics_snapshot()) for tid, t in tenants]
