"""Blocking TCP client for the dedup service's JSON-lines protocol.

The client mirrors the session lifecycle one-to-one — ``open`` /
``put`` / ``commit`` / ``abort`` plus the sessionless ``list_files`` /
``get`` / ``usage`` — and converts wire refusals back into the
exceptions the library raises locally
(:class:`~repro.service.quotas.QuotaExceeded`,
:class:`~repro.service.quotas.RateLimited`), so code written against
:class:`~repro.service.session.DedupSession` ports to the network with
a search-and-replace.

``put`` is synchronous (one request, one response).  ``push_many``
pipelines: all payloads are written before any response is read, which
exercises the server's bounded per-session queue and is how a real
backup agent would stream a disk image's slices.

**Tracing.**  Constructed with a traced
:class:`~repro.obs.telemetry.Telemetry`, the client opens a root
``client.push`` span per session and sends its trace id + span ref in
the ``open`` request; a server started with ``--trace-dir`` continues
the same trace, and ``repro-dedup trace-view`` merges both files into
one cross-process tree.  Servers predating the trace fields ignore
them; clients without telemetry send none.
"""

from __future__ import annotations

import json
import socket
from typing import Any

from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from ..obs.trace import Span
from .quotas import QuotaExceeded, RateLimited, ServiceError, TenantBusy

__all__ = ["ServiceClient"]


def _raise_for(response: dict[str, Any]) -> dict[str, Any]:
    """Return an ok response; map refusals back to typed exceptions."""
    if response.get("ok"):
        return response
    code = response.get("error", "service_error")
    message = str(response.get("message", code))
    if code == "quota_exceeded":
        raise QuotaExceeded("?", message)
    if code == "rate_limited":
        raise RateLimited("?", float(response.get("retry_after", 0.0)))
    if code == "busy":
        raise TenantBusy("?", float(response.get("retry_after", 0.0)))
    err = ServiceError(message)
    err.code = code
    raise err


class ServiceClient:
    """One connection to a :class:`~repro.service.server.DedupServer`.

    ``telemetry`` (optional) enables client-side tracing: a traced
    Telemetry (one with a sink) makes every ``open``→``commit``/
    ``abort`` lifecycle a root ``client.push`` span, with per-put
    ``client.send`` child spans, and propagates the trace context over
    the wire.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        telemetry: Telemetry | None = None,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._root: Span | None = None

    # -- wire plumbing ----------------------------------------------------

    def _send(self, obj: dict[str, Any], payload: bytes = b"") -> None:
        line = json.dumps(obj, separators=(",", ":")).encode() + b"\n"
        self._sock.sendall(line + payload)

    def _recv(self) -> dict[str, Any]:
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if not isinstance(response, dict):
            raise ConnectionError(f"malformed response: {response!r}")
        return response

    # -- session lifecycle ------------------------------------------------

    def open(
        self,
        tenant: str,
        algorithm: str | None = None,
        max_bytes: int | None = None,
        max_files: int | None = None,
        rate_bytes: float | None = None,
    ) -> dict[str, Any]:
        """Open a push session (quota/rate apply on first registration)."""
        request: dict[str, Any] = {"op": "open", "tenant": tenant}
        if algorithm is not None:
            request["algorithm"] = algorithm
        if max_bytes is not None:
            request["max_bytes"] = max_bytes
        if max_files is not None:
            request["max_files"] = max_files
        if rate_bytes is not None:
            request["rate_bytes"] = rate_bytes
        if self._tel.tracing and self._root is None:
            root = self._tel.span("client.push", tenant=tenant)
            if isinstance(root, Span):
                self._root = root.__enter__()
                request["trace_id"] = self._tel.trace_id
                request["parent_span"] = self._tel.span_ref(self._root.span_id)
        try:
            return _raise_for(self._send_recv(request))
        except BaseException:
            self._finish_trace("refused")
            raise

    def _send_recv(self, request: dict[str, Any]) -> dict[str, Any]:
        self._send(request)
        return self._recv()

    def _finish_trace(self, outcome: str) -> None:
        """Close the root span (if a traced session is in flight)."""
        root = self._root
        if root is not None:
            self._root = None
            root.set_attr("outcome", outcome)
            root.__exit__(None, None, None)

    def put(self, path: str, data: bytes) -> dict[str, Any]:
        """Ingest one file and wait for its result."""
        with self._tel.span("client.send", path=path, size=len(data)):
            self._send({"op": "put", "path": path, "size": len(data)}, data)
        return _raise_for(self._recv())

    def push_many(self, files: list[tuple[str, bytes]]) -> list[dict[str, Any]]:
        """Pipeline many puts: write everything, then read all results.

        Raw responses are returned (not raised) so one quota refusal
        mid-batch does not hide the later per-file outcomes.
        """
        for path, data in files:
            with self._tel.span("client.send", path=path, size=len(data)):
                self._send({"op": "put", "path": path, "size": len(data)}, data)
        # Any non-put request forces the server to flush put responses.
        self._send({"op": "ping"})
        responses = [self._recv() for _ in files]
        self._recv()  # the pong
        return responses

    def commit(self) -> dict[str, Any]:
        """Finalize the open session; returns stats and usage."""
        self._send({"op": "commit"})
        try:
            response = _raise_for(self._recv())
        except BaseException:
            self._finish_trace("failed")
            raise
        self._finish_trace("committed")
        return response

    def abort(self) -> dict[str, Any]:
        """Abort the open session (server repairs the keyspace)."""
        self._send({"op": "abort"})
        try:
            return _raise_for(self._recv())
        finally:
            self._finish_trace("aborted")

    # -- sessionless ops --------------------------------------------------

    def list_files(self, tenant: str) -> dict[str, str]:
        """Client path → newest-generation store id, for one tenant."""
        self._send({"op": "list", "tenant": tenant})
        response = _raise_for(self._recv())
        files = response["files"]
        assert isinstance(files, dict)
        return files

    def get(self, tenant: str, path: str) -> bytes:
        """Restore the newest generation of one file."""
        self._send({"op": "get", "tenant": tenant, "path": path})
        header = _raise_for(self._recv())
        size = int(header["size"])
        data = self._rfile.read(size)
        if len(data) != size:
            raise ConnectionError(f"short read: {len(data)}/{size} bytes")
        return data

    def usage(self, tenant: str) -> dict[str, Any]:
        """The tenant's quota ledger snapshot."""
        self._send({"op": "usage", "tenant": tenant})
        usage = _raise_for(self._recv())["usage"]
        assert isinstance(usage, dict)
        return usage

    def ping(self) -> bool:
        """Round-trip liveness check."""
        self._send({"op": "ping"})
        return bool(self._recv().get("pong"))

    def close(self) -> None:
        """Close the connection (an open session aborts server-side)."""
        self._finish_trace("abandoned")
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> ServiceClient:
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()
