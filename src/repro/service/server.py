"""The asyncio front end: one port, two protocols, many tenants.

:class:`DedupServer` listens on a single TCP port and sniffs the first
line of each connection:

* ``GET``/``HEAD`` — a tiny HTTP/1.1 responder serving ``/metrics``
  (live Prometheus text exposition with per-tenant ``tenant`` labels,
  rendered by :func:`repro.obs.sinks.prom_text_multi`) and
  ``/healthz``;
* anything else — the JSON-lines ingest protocol below.

**Protocol.**  One JSON object per ``\\n``-terminated line; binary
payloads follow their header line raw.  Requests are answered in
order::

    → {"op": "open", "tenant": "alice", "algorithm": "bf-mhd"}
    ← {"ok": true, "session": "alice-0001", "generation": 0}
    → {"op": "put", "path": "disk0.img", "size": 4096}
    → <4096 raw bytes>
    ← {"ok": true, "store_id": "g000000/disk0.img"}
    → {"op": "commit"}
    ← {"ok": true, "stats": {...}}

plus sessionless ops ``list`` / ``get`` / ``usage`` / ``ping``.
Refusals carry machine-readable codes: ``{"ok": false, "error":
"quota_exceeded", ...}`` or ``{"ok": false, "error": "rate_limited",
"retry_after": 1.25}`` — the 429 analogue.

**Execution model.**  The event loop never runs dedup work — and,
just as important, fleet threads never *wait*.  Each session gets a
:class:`~repro.parallel.SerialLane` on the server's shared
:class:`~repro.parallel.FleetExecutor` — lanes keep one session's
operations ordered while different sessions (hence tenants) proceed
concurrently.  Everything that can block sits on the event loop
instead of the pool: an ``open`` contending for a busy tenant's
session lock waits asynchronously (up to ``open_wait``, then a
``busy``/``retry_after`` refusal), and rate-limit back-pressure is an
``asyncio.sleep`` before the payload is dispatched (bounded by
``max_rate_delay``, then a ``rate_limited`` refusal).  Otherwise
``workers`` blocked opens or throttled puts would occupy every pool
thread while the tasks that could unblock them starve — a service-wide
deadlock.  Each session also gets a bounded admission semaphore: the
connection handler stops reading its socket while the session's queue
is full, so a fast client is slowed by TCP back-pressure long before
memory fills.

**Crash safety.**  A connection that drops with an open session —
client crash, network cut — aborts the session, which repairs the
tenant's keyspace via :func:`repro.storage.recover.recover`; a
subsequent fsck is clean.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from collections.abc import Callable
from concurrent.futures import Future
from pathlib import Path
from typing import Any

from ..core.config import DedupConfig
from ..obs.metrics import MetricsRegistry
from ..obs.sinks import JsonlTraceSink, prom_text_multi
from ..obs.slo import SLOEngine
from ..obs.telemetry import HeartbeatEvent
from ..parallel import FleetExecutor, SerialLane
from ..registry import resolve
from ..storage import StorageBackend
from .quotas import ServiceError, TenantBusy, TenantQuota
from .session import DedupSession, SessionClosed, latest_files, restore_file
from .tenancy import Tenant, TenantRegistry, validate_tenant_id

__all__ = ["DedupServer"]

logger = logging.getLogger("repro.service")

#: Waits shorter than this are not worth a trace span (scheduler
#: noise, uncontended lock acquires) — keeps traces readable.
_WAIT_SPAN_FLOOR = 0.001

#: Longest accepted protocol line (headers are small; payloads are raw).
#: Passed as the StreamReader ``limit`` — overruns surface as a
#: ``bad_request`` reply, not a silent connection drop.
_MAX_LINE = 1 << 16
#: Largest single ``put`` payload (64 MiB — one disk image slice).
_MAX_PAYLOAD = 64 << 20
#: ``retry_after`` hint on a ``busy`` refusal (another session holds
#: the tenant lock past ``open_wait``); how long one is anyone's
#: guess, so suggest a short poll.
_BUSY_RETRY_AFTER = 1.0


class _ProtocolError(Exception):
    """Malformed client input; the connection is closed after replying."""


#: Canned refusal for session ops arriving without an open session
#: (e.g. puts queued behind one that blew the quota and aborted).
_NO_SESSION: dict[str, Any] = {
    "ok": False,
    "error": "no_session",
    "message": "no open session on this connection",
}


class DedupServer:
    """Multi-tenant dedup service over one shared backend.

    Parameters
    ----------
    backend:
        The shared physical store (typically a
        :class:`~repro.storage.DirectoryBackend`).
    host, port:
        Listen address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    default_quota, default_rate_bytes, default_burst_bytes:
        Admission defaults for tenants that ``open`` without explicit
        limits (see :class:`~repro.service.tenancy.TenantRegistry`).
    algorithm, config:
        Dedup algorithm and configuration sessions run with unless the
        ``open`` request overrides the algorithm.
    workers:
        Fleet thread-pool size (``None``: CPU count + 4, capped at 32).
    queue_depth:
        Bounded per-session queue: how many ``put`` payloads may sit
        admitted-but-unprocessed before the handler stops reading the
        client's socket.
    max_rate_delay:
        Longest back-pressure sleep per ``put`` before the 429-style
        ``rate_limited`` refusal.
    open_wait:
        Longest an ``open`` waits (on the event loop, never on a fleet
        thread) for the tenant's session lock before the ``busy``
        refusal.
    trace_dir:
        When set, every session writes a JSONL trace file
        ``trace-<tenant>-<n>.jsonl`` there, continuing the client's
        trace context when the ``open`` request carries one —
        ``repro-dedup trace-view client.jsonl trace-server-….jsonl``
        merges them into one cross-process tree.
    slo:
        The per-tenant SLO engine behind ``/slo`` and the ``slo.*``
        gauges in ``/metrics``; a default-spec engine is installed
        when omitted.
    """

    def __init__(
        self,
        backend: StorageBackend,
        host: str = "127.0.0.1",
        port: int = 0,
        default_quota: TenantQuota | None = None,
        default_rate_bytes: float = 0.0,
        default_burst_bytes: float | None = None,
        algorithm: str = "bf-mhd",
        config: DedupConfig | None = None,
        workers: int | None = None,
        queue_depth: int = 4,
        max_rate_delay: float = 5.0,
        open_wait: float = 30.0,
        trace_dir: str | Path | None = None,
        slo: SLOEngine | None = None,
    ) -> None:
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.host = host
        self.port = port
        self.algorithm = algorithm
        self.config = config or DedupConfig()
        self.queue_depth = queue_depth
        self.max_rate_delay = max_rate_delay
        self.open_wait = open_wait
        self.registry = TenantRegistry(
            backend,
            default_quota=default_quota,
            default_rate_bytes=default_rate_bytes,
            default_burst_bytes=default_burst_bytes,
        )
        self.fleet = FleetExecutor(workers)
        #: Service-global (unlabeled) metrics: connections, HTTP hits.
        self.metrics = MetricsRegistry()
        self.slo = slo if slo is not None else SLOEngine()
        self.trace_dir: Path | None = Path(trace_dir) if trace_dir is not None else None
        if self.trace_dir is not None:
            self.trace_dir.mkdir(parents=True, exist_ok=True)
        self._trace_seq = 0
        self._server: asyncio.AbstractServer | None = None

    def _session_trace_sink(self, tenant_id: str) -> JsonlTraceSink | None:
        """A fresh per-session trace sink under ``trace_dir`` (or None)."""
        if self.trace_dir is None:
            return None
        self._trace_seq += 1
        return JsonlTraceSink(self.trace_dir / f"trace-{tenant_id}-{self._trace_seq:04d}.jsonl")

    def _heartbeat(self, event: HeartbeatEvent) -> None:
        """Log session liveness: the no-trace attribution channel."""
        logger.info(
            "heartbeat tenant=%s files=%d input_bytes=%d der=%.2f active_sessions=%d",
            event.tenant,
            event.files,
            event.input_bytes,
            event.der_so_far,
            event.active_sessions,
        )

    # ---- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (non-blocking)."""
        # Explicit StreamReader limit: readline() raises before any
        # after-the-fact length check could run, so the limit must be
        # ours (not the 64 KiB default by coincidence) and the raise
        # is handled wherever lines are read.
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=_MAX_LINE
        )
        sock = self._server.sockets[0]
        self.port = sock.getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until cancelled (call :meth:`start` first)."""
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections and shut the fleet down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.fleet.shutdown(wait=True)

    # ---- /metrics -------------------------------------------------------

    def metrics_text(self) -> str:
        """The live multi-tenant Prometheus exposition."""
        groups: list[tuple[dict[str, str], MetricsRegistry]] = [({}, self.metrics)]
        groups += [
            ({"tenant": tid}, reg) for tid, reg in self.registry.metrics_by_tenant()
        ]
        groups += [
            ({"tenant": tid}, reg)
            for tid, reg in sorted(self.slo.gauge_registries().items())
        ]
        return prom_text_multi(groups)

    # ---- tenant session lock -------------------------------------------

    async def acquire_tenant_lock(self, tenant: Tenant) -> None:
        """Wait for a tenant's session lock *on the event loop*.

        Never on a fleet thread: if ``open`` waited for the lock inside
        the pool, ``workers`` concurrent opens of one busy tenant would
        occupy every thread while the lock holder's own queued lane
        tasks — the writes and commit that would *release* the lock —
        could never get one: a permanent, service-wide deadlock.
        Polling with backoff here keeps pool capacity for actual dedup
        work; past ``open_wait`` seconds the open is refused with a
        ``busy``/``retry_after`` error instead of queueing forever.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.open_wait
        delay = 0.005
        while not tenant.lock.acquire(blocking=False):
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise TenantBusy(tenant.tenant_id, _BUSY_RETRY_AFTER)
            await asyncio.sleep(min(delay, remaining))
            delay = min(delay * 2, 0.1)

    # ---- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.counter("service_connections").inc()
        try:
            try:
                first = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                # Protocol unknown at this point; a JSON refusal is the
                # sane default (HTTP request lines are never this long).
                writer.write(_too_long_payload() + b"\n")
                await writer.drain()
                return
            if not first:
                return
            if first.startswith(b"GET ") or first.startswith(b"HEAD "):
                await self._serve_http(first, reader, writer)
            else:
                await self._serve_protocol(first, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _serve_http(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        # Drain headers (we need none of them).
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                return  # oversized header line; just drop the connection
            if line in (b"", b"\r\n", b"\n"):
                break
        parts = request_line.decode("latin-1").split()
        path = parts[1] if len(parts) >= 2 else "/"
        self.metrics.counter("service_http_requests").inc()
        if path == "/metrics":
            body = self.metrics_text().encode("utf-8")
            status = "200 OK"
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/slo":
            body = (json.dumps(self.slo.snapshot(), sort_keys=True) + "\n").encode("utf-8")
            status = "200 OK"
            ctype = "application/json; charset=utf-8"
        elif path == "/healthz":
            body = b"ok\n"
            status = "200 OK"
            ctype = "text/plain; charset=utf-8"
        else:
            body = b"not found\n"
            status = "404 Not Found"
            ctype = "text/plain; charset=utf-8"
        head = (
            f"HTTP/1.1 {status}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head)
        if not request_line.startswith(b"HEAD "):
            writer.write(body)
        await writer.drain()

    async def _serve_protocol(
        self,
        first_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        conn = _Connection(self, reader, writer)
        try:
            await conn.run(first_line)
        finally:
            await conn.cleanup()


def _error_payload(exc: BaseException) -> dict[str, Any]:
    if isinstance(exc, ServiceError):
        out: dict[str, Any] = {"ok": False, "error": exc.code, "message": str(exc)}
        retry_after = getattr(exc, "retry_after", None)
        if retry_after is not None:
            out["retry_after"] = round(retry_after, 3)
        return out
    if isinstance(exc, SessionClosed):
        return dict(_NO_SESSION)
    return {"ok": False, "error": "failed", "message": str(exc)}


def _too_long_payload() -> bytes:
    return json.dumps(
        {
            "ok": False,
            "error": "bad_request",
            "message": f"request line exceeds {_MAX_LINE} bytes",
        },
        separators=(",", ":"),
    ).encode()


class _Connection:
    """One JSON-lines protocol connection (at most one open session)."""

    def __init__(
        self,
        server: DedupServer,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        self.session: DedupSession | None = None
        self.lane: SerialLane | None = None
        #: Bounded per-session admission queue (see ``queue_depth``).
        self.slots: asyncio.Semaphore | None = None
        #: In-order responses for pipelined puts awaiting their result.
        self.pending: list[asyncio.Future[dict[str, Any]]] = []
        #: Session-latency bookkeeping for the SLO engine.
        self._session_t0 = 0.0
        self._slo_recorded = True  # no session yet — nothing to record

    def _record_session_slo(self, ok: bool) -> None:
        """Report the current session's latency + outcome once.

        Called at every point the connection observes its session
        leaving the ``open`` state: commit, abort, a put that aborted
        it server-side, or connection teardown.
        """
        session = self.session
        if session is None or self._slo_recorded:
            return
        self._slo_recorded = True
        elapsed = time.perf_counter() - self._session_t0
        self.server.slo.record_session(session.tenant.tenant_id, elapsed, ok=ok)

    # -- plumbing ---------------------------------------------------------

    async def _run_in_lane(self, fn: Callable[[], object]) -> Any:
        assert self.lane is not None
        return await asyncio.wrap_future(self.lane.submit(fn))

    async def _run_in_fleet(self, fn: Callable[[], object]) -> Any:
        return await asyncio.wrap_future(self.server.fleet.submit(fn))

    def _send(self, obj: dict[str, Any]) -> None:
        self.writer.write(json.dumps(obj, separators=(",", ":")).encode() + b"\n")

    async def _flush_pending(self) -> None:
        """Send every queued put response, in submission order."""
        pending, self.pending = self.pending, []
        for fut in pending:
            self._send(await _as_response(fut))
        await self.writer.drain()

    def _flush_ready(self) -> None:
        """Send completed put responses at the head of the queue.

        Runs on the event loop whenever a put finishes, so a
        synchronous client (one put, one read) gets its answer without
        needing a follow-up request; order is preserved by only ever
        draining the head.
        """
        while self.pending and self.pending[0].done():
            self._send(self.pending.pop(0).result())

    # -- main loop --------------------------------------------------------

    async def run(self, first_line: bytes) -> None:
        line: bytes | None = first_line
        while True:
            if line is None:
                try:
                    line = await self.reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # StreamReader limit (== _MAX_LINE) overrun: answer
                    # before closing rather than dying silently.
                    self.writer.write(_too_long_payload() + b"\n")
                    await self.writer.drain()
                    return
            if not line:
                return
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("not an object")
            except ValueError as e:
                self._send({"ok": False, "error": "bad_request", "message": str(e)})
                await self.writer.drain()
                return
            line = None
            op = request.get("op")
            response: dict[str, Any] | None
            try:
                if op == "put":
                    await self._op_put(request)
                    continue  # response is deferred (pipelined)
                await self._flush_pending()
                if op == "open":
                    response = await self._op_open(request)
                elif op == "commit":
                    response = await self._op_commit()
                elif op == "abort":
                    response = await self._op_abort()
                elif op == "list":
                    response = await self._op_list(request)
                elif op == "get":
                    response = await self._op_get(request)
                elif op == "usage":
                    response = await self._op_usage(request)
                elif op == "ping":
                    response = {"ok": True, "pong": True}
                else:
                    response = {
                        "ok": False,
                        "error": "bad_request",
                        "message": f"unknown op {op!r}",
                    }
            except _ProtocolError as e:
                self._send({"ok": False, "error": "bad_request", "message": str(e)})
                await self.writer.drain()
                return
            except ServiceError as e:
                response = _error_payload(e)
            except Exception as e:  # noqa: BLE001 - reply, keep serving
                # Anything an op raises that is not a typed refusal —
                # a commit/finalize failure, a backend error from
                # list/get — is answered as "failed" instead of
                # killing the connection with no reply.
                response = _error_payload(e)
            if response is not None:
                self._send(response)
            await self.writer.drain()

    async def cleanup(self) -> None:
        """Abort an abandoned session (disconnect mid-push)."""
        for fut in self.pending:
            try:
                await fut
            except asyncio.CancelledError:
                # Loop teardown mid-drain.  Write futures never carry
                # exceptions otherwise: _finish_put converts failures
                # to error payloads before completing them.
                pass
        self.pending = []
        self._record_session_slo(ok=False)  # no-op unless still unrecorded
        session = self.session
        self.session = None
        if session is not None and session.state == "open":
            await self._run_in_lane(session.close)

    # -- session ops ------------------------------------------------------

    def _require(self, request: dict[str, Any], key: str, kind: type) -> Any:
        value = request.get(key)
        if not isinstance(value, kind):
            raise _ProtocolError(f"{key!r} must be {kind.__name__}")
        return value

    def _tenant_arg(self, request: dict[str, Any]) -> str:
        """The validated ``tenant`` field (bad ids → ``bad_request``)."""
        tenant_id = self._require(request, "tenant", str)
        try:
            return validate_tenant_id(tenant_id)
        except ValueError as e:
            raise _ProtocolError(str(e)) from None

    def _int_field(self, request: dict[str, Any], key: str, default: int = 0) -> int:
        value = request.get(key, default)
        if isinstance(value, bool) or not isinstance(value, int):
            raise _ProtocolError(f"{key!r} must be an integer")
        return value

    async def _op_open(self, request: dict[str, Any]) -> dict[str, Any]:
        if self.session is not None and self.session.state == "open":
            raise _ProtocolError("a session is already open on this connection")
        tenant_id = self._tenant_arg(request)
        algorithm = request.get("algorithm") or self.server.algorithm
        if not isinstance(algorithm, str):
            raise _ProtocolError("'algorithm' must be str")
        try:
            resolve(algorithm)  # unknown names answer here, as bad_request
        except ValueError as e:
            raise _ProtocolError(str(e)) from None
        quota = None
        if "max_bytes" in request or "max_files" in request:
            try:
                quota = TenantQuota(
                    max_bytes=self._int_field(request, "max_bytes"),
                    max_files=self._int_field(request, "max_files"),
                )
            except ValueError as e:
                raise _ProtocolError(str(e)) from None
        rate = request.get("rate_bytes")
        if rate is not None and (
            isinstance(rate, bool) or not isinstance(rate, (int, float))
        ):
            raise _ProtocolError("'rate_bytes' must be a number")
        # Optional trace context (old clients simply omit both fields).
        trace_id = request.get("trace_id", "")
        parent_span = request.get("parent_span", "")
        if not isinstance(trace_id, str) or not isinstance(parent_span, str):
            raise _ProtocolError("'trace_id'/'parent_span' must be str")
        try:
            tenant = self.server.registry.register(
                tenant_id,
                quota=quota,
                rate_bytes=float(rate) if rate is not None else None,
            )
        except ValueError as e:
            raise _ProtocolError(str(e)) from None
        session = DedupSession(
            tenant,
            algorithm=algorithm,
            config=self.server.config,
            max_rate_delay=self.server.max_rate_delay,
            trace_sink=self.server._session_trace_sink(tenant_id),
            trace_id=trace_id,
            parent_ref=parent_span,
            heartbeat=self.server._heartbeat,
            active_sessions=self.server.registry.active_sessions,
        )
        # The only part of open() that can block — waiting out another
        # session of the same tenant — happens here on the event loop;
        # the fleet thread below only ever does the warm start.
        lock_t0 = time.perf_counter()
        try:
            await self.server.acquire_tenant_lock(tenant)
        except TenantBusy:
            self.server.slo.record_admission(tenant_id, rejected=True)
            raise
        lock_wait = time.perf_counter() - lock_t0
        if lock_wait >= _WAIT_SPAN_FLOOR:
            session.record_wait("wait.tenant_lock", lock_wait)
        self.lane = self.server.fleet.lane()
        self.slots = asyncio.Semaphore(self.server.queue_depth)
        try:
            fut = self.lane.submit(lambda: session.open(locked=True))
        except BaseException:
            # Submission failed (fleet shut down): open() never ran,
            # so the lock we took above is still ours to give back.
            tenant.lock.release()
            raise
        await asyncio.wrap_future(fut)
        self.session = session
        self._session_t0 = time.perf_counter()
        self._slo_recorded = False
        self.server.slo.record_admission(tenant_id)
        response = {
            "ok": True,
            "session": session.session_id,
            "generation": session.generation,
            "algorithm": session.algorithm,
        }
        if session.trace_id:
            response["trace_id"] = session.trace_id
        return response

    def _defer_response(self, obj: dict[str, Any]) -> None:
        """Queue an already-known put response, preserving reply order."""
        fut: asyncio.Future[dict[str, Any]] = (
            asyncio.get_running_loop().create_future()
        )
        fut.set_result(obj)
        self.pending.append(fut)
        self._flush_ready()

    async def _op_put(self, request: dict[str, Any]) -> None:
        path = self._require(request, "path", str)
        size = self._require(request, "size", int)
        if not 0 <= size <= _MAX_PAYLOAD:
            raise _ProtocolError(f"size out of range: {size}")
        payload = await self.reader.readexactly(size)
        session = self.session
        if session is None or session.state != "open":
            # Payload already consumed; answer in order like any put.
            self._defer_response(dict(_NO_SESSION))
            return
        assert self.slots is not None and self.lane is not None
        # Admission runs here on the event loop: the quota pre-check
        # and token-bucket reservation are quick, and the back-pressure
        # delay must be an asyncio.sleep — a session sleeping out its
        # rate limit on a fleet thread would hold pool capacity that
        # every other session's lane tasks need.
        tenant_id = session.tenant.tenant_id
        try:
            delay = session.admit(size)
        except ServiceError as e:
            # Refused; still answered in submission order.
            self.server.slo.record_admission(tenant_id, rejected=True)
            self._defer_response(_error_payload(e))
            return
        except SessionClosed as e:
            # The session aborted under a queued put — not an
            # admission-control refusal, so no SLO rejection.
            self._defer_response(_error_payload(e))
            return
        self.server.slo.record_admission(tenant_id)
        if delay > 0:
            await asyncio.sleep(delay)
            session.record_wait("wait.rate", delay)
        # Bounded admission: while the session's queue is full this
        # coroutine parks here, the socket goes unread, and the client
        # feels TCP back-pressure.
        queue_t0 = time.perf_counter()
        await self.slots.acquire()
        queue_wait = time.perf_counter() - queue_t0
        if queue_wait >= _WAIT_SPAN_FLOOR:
            session.record_wait("wait.queue", queue_wait)
        loop = asyncio.get_running_loop()
        result: asyncio.Future[dict[str, Any]] = loop.create_future()
        submitted = time.perf_counter()

        def work() -> dict[str, Any]:
            lane_wait = time.perf_counter() - submitted
            if lane_wait >= _WAIT_SPAN_FLOOR:
                session.record_wait("wait.lane", lane_wait)
            store_id = session.write(path, payload, preadmitted=True)
            return {"ok": True, "store_id": store_id}

        fut = self.lane.submit(work)

        def done(f: Future[Any]) -> None:
            loop.call_soon_threadsafe(self._finish_put, f, result)

        fut.add_done_callback(done)
        self.pending.append(result)

    def _finish_put(
        self, fut: Future[Any], result: asyncio.Future[dict[str, Any]]
    ) -> None:
        assert self.slots is not None
        self.slots.release()
        if result.cancelled():
            return
        exc = fut.exception()
        if exc is None:
            result.set_result(fut.result())
        else:
            result.set_result(_error_payload(exc))
            # A failed write aborts the session server-side; that is
            # the error outcome the SLO engine should see.
            if self.session is not None and self.session.state != "open":
                self._record_session_slo(ok=False)
        self._flush_ready()

    async def _op_commit(self) -> dict[str, Any]:
        session = self.session
        if session is None or session.state != "open":
            self.session = None
            return dict(_NO_SESSION)
        try:
            stats = await self._run_in_lane(session.commit)
        except BaseException:
            self._record_session_slo(ok=False)
            raise
        self._record_session_slo(ok=True)
        self.session = None
        return {
            "ok": True,
            "session": session.session_id,
            "stats": stats.as_dict(),
            "usage": session.tenant.ledger.snapshot(),
        }

    async def _op_abort(self) -> dict[str, Any]:
        session = self.session
        if session is None or session.state != "open":
            self.session = None
            return dict(_NO_SESSION)
        try:
            report = await self._run_in_lane(session.abort)
        finally:
            self._record_session_slo(ok=False)
        self.session = None
        return {"ok": True, "repairs": report.repairs, "actions": report.actions}

    # -- sessionless ops --------------------------------------------------

    async def _op_list(self, request: dict[str, Any]) -> dict[str, Any]:
        tenant_id = self._tenant_arg(request)
        view = self.server.registry.view(tenant_id)
        files = await self._run_in_fleet(lambda: latest_files(view))
        return {"ok": True, "files": files}

    async def _op_get(self, request: dict[str, Any]) -> dict[str, Any] | None:
        """Restore one file: a size header line, then the raw bytes.

        Returns ``None`` — the payload response is written here, not by
        the main loop.
        """
        tenant_id = self._tenant_arg(request)
        path = self._require(request, "path", str)
        view = self.server.registry.view(tenant_id)
        try:
            data = await self._run_in_fleet(lambda: restore_file(view, path))
        except KeyError as e:
            return {"ok": False, "error": "not_found", "message": str(e)}
        self._send({"ok": True, "path": path, "size": len(data)})
        self.writer.write(data)
        await self.writer.drain()
        return None

    async def _op_usage(self, request: dict[str, Any]) -> dict[str, Any]:
        tenant_id = self._tenant_arg(request)
        try:
            tenant = self.server.registry.get(tenant_id)
        except KeyError as e:
            return {"ok": False, "error": "not_found", "message": str(e)}
        return {"ok": True, "tenant": tenant_id, "usage": tenant.ledger.snapshot()}


async def _as_response(fut: asyncio.Future[dict[str, Any]]) -> dict[str, Any]:
    return await fut
