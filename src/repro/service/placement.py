"""Tenant placement: mapping tenants onto cluster ring partitions.

The service's tenants (namespace-prefixed views of one backend, see
:mod:`repro.service.tenancy`) and the cluster's workers (shard views
routed by fingerprint, see :mod:`repro.cluster`) meet here: each tenant
is pinned to the ring node that owns its id's hash position, so a
tenant's sessions always land on the same worker (index locality, warm
caches) while tenants as a whole spread ~uniformly over the fleet.

Placement is *stable under growth* the same way segment routing is:
adding a worker reassigns only the tenants whose hash position falls on
the new node's arcs, everyone else stays put — the property that makes
draining/splitting a worker an O(moved-tenants) operation, not a
reshuffle.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..cluster.ring import HashRing
from .tenancy import TenantRegistry, validate_tenant_id

__all__ = ["partitions", "placement_of", "tenant_node"]

#: Domain-separation tag so tenant keys can never collide with segment
#: fingerprints on the same ring.
_TENANT_TAG = "tenant|"


def tenant_node(ring: HashRing, tenant_id: str) -> str:
    """The ring node owning a tenant (deterministic, restart-stable)."""
    return ring.route_label(_TENANT_TAG + validate_tenant_id(tenant_id))


def partitions(ring: HashRing, tenant_ids: Iterable[str]) -> dict[str, list[str]]:
    """Node → sorted tenants, covering every node (empty list if none)."""
    out: dict[str, list[str]] = {node: [] for node in ring.nodes}
    for tid in tenant_ids:
        out[tenant_node(ring, tid)].append(tid)
    for bucket in out.values():
        bucket.sort()
    return out


def placement_of(ring: HashRing, registry: TenantRegistry) -> dict[str, list[str]]:
    """Partition a registry's discovered tenants over the ring."""
    return partitions(ring, registry.discover())
