"""Per-tenant admission control: quotas, token-bucket rate limits.

Two independent mechanisms guard a shared store against one tenant
monopolising it:

* :class:`TenantQuota` — a hard ceiling on cumulative ingested bytes
  and files.  Enforced twice: optimistically at admission time (a file
  whose declared size cannot fit is rejected before any byte moves)
  and authoritatively *mid-stream* by the session's
  :class:`~repro.core.protocols.IngestObserver` — a lying client whose
  stream outgrows its declared size is cut off at the first chunk batch
  that crosses the line, before those bytes reach the dedup core.
* :class:`TokenBucket` — a classic token-bucket rate limiter in
  bytes/second.  The service applies it as *back-pressure first,
  rejection second*: a reservation that can be honoured within
  ``max_delay`` seconds slows the client's socket reads (the bucket
  tells the server how long to sleep before accepting the payload);
  one that cannot is refused with a 429-style ``RateLimited`` carrying
  ``retry_after``, and the tokens are returned.

Both are plain deterministic objects with an injectable clock, so the
edge cases (quota crossed exactly at a batch boundary, bucket drained
to the burst floor) are unit-testable without wall-clock sleeps.
Thread safety: both classes are locked internally — session worker
threads and the asyncio front end touch them concurrently.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass
from time import monotonic

__all__ = [
    "QuotaExceeded",
    "QuotaLedger",
    "RateLimited",
    "ServiceError",
    "TenantBusy",
    "TenantQuota",
    "TokenBucket",
    "UNLIMITED",
]

#: Sentinel for "no limit" on a quota dimension.
UNLIMITED = 0


class ServiceError(Exception):
    """Base class for service-layer refusals (carries a wire code)."""

    #: Stable machine-readable error code used on the wire protocol.
    code = "service_error"


class QuotaExceeded(ServiceError):
    """The tenant's byte or file quota cannot admit this ingest."""

    code = "quota_exceeded"

    def __init__(self, tenant_id: str, detail: str) -> None:
        super().__init__(f"tenant {tenant_id!r}: {detail}")
        self.tenant_id = tenant_id
        self.detail = detail


class RateLimited(ServiceError):
    """The rate limiter cannot admit the payload within ``max_delay``."""

    code = "rate_limited"

    def __init__(self, tenant_id: str, retry_after: float) -> None:
        super().__init__(
            f"tenant {tenant_id!r} rate limited; retry after {retry_after:.3f}s"
        )
        self.tenant_id = tenant_id
        self.retry_after = retry_after


class TenantBusy(ServiceError):
    """Another session holds the tenant's lock; retry the ``open`` later.

    Raised by the server instead of queueing an ``open`` indefinitely:
    waiting must never occupy a fleet thread (that is how thread-pool
    starvation deadlocks start), so past ``open_wait`` the service
    refuses with a 429-style retry hint.
    """

    code = "busy"

    def __init__(self, tenant_id: str, retry_after: float) -> None:
        super().__init__(
            f"tenant {tenant_id!r} has an active session; "
            f"retry after {retry_after:.3f}s"
        )
        self.tenant_id = tenant_id
        self.retry_after = retry_after


@dataclass(frozen=True)
class TenantQuota:
    """Hard per-tenant ceilings (0 = unlimited on that dimension).

    ``max_bytes`` bounds cumulative *input* bytes admitted for the
    tenant — the logical, pre-dedup size, because that is what the
    tenant asked the service to do work on; dedup savings belong to the
    operator, not the quota.  ``max_files`` bounds cumulative files.
    """

    max_bytes: int = UNLIMITED
    max_files: int = UNLIMITED

    def __post_init__(self) -> None:
        if self.max_bytes < 0 or self.max_files < 0:
            raise ValueError("quota limits must be >= 0 (0 = unlimited)")

    @property
    def unlimited(self) -> bool:
        """Whether neither dimension is bounded."""
        return self.max_bytes == UNLIMITED and self.max_files == UNLIMITED


class QuotaLedger:
    """Thread-safe running usage of one tenant against its quota.

    The ledger is the *authoritative* accumulator: sessions charge it
    batch-by-batch through their ingest observer, so the recorded usage
    is exactly the bytes that reached the dedup core (an aborted file's
    partial batches stay charged — the work was done).
    """

    def __init__(
        self, quota: TenantQuota, bytes_used: int = 0, files_used: int = 0
    ) -> None:
        self.quota = quota
        self._lock = threading.Lock()
        self._bytes = bytes_used
        self._files = files_used

    @property
    def bytes_used(self) -> int:
        """Cumulative input bytes charged so far."""
        return self._bytes

    @property
    def files_used(self) -> int:
        """Cumulative files charged so far."""
        return self._files

    def check_admit(self, tenant_id: str, declared_bytes: int) -> None:
        """Optimistic admission check for one file (raises, charges nothing).

        ``declared_bytes`` is the client's claimed size; the mid-stream
        :meth:`charge_bytes` path remains authoritative for liars.
        """
        q = self.quota
        with self._lock:
            if q.max_files and self._files + 1 > q.max_files:
                raise QuotaExceeded(
                    tenant_id,
                    f"file quota {q.max_files} exhausted ({self._files} used)",
                )
            if q.max_bytes and self._bytes + declared_bytes > q.max_bytes:
                raise QuotaExceeded(
                    tenant_id,
                    f"byte quota {q.max_bytes} cannot admit {declared_bytes} more "
                    f"bytes ({self._bytes} used)",
                )

    def charge_bytes(self, tenant_id: str, nbytes: int) -> None:
        """Charge ``nbytes`` of admitted input; raises once over quota.

        Called per chunk batch *before* the batch reaches the dedup
        core, so the raise aborts the ingest with none of the
        over-quota bytes stored.
        """
        q = self.quota
        with self._lock:
            if q.max_bytes and self._bytes + nbytes > q.max_bytes:
                raise QuotaExceeded(
                    tenant_id,
                    f"byte quota {q.max_bytes} crossed mid-stream "
                    f"({self._bytes} used, batch of {nbytes})",
                )
            self._bytes += nbytes

    def charge_file(self, tenant_id: str) -> None:
        """Charge one file (called when a file begins ingesting)."""
        q = self.quota
        with self._lock:
            if q.max_files and self._files + 1 > q.max_files:
                raise QuotaExceeded(
                    tenant_id, f"file quota {q.max_files} exhausted"
                )
            self._files += 1

    def snapshot(self) -> dict[str, int]:
        """Point-in-time usage (for stats endpoints)."""
        with self._lock:
            return {
                "bytes_used": self._bytes,
                "files_used": self._files,
                "max_bytes": self.quota.max_bytes,
                "max_files": self.quota.max_files,
            }


class TokenBucket:
    """Token-bucket rate limiter in bytes/second with injectable clock.

    The bucket holds at most ``burst`` tokens and refills at ``rate``
    tokens/second.  :meth:`reserve` *always* grants the reservation and
    returns how long the caller must wait before proceeding (0.0 when
    tokens were available); callers that find the delay unacceptable
    give the tokens back with :meth:`cancel`.  Splitting grant from
    policy keeps the bucket deterministic and lets the server choose
    "sleep" (back-pressure) vs "reject with retry-after" per request.

    ``rate == 0`` disables limiting (every reserve returns 0.0).
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        clock: Callable[[], float] = monotonic,
    ) -> None:
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self.rate = rate
        self.burst = float(burst) if burst is not None else max(rate, 1.0)
        if rate and self.burst <= 0:
            raise ValueError(f"burst must be > 0, got {self.burst}")
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = self.burst
        self._updated = clock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def reserve(self, n: float) -> float:
        """Take ``n`` tokens; return seconds to wait before proceeding.

        The debt may exceed the burst size (a single file larger than
        the burst is admitted — it just waits proportionally longer);
        the bucket goes negative and subsequent reservations queue
        behind it, which is what serialises a tenant's sessions to the
        configured rate.
        """
        if self.rate == 0:
            return 0.0
        with self._lock:
            now = self._clock()
            self._refill(now)
            self._tokens -= n
            if self._tokens >= 0:
                return 0.0
            return -self._tokens / self.rate

    def cancel(self, n: float) -> None:
        """Return ``n`` previously reserved tokens (rejected request)."""
        if self.rate == 0:
            return
        with self._lock:
            now = self._clock()
            self._refill(now)
            self._tokens = min(self.burst, self._tokens + n)

    @property
    def tokens(self) -> float:
        """Current token level (may be negative under debt)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens
