"""DedupSession: one tenant push with an explicit, crash-safe lifecycle.

The library API (:class:`~repro.core.base.Deduplicator`) is a batch
object: construct, ``process()`` a corpus, read the stats.  A service
needs the same machinery with an explicit lifecycle it can drive from a
network protocol and abandon safely mid-way::

    open  ──►  write(path, data)*  ──►  commit  ──►  (stats)
                      │
                      └──────────►  abort  ──►  (store repaired)

:class:`DedupSession` provides exactly that.  ``open()`` takes the
tenant's session lock (one writer per tenant keyspace at a time),
builds a deduplicator over the tenant's
:class:`~repro.storage.backend.PrefixedBackend` view and
``warm_start()``\\ s it so this push deduplicates against everything the
tenant stored before — the incremental re-push path: unchanged files
cost (almost) nothing, only deltas pay.

Every ``write()`` runs under admission control: the tenant's
:class:`~repro.service.quotas.QuotaLedger` is checked optimistically
before any byte moves and charged authoritatively per chunk batch by
the session's :class:`~repro.core.protocols.IngestObserver`, and the
tenant's token bucket meters bytes/second — back-pressure (a bounded
sleep) while the debt is payable, :class:`~repro.service.quotas.RateLimited`
with a ``retry_after`` once it is not.

``abort()`` — explicit, or implicit when a write raises — discards the
in-flight deduplicator and repairs the tenant's keyspace with
:func:`repro.storage.recover.recover`, so a half-ingested file is
quarantined rather than left to corrupt later restores.  A session
abort is deliberately indistinguishable from a process crash at the
same point: both lean on the same recovery semantics.

**Generations.**  MHD derives a container id from the file id, so
re-pushing a changed file under the same id would collide with the
previous generation's container.  Sessions therefore namespace file ids
by push generation: client path ``disk0.img`` is stored as
``g000001/disk0.img`` by the second push.  :func:`latest_files` and
:func:`restore_file` resolve a bare path to its newest generation.
"""

from __future__ import annotations

import re
import time
from collections.abc import Callable
from typing import BinaryIO

from ..core.base import Deduplicator, DedupStats
from ..core.config import DedupConfig
from ..obs.sinks import Sink
from ..obs.telemetry import HeartbeatEvent, Telemetry
from ..obs.trace import Span
from ..registry import resolve
from ..storage import StorageBackend
from ..storage.chunk_store import DiskChunkStore
from ..storage.disk_model import DiskModel
from ..storage.file_manifest import FileManifestStore
from ..storage.recover import RecoveryReport, recover
from ..workloads.machine import BackupFile
from .quotas import RateLimited, TenantBusy
from .tenancy import Tenant

__all__ = [
    "DedupSession",
    "SessionClosed",
    "latest_files",
    "restore_file",
    "split_store_id",
]

#: Store-side file ids are ``g<6-digit generation>/<client path>``.
_GEN_RE = re.compile(r"^g(\d{6})/(.+)$", re.DOTALL)


class SessionClosed(RuntimeError):
    """An operation was attempted on a session that is not open."""


def split_store_id(store_id: str) -> tuple[int, str]:
    """``g000002/a/b.img`` → ``(2, "a/b.img")``.

    Ids without a generation prefix (stores written by the plain CLI,
    not the service) map to generation ``-1`` under their full id.
    """
    m = _GEN_RE.match(store_id)
    if m is None:
        return (-1, store_id)
    return (int(m.group(1)), m.group(2))


def latest_files(backend: StorageBackend) -> dict[str, str]:
    """Map each client path to its newest generation's store id."""
    store = FileManifestStore(backend, DiskModel())
    latest: dict[str, tuple[int, str]] = {}
    for store_id in store.list_ids():
        gen, path = split_store_id(store_id)
        if path not in latest or gen > latest[path][0]:
            latest[path] = (gen, store_id)
    return {path: store_id for path, (_, store_id) in sorted(latest.items())}


def restore_file(backend: StorageBackend, path: str) -> bytes:
    """Restore the newest generation of ``path`` from a tenant view.

    Reads only the store — no deduplicator needed, which is how the
    service restores without holding the tenant's session lock.
    """
    ids = latest_files(backend)
    try:
        store_id = ids[path]
    except KeyError:
        raise KeyError(f"no file {path!r} in store") from None
    meter = DiskModel()
    manifests = FileManifestStore(backend, meter)
    chunks = DiskChunkStore(backend, meter)
    return manifests.get(store_id).restore(chunks)


class _QuotaObserver:
    """The session's :class:`~repro.core.protocols.IngestObserver`.

    Charges the tenant ledger per chunk batch *before* the batch
    reaches the dedup core; a :class:`QuotaExceeded` raised here aborts
    the ingest with none of the over-quota bytes stored.
    """

    def __init__(self, session: DedupSession) -> None:
        self._session = session

    def begin_file(self, file: BackupFile) -> None:
        s = self._session
        s.tenant.ledger.charge_file(s.tenant.tenant_id)

    def observe_batch(self, nbytes: int, nchunks: int) -> None:
        s = self._session
        s.tenant.ledger.charge_bytes(s.tenant.tenant_id, nbytes)
        s.tenant.inc_metric("service_ingest_bytes", nbytes)
        s.tenant.inc_metric("service_ingest_chunks", nchunks)

    def end_file(self, file: BackupFile) -> None:
        self._session.tenant.inc_metric("service_ingest_files")


class DedupSession:
    """One open→write*→commit/abort push for one tenant.

    Parameters
    ----------
    tenant:
        Control-plane record from the :class:`~repro.service.tenancy.TenantRegistry`.
    algorithm:
        Registry name of the deduplicator class (default ``bf-mhd``).
    config:
        Dedup configuration; defaults to :class:`DedupConfig`'s.
    max_rate_delay:
        Longest back-pressure sleep a single ``write`` will absorb
        before refusing with :class:`RateLimited`.
    open_wait:
        Longest :meth:`open` waits for the tenant's session lock
        before refusing with :class:`TenantBusy`.  The wait is always
        bounded — an untimed lock acquire on a fleet thread is the
        PR 6 pool-starvation deadlock (and DDC102 bans it).
    sleep:
        Injectable sleep (tests pass a recorder) used only by the
        library's blocking :meth:`write` path.  The server never
        sleeps on a worker thread: it calls :meth:`admit` on the
        event loop and absorbs the delay with ``asyncio.sleep``
        before dispatching the pre-admitted write.
    trace_sink:
        Optional span sink (typically a
        :class:`~repro.obs.sinks.JsonlTraceSink`).  When set, the
        session opens a root ``session`` span at :meth:`open` and the
        dedup core's ingest spans nest under it, all stamped with the
        session's trace context.
    trace_id / parent_ref:
        Cross-process trace context received over the wire: the
        client's trace id (fresh one generated when empty) and the
        span ref (``"<origin>#<id>"``) of the client's root span,
        recorded as the root span's ``remote_parent`` so
        ``merge_traces`` can stitch client and server files.
    heartbeat / active_sessions:
        Forwarded into the session's :class:`Telemetry` so heartbeat
        events carry the tenant id and the server-wide live-session
        count.
    """

    def __init__(
        self,
        tenant: Tenant,
        algorithm: str = "bf-mhd",
        config: DedupConfig | None = None,
        max_rate_delay: float = 5.0,
        open_wait: float = 300.0,
        sleep: Callable[[float], None] = time.sleep,
        trace_sink: Sink | None = None,
        trace_id: str = "",
        parent_ref: str = "",
        heartbeat: Callable[[HeartbeatEvent], None] | None = None,
        active_sessions: Callable[[], int] | None = None,
    ) -> None:
        self.tenant = tenant
        self.algorithm = algorithm
        self.config = config or DedupConfig()
        self.max_rate_delay = max_rate_delay
        self.open_wait = open_wait
        self._sleep = sleep
        self._trace_sink = trace_sink
        self._trace_id = trace_id
        self._parent_ref = parent_ref
        self._heartbeat = heartbeat
        self._active_sessions = active_sessions
        self._state = "new"
        self.session_id = ""
        self.generation = -1
        self._dedup: Deduplicator | None = None
        self._telemetry: Telemetry | None = None
        self._root_span: Span | None = None
        self._pending_waits: list[tuple[str, float]] = []
        self.stats: DedupStats | None = None
        self.recovery: RecoveryReport | None = None

    # ---- lifecycle ------------------------------------------------------

    @property
    def state(self) -> str:
        """``new`` | ``open`` | ``committed`` | ``aborted``."""
        return self._state

    def open(self, locked: bool = False) -> DedupSession:
        """Acquire the tenant's session lock and warm-start a dedup run.

        Waits (up to ``open_wait`` seconds, then :class:`TenantBusy`)
        while another session of the *same* tenant is open — sessions
        of different tenants proceed concurrently; the store layout
        assumes one writer per keyspace at a time.  The wait is
        deliberately never unbounded: the library ``open()`` runs on
        whatever thread calls it, and an untimed lock acquire on a
        fleet thread is exactly the pool-starvation deadlock the PR 6
        review caught (machine-checked as DDC102 now).

        ``locked=True`` means the caller already holds ``tenant.lock``
        and this session takes ownership of it (released on
        commit/abort, or here on failure).  The server uses this: it
        waits for the lock on the event loop so a blocked ``open``
        never occupies a fleet thread, then runs the (lock-free) heavy
        part — warm start — on the pool.
        """
        if self._state != "new":
            if locked:  # ownership transferred on entry; give it back
                self.tenant.lock.release()
            raise SessionClosed(f"cannot open a session in state {self._state!r}")
        if not locked and not self.tenant.lock.acquire(timeout=self.open_wait):
            raise TenantBusy(self.tenant.tenant_id, self.open_wait)
        try:
            self.tenant.sessions_opened += 1
            self.session_id = (
                f"{self.tenant.tenant_id}-{self.tenant.sessions_opened:04d}"
            )
            dedup_cls = resolve(self.algorithm)
            dedup = dedup_cls(self.config, backend=self.tenant.view)
            dedup.warm_start()
            tel = Telemetry(
                sinks=(self._trace_sink,) if self._trace_sink is not None else (),
                heartbeat=self._heartbeat,
                trace_id=self._trace_id,
                origin=f"server {self.session_id}",
                tenant=self.tenant.tenant_id,
                active_sessions=self._active_sessions,
            )
            dedup.telemetry = tel
            dedup.ingest_observer = _QuotaObserver(self)
            gens = [
                split_store_id(i)[0] for i in dedup.file_manifests.list_ids()
            ]
            self.generation = max(gens, default=-1) + 1
            self._dedup = dedup
            self._telemetry = tel
            if tel.tracing:
                attrs = {
                    "tenant": self.tenant.tenant_id,
                    "session": self.session_id,
                    "generation": self.generation,
                }
                if self._parent_ref:
                    attrs["remote_parent"] = self._parent_ref
                root = tel.span("session", **attrs)
                if isinstance(root, Span):
                    self._root_span = root.__enter__()
                for name, seconds in self._pending_waits:
                    self.record_wait(name, seconds)
                self._pending_waits.clear()
        except BaseException:
            self.tenant.lock.release()
            raise
        self._state = "open"
        self.tenant.inc_metric("service_sessions_opened")
        return self

    def store_id_for(self, path: str) -> str:
        """The store-side file id this session will write ``path`` as."""
        return f"g{self.generation:06d}/{path}"

    # ---- trace context ---------------------------------------------------

    @property
    def trace_id(self) -> str:
        """The session's cross-process trace id ("" when not tracing)."""
        tel = self._telemetry
        return tel.trace_id if tel is not None else ""

    def record_wait(self, name: str, seconds: float) -> None:
        """Attribute a measured wait to this session's trace.

        Thread-safe and stack-free (a closed span parented on the
        session root), so the server's event loop can report the waits
        it absorbs on the session's behalf — ``wait.tenant_lock``,
        ``wait.rate``, ``wait.queue``, ``wait.lane`` — while the lane
        thread owns the span stack.  Waits measured before :meth:`open`
        builds the tracer are buffered and flushed once it exists;
        everything is a no-op when the session has no trace sink.
        """
        if seconds <= 0.0:
            return
        tel = self._telemetry
        if tel is None or not tel.tracing:
            if self._trace_sink is not None:
                self._pending_waits.append((name, seconds))
            return
        root = self._root_span
        tel.closed_span(name, seconds, parent=root.span_id if root is not None else -1)

    def _finish_trace(self, outcome: str) -> None:
        """Close the root ``session`` span and flush the trace sink."""
        root = self._root_span
        if root is not None:
            root.set_attr("outcome", outcome)
            root.__exit__(None, None, None)
            self._root_span = None
        tel = self._telemetry
        if tel is not None and self._trace_sink is not None:
            tel.close()

    def admit(self, declared_bytes: int) -> float:
        """Admission control alone: quota pre-check + rate reservation.

        Returns the back-pressure delay (seconds) the caller must
        absorb before streaming the payload — raising ``RateLimited``
        (tokens refunded) when that delay exceeds ``max_rate_delay``,
        ``QuotaExceeded`` when the declared size cannot fit.  Charges
        nothing; the per-batch ledger path stays authoritative.

        Split from :meth:`write` so the server can run admission on
        the event loop and sleep the delay with ``asyncio.sleep`` —
        a rate-limited session must never park a fleet thread, or a
        handful of throttled clients would starve every tenant's lane
        tasks of pool capacity.
        """
        self._require_open()
        tid = self.tenant.tenant_id
        self.tenant.ledger.check_admit(tid, declared_bytes)
        delay = self.tenant.bucket.reserve(declared_bytes)
        if delay > self.max_rate_delay:
            self.tenant.bucket.cancel(declared_bytes)
            self.tenant.inc_metric("service_rate_rejections")
            raise RateLimited(tid, delay)
        if delay > 0:
            self.tenant.inc_metric("service_rate_delay_ms", int(delay * 1000))
        return delay

    def write(self, path: str, data: bytes, preadmitted: bool = False) -> str:
        """Ingest one in-memory file; returns its store id.

        Admission order: quota pre-check (no charge) → token-bucket
        reservation (sleep ≤ ``max_rate_delay``, else ``RateLimited``
        with the tokens refunded) → ingest, with the ledger charged
        batch-by-batch.  Any ingest failure — quota crossed mid-stream
        included — aborts the whole session and repairs the store
        before re-raising.

        ``preadmitted=True`` skips the admission step: the caller
        already ran :meth:`admit` and slept the returned delay itself.
        """
        store_id = self.store_id_for(path)
        return self._ingest(
            len(data), BackupFile(file_id=store_id, data=data), preadmitted
        )

    def write_stream(
        self,
        path: str,
        source: Callable[[], BinaryIO],
        size_hint: int,
        preadmitted: bool = False,
    ) -> str:
        """Ingest a source-backed file (content streamed on demand).

        ``size_hint`` is the quota admission *claim*; if the stream
        turns out longer, the per-batch ledger charge is authoritative
        and cuts the ingest off mid-file (session aborted, store
        repaired) the moment the quota is actually crossed.
        """
        store_id = self.store_id_for(path)
        return self._ingest(
            size_hint,
            BackupFile(file_id=store_id, source=source, size_hint=size_hint),
            preadmitted,
        )

    def _ingest(
        self, declared_bytes: int, file: BackupFile, preadmitted: bool = False
    ) -> str:
        dedup = self._require_open()
        if not preadmitted:
            delay = self.admit(declared_bytes)
            if delay > 0:
                self._sleep(delay)
        try:
            dedup.ingest(file)
        except BaseException:
            self.abort()
            raise
        return file.file_id

    def commit(self) -> DedupStats:
        """Finalize the run, fold its metrics into the tenant's, unlock."""
        dedup = self._require_open()
        tel = self._telemetry
        try:
            if tel is not None and tel.tracing:
                with tel.span("commit"):
                    stats = dedup.finalize()
            else:
                stats = dedup.finalize()
        except BaseException:
            self.abort()
            raise
        self.stats = stats
        self._finish_trace("committed")
        tel = self._telemetry
        if tel is not None:
            self.tenant.merge_metrics(tel.registry)
        self.tenant.inc_metric("service_sessions_committed")
        self._state = "committed"
        self._dedup = None
        self.tenant.lock.release()
        return stats

    def abort(self) -> RecoveryReport:
        """Discard the in-flight run and repair the tenant's keyspace.

        Safe after any failure point; the quarantine-based
        :func:`~repro.storage.recover.recover` pass removes whatever
        half-written state the abandoned deduplicator left behind, so
        a subsequent ``fsck`` is clean.  Idempotent-ish: aborting a
        session that is not open raises :class:`SessionClosed`.
        """
        if self._state != "open":
            raise SessionClosed(f"cannot abort a session in state {self._state!r}")
        self._state = "aborted"
        self._dedup = None
        self._finish_trace("aborted")
        try:
            self.recovery = recover(self.tenant.view)
        finally:
            self.tenant.inc_metric("service_sessions_aborted")
            self.tenant.lock.release()
        return self.recovery

    def close(self) -> None:
        """Idempotent terminal cleanup: aborts if still open."""
        if self._state == "open":
            self.abort()

    # ---- context manager: commit on success, abort on error -------------

    def __enter__(self) -> DedupSession:
        if self._state == "new":
            self.open()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if self._state != "open":
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()

    def _require_open(self) -> Deduplicator:
        if self._state != "open" or self._dedup is None:
            raise SessionClosed(f"session is {self._state!r}, not open")
        return self._dedup
