"""Tenant-scoped dedup service: sessions, quotas, server, client.

The library's :class:`~repro.core.base.Deduplicator` is a single-user
batch object; this package turns it into a long-running multi-tenant
service without touching the algorithms:

* :mod:`~repro.service.tenancy` — tenants as namespace-prefixed views
  of one shared backend (:class:`TenantRegistry`);
* :mod:`~repro.service.quotas` — per-tenant byte/file quotas and
  token-bucket rate limits (:class:`TenantQuota`, :class:`TokenBucket`);
* :mod:`~repro.service.session` — the explicit open → write* →
  commit/abort lifecycle with crash-safe abort (:class:`DedupSession`);
* :mod:`~repro.service.server` — the asyncio front end: JSON-lines
  ingest protocol plus live HTTP ``/metrics`` (:class:`DedupServer`);
* :mod:`~repro.service.client` — the blocking protocol client
  (:class:`ServiceClient`);
* :mod:`~repro.service.placement` — pinning tenants onto the cluster's
  consistent-hash ring partitions (:func:`tenant_node`,
  :func:`partitions`).

See ``docs/SERVICE.md`` for the protocol and operational semantics.
"""

from .client import ServiceClient
from .quotas import (
    QuotaExceeded,
    QuotaLedger,
    RateLimited,
    ServiceError,
    TenantBusy,
    TenantQuota,
    TokenBucket,
)
from .placement import partitions, placement_of, tenant_node
from .server import DedupServer
from .session import DedupSession, SessionClosed, latest_files, restore_file
from .tenancy import Tenant, TenantRegistry, tenant_namespace_prefix

__all__ = [
    "DedupServer",
    "DedupSession",
    "QuotaExceeded",
    "QuotaLedger",
    "RateLimited",
    "ServiceClient",
    "ServiceError",
    "SessionClosed",
    "Tenant",
    "TenantBusy",
    "TenantQuota",
    "TenantRegistry",
    "TokenBucket",
    "latest_files",
    "partitions",
    "placement_of",
    "restore_file",
    "tenant_node",
    "tenant_namespace_prefix",
]
