"""FileManifests — per-file restore recipes.

A FileManifest is the ordered list of DiskChunk extents whose
concatenation reconstructs one input file.  The paper: "a new entry
will only be written into the FileManifest at the terminating point of
neighboring chunks of duplicate or non-duplicate data slices within
one file" — i.e. contiguous runs from the same DiskChunk coalesce into
a single entry, which is why BF-MHD's FileManifests are the smallest
in Fig. 7(c).

Each entry costs 36 bytes (20-byte DiskChunk address + offset + size),
and restoring a file is the correctness oracle for every deduplicator
in this repository: ``restore() == original`` byte-for-byte.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..hashing.digest import HASH_SIZE, Digest, sha1
from .backend import StorageBackend
from .chunk_store import DiskChunkStore
from .disk_model import DiskModel

__all__ = ["FileExtent", "FileManifest", "FileManifestStore", "FILE_ENTRY_SIZE"]

#: Per-entry bytes: container address + byte offset + byte size.
FILE_ENTRY_SIZE = 36

_EXTENT_STRUCT = struct.Struct(f"<{HASH_SIZE}sqq")


@dataclass(frozen=True)
class FileExtent:
    """A run of bytes inside one DiskChunk container."""

    container_id: Digest
    offset: int
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0 or self.offset < 0:
            raise ValueError(f"invalid extent offset={self.offset} size={self.size}")


class FileManifest:
    """Ordered extents reconstructing one file."""

    def __init__(
        self, file_id: str, extents: list[FileExtent] | None = None
    ) -> None:
        self.file_id = file_id
        self.extents: list[FileExtent] = list(extents or [])

    def append(self, container_id: Digest, offset: int, size: int) -> None:
        """Add an extent, coalescing with the previous one when adjacent.

        Coalescing is the paper's entry-writing rule: a new entry only
        terminates when the data stops being contiguous in the source
        DiskChunk.
        """
        if self.extents:
            last = self.extents[-1]
            if last.container_id == container_id and last.offset + last.size == offset:
                self.extents[-1] = FileExtent(container_id, last.offset, last.size + size)
                return
        self.extents.append(FileExtent(container_id, offset, size))

    @property
    def total_size(self) -> int:
        """Size of the file this manifest reconstructs."""
        return sum(e.size for e in self.extents)

    def byte_size(self) -> int:
        """Serialized size: 36 bytes per extent plus the name header."""
        return len(self.to_bytes())

    def restore(self, chunks: DiskChunkStore) -> bytes:
        """Reconstruct the original file bytes (the dedup invariant)."""
        return b"".join(
            chunks.read(e.container_id, e.offset, e.size) for e in self.extents
        )

    def to_bytes(self) -> bytes:
        """Serialise (36 B per extent plus the name header)."""
        name = self.file_id.encode()
        parts = [struct.pack("<HI", len(name), len(self.extents)), name]
        for e in self.extents:
            parts.append(_EXTENT_STRUCT.pack(e.container_id, e.offset, e.size))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, raw: bytes) -> FileManifest:
        name_len, count = struct.unpack_from("<HI", raw, 0)
        off = 6
        name = raw[off : off + name_len].decode()
        off += name_len
        extents: list[FileExtent] = []
        for _ in range(count):
            cid, e_off, e_size = _EXTENT_STRUCT.unpack_from(raw, off)
            extents.append(FileExtent(Digest(cid), e_off, e_size))
            off += _EXTENT_STRUCT.size
        return cls(name, extents)


class FileManifestStore:
    """Metered persistence for FileManifests, keyed by file id."""

    def __init__(self, backend: StorageBackend, meter: DiskModel) -> None:
        self._backend = backend
        self._meter = meter

    @staticmethod
    def key_for(file_id: str) -> Digest:
        """Backend key for a file id (its SHA-1)."""
        return sha1(file_id.encode())

    def put(self, fm: FileManifest) -> None:
        """Persist a file manifest (metered write)."""
        raw = fm.to_bytes()
        self._backend.put(DiskModel.FILE_MANIFEST, self.key_for(fm.file_id), raw)
        self._meter.record(DiskModel.FILE_MANIFEST, "write", len(raw))

    def get(self, file_id: str) -> FileManifest:
        """Load a file manifest by id (metered read)."""
        raw = self._backend.get(DiskModel.FILE_MANIFEST, self.key_for(file_id))
        self._meter.record(DiskModel.FILE_MANIFEST, "read", len(raw))
        return FileManifest.from_bytes(raw)

    def count(self) -> int:
        """Number of stored file manifests."""
        return self._backend.object_count(DiskModel.FILE_MANIFEST)

    def stored_bytes(self) -> int:
        """Total file-manifest payload bytes."""
        return self._backend.bytes_stored(DiskModel.FILE_MANIFEST)

    def list_ids(self) -> list[str]:
        """All stored file ids (reads every manifest; metered).

        Used by restore tooling to enumerate a store's contents — keys
        are digests of the ids, so the names must come from the
        manifests themselves.
        """
        ids: list[str] = []
        for key in self._backend.keys(DiskModel.FILE_MANIFEST):
            raw = self._backend.get(DiskModel.FILE_MANIFEST, key)
            self._meter.record(DiskModel.FILE_MANIFEST, "read", len(raw))
            ids.append(FileManifest.from_bytes(raw).file_id)
        return sorted(ids)
