"""Simulated storage substrate: metered object stores on pluggable backends.

The layout mirrors the paper's system architecture (Fig. 2/3): a
DiskChunkStore of immutable chunk containers, hash-addressed Manifests
(the only mutable metadata), write-once Hook files pointing at
manifests, and per-file FileManifests for restore.  All disk traffic
flows through a shared :class:`DiskModel` meter, which is what the
Table II / Table V benches read out.
"""

from .backend import (
    DirectoryBackend,
    MemoryBackend,
    ObjectBackend,
    PrefixedBackend,
    StorageBackend,
)
from .chunk_store import ContainerWriter, DiskChunkStore
from .disk_model import INODE_SIZE, DiskModel, IOSnapshot
from .faults import (
    BackendError,
    CrashPoint,
    FaultInjectingBackend,
    FaultSpec,
    RetryingBackend,
    RetryPolicy,
    TransientBackendError,
)
from .file_manifest import FILE_ENTRY_SIZE, FileExtent, FileManifest, FileManifestStore
from .hooks import HookStore
from .manifest import (
    ENTRY_SIZE,
    MANIFEST_HEADER_SIZE,
    MHD_ENTRY_SIZE,
    Manifest,
    ManifestEntry,
    ManifestStore,
)
from .multi_manifest import (
    GROUP_HEADER_SIZE,
    MultiEntry,
    MultiManifest,
    MultiManifestStore,
)
from .gc import GCReport, delete_file, sweep
from .retention import (
    RetentionPolicy,
    apply_retention,
    default_generation_of,
    plan_retention,
)
from .recover import QUARANTINE_PREFIX, RecoveryReport, recover
from .verify import IntegrityReport, load_manifest, verify_store

__all__ = [
    "DirectoryBackend",
    "MemoryBackend",
    "ObjectBackend",
    "PrefixedBackend",
    "StorageBackend",
    "BackendError",
    "TransientBackendError",
    "CrashPoint",
    "FaultSpec",
    "FaultInjectingBackend",
    "RetryPolicy",
    "RetryingBackend",
    "QUARANTINE_PREFIX",
    "RecoveryReport",
    "recover",
    "ContainerWriter",
    "DiskChunkStore",
    "INODE_SIZE",
    "DiskModel",
    "IOSnapshot",
    "FILE_ENTRY_SIZE",
    "FileExtent",
    "FileManifest",
    "FileManifestStore",
    "HookStore",
    "ENTRY_SIZE",
    "MANIFEST_HEADER_SIZE",
    "MHD_ENTRY_SIZE",
    "Manifest",
    "ManifestEntry",
    "ManifestStore",
    "GROUP_HEADER_SIZE",
    "MultiEntry",
    "MultiManifest",
    "MultiManifestStore",
    "IntegrityReport",
    "load_manifest",
    "verify_store",
    "GCReport",
    "delete_file",
    "sweep",
    "RetentionPolicy",
    "apply_retention",
    "default_generation_of",
    "plan_retention",
]
