"""DiskChunkStore — immutable containers of non-duplicate chunk bytes.

MHD "only merge[s] the non-duplicate chunks belonging to one file into
one DiskChunk"; SubChunk coalesces the small chunks of one big chunk
into a container.  Either way, the store's unit is an append-only
*container* that is written to disk once, sequentially, and never
modified afterwards — reads (HHR byte reloads, restores) address a
``(container, offset, size)`` extent.

Metering: one ``write`` operation is recorded when a container closes
(a buffered sequential write — matching Table II's "Chunk Output
Times" of *F* for MHD), with the container's full byte count.  Every
extent read records one ``read`` operation — HHR's reloads are the
"Chunk Input Times 2L" row.  Reads that land on a still-open container
are served from its RAM buffer but metered identically, since those
bytes are conceptually already on disk.
"""

from __future__ import annotations

from ..hashing.digest import Digest
from .backend import StorageBackend
from .disk_model import DiskModel

__all__ = ["ContainerWriter", "DiskChunkStore"]


class ContainerWriter:
    """Accumulates one DiskChunk's bytes; closed exactly once."""

    def __init__(self, store: DiskChunkStore, container_id: Digest) -> None:
        self.container_id = container_id
        self._store = store
        self._buf = bytearray()
        self._closed = False

    def append(self, data: bytes | memoryview) -> int:
        """Append bytes; returns the byte offset they landed at."""
        if self._closed:
            raise RuntimeError("container already closed")
        offset = len(self._buf)
        self._buf += data
        return offset

    @property
    def size(self) -> int:
        """Bytes accumulated so far (= the next append offset)."""
        return len(self._buf)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Flush to the backend; meters one sequential write."""
        if self._closed:
            return
        self._closed = True
        self._store._finalize(self)

    def _read(self, offset: int, size: int) -> bytes:
        return bytes(self._buf[offset : offset + size])


class DiskChunkStore:
    """Metered store of immutable DiskChunk containers."""

    def __init__(self, backend: StorageBackend, meter: DiskModel) -> None:
        self._backend = backend
        self._meter = meter
        self._open: dict[Digest, ContainerWriter] = {}

    def open_container(self, container_id: Digest) -> ContainerWriter:
        """Start a new container; readable immediately, closed once."""
        if container_id in self._open or self._backend.exists(
            DiskModel.CHUNK, container_id
        ):
            raise ValueError(f"container {container_id.hex()[:12]} already exists")
        writer = ContainerWriter(self, container_id)
        self._open[container_id] = writer
        return writer

    def _finalize(self, writer: ContainerWriter) -> None:
        data = bytes(writer._buf)
        if data:  # empty containers (fully-duplicate files) occupy nothing
            self._backend.put(DiskModel.CHUNK, writer.container_id, data)
            self._meter.record(DiskModel.CHUNK, "write", len(data))
        del self._open[writer.container_id]

    def read(self, container_id: Digest, offset: int, size: int) -> bytes:
        """Read an extent; one metered disk access."""
        if size < 0 or offset < 0:
            raise ValueError(f"invalid extent offset={offset} size={size}")
        self._meter.record(DiskModel.CHUNK, "read", size)
        open_writer = self._open.get(container_id)
        if open_writer is not None:
            return open_writer._read(offset, size)
        data = self._backend.get(DiskModel.CHUNK, container_id)
        if offset + size > len(data):
            raise ValueError(
                f"extent [{offset}, {offset + size}) beyond container size {len(data)}"
            )
        return data[offset : offset + size]

    def size(self, container_id: Digest) -> int:
        """Byte size of a container (open or closed)."""
        open_writer = self._open.get(container_id)
        if open_writer is not None:
            return open_writer.size
        return len(self._backend.get(DiskModel.CHUNK, container_id))

    def exists(self, container_id: Digest) -> bool:
        """Whether a container (open or closed) exists."""
        return container_id in self._open or self._backend.exists(
            DiskModel.CHUNK, container_id
        )

    def stored_bytes(self) -> int:
        """Total closed-container bytes on the backend."""
        return self._backend.bytes_stored(DiskModel.CHUNK)

    def count(self) -> int:
        """Number of closed containers (= DiskChunk inodes)."""
        return self._backend.object_count(DiskModel.CHUNK)
