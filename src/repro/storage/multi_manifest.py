"""Multi-container manifests for the SubChunk and SparseIndexing baselines.

Unlike MHD's per-DiskChunk manifest, SubChunk manifests map small
chunks to *container* chunks ("the entries for the small chunks
belonging to the same DiskChunk in the Manifests need to share 28
bytes to indicate the address and the number of the chunks contained
in the same DiskChunk") and SparseIndexing manifests record every
chunk of a segment — duplicates included — wherever its bytes live.

Serialisation matches the paper's cost model: consecutive entries that
reference the same container form a *group* with a 28-byte header
(20-byte container address + 4-byte count + 4 reserved), followed by
36 bytes per entry (20-byte digest + offset + size packed into 16).

The class mirrors enough of :class:`repro.storage.manifest.Manifest`'s
interface (``manifest_id``, ``dirty``, ``index``/``find``,
``ram_size``, ``to_bytes``/``from_bytes``) that the shared
:class:`repro.core.manifest_cache.ManifestCache` can hold either kind.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..hashing.digest import HASH_SIZE, Digest
from .backend import StorageBackend
from .disk_model import DiskModel

__all__ = ["MultiEntry", "MultiManifest", "MultiManifestStore", "GROUP_HEADER_SIZE"]

#: Per-container-group bytes (the paper's shared 28 bytes in SubChunk).
GROUP_HEADER_SIZE = 28

_GROUP_STRUCT = struct.Struct(f"<{HASH_SIZE}sII")
_ENTRY_STRUCT = struct.Struct(f"<{HASH_SIZE}sqq")  # 36 bytes
_HEADER_STRUCT = struct.Struct(f"<{HASH_SIZE}sI")  # manifest id + group count


@dataclass(frozen=True)
class MultiEntry:
    """One chunk record: digest + the extent holding its bytes."""

    digest: Digest
    container_id: Digest
    offset: int
    size: int

    def __post_init__(self) -> None:
        if len(self.digest) != HASH_SIZE or len(self.container_id) != HASH_SIZE:
            raise ValueError(f"digest and container_id must be {HASH_SIZE} bytes")
        if self.size <= 0 or self.offset < 0:
            raise ValueError(f"invalid extent offset={self.offset} size={self.size}")


class MultiManifest:
    """Ordered chunk records spanning one or more containers."""

    def __init__(
        self, manifest_id: Digest, entries: list[MultiEntry] | None = None
    ) -> None:
        self.manifest_id = manifest_id
        self.entries: list[MultiEntry] = list(entries or [])
        self.dirty = False
        self._index: dict[Digest, int] | None = None

    def append(self, entry: MultiEntry) -> None:
        """Add a chunk record (marks the manifest dirty)."""
        self.entries.append(entry)
        if self._index is not None:
            self._index.setdefault(entry.digest, len(self.entries) - 1)
        self.dirty = True

    @property
    def index(self) -> dict[Digest, int]:
        """Digest -> first entry position (the hash table)."""
        if self._index is None:
            idx: dict[Digest, int] = {}
            for i, e in enumerate(self.entries):
                idx.setdefault(e.digest, i)
            self._index = idx
        return self._index

    def find(self, digest: Digest) -> int | None:
        """Position of the first entry with this digest, or ``None``."""
        return self.index.get(digest)

    def __contains__(self, digest: Digest) -> bool:
        return digest in self.index

    def __len__(self) -> int:
        return len(self.entries)

    def groups(self) -> list[tuple[Digest, int]]:
        """Consecutive same-container runs as ``(container, count)``."""
        out: list[tuple[Digest, int]] = []
        for e in self.entries:
            if out and out[-1][0] == e.container_id:
                out[-1] = (e.container_id, out[-1][1] + 1)
            else:
                out.append((e.container_id, 1))
        return out

    def byte_size(self) -> int:
        """Header + 28 B per container group + 36 B per entry."""
        return (
            _HEADER_STRUCT.size
            + GROUP_HEADER_SIZE * len(self.groups())
            + 36 * len(self.entries)
        )

    def ram_size(self) -> int:
        """RAM footprint when cached (= serialized size)."""
        return self.byte_size()

    def to_bytes(self) -> bytes:
        """Serialise with per-group 28 B headers + 36 B entries."""
        groups = self.groups()
        parts = [_HEADER_STRUCT.pack(self.manifest_id, len(groups))]
        i = 0
        for container_id, count in groups:
            parts.append(_GROUP_STRUCT.pack(container_id, count, 0))
            for e in self.entries[i : i + count]:
                parts.append(_ENTRY_STRUCT.pack(e.digest, e.offset, e.size))
            i += count
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, raw: bytes) -> MultiManifest:
        mid, group_count = _HEADER_STRUCT.unpack_from(raw, 0)
        off = _HEADER_STRUCT.size
        entries: list[MultiEntry] = []
        for _ in range(group_count):
            container_id, count, _pad = _GROUP_STRUCT.unpack_from(raw, off)
            off += _GROUP_STRUCT.size
            for _ in range(count):
                digest, e_off, e_size = _ENTRY_STRUCT.unpack_from(raw, off)
                entries.append(
                    MultiEntry(Digest(digest), Digest(container_id), e_off, e_size)
                )
                off += _ENTRY_STRUCT.size
        return cls(Digest(mid), entries)


class MultiManifestStore:
    """Metered persistence; interface-compatible with ManifestStore."""

    def __init__(self, backend: StorageBackend, meter: DiskModel) -> None:
        self._backend = backend
        self._meter = meter

    def put(self, manifest: MultiManifest) -> None:
        """Persist (metered write; clears the dirty flag)."""
        raw = manifest.to_bytes()
        self._backend.put(DiskModel.MANIFEST, manifest.manifest_id, raw)
        self._meter.record(DiskModel.MANIFEST, "write", len(raw))
        manifest.dirty = False

    def get(self, manifest_id: Digest) -> MultiManifest:
        """Load from disk (metered read)."""
        raw = self._backend.get(DiskModel.MANIFEST, manifest_id)
        self._meter.record(DiskModel.MANIFEST, "read", len(raw))
        return MultiManifest.from_bytes(raw)

    def exists(self, manifest_id: Digest) -> bool:
        """Whether the manifest is on disk (not metered)."""
        return self._backend.exists(DiskModel.MANIFEST, manifest_id)
