"""Key-value storage backends for the hash-addressable object stores.

The paper's prototypes run "in the user space of the Ext3 file system"
with every DiskChunk, Manifest and Hook a separate file.  Here the
same object model is served by one of two interchangeable backends:

* :class:`MemoryBackend` — dict-backed; used by tests and benches so
  experiment runtime measures the *algorithms*, not the host disk.
* :class:`DirectoryBackend` — one real file per object under a root
  directory, faithful to the paper's prototype layout.

Backends are **not** metered; metering happens in the object stores,
because only they know whether an access is a real disk access or a
RAM-cache hit.  Backends do provide inode accounting (object counts)
since the paper budgets 256 bytes per metadata file inode.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Protocol

from .disk_model import INODE_SIZE

__all__ = [
    "ObjectBackend",
    "StorageBackend",
    "MemoryBackend",
    "DirectoryBackend",
]


class ObjectBackend(Protocol):
    """Structural seam the object stores require of a backend.

    :class:`StorageBackend` subclasses satisfy this by shape; code that
    only *consumes* storage (stores, verification, GC) can accept an
    ``ObjectBackend`` and remain open to duck-typed backends.
    """

    def put(self, namespace: str, key: bytes, data: bytes) -> None:
        """Store an object (overwrites an existing one)."""
        ...

    def get(self, namespace: str, key: bytes) -> bytes:
        """Fetch an object; raises ``KeyError`` if absent."""
        ...

    def exists(self, namespace: str, key: bytes) -> bool:
        """Membership test without transferring the object."""
        ...

    def keys(self, namespace: str) -> list[bytes]:
        """All keys in a namespace (unordered)."""
        ...

    def delete(self, namespace: str, key: bytes) -> bool:
        """Remove an object; returns whether it existed."""
        ...

    def object_count(self, namespace: str) -> int:
        """Number of stored objects in the namespace."""
        ...

    def bytes_stored(self, namespace: str) -> int:
        """Total payload bytes held by a namespace."""
        ...


class StorageBackend(ABC):
    """Namespace → key → bytes object store."""

    @abstractmethod
    def put(self, namespace: str, key: bytes, data: bytes) -> None:
        """Store an object (overwrites an existing one)."""

    @abstractmethod
    def get(self, namespace: str, key: bytes) -> bytes:
        """Fetch an object; raises ``KeyError`` if absent."""

    @abstractmethod
    def exists(self, namespace: str, key: bytes) -> bool:
        """Membership test without transferring the object."""

    @abstractmethod
    def keys(self, namespace: str) -> list[bytes]:
        """All keys in a namespace (unordered)."""

    @abstractmethod
    def delete(self, namespace: str, key: bytes) -> bool:
        """Remove an object; returns whether it existed.

        Only garbage collection deletes objects — the deduplicators
        themselves treat every store as append-only (DiskChunks and
        Hooks are write-once; Manifests are updated, never removed).
        """

    @abstractmethod
    def object_count(self, namespace: str) -> int:
        """Number of stored objects = inodes consumed by the namespace."""

    @abstractmethod
    def bytes_stored(self, namespace: str) -> int:
        """Total payload bytes held by a namespace."""

    def inode_bytes(self, namespace: str) -> int:
        """Inode overhead of a namespace under the paper's 256 B/inode."""
        return self.object_count(namespace) * INODE_SIZE

    def total_stored(self, namespaces: list[str] | None = None) -> int:
        """Payload + inode bytes across namespaces (for real-DER math)."""
        if namespaces is None:
            namespaces = self.namespaces()
        return sum(
            self.bytes_stored(ns) + self.inode_bytes(ns) for ns in namespaces
        )

    @abstractmethod
    def namespaces(self) -> list[str]:
        """Namespaces that currently hold at least one object."""


class MemoryBackend(StorageBackend):
    """Dict-of-dicts backend; the default for experiments."""

    def __init__(self) -> None:
        self._data: dict[str, dict[bytes, bytes]] = {}

    def put(self, namespace: str, key: bytes, data: bytes) -> None:
        self._data.setdefault(namespace, {})[key] = bytes(data)

    def get(self, namespace: str, key: bytes) -> bytes:
        try:
            return self._data[namespace][key]
        except KeyError:
            raise KeyError(f"{namespace}/{key.hex()[:12]} not found") from None

    def exists(self, namespace: str, key: bytes) -> bool:
        return key in self._data.get(namespace, {})

    def keys(self, namespace: str) -> list[bytes]:
        return list(self._data.get(namespace, {}))

    def delete(self, namespace: str, key: bytes) -> bool:
        ns = self._data.get(namespace)
        if ns is None or key not in ns:
            return False
        del ns[key]
        return True

    def object_count(self, namespace: str) -> int:
        return len(self._data.get(namespace, {}))

    def bytes_stored(self, namespace: str) -> int:
        return sum(len(v) for v in self._data.get(namespace, {}).values())

    def namespaces(self) -> list[str]:
        return [ns for ns, d in self._data.items() if d]


class DirectoryBackend(StorageBackend):
    """One file per object under ``root/namespace/<key hex>``.

    Matches the paper's prototype: every DiskChunk/Manifest/Hook is a
    separate hash-named file on the host file system.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self._root = os.fspath(root)
        os.makedirs(self._root, exist_ok=True)

    def _path(self, namespace: str, key: bytes) -> str:
        return os.path.join(self._root, namespace, key.hex())

    def put(self, namespace: str, key: bytes, data: bytes) -> None:
        path = self._path(namespace, key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as fh:
            fh.write(data)

    def get(self, namespace: str, key: bytes) -> bytes:
        try:
            with open(self._path(namespace, key), "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            raise KeyError(f"{namespace}/{key.hex()[:12]} not found") from None

    def exists(self, namespace: str, key: bytes) -> bool:
        return os.path.exists(self._path(namespace, key))

    def keys(self, namespace: str) -> list[bytes]:
        d = os.path.join(self._root, namespace)
        if not os.path.isdir(d):
            return []
        return [bytes.fromhex(name) for name in os.listdir(d)]

    def delete(self, namespace: str, key: bytes) -> bool:
        try:
            os.remove(self._path(namespace, key))
            return True
        except FileNotFoundError:
            return False

    def object_count(self, namespace: str) -> int:
        d = os.path.join(self._root, namespace)
        return len(os.listdir(d)) if os.path.isdir(d) else 0

    def bytes_stored(self, namespace: str) -> int:
        d = os.path.join(self._root, namespace)
        if not os.path.isdir(d):
            return 0
        return sum(
            os.path.getsize(os.path.join(d, name)) for name in os.listdir(d)
        )

    def namespaces(self) -> list[str]:
        return [
            ns
            for ns in os.listdir(self._root)
            if os.path.isdir(os.path.join(self._root, ns))
            and os.listdir(os.path.join(self._root, ns))
        ]
