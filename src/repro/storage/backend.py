"""Key-value storage backends for the hash-addressable object stores.

The paper's prototypes run "in the user space of the Ext3 file system"
with every DiskChunk, Manifest and Hook a separate file.  Here the
same object model is served by one of two interchangeable backends:

* :class:`MemoryBackend` — dict-backed; used by tests and benches so
  experiment runtime measures the *algorithms*, not the host disk.
* :class:`DirectoryBackend` — one real file per object under a root
  directory, faithful to the paper's prototype layout.
* :class:`PrefixedBackend` — a namespace-prefixing *view* over any
  other backend; the substrate of tenant isolation
  (:mod:`repro.service.tenancy`): every logical namespace ``ns`` maps
  to ``prefix + ns``, so two views with different prefixes can never
  observe each other's objects.

Backends are **not** metered; metering happens in the object stores,
because only they know whether an access is a real disk access or a
RAM-cache hit.  Backends do provide inode accounting (object counts)
since the paper budgets 256 bytes per metadata file inode.
"""

from __future__ import annotations

import contextlib
import logging
import os
import tempfile
from abc import ABC, abstractmethod
from typing import Protocol

from .disk_model import INODE_SIZE

__all__ = [
    "ObjectBackend",
    "StorageBackend",
    "MemoryBackend",
    "DirectoryBackend",
    "PrefixedBackend",
]

logger = logging.getLogger(__name__)

#: Suffix of in-flight temp files used by :meth:`DirectoryBackend.put`.
#: Never a valid object name (object files are bare hex), so interrupted
#: writes are invisible to every read path and swept by recovery.
TMP_SUFFIX = ".tmp"


class ObjectBackend(Protocol):
    """Structural seam the object stores require of a backend.

    :class:`StorageBackend` subclasses satisfy this by shape; code that
    only *consumes* storage (stores, verification, GC) can accept an
    ``ObjectBackend`` and remain open to duck-typed backends.
    """

    def put(self, namespace: str, key: bytes, data: bytes) -> None:
        """Store an object (overwrites an existing one)."""
        ...

    def get(self, namespace: str, key: bytes) -> bytes:
        """Fetch an object; raises ``KeyError`` if absent."""
        ...

    def exists(self, namespace: str, key: bytes) -> bool:
        """Membership test without transferring the object."""
        ...

    def keys(self, namespace: str) -> list[bytes]:
        """All keys in a namespace (unordered)."""
        ...

    def delete(self, namespace: str, key: bytes) -> bool:
        """Remove an object; returns whether it existed."""
        ...

    def object_count(self, namespace: str) -> int:
        """Number of stored objects in the namespace."""
        ...

    def bytes_stored(self, namespace: str) -> int:
        """Total payload bytes held by a namespace."""
        ...


class StorageBackend(ABC):
    """Namespace → key → bytes object store."""

    @abstractmethod
    def put(self, namespace: str, key: bytes, data: bytes) -> None:
        """Store an object (overwrites an existing one)."""

    @abstractmethod
    def get(self, namespace: str, key: bytes) -> bytes:
        """Fetch an object; raises ``KeyError`` if absent."""

    @abstractmethod
    def exists(self, namespace: str, key: bytes) -> bool:
        """Membership test without transferring the object."""

    @abstractmethod
    def keys(self, namespace: str) -> list[bytes]:
        """All keys in a namespace (unordered)."""

    @abstractmethod
    def delete(self, namespace: str, key: bytes) -> bool:
        """Remove an object; returns whether it existed.

        Only garbage collection deletes objects — the deduplicators
        themselves treat every store as append-only (DiskChunks and
        Hooks are write-once; Manifests are updated, never removed).
        """

    @abstractmethod
    def object_count(self, namespace: str) -> int:
        """Number of stored objects = inodes consumed by the namespace."""

    @abstractmethod
    def bytes_stored(self, namespace: str) -> int:
        """Total payload bytes held by a namespace."""

    def inode_bytes(self, namespace: str) -> int:
        """Inode overhead of a namespace under the paper's 256 B/inode."""
        return self.object_count(namespace) * INODE_SIZE

    def total_stored(self, namespaces: list[str] | None = None) -> int:
        """Payload + inode bytes across namespaces (for real-DER math)."""
        if namespaces is None:
            namespaces = self.namespaces()
        return sum(
            self.bytes_stored(ns) + self.inode_bytes(ns) for ns in namespaces
        )

    @abstractmethod
    def namespaces(self) -> list[str]:
        """Namespaces that currently hold at least one object."""


class MemoryBackend(StorageBackend):
    """Dict-of-dicts backend; the default for experiments."""

    def __init__(self) -> None:
        self._data: dict[str, dict[bytes, bytes]] = {}

    def put(self, namespace: str, key: bytes, data: bytes) -> None:
        self._data.setdefault(namespace, {})[key] = bytes(data)

    def get(self, namespace: str, key: bytes) -> bytes:
        try:
            return self._data[namespace][key]
        except KeyError:
            raise KeyError(f"{namespace}/{key.hex()[:12]} not found") from None

    def exists(self, namespace: str, key: bytes) -> bool:
        return key in self._data.get(namespace, {})

    def keys(self, namespace: str) -> list[bytes]:
        return list(self._data.get(namespace, {}))

    def delete(self, namespace: str, key: bytes) -> bool:
        ns = self._data.get(namespace)
        if ns is None or key not in ns:
            return False
        del ns[key]
        return True

    def object_count(self, namespace: str) -> int:
        return len(self._data.get(namespace, {}))

    def bytes_stored(self, namespace: str) -> int:
        return sum(len(v) for v in self._data.get(namespace, {}).values())

    def namespaces(self) -> list[str]:
        return [ns for ns, d in self._data.items() if d]


class DirectoryBackend(StorageBackend):
    """One file per object under ``root/namespace/<key hex>``.

    Matches the paper's prototype: every DiskChunk/Manifest/Hook is a
    separate hash-named file on the host file system.

    Writes are **atomic**: the payload goes to a same-directory temp
    file first and is renamed over the final name with ``os.replace``,
    so readers never observe a torn object — a crash leaves either the
    old object, the new object, or an invisible ``*.tmp`` stray (swept
    by :func:`repro.storage.recover.recover`).

    **Concurrency guarantee.**  The backend is safe under concurrent
    same-process writers (threads) and concurrent reader/writer mixes,
    without any lock of its own:

    * every :meth:`put` writes to a ``tempfile.mkstemp`` temp file —
      unique per call, so two writers never share a buffer — and
      publishes it with ``os.replace``, which is atomic on POSIX and
      Windows: a racing :meth:`get` of the same key sees either the
      complete old object or the complete new one, never a mix;
    * racing puts of the *same* key are last-writer-wins with both
      payloads intact at the moment of each replace (the stores only
      ever write identical content for one key, so either order is
      correct);
    * ``os.makedirs(exist_ok=True)`` makes namespace creation racy-safe;
    * enumeration (:meth:`keys`/:meth:`object_count`) may or may not
      see a concurrently-published object, but never a partial one —
      temp strays fail :meth:`_is_object_name` and are skipped.

    What is **not** guaranteed: cross-key transactionality (a reader
    enumerating during a multi-object commit can observe a subset;
    recovery semantics in :mod:`repro.storage.recover` exist exactly
    for that) — and :meth:`bytes_stored` racing a concurrent delete
    may raise ``FileNotFoundError`` from ``os.path.getsize``.  The
    hammer test in ``tests/storage/test_backend_concurrency.py``
    exercises the guarantee with N threads over overlapping
    namespaces.

    Parameters
    ----------
    fsync:
        Durability policy for :meth:`put`:

        * ``"none"`` (default) — no fsync; atomic rename only.  Fast;
          what every test and experiment uses.
        * ``"data"`` — fsync the temp file before the rename, so the
          object's *bytes* survive a power loss (the rename itself may
          still be lost, leaving the old state — which is consistent).
        * ``"full"`` — additionally fsync the namespace directory after
          the rename, making the rename itself durable.
    """

    _FSYNC_POLICIES = ("none", "data", "full")

    def __init__(self, root: str | os.PathLike[str], fsync: str = "none") -> None:
        if fsync not in self._FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {self._FSYNC_POLICIES}, got {fsync!r}")
        self._root = os.fspath(root)
        self._fsync = fsync
        os.makedirs(self._root, exist_ok=True)

    def _path(self, namespace: str, key: bytes) -> str:
        return os.path.join(self._root, namespace, key.hex())

    @staticmethod
    def _is_object_name(name: str) -> bool:
        """Whether a directory entry is a stored object (bare lowercase hex).

        In-flight temp files (``.*.tmp``) and foreign files (editor
        droppings, OS metadata) fail this test and are skipped by every
        enumeration path.
        """
        if not name or name.startswith(".") or name.endswith(TMP_SUFFIX):
            return False
        try:
            return bytes.fromhex(name).hex() == name
        except ValueError:
            return False

    def _object_names(self, namespace: str) -> list[str]:
        d = os.path.join(self._root, namespace)
        if not os.path.isdir(d):
            return []
        names = []
        for name in os.listdir(d):
            if self._is_object_name(name):
                names.append(name)
            elif not name.endswith(TMP_SUFFIX) and not name.startswith("."):
                # Temp strays are expected debris from interrupted puts;
                # anything else in a store directory deserves a warning.
                logger.warning("%s/%s: ignoring non-object file %r", self._root, namespace, name)
        return names

    def put(self, namespace: str, key: bytes, data: bytes) -> None:
        path = self._path(namespace, key)
        d = os.path.dirname(path)
        os.makedirs(d, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=d, prefix=".", suffix=TMP_SUFFIX)
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                if self._fsync != "none":
                    fh.flush()
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        if self._fsync == "full":
            dfd = os.open(d, os.O_RDONLY)
            try:
                os.fsync(dfd)
            finally:
                os.close(dfd)

    def get(self, namespace: str, key: bytes) -> bytes:
        try:
            with open(self._path(namespace, key), "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            raise KeyError(f"{namespace}/{key.hex()[:12]} not found") from None

    def exists(self, namespace: str, key: bytes) -> bool:
        return os.path.exists(self._path(namespace, key))

    def keys(self, namespace: str) -> list[bytes]:
        return [bytes.fromhex(name) for name in self._object_names(namespace)]

    def delete(self, namespace: str, key: bytes) -> bool:
        try:
            os.remove(self._path(namespace, key))
            return True
        except FileNotFoundError:
            return False

    def object_count(self, namespace: str) -> int:
        return len(self._object_names(namespace))

    def bytes_stored(self, namespace: str) -> int:
        d = os.path.join(self._root, namespace)
        return sum(
            os.path.getsize(os.path.join(d, name))
            for name in self._object_names(namespace)
        )

    def namespaces(self) -> list[str]:
        return [
            ns
            for ns in os.listdir(self._root)
            if os.path.isdir(os.path.join(self._root, ns))
            and self._object_names(ns)
        ]

    def purge_incomplete(self, prefix: str = "") -> int:
        """Delete stray non-object files (interrupted-put debris).

        Removes ``*.tmp`` temp files and any other non-hex file from
        every namespace directory; returns the number removed.  Called
        by the recovery pass before the store is walked.

        ``prefix`` restricts the sweep to namespaces starting with it —
        a tenant-scoped recovery must not delete another tenant's
        in-flight temp files (see :class:`PrefixedBackend`).
        """
        purged = 0
        for ns in os.listdir(self._root):
            if prefix and not ns.startswith(prefix):
                continue
            d = os.path.join(self._root, ns)
            if not os.path.isdir(d):
                continue
            for name in os.listdir(d):
                path = os.path.join(d, name)
                if not self._is_object_name(name) and os.path.isfile(path):
                    with contextlib.suppress(OSError):
                        os.remove(path)
                        purged += 1
        return purged


class PrefixedBackend(StorageBackend):
    """A namespace-prefixing view over another backend.

    Every logical namespace ``ns`` is stored under ``prefix + ns`` on
    the inner backend, and :meth:`namespaces` reports only (and strips)
    the prefixed ones.  Code above the backend — the object stores, the
    deduplicators, verification, GC, recovery — runs unchanged against
    a view and can only ever touch keys under its prefix.  This is the
    storage substrate of tenant isolation: one
    :class:`~repro.service.tenancy.TenantRegistry` hands each tenant a
    view with a distinct prefix over one shared physical store.

    The view adds no state of its own, so it inherits the inner
    backend's atomicity/durability/concurrency guarantees verbatim, and
    any number of views (same or different prefixes) may wrap one inner
    backend concurrently.
    """

    def __init__(self, inner: StorageBackend, prefix: str) -> None:
        if not prefix:
            raise ValueError("prefix must be non-empty (use the backend directly)")
        if os.sep in prefix or (os.altsep is not None and os.altsep in prefix):
            raise ValueError(f"prefix {prefix!r} must not contain path separators")
        self.inner = inner
        self.prefix = prefix

    def _ns(self, namespace: str) -> str:
        return self.prefix + namespace

    def put(self, namespace: str, key: bytes, data: bytes) -> None:
        self.inner.put(self._ns(namespace), key, data)

    def get(self, namespace: str, key: bytes) -> bytes:
        return self.inner.get(self._ns(namespace), key)

    def exists(self, namespace: str, key: bytes) -> bool:
        return self.inner.exists(self._ns(namespace), key)

    def keys(self, namespace: str) -> list[bytes]:
        return self.inner.keys(self._ns(namespace))

    def delete(self, namespace: str, key: bytes) -> bool:
        return self.inner.delete(self._ns(namespace), key)

    def object_count(self, namespace: str) -> int:
        return self.inner.object_count(self._ns(namespace))

    def bytes_stored(self, namespace: str) -> int:
        return self.inner.bytes_stored(self._ns(namespace))

    def namespaces(self) -> list[str]:
        n = len(self.prefix)
        return [
            ns[n:] for ns in self.inner.namespaces() if ns.startswith(self.prefix)
        ]

    def purge_incomplete(self, prefix: str = "") -> int:
        """Sweep interrupted-put debris *under this view's prefix only*.

        Delegates to the inner backend's ``purge_incomplete`` when it
        has one (``DirectoryBackend``, or a nested view), composing the
        prefixes so a tenant-scoped recovery never touches another
        tenant's in-flight temp files.  Returns 0 on backends without
        temp-file debris (``MemoryBackend``).
        """
        fn = getattr(self.inner, "purge_incomplete", None)
        if not callable(fn):
            return 0
        count: int = fn(self.prefix + prefix)
        return count
