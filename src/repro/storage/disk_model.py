"""Disk-access metering — the measurement substrate for Tables II & V.

Every store in :mod:`repro.storage` reports its logical disk operations
to a :class:`DiskModel`.  The paper compares algorithms by the *number*
of disk accesses ("the I/O overhead is compared on the basis of the
number of I/Os required"), broken down by object type (chunk data,
Hooks, Manifests) and direction, plus query counts against the on-disk
index.  The meter keeps exactly those counters, and supports snapshots
so experiments can report per-phase deltas.

The meter is deliberately independent of any timing model; converting
counts into simulated seconds is :mod:`repro.analysis.timing`'s job.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass, field

from ..obs.metrics import Counter as MetricCounter
from ..obs.metrics import MetricsRegistry
from ..obs.telemetry import note_anomaly

__all__ = ["DiskModel", "IOSnapshot", "INODE_SIZE"]

#: Bytes charged per inode, as assumed in the paper's Section IV.
INODE_SIZE = 256


@dataclass(frozen=True)
class IOSnapshot:
    """Immutable view of the meter's counters.

    ``ops[(namespace, op)]`` counts operations;
    ``bytes[(namespace, op)]`` the bytes they moved.  ``op`` is one of
    ``"read"``, ``"write"``, ``"query"``.
    """

    ops: dict[tuple[str, str], int] = field(default_factory=dict)
    byte_counts: dict[tuple[str, str], int] = field(default_factory=dict)

    def count(self, namespace: str | None = None, op: str | None = None) -> int:
        """Total operations, optionally filtered by namespace and/or op."""
        return sum(
            v
            for (ns, o), v in self.ops.items()
            if (namespace is None or ns == namespace) and (op is None or o == op)
        )

    def nbytes(self, namespace: str | None = None, op: str | None = None) -> int:
        """Total bytes moved, with the same filters as :meth:`count`."""
        return sum(
            v
            for (ns, o), v in self.byte_counts.items()
            if (namespace is None or ns == namespace) and (op is None or o == op)
        )

    def __sub__(self, other: IOSnapshot) -> IOSnapshot:
        ops = Counter(self.ops)
        ops.subtract(other.ops)
        nb = Counter(self.byte_counts)
        nb.subtract(other.byte_counts)
        negatives = sorted(
            {k for k, v in ops.items() if v < 0} | {k for k, v in nb.items() if v < 0}
        )
        if negatives:
            # Meters only ever count up, so a negative delta means the
            # operands were swapped or came from different runs; clamp
            # to zero rather than return nonsense counts, and report it.
            note_anomaly(
                "io_snapshot.negative_delta",
                f"clamped negative deltas for {negatives} "
                "(snapshot subtraction expects newer - older from one meter)",
            )
        return IOSnapshot(
            {k: v for k, v in ops.items() if v > 0},
            {k: v for k, v in nb.items() if v > 0},
        )


class DiskModel:
    """Mutable disk-operation meter shared by all stores of one run."""

    #: Well-known namespaces used by the stores.
    CHUNK = "chunk"
    MANIFEST = "manifest"
    HOOK = "hook"
    FILE_MANIFEST = "file_manifest"

    def __init__(self) -> None:
        self._ops: Counter[tuple[str, str]] = Counter()
        self._bytes: Counter[tuple[str, str]] = Counter()
        self._registry: MetricsRegistry | None = None
        self._mirror: dict[tuple[str, str], tuple[MetricCounter, MetricCounter]] = {}

    def attach_registry(self, registry: MetricsRegistry | None) -> None:
        """Mirror every future :meth:`record` into a metrics registry.

        Each ``(namespace, op)`` pair maps to two counters —
        ``disk.<ns>.<op>.ops`` and ``disk.<ns>.<op>.bytes`` — so
        telemetry sinks see the per-namespace I/O breakdown without a
        second accounting path.  Pass ``None`` to detach.  Existing
        totals are not back-filled; attach before the run starts.
        """
        self._registry = registry
        self._mirror = {}

    def record(self, namespace: str, op: str, nbytes: int, count: int = 1) -> None:
        """Record ``count`` operations moving ``nbytes`` total bytes."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        key = (namespace, op)
        self._ops[key] += count
        self._bytes[key] += nbytes
        registry = self._registry
        if registry is not None:
            pair = self._mirror.get(key)
            if pair is None:
                pair = (
                    registry.counter(f"disk.{namespace}.{op}.ops"),
                    registry.counter(f"disk.{namespace}.{op}.bytes"),
                )
                self._mirror[key] = pair
            pair[0].inc(count)
            pair[1].inc(nbytes)

    def snapshot(self) -> IOSnapshot:
        """Freeze the current counters (cheap; dict copies)."""
        return IOSnapshot(dict(self._ops), dict(self._bytes))

    # Convenience accessors used throughout the benches -----------------

    def count(self, namespace: str | None = None, op: str | None = None) -> int:
        """Current operation count (optionally filtered)."""
        return self.snapshot().count(namespace, op)

    def nbytes(self, namespace: str | None = None, op: str | None = None) -> int:
        """Current byte count (optionally filtered)."""
        return self.snapshot().nbytes(namespace, op)

    @property
    def total_ops(self) -> int:
        """All operations across every namespace."""
        return sum(self._ops.values())

    @property
    def total_bytes(self) -> int:
        """All bytes moved across every namespace."""
        return sum(self._bytes.values())

    def breakdown(self) -> dict[str, dict[str, int]]:
        """``{namespace: {op: count}}`` — the Table II row structure."""
        out: dict[str, dict[str, int]] = {}
        for (ns, op), v in sorted(self._ops.items()):
            out.setdefault(ns, {})[op] = v
        return out

    def merge(self, others: Iterable[DiskModel]) -> None:
        """Fold other meters into this one (parallel-run aggregation)."""
        for other in others:
            self._ops.update(other._ops)
            self._bytes.update(other._bytes)
