"""Manifests — the per-DiskChunk metadata the whole paper is about.

A *Manifest* (the paper's DiskChunkManifest) is a sequence of hash
entries describing the data blocks inside one DiskChunk.  Each entry
records the SHA-1 of a block, the block's byte offset and size within
the DiskChunk, and — in MHD only — a one-byte *Hook flag* marking
entries whose hash also exists as an on-disk Hook file.

The paper's metadata budget (Section IV): 36 bytes per entry (20-byte
hash + start position + size), plus one flag byte in MHD, i.e. the
``74N/SD`` term of Table I comes from ``2N/SD`` entries × 37 bytes.
Serialisation here produces exactly those per-entry sizes so that
``backend.bytes_stored("manifest")`` *is* the paper's Manifest byte
count (plus a fixed 44-byte header per manifest file).

Manifests are the only mutable metadata: HHR replaces one merged entry
with up to three new entries (see :mod:`repro.core.hhr`), after which
the manifest is dirty and must be written back — a metered disk write.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

from ..hashing.digest import HASH_SIZE, Digest
from .backend import StorageBackend
from .disk_model import DiskModel

__all__ = [
    "ManifestEntry",
    "Manifest",
    "ManifestStore",
    "ENTRY_SIZE",
    "MHD_ENTRY_SIZE",
    "MANIFEST_HEADER_SIZE",
]

#: Per-entry bytes in the non-MHD algorithms (hash + offset + size).
ENTRY_SIZE = 36
#: Per-entry bytes in MHD (adds the one-byte Hook flag).
MHD_ENTRY_SIZE = 37
#: Fixed per-manifest-file header: manifest id + DiskChunk id + count.
MANIFEST_HEADER_SIZE = HASH_SIZE * 2 + 4

_ENTRY_STRUCT = struct.Struct(f"<{HASH_SIZE}sqqB")  # 37 B: MHD entries
_ENTRY_STRUCT_NOFLAG = struct.Struct(f"<{HASH_SIZE}sqq")  # 36 B: baselines


@dataclass(frozen=True)
class ManifestEntry:
    """One hash entry covering ``[offset, offset+size)`` of a DiskChunk."""

    digest: Digest
    offset: int
    size: int
    is_hook: bool = False

    def __post_init__(self) -> None:
        if len(self.digest) != HASH_SIZE:
            raise ValueError(f"digest must be {HASH_SIZE} bytes")
        if self.size <= 0 or self.offset < 0:
            raise ValueError(f"invalid extent offset={self.offset} size={self.size}")

    @property
    def end(self) -> int:
        """Exclusive end offset within the DiskChunk."""
        return self.offset + self.size

    def with_hook(self, is_hook: bool) -> ManifestEntry:
        """Copy of this entry with the Hook flag set as given."""
        return replace(self, is_hook=is_hook)


class Manifest:
    """Mutable in-RAM manifest, organised as a hash table.

    The paper: "The cache contains a number of Manifests, each of
    which is organized as a hash table" — :meth:`find` is an O(1)
    digest lookup; positional access supports match extension over
    neighbouring entries.
    """

    def __init__(
        self,
        manifest_id: Digest,
        chunk_id: Digest,
        entries: list[ManifestEntry] | None = None,
        entry_size: int = MHD_ENTRY_SIZE,
    ) -> None:
        if entry_size not in (ENTRY_SIZE, MHD_ENTRY_SIZE):
            raise ValueError(f"entry_size must be 36 or 37, got {entry_size}")
        self.manifest_id = manifest_id
        self.chunk_id = chunk_id
        self.entries: list[ManifestEntry] = list(entries or [])
        self.entry_size = entry_size
        self.dirty = False
        self._index: dict[Digest, list[int]] | None = None

    # -- hash-table behaviour -------------------------------------------

    def _build_index(self) -> dict[Digest, list[int]]:
        idx: dict[Digest, list[int]] = {}
        for i, e in enumerate(self.entries):
            idx.setdefault(e.digest, []).append(i)
        return idx

    @property
    def index(self) -> dict[Digest, list[int]]:
        """Digest -> entry positions (the manifest's hash table)."""
        if self._index is None:
            self._index = self._build_index()
        return self._index

    def find(self, digest: Digest) -> int | None:
        """Index of the first entry with this digest, or ``None``."""
        hits = self.index.get(digest)
        return hits[0] if hits else None

    def __contains__(self, digest: Digest) -> bool:
        return digest in self.index

    def __len__(self) -> int:
        return len(self.entries)

    # -- mutation (appends during build, splits during HHR) -------------

    def append(self, entry: ManifestEntry) -> None:
        """Add an entry (build-time only; marks the manifest dirty)."""
        self.entries.append(entry)
        if self._index is not None:
            self._index.setdefault(entry.digest, []).append(len(self.entries) - 1)
        self.dirty = True

    def replace_entry(self, i: int, replacements: list[ManifestEntry]) -> None:
        """HHR: substitute entry ``i`` with ``replacements``.

        The replacements must exactly tile the replaced entry's byte
        extent — DiskChunk bytes are immutable, only their *description*
        changes.
        """
        old = self.entries[i]
        if not replacements:
            raise ValueError("replacements must be non-empty")
        if replacements[0].offset != old.offset or replacements[-1].end != old.end:
            raise ValueError(
                f"replacements [{replacements[0].offset}, {replacements[-1].end}) "
                f"must tile the old extent [{old.offset}, {old.end})"
            )
        for a, b in zip(replacements, replacements[1:], strict=False):
            if a.end != b.offset:
                raise ValueError("replacements must be contiguous")
        self.entries[i : i + 1] = replacements
        self._index = None  # positions shifted; rebuild lazily
        self.dirty = True

    # -- invariants and sizes --------------------------------------------

    def hook_count(self) -> int:
        """Number of Hook-flagged entries."""
        return sum(1 for e in self.entries if e.is_hook)

    def byte_size(self) -> int:
        """Serialized size (header + entries at this manifest's cost)."""
        return MANIFEST_HEADER_SIZE + len(self.entries) * self.entry_size

    def ram_size(self) -> int:
        """Bytes this manifest occupies when cached in RAM (Table IV)."""
        return self.byte_size()

    def validate_tiling(self, total_size: int | None = None) -> None:
        """Entries must cover the DiskChunk contiguously from offset 0."""
        pos = 0
        for e in self.entries:
            if e.offset != pos:
                raise AssertionError(
                    f"entry at offset {e.offset} does not start at expected {pos}"
                )
            pos = e.end
        if total_size is not None and pos != total_size:
            raise AssertionError(f"entries cover {pos} bytes, DiskChunk has {total_size}")

    # -- serialisation ----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise at this manifest's per-entry cost (36/37 B)."""
        parts = [
            self.manifest_id,
            self.chunk_id,
            struct.pack("<I", len(self.entries)),
        ]
        if self.entry_size == MHD_ENTRY_SIZE:
            for e in self.entries:
                parts.append(_ENTRY_STRUCT.pack(e.digest, e.offset, e.size, e.is_hook))
        else:
            for e in self.entries:
                parts.append(_ENTRY_STRUCT_NOFLAG.pack(e.digest, e.offset, e.size))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, raw: bytes) -> Manifest:
        mid = Digest(raw[:HASH_SIZE])
        cid = Digest(raw[HASH_SIZE : 2 * HASH_SIZE])
        (count,) = struct.unpack_from("<I", raw, 2 * HASH_SIZE)
        body = len(raw) - MANIFEST_HEADER_SIZE
        entry_size = body // count if count else MHD_ENTRY_SIZE
        entries: list[ManifestEntry] = []
        off = MANIFEST_HEADER_SIZE
        if entry_size == MHD_ENTRY_SIZE:
            for _ in range(count):
                digest, offset, size, flag = _ENTRY_STRUCT.unpack_from(raw, off)
                entries.append(
                    ManifestEntry(Digest(digest), offset, size, bool(flag))
                )
                off += _ENTRY_STRUCT.size
        else:
            for _ in range(count):
                digest, offset, size = _ENTRY_STRUCT_NOFLAG.unpack_from(raw, off)
                entries.append(ManifestEntry(Digest(digest), offset, size))
                off += _ENTRY_STRUCT_NOFLAG.size
        return cls(mid, cid, entries, entry_size=entry_size)


class ManifestStore:
    """Metered, hash-addressed persistence for manifests."""

    def __init__(self, backend: StorageBackend, meter: DiskModel) -> None:
        self._backend = backend
        self._meter = meter

    def put(self, manifest: Manifest) -> None:
        """Persist a manifest (metered write; clears the dirty flag)."""
        raw = manifest.to_bytes()
        self._backend.put(DiskModel.MANIFEST, manifest.manifest_id, raw)
        self._meter.record(DiskModel.MANIFEST, "write", len(raw))
        manifest.dirty = False

    def get(self, manifest_id: Digest) -> Manifest:
        """Load a manifest from disk (metered read)."""
        raw = self._backend.get(DiskModel.MANIFEST, manifest_id)
        self._meter.record(DiskModel.MANIFEST, "read", len(raw))
        return Manifest.from_bytes(raw)

    def exists(self, manifest_id: Digest) -> bool:
        """Whether a manifest is on disk (not metered)."""
        return self._backend.exists(DiskModel.MANIFEST, manifest_id)

    def stored_bytes(self) -> int:
        """Total manifest payload bytes on the backend."""
        return self._backend.bytes_stored(DiskModel.MANIFEST)

    def count(self) -> int:
        """Number of manifests (= manifest inodes)."""
        return self._backend.object_count(DiskModel.MANIFEST)
