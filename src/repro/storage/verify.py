"""Store integrity verification.

A deduplicated store is only as good as its ability to prove itself
consistent: every Hook must point at an existing Manifest that still
contains the hook's digest; every Manifest must tile its DiskChunk
exactly and hash-match the bytes it describes; every FileManifest
extent must lie inside a stored container.  This module walks a
backend and checks all of it — the fsck of the repository.

Used by tests (including failure-injection tests that corrupt stores
on purpose) and exposed to users via ``Deduplicator.verify_integrity``.
"""

from __future__ import annotations

import contextlib
import logging
import struct
from dataclasses import dataclass, field

from ..hashing.digest import Digest, sha1
from .backend import StorageBackend
from .disk_model import DiskModel
from .file_manifest import FileManifest
from .manifest import Manifest
from .multi_manifest import MultiManifest

__all__ = ["IntegrityReport", "load_manifest", "verify_store"]

logger = logging.getLogger(__name__)

#: Everything a malformed manifest/file-manifest payload can raise while
#: parsing: truncated structs (``struct.error``), entry validation
#: (``ValueError``) and, for FileManifests, bad name bytes.
_PARSE_ERRORS = (ValueError, struct.error, UnicodeDecodeError)


@dataclass
class IntegrityReport:
    """Outcome of a full store walk."""

    manifests_checked: int = 0
    hooks_checked: int = 0
    file_manifests_checked: int = 0
    containers_checked: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the walk found no inconsistencies."""
        return not self.errors

    def error(self, msg: str) -> None:
        """Record one inconsistency."""
        self.errors.append(msg)

    def summary(self) -> str:
        """One-line human-readable outcome."""
        status = "OK" if self.ok else f"{len(self.errors)} ERRORS"
        return (
            f"integrity {status}: {self.containers_checked} containers, "
            f"{self.manifests_checked} manifests, {self.hooks_checked} hooks, "
            f"{self.file_manifests_checked} file manifests"
        )


def load_manifest(raw: bytes) -> Manifest | MultiManifest:
    """Manifests may be single-container or multi-container; sniff.

    A payload that parses as neither raises one of ``ValueError`` /
    ``struct.error`` (from the :class:`MultiManifest` attempt).
    """
    with contextlib.suppress(*_PARSE_ERRORS):
        m = Manifest.from_bytes(raw)
        if m.to_bytes() == raw:
            return m
    return MultiManifest.from_bytes(raw)


def verify_store(
    backend: StorageBackend,
    deep: bool = True,
    check_entry_hashes: bool = False,
) -> IntegrityReport:
    """Walk every object in ``backend`` and cross-check the invariants.

    Parameters
    ----------
    deep:
        Also verify manifest extents against container sizes and
        FileManifest extents against containers.
    check_entry_hashes:
        Re-hash every single-container manifest entry's bytes and
        compare with the recorded digest (expensive; catches silent
        container corruption).
    """
    report = IntegrityReport()
    container_sizes: dict[Digest, int] = {}
    for raw_key in backend.keys(DiskModel.CHUNK):
        container_sizes[Digest(raw_key)] = len(
            backend.get(DiskModel.CHUNK, raw_key)
        )
        report.containers_checked += 1

    manifests: dict[Digest, Manifest | MultiManifest] = {}
    for raw_key in backend.keys(DiskModel.MANIFEST):
        key = Digest(raw_key)
        raw = backend.get(DiskModel.MANIFEST, key)
        try:
            m = load_manifest(raw)
        except _PARSE_ERRORS as e:
            logger.debug("manifest %s failed to parse", key.hex()[:12], exc_info=True)
            report.error(f"manifest {key.hex()[:12]}: unparseable ({e})")
            continue
        report.manifests_checked += 1
        if m.manifest_id != key:
            report.error(
                f"manifest {key.hex()[:12]}: stored under wrong key "
                f"(claims {m.manifest_id.hex()[:12]})"
            )
            continue
        manifests[key] = m
        if not deep:
            continue
        if isinstance(m, Manifest):
            size = container_sizes.get(m.chunk_id)
            if size is None:
                report.error(
                    f"manifest {key.hex()[:12]}: DiskChunk "
                    f"{m.chunk_id.hex()[:12]} missing"
                )
                continue
            try:
                m.validate_tiling(size)
            except AssertionError as e:
                report.error(f"manifest {key.hex()[:12]}: {e}")
            if check_entry_hashes:
                data = backend.get(DiskModel.CHUNK, m.chunk_id)
                for i, entry in enumerate(m.entries):
                    actual = sha1(data[entry.offset : entry.end])
                    if actual != entry.digest:
                        report.error(
                            f"manifest {key.hex()[:12]} entry {i}: digest "
                            f"mismatch (container bytes corrupted?)"
                        )
        else:  # MultiManifest: per-entry container bounds
            for i, entry in enumerate(m.entries):
                size = container_sizes.get(entry.container_id)
                if size is None:
                    report.error(
                        f"manifest {key.hex()[:12]} entry {i}: container "
                        f"{entry.container_id.hex()[:12]} missing"
                    )
                elif entry.offset + entry.size > size:
                    report.error(
                        f"manifest {key.hex()[:12]} entry {i}: extent "
                        f"[{entry.offset}, {entry.offset + entry.size}) beyond "
                        f"container size {size}"
                    )
                elif check_entry_hashes:
                    data = backend.get(DiskModel.CHUNK, entry.container_id)
                    if sha1(data[entry.offset : entry.offset + entry.size]) != entry.digest:
                        report.error(
                            f"manifest {key.hex()[:12]} entry {i}: digest mismatch"
                        )

    for raw_key in backend.keys(DiskModel.HOOK):
        key = Digest(raw_key)
        report.hooks_checked += 1
        target = Digest(backend.get(DiskModel.HOOK, key))
        hook_manifest = manifests.get(target)
        if hook_manifest is None:
            report.error(
                f"hook {key.hex()[:12]}: dangling manifest {target.hex()[:12]}"
            )
        elif key not in hook_manifest:
            # HHR never re-chunks hook entries, so a hook's digest must
            # survive in its manifest for the life of the store.
            report.error(
                f"hook {key.hex()[:12]}: digest no longer present in its manifest"
            )

    for key in backend.keys(DiskModel.FILE_MANIFEST):
        report.file_manifests_checked += 1
        try:
            fm = FileManifest.from_bytes(backend.get(DiskModel.FILE_MANIFEST, key))
        except _PARSE_ERRORS as e:
            logger.debug(
                "file manifest %s failed to parse", key.hex()[:12], exc_info=True
            )
            report.error(f"file manifest {key.hex()[:12]}: unparseable ({e})")
            continue
        if not deep:
            continue
        for i, e in enumerate(fm.extents):
            size = container_sizes.get(e.container_id)
            if size is None:
                report.error(
                    f"file manifest {fm.file_id!r} extent {i}: container "
                    f"{e.container_id.hex()[:12]} missing"
                )
            elif e.offset + e.size > size:
                report.error(
                    f"file manifest {fm.file_id!r} extent {i}: beyond container"
                )
    return report
