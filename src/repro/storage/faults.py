"""Fault injection and retry policies for storage backends.

The paper's prototype assumes a disk that never fails; a production
store cannot.  This module supplies the two halves of the failure
story:

* :class:`FaultInjectingBackend` — a wrapper that injects a
  **deterministic, seedable** schedule of failures into any backend:
  hard IO errors, retryable transient errors, torn writes (a prefix of
  the payload lands, then the "process dies"), silent bit flips, and
  bare crash points.  Tests use explicit :class:`FaultSpec` schedules
  to place a failure at an exact operation; the CLI's chaos mode uses
  the seeded ``transient_rate`` to sprinkle retryable errors over a
  whole run.
* :class:`RetryingBackend` + :class:`RetryPolicy` — the production
  response to *transient* failures: bounded retries with exponential
  backoff, threaded under every store (and therefore under the whole
  ingest hot path) simply by wrapping the backend.  Permanent errors
  (:class:`BackendError`) and simulated deaths (:class:`CrashPoint`)
  are never retried.

Both wrappers satisfy the full :class:`StorageBackend` contract, so
they compose: ``RetryingBackend(FaultInjectingBackend(DirectoryBackend
(...)))`` is a crash-consistent store under test-controlled weather.
"""

from __future__ import annotations

import random
import time
from collections import Counter
from collections.abc import Callable
from dataclasses import dataclass
from typing import TypeVar

from ..obs.telemetry import note_anomaly
from .backend import StorageBackend

__all__ = [
    "BackendError",
    "TransientBackendError",
    "CrashPoint",
    "FaultSpec",
    "FaultInjectingBackend",
    "RetryPolicy",
    "RetryingBackend",
]

T = TypeVar("T")


class BackendError(Exception):
    """Permanent storage failure — retrying cannot help."""


class TransientBackendError(BackendError):
    """Retryable storage failure (lease timeout, throttling, EINTR...)."""


class CrashPoint(Exception):
    """Simulated process death injected at a kill-point.

    Crash-recovery tests catch this at the very top of a run, then
    reopen the store in a fresh backend and run
    :func:`repro.storage.recover.recover` — exactly what a restarted
    process would do.  :class:`RetryingBackend` never catches it.
    """


#: Fault kinds a :class:`FaultSpec` can inject.
#:
#: * ``io_error`` — raise :class:`BackendError` (permanent, no side effect)
#: * ``transient`` — raise :class:`TransientBackendError` (no side effect)
#: * ``torn`` — on put, store a strict prefix of the payload, then crash;
#:   on get, return a truncated copy
#: * ``bit_flip`` — silently corrupt one bit of the payload
#: * ``crash`` — raise :class:`CrashPoint` before the operation runs
#: * ``crash_after`` — run the operation, then raise :class:`CrashPoint`
FAULT_KINDS = ("io_error", "transient", "torn", "bit_flip", "crash", "crash_after")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire on the ``at``-th matching operation.

    ``op`` (``"put"``/``"get"``/``"delete"``) and ``namespace`` filter
    which operations count as matching; ``None`` matches any.  Counting
    is 0-based and per-spec, so two specs with the same filter fire
    independently.  Each spec fires exactly once.
    """

    kind: str
    op: str | None = None
    namespace: str | None = None
    at: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.op not in (None, "put", "get", "delete"):
            raise ValueError(f"op must be put/get/delete/None, got {self.op!r}")
        if self.at < 0:
            raise ValueError(f"at must be >= 0, got {self.at}")

    def matches(self, op: str, namespace: str) -> bool:
        """Whether an operation counts toward this spec's trigger."""
        return (self.op is None or self.op == op) and (
            self.namespace is None or self.namespace == namespace
        )


class FaultInjectingBackend(StorageBackend):
    """Backend wrapper injecting a deterministic schedule of failures.

    Two injection sources, both reproducible:

    * ``schedule`` — explicit :class:`FaultSpec` kill-points, matched
      by a per-spec operation counter (tests pin a failure to "the 7th
      manifest put").
    * ``transient_rate`` — a seeded Bernoulli coin flipped on every
      put/get/delete that no spec claimed, raising
      :class:`TransientBackendError` (the CLI chaos mode; a fixed seed
      reproduces the exact error sequence).

    ``faults_injected`` counts fired faults by kind so tests and smoke
    jobs can assert the weather actually happened.
    """

    def __init__(
        self,
        inner: StorageBackend,
        schedule: tuple[FaultSpec, ...] | list[FaultSpec] = (),
        seed: int = 0,
        transient_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= transient_rate < 1.0:
            raise ValueError(f"transient_rate must be in [0, 1), got {transient_rate}")
        self.inner = inner
        self.schedule = tuple(schedule)
        self.transient_rate = transient_rate
        self._seen = [0] * len(self.schedule)
        self._fired = [False] * len(self.schedule)
        self._rng = random.Random(seed)
        self.faults_injected: Counter[str] = Counter()

    # ---- fault arming ----------------------------------------------------

    def _next_fault(self, op: str, namespace: str) -> FaultSpec | None:
        hit: FaultSpec | None = None
        for i, spec in enumerate(self.schedule):
            if not spec.matches(op, namespace):
                continue
            if hit is None and not self._fired[i] and self._seen[i] == spec.at:
                self._fired[i] = True
                hit = spec
            self._seen[i] += 1
        if hit is None and self.transient_rate and self._rng.random() < self.transient_rate:
            hit = FaultSpec("transient", op=op)
        if hit is not None:
            self.faults_injected[hit.kind] += 1
        return hit

    def _flip_bit(self, data: bytes) -> bytes:
        if not data:
            return data
        corrupted = bytearray(data)
        corrupted[self._rng.randrange(len(data))] ^= 1 << self._rng.randrange(8)
        return bytes(corrupted)

    # ---- the backend contract, with weather ------------------------------

    def put(self, namespace: str, key: bytes, data: bytes) -> None:
        spec = self._next_fault("put", namespace)
        if spec is None:
            self.inner.put(namespace, key, data)
            return
        where = f"put {namespace}/{key.hex()[:12]}"
        if spec.kind == "io_error":
            raise BackendError(f"injected io_error on {where}")
        if spec.kind == "transient":
            raise TransientBackendError(f"injected transient error on {where}")
        if spec.kind == "torn":
            keep = self._rng.randrange(len(data)) if data else 0
            self.inner.put(namespace, key, data[:keep])
            raise CrashPoint(f"torn write on {where} ({keep}/{len(data)} B landed)")
        if spec.kind == "bit_flip":
            self.inner.put(namespace, key, self._flip_bit(data))
            return
        if spec.kind == "crash":
            raise CrashPoint(f"crash before {where}")
        self.inner.put(namespace, key, data)
        raise CrashPoint(f"crash after {where}")

    def get(self, namespace: str, key: bytes) -> bytes:
        spec = self._next_fault("get", namespace)
        if spec is None:
            return self.inner.get(namespace, key)
        where = f"get {namespace}/{key.hex()[:12]}"
        if spec.kind == "io_error":
            raise BackendError(f"injected io_error on {where}")
        if spec.kind == "transient":
            raise TransientBackendError(f"injected transient error on {where}")
        if spec.kind == "crash":
            raise CrashPoint(f"crash before {where}")
        data = self.inner.get(namespace, key)
        if spec.kind == "torn":
            return data[: self._rng.randrange(len(data))] if data else data
        if spec.kind == "bit_flip":
            return self._flip_bit(data)
        raise CrashPoint(f"crash after {where}")

    def delete(self, namespace: str, key: bytes) -> bool:
        spec = self._next_fault("delete", namespace)
        if spec is not None:
            where = f"delete {namespace}/{key.hex()[:12]}"
            if spec.kind == "io_error":
                raise BackendError(f"injected io_error on {where}")
            if spec.kind == "transient":
                raise TransientBackendError(f"injected transient error on {where}")
            if spec.kind == "crash":
                raise CrashPoint(f"crash before {where}")
            if spec.kind == "crash_after":
                self.inner.delete(namespace, key)
                raise CrashPoint(f"crash after {where}")
            # torn / bit_flip make no sense for delete; fall through
        return self.inner.delete(namespace, key)

    # ---- read-only delegation (never injected) ---------------------------

    def exists(self, namespace: str, key: bytes) -> bool:
        return self.inner.exists(namespace, key)

    def keys(self, namespace: str) -> list[bytes]:
        return self.inner.keys(namespace)

    def object_count(self, namespace: str) -> int:
        return self.inner.object_count(namespace)

    def bytes_stored(self, namespace: str) -> int:
        return self.inner.bytes_stored(namespace)

    def namespaces(self) -> list[str]:
        return self.inner.namespaces()


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient backend errors.

    ``attempts`` counts every try including the first; the delay before
    retry *i* (0-based) is ``base_delay * multiplier**i``, capped at
    ``max_delay``.  Deterministic — no jitter — so metered runs stay
    reproducible.
    """

    attempts: int = 4
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0 or self.multiplier < 1.0:
            raise ValueError("delays must be >= 0 and multiplier >= 1")

    def delay(self, retry_index: int) -> float:
        """Backoff before the ``retry_index``-th retry (0-based)."""
        return min(self.max_delay, self.base_delay * self.multiplier**retry_index)


class RetryingBackend(StorageBackend):
    """Backend wrapper retrying :class:`TransientBackendError`.

    Every operation is retried up to ``policy.attempts`` times with the
    policy's backoff.  Exhausting the budget re-raises the last error
    and reports through the telemetry anomaly channel
    (``anomaly.backend.retry_exhausted``); successful retries are
    counted on :attr:`retries`.  Permanent :class:`BackendError`,
    :class:`CrashPoint` and ordinary ``KeyError`` pass straight
    through.
    """

    def __init__(
        self,
        inner: StorageBackend,
        policy: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self._sleep = sleep
        self.retries = 0  # transient errors absorbed by a later success
        self.giveups = 0  # operations that exhausted the attempt budget

    def _call(self, fn: Callable[[], T]) -> T:
        last: TransientBackendError | None = None
        for attempt in range(self.policy.attempts):
            try:
                return fn()
            except TransientBackendError as e:
                last = e
                if attempt + 1 < self.policy.attempts:
                    self.retries += 1
                    self._sleep(self.policy.delay(attempt))
        self.giveups += 1
        assert last is not None
        note_anomaly(
            "backend.retry_exhausted",
            f"{self.policy.attempts} attempts failed: {last}",
        )
        raise last

    def put(self, namespace: str, key: bytes, data: bytes) -> None:
        self._call(lambda: self.inner.put(namespace, key, data))

    def get(self, namespace: str, key: bytes) -> bytes:
        return self._call(lambda: self.inner.get(namespace, key))

    def exists(self, namespace: str, key: bytes) -> bool:
        return self._call(lambda: self.inner.exists(namespace, key))

    def keys(self, namespace: str) -> list[bytes]:
        return self._call(lambda: self.inner.keys(namespace))

    def delete(self, namespace: str, key: bytes) -> bool:
        return self._call(lambda: self.inner.delete(namespace, key))

    def object_count(self, namespace: str) -> int:
        return self._call(lambda: self.inner.object_count(namespace))

    def bytes_stored(self, namespace: str) -> int:
        return self._call(lambda: self.inner.bytes_stored(namespace))

    def namespaces(self) -> list[str]:
        return self._call(lambda: self.inner.namespaces())
