"""Crash recovery — the repairing counterpart of :mod:`.verify`.

:func:`verify_store` *detects* inconsistencies; :func:`recover` makes
the store consistent again after a crash or a torn write, following
one rule: **never delete bytes that might still be wanted** — damaged
objects are *quarantined* (moved to a ``quarantine.<namespace>``
namespace, invisible to every store walk) rather than destroyed, except
for Hooks, which are derived data and safe to drop.

What a crash can leave behind, and the repair for each:

* stray ``*.tmp`` files from an interrupted atomic put — deleted
  (:meth:`DirectoryBackend.purge_incomplete`);
* torn/unparseable Manifests and FileManifests (a non-atomic backend,
  or injected torn writes) — quarantined;
* Manifests stored under the wrong key, failing to tile their
  DiskChunk, or pointing at a missing container (a crash mid-GC-sweep)
  — quarantined; multi-container manifests are instead *rewritten*
  without their dead entries when some containers survive;
* FileManifests whose extents fall outside a stored container (the
  file's container write never completed) — quarantined: the file was
  not durable before the crash;
* Hooks that are the wrong size, dangle (their manifest died with the
  crash or was quarantined above), or whose digest left the manifest —
  deleted;
* with ``check_hashes=True``, containers whose bytes no longer match
  their manifest entry digests (silent corruption) — quarantined,
  together with everything that references them, via the passes above.

Every repair is counted in the :class:`RecoveryReport` and reported
through the telemetry anomaly channel
(:func:`repro.obs.telemetry.note_anomaly`), and the pass finishes with
a full :func:`verify_store` walk whose report it returns — recovery
that does not end in ``ok`` is a bug (tested by the crash matrix).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from ..hashing.digest import HASH_SIZE, Digest, sha1
from ..obs.telemetry import note_anomaly
from .backend import StorageBackend
from .disk_model import DiskModel
from .file_manifest import FileManifest, FileManifestStore
from .manifest import Manifest
from .multi_manifest import MultiManifest
from .verify import _PARSE_ERRORS, IntegrityReport, load_manifest, verify_store

__all__ = ["QUARANTINE_PREFIX", "RecoveryReport", "recover"]

logger = logging.getLogger(__name__)

#: Namespace prefix quarantined objects are moved under.  The four
#: store namespaces are fixed names, so prefixed namespaces can never
#: collide with live data and are invisible to verify/GC/restore walks.
QUARANTINE_PREFIX = "quarantine."


@dataclass
class RecoveryReport:
    """What one recovery pass found and repaired."""

    tmp_purged: int = 0
    containers_quarantined: int = 0
    manifests_quarantined: int = 0
    manifests_rewritten: int = 0
    file_manifests_quarantined: int = 0
    hooks_deleted: int = 0
    actions: list[str] = field(default_factory=list)
    integrity: IntegrityReport | None = None

    @property
    def repairs(self) -> int:
        """Total repair actions taken (0 = the store was clean)."""
        return (
            self.tmp_purged
            + self.containers_quarantined
            + self.manifests_quarantined
            + self.manifests_rewritten
            + self.file_manifests_quarantined
            + self.hooks_deleted
        )

    @property
    def ok(self) -> bool:
        """Whether the post-recovery integrity walk came back clean."""
        return self.integrity is not None and self.integrity.ok

    def act(self, msg: str) -> None:
        """Record one repair action."""
        self.actions.append(msg)
        logger.info("recover: %s", msg)

    def summary(self) -> str:
        """One-line human-readable outcome."""
        status = "OK" if self.ok else "NOT CLEAN"
        return (
            f"recovery {status}: {self.repairs} repairs "
            f"({self.tmp_purged} strays purged, "
            f"{self.containers_quarantined + self.manifests_quarantined + self.file_manifests_quarantined} "
            f"objects quarantined, {self.manifests_rewritten} manifests rewritten, "
            f"{self.hooks_deleted} hooks deleted)"
        )


def _quarantine(backend: StorageBackend, namespace: str, key: Digest, raw: bytes) -> None:
    backend.put(QUARANTINE_PREFIX + namespace, key, raw)
    backend.delete(namespace, key)


def _corrupt_containers(
    backend: StorageBackend, container_sizes: dict[Digest, int]
) -> set[Digest]:
    """Containers whose bytes mismatch any in-bounds manifest entry digest."""
    bad: set[Digest] = set()
    for raw_key in backend.keys(DiskModel.MANIFEST):
        try:
            m = load_manifest(backend.get(DiskModel.MANIFEST, Digest(raw_key)))
        except _PARSE_ERRORS:
            continue  # quarantined later by the manifest pass
        if isinstance(m, Manifest):
            spans = [(m.chunk_id, e.digest, e.offset, e.size) for e in m.entries]
        else:
            spans = [(e.container_id, e.digest, e.offset, e.size) for e in m.entries]
        for cid, digest, offset, size in spans:
            total = container_sizes.get(cid)
            if cid in bad or total is None or offset + size > total:
                continue
            data = backend.get(DiskModel.CHUNK, cid)
            if sha1(data[offset : offset + size]) != digest:
                bad.add(cid)
    return bad


def recover(backend: StorageBackend, check_hashes: bool = False) -> RecoveryReport:
    """Repair a store after a crash; returns what was done.

    Safe on a clean store (``report.repairs == 0``) and idempotent: a
    second pass over a recovered store finds nothing to do.

    Parameters
    ----------
    check_hashes:
        Also re-hash every manifest entry's container bytes and
        quarantine silently-corrupted containers (expensive; off by
        default because a crash cannot corrupt an already-durable
        object — only torn/partial writes can, and those are caught
        structurally).
    """
    report = RecoveryReport()

    # 0. Sweep interrupted-put debris so nothing below trips over it.
    # Duck-typed: DirectoryBackend sweeps its directories, a
    # PrefixedBackend tenant view sweeps only under its own prefix,
    # MemoryBackend has no debris to sweep.
    purge = getattr(backend, "purge_incomplete", None)
    if callable(purge):
        report.tmp_purged = purge()
        if report.tmp_purged:
            report.act(f"purged {report.tmp_purged} stray temp files")

    container_sizes: dict[Digest, int] = {
        Digest(k): len(backend.get(DiskModel.CHUNK, k))
        for k in backend.keys(DiskModel.CHUNK)
    }

    # 1. Optional deep pass: silently-corrupted containers go first,
    #    so the structural passes below see them as "missing" and
    #    quarantine everything that depends on them.
    if check_hashes:
        for cid in sorted(_corrupt_containers(backend, container_sizes)):
            _quarantine(backend, DiskModel.CHUNK, cid, backend.get(DiskModel.CHUNK, cid))
            del container_sizes[cid]
            report.containers_quarantined += 1
            report.act(f"quarantined corrupt container {cid.hex()[:12]}")

    # 2. Manifests: parse, key, container presence, tiling.
    manifests: dict[Digest, Manifest | MultiManifest] = {}
    for raw_key in sorted(backend.keys(DiskModel.MANIFEST)):
        key = Digest(raw_key)
        raw = backend.get(DiskModel.MANIFEST, key)
        try:
            m = load_manifest(raw)
        except _PARSE_ERRORS as e:
            _quarantine(backend, DiskModel.MANIFEST, key, raw)
            report.manifests_quarantined += 1
            report.act(f"quarantined unparseable manifest {key.hex()[:12]} ({e})")
            continue
        if m.manifest_id != key:
            _quarantine(backend, DiskModel.MANIFEST, key, raw)
            report.manifests_quarantined += 1
            report.act(f"quarantined manifest {key.hex()[:12]} stored under wrong key")
            continue
        if isinstance(m, Manifest):
            size = container_sizes.get(m.chunk_id)
            bad_reason = None
            if size is None:
                bad_reason = f"container {m.chunk_id.hex()[:12]} missing"
            else:
                try:
                    m.validate_tiling(size)
                except AssertionError as e:
                    bad_reason = f"does not tile its container ({e})"
            if bad_reason is not None:
                _quarantine(backend, DiskModel.MANIFEST, key, raw)
                report.manifests_quarantined += 1
                report.act(f"quarantined manifest {key.hex()[:12]}: {bad_reason}")
                continue
        else:
            kept = [
                e
                for e in m.entries
                if e.container_id in container_sizes
                and e.offset + e.size <= container_sizes[e.container_id]
            ]
            if not kept:
                _quarantine(backend, DiskModel.MANIFEST, key, raw)
                report.manifests_quarantined += 1
                report.act(
                    f"quarantined manifest {key.hex()[:12]}: all containers missing"
                )
                continue
            if len(kept) != len(m.entries):
                m = MultiManifest(key, kept)
                backend.put(DiskModel.MANIFEST, key, m.to_bytes())
                report.manifests_rewritten += 1
                report.act(
                    f"rewrote manifest {key.hex()[:12]} without its dead containers"
                )
        manifests[key] = m

    # 3. FileManifests: a file is durable only if its recipe parses,
    #    sits under the right key, and every extent is backed by
    #    stored container bytes.
    for raw_key in sorted(backend.keys(DiskModel.FILE_MANIFEST)):
        key = Digest(raw_key)
        raw = backend.get(DiskModel.FILE_MANIFEST, key)
        bad_reason = None
        try:
            fm = FileManifest.from_bytes(raw)
        except _PARSE_ERRORS as e:
            bad_reason = f"unparseable ({e})"
        else:
            if FileManifestStore.key_for(fm.file_id) != key:
                bad_reason = "stored under wrong key"
            else:
                for i, e in enumerate(fm.extents):
                    size = container_sizes.get(e.container_id)
                    if size is None:
                        bad_reason = f"extent {i}: container {e.container_id.hex()[:12]} missing"
                        break
                    if e.offset + e.size > size:
                        bad_reason = f"extent {i}: beyond container size {size}"
                        break
        if bad_reason is not None:
            _quarantine(backend, DiskModel.FILE_MANIFEST, key, raw)
            report.file_manifests_quarantined += 1
            report.act(f"quarantined file manifest {key.hex()[:12]}: {bad_reason}")

    # 4. Hooks: derived data — anything malformed or dangling is
    #    simply deleted (the digest can be re-hooked by a future run).
    for raw_key in sorted(backend.keys(DiskModel.HOOK)):
        key = Digest(raw_key)
        payload = backend.get(DiskModel.HOOK, key)
        bad_reason = None
        if len(payload) != HASH_SIZE:
            bad_reason = f"payload is {len(payload)} bytes, want {HASH_SIZE}"
        else:
            target = manifests.get(Digest(payload))
            if target is None:
                bad_reason = f"dangling manifest {payload.hex()[:12]}"
            elif key not in target:
                bad_reason = "digest no longer present in its manifest"
        if bad_reason is not None:
            backend.delete(DiskModel.HOOK, key)
            report.hooks_deleted += 1
            report.act(f"deleted hook {key.hex()[:12]}: {bad_reason}")

    # 5. Prove it: the recovered store must verify clean.
    report.integrity = verify_store(backend, deep=True, check_entry_hashes=check_hashes)

    for name, count in (
        ("recover.tmp_purged", report.tmp_purged),
        ("recover.containers_quarantined", report.containers_quarantined),
        ("recover.manifests_quarantined", report.manifests_quarantined),
        ("recover.manifests_rewritten", report.manifests_rewritten),
        ("recover.file_manifests_quarantined", report.file_manifests_quarantined),
        ("recover.hooks_deleted", report.hooks_deleted),
    ):
        if count:
            note_anomaly(name, count=count)
    return report
