"""File-recipe compression (after Meister, Brinkmann & Süß, FAST'13).

The paper's related work cites entropy-coded post-process compression
of file recipes, noting "file recipes [are] only one of many types of
metadata generated during deduplication."  This module implements that
post-process for our FileManifests, quantifying how much of the
FileManifest MetaDataRatio (the paper's Fig. 7(c)) survives
compression.

Encoding pipeline, mirroring the FAST'13 structure:

1. **Container dictionary** — each distinct 20-byte container address
   appears once; extents reference it by a small index.  Backup
   recipes are dominated by long runs against few containers, so this
   removes most of the 20-byte-per-entry cost.
2. **Delta + zig-zag + varint offsets** — consecutive extents in the
   same container are usually adjacent (offset == previous end), so
   the delta is 0 and encodes in one byte; sizes are plain varints.
3. **zlib entropy stage** — squeezes the residual structure (stdlib,
   matching the paper's "entropy coding" stage).

``encode``/``decode`` round-trip exactly; the codec never changes
restore semantics, only at-rest bytes.
"""

from __future__ import annotations

import zlib

from ..hashing.digest import HASH_SIZE, Digest
from .file_manifest import FileExtent, FileManifest

__all__ = ["encode_recipe", "decode_recipe", "compression_ratio"]

_MAGIC = b"RCP1"


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError(f"varint requires non-negative value, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(buf: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise ValueError("varint too long (corrupt recipe)")


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


def encode_recipe(fm: FileManifest, level: int = 6) -> bytes:
    """Compress a FileManifest; decodable by :func:`decode_recipe`."""
    containers: list[Digest] = []
    container_index: dict[Digest, int] = {}
    body = bytearray()
    _write_varint(body, len(fm.extents))
    prev_container = -1
    prev_end = 0
    for e in fm.extents:
        idx = container_index.get(e.container_id)
        if idx is None:
            idx = container_index[e.container_id] = len(containers)
            containers.append(e.container_id)
        _write_varint(body, idx)
        if idx == prev_container:
            # adjacent-run optimisation: delta against previous end
            _write_varint(body, _zigzag(e.offset - prev_end))
        else:
            _write_varint(body, _zigzag(e.offset))
        _write_varint(body, e.size)
        prev_container = idx
        prev_end = e.offset + e.size

    name = fm.file_id.encode()
    head = bytearray(_MAGIC)
    _write_varint(head, len(name))
    head += name
    _write_varint(head, len(containers))
    head += b"".join(containers)
    return bytes(head) + zlib.compress(bytes(body), level)


def decode_recipe(raw: bytes) -> FileManifest:
    """Inverse of :func:`encode_recipe` (exact round-trip)."""
    if raw[:4] != _MAGIC:
        raise ValueError("not a compressed recipe (bad magic)")
    pos = 4
    name_len, pos = _read_varint(raw, pos)
    name = raw[pos : pos + name_len].decode()
    pos += name_len
    n_containers, pos = _read_varint(raw, pos)
    containers = [
        Digest(raw[pos + i * HASH_SIZE : pos + (i + 1) * HASH_SIZE])
        for i in range(n_containers)
    ]
    pos += n_containers * HASH_SIZE
    body = zlib.decompress(raw[pos:])

    extents: list[FileExtent] = []
    bpos = 0
    count, bpos = _read_varint(body, bpos)
    prev_container = -1
    prev_end = 0
    for _ in range(count):
        idx, bpos = _read_varint(body, bpos)
        zz, bpos = _read_varint(body, bpos)
        delta = _unzigzag(zz)
        offset = (prev_end + delta) if idx == prev_container else delta
        size, bpos = _read_varint(body, bpos)
        extents.append(FileExtent(containers[idx], offset, size))
        prev_container = idx
        prev_end = offset + size
    return FileManifest(name, extents)


def compression_ratio(fm: FileManifest, level: int = 6) -> float:
    """Raw recipe bytes / compressed bytes (>1 means the codec wins)."""
    raw = len(fm.to_bytes())
    compressed = len(encode_recipe(fm, level))
    return raw / max(1, compressed)
