"""Garbage collection — retention and space reclamation.

The paper's pipeline only ever adds data; a production backup store
also *expires* old generations.  Deletion under deduplication is
subtle: a DiskChunk container may hold bytes referenced by many other
files, so space only returns when **no** FileManifest references any
byte of the container.  This module implements the classic two-step:

1. :func:`delete_file` — drop a FileManifest (the only per-file
   object; chunk data is shared and cannot be touched here).
2. :func:`sweep` — mark-and-sweep over the whole store: walk every
   surviving FileManifest, collect the referenced container set, and
   delete unreferenced containers together with their now-useless
   metadata (manifests whose containers are all gone, and hooks that
   pointed at deleted manifests).

Sweeping preserves the store invariants — a swept store still passes
:func:`repro.storage.verify.verify_store` and restores every
surviving file byte-identically (tested).

Container granularity means space reclamation is *coarse*: one
surviving reference pins a whole container (real systems defragment
with container rewriting, which would break the paper's write-once
DiskChunk rule, so we deliberately stop at the paper-compatible
design and expose the pinned-bytes figure instead).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hashing.digest import Digest
from .backend import StorageBackend
from .disk_model import DiskModel
from .file_manifest import FileManifest, FileManifestStore
from .manifest import Manifest
from .multi_manifest import MultiManifest
from .verify import load_manifest

__all__ = ["GCReport", "delete_file", "sweep"]


@dataclass(frozen=True)
class GCReport:
    """Outcome of one sweep."""

    containers_deleted: int
    containers_kept: int
    bytes_reclaimed: int
    bytes_pinned: int  # unreferenced bytes stuck in partially-used containers
    manifests_deleted: int
    hooks_deleted: int

    def summary(self) -> str:
        """One-line human-readable sweep outcome."""
        return (
            f"gc: reclaimed {self.bytes_reclaimed:,} B in "
            f"{self.containers_deleted} containers "
            f"({self.manifests_deleted} manifests, {self.hooks_deleted} hooks); "
            f"{self.bytes_pinned:,} B pinned in {self.containers_kept} live containers"
        )


def delete_file(backend: StorageBackend, file_id: str) -> bool:
    """Drop one file's recipe; returns whether it existed.

    Chunk data is shared, so nothing else is touched — run
    :func:`sweep` afterwards to reclaim space.
    """
    return backend.delete(DiskModel.FILE_MANIFEST, FileManifestStore.key_for(file_id))


def _union_bytes(spans: list[tuple[int, int]]) -> int:
    """Total bytes covered by the union of ``[start, end)`` intervals."""
    spans.sort()
    total = 0
    cur_start, cur_end = spans[0]
    for start, end in spans[1:]:
        if start > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = start, end
        elif end > cur_end:
            cur_end = end
    return total + (cur_end - cur_start)


def _referenced_extents(backend: StorageBackend) -> dict[Digest, int]:
    """Container → *distinct* referenced bytes over all FileManifests.

    Many files can reference the same container extent (that is the
    whole point of deduplication), so referenced bytes are the union of
    the extent intervals, not their sum — summing per reference would
    overcount shared containers past their physical size and make the
    pinned-bytes figure meaningless.
    """
    spans: dict[Digest, list[tuple[int, int]]] = {}
    for key in backend.keys(DiskModel.FILE_MANIFEST):
        fm = FileManifest.from_bytes(backend.get(DiskModel.FILE_MANIFEST, key))
        for e in fm.extents:
            spans.setdefault(e.container_id, []).append((e.offset, e.offset + e.size))
    return {cid: _union_bytes(sp) for cid, sp in spans.items()}


def sweep(backend: StorageBackend) -> GCReport:
    """Mark-and-sweep unreferenced containers and their metadata."""
    referenced = _referenced_extents(backend)

    containers_deleted = bytes_reclaimed = 0
    containers_kept = bytes_pinned = 0
    live_containers: set[Digest] = set()
    for raw_cid in backend.keys(DiskModel.CHUNK):
        cid = Digest(raw_cid)
        size = len(backend.get(DiskModel.CHUNK, cid))
        if cid in referenced:
            live_containers.add(cid)
            containers_kept += 1
            # referenced[cid] is a union of in-bounds extents, so it can
            # only exceed the container size on a corrupt store (extents
            # past the end); clamp defensively rather than go negative.
            bytes_pinned += max(0, size - referenced[cid])
            continue
        backend.delete(DiskModel.CHUNK, cid)
        containers_deleted += 1
        bytes_reclaimed += size

    # Manifests survive while any of their containers do.  Surviving
    # multi-container manifests are rewritten without entries for dead
    # containers, so the store keeps verifying clean.
    manifests_deleted = 0
    dead_manifests: set[Digest] = set()
    surviving_digests: dict[Digest, set[Digest]] = {}
    for raw_mid in backend.keys(DiskModel.MANIFEST):
        mid = Digest(raw_mid)
        manifest = load_manifest(backend.get(DiskModel.MANIFEST, mid))
        if isinstance(manifest, Manifest):
            containers = {manifest.chunk_id}
        else:
            assert isinstance(manifest, MultiManifest)
            containers = {e.container_id for e in manifest.entries}
        live = containers & live_containers
        if containers and not live:
            backend.delete(DiskModel.MANIFEST, mid)
            dead_manifests.add(mid)
            manifests_deleted += 1
            continue
        if isinstance(manifest, MultiManifest) and live != containers:
            kept = [e for e in manifest.entries if e.container_id in live]
            backend.put(
                DiskModel.MANIFEST, mid, MultiManifest(mid, kept).to_bytes()
            )
            surviving_digests[mid] = {e.digest for e in kept}
        else:
            surviving_digests[mid] = set(manifest.index)

    hooks_deleted = 0
    for hook in backend.keys(DiskModel.HOOK):
        target = Digest(backend.get(DiskModel.HOOK, hook))
        digests = surviving_digests.get(target)  # None: dead or dangling
        if digests is None or hook not in digests:
            backend.delete(DiskModel.HOOK, hook)
            hooks_deleted += 1

    return GCReport(
        containers_deleted=containers_deleted,
        containers_kept=containers_kept,
        bytes_reclaimed=bytes_reclaimed,
        bytes_pinned=bytes_pinned,
        manifests_deleted=manifests_deleted,
        hooks_deleted=hooks_deleted,
    )
