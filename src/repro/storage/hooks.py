"""Hook store — the on-disk sample index.

A *Hook* is a hash-addressable file named by a sampled chunk hash whose
20-byte payload is the address of the Manifest it belongs to ("each
Hook contains a 20-byte SHA-1 address to the Manifest it belongs to").
Hooks are the disk-resident entry points for duplicate detection: when
the Bloom filter says an incoming hash may exist, the deduplicator
queries this store; a hit yields the Manifest to load.

Hook files are immutable once written.  Metering follows Table II:
``query`` (existence probe), ``read`` (fetch the manifest address on a
hit) and ``write`` (new hook).
"""

from __future__ import annotations

from ..hashing.digest import HASH_SIZE, Digest
from .backend import StorageBackend
from .disk_model import DiskModel

__all__ = ["HookStore"]


class HookStore:
    """Metered digest → manifest-address mapping, one file per hook."""

    def __init__(self, backend: StorageBackend, meter: DiskModel) -> None:
        self._backend = backend
        self._meter = meter

    def put(self, hook_digest: Digest, manifest_id: Digest) -> None:
        """Write a hook file (idempotent for identical content)."""
        if len(manifest_id) != HASH_SIZE:
            raise ValueError(f"manifest_id must be {HASH_SIZE} bytes")
        if self._backend.exists(DiskModel.HOOK, hook_digest):
            # The paper's hooks are write-once; re-registration of the
            # same digest keeps the original mapping.
            return
        self._backend.put(DiskModel.HOOK, hook_digest, manifest_id)
        self._meter.record(DiskModel.HOOK, "write", HASH_SIZE)

    def query(self, hook_digest: Digest) -> bool:
        """On-disk existence probe; one metered query access."""
        self._meter.record(DiskModel.HOOK, "query", 0)
        return self._backend.exists(DiskModel.HOOK, hook_digest)

    def get(self, hook_digest: Digest) -> Digest:
        """Fetch the manifest address; one metered read."""
        data = self._backend.get(DiskModel.HOOK, hook_digest)
        self._meter.record(DiskModel.HOOK, "read", len(data))
        return Digest(data)

    def lookup(self, hook_digest: Digest) -> Digest | None:
        """Query + read combined: manifest id, or ``None`` if absent."""
        if not self.query(hook_digest):
            return None
        return self.get(hook_digest)

    def count(self) -> int:
        """Number of hook files (= hook inodes)."""
        return self._backend.object_count(DiskModel.HOOK)

    def stored_bytes(self) -> int:
        """Total hook payload bytes (20 B per hook)."""
        return self._backend.bytes_stored(DiskModel.HOOK)
