"""Retention policies — which backups to expire, GFS-style.

:mod:`repro.storage.gc` knows how to delete a file and reclaim space;
this module decides *what* to delete.  Backup fleets almost never
expire ad-hoc: they keep the last N generations, plus sparser
long-horizon samples (the grandfather-father-son rotation).  File ids
produced by :mod:`repro.workloads` carry their generation in the path
(``pc03/gen007/...``), which the default extractor parses; any other
naming scheme can supply its own.

:func:`plan_retention` is pure (ids in, ids out) so policies are
testable without a store; :func:`apply_retention` executes the plan
via :func:`~repro.storage.gc.delete_file` + :func:`~repro.storage.gc.sweep`.
"""

from __future__ import annotations

import re
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from .backend import StorageBackend
from .gc import GCReport, delete_file, sweep

__all__ = ["RetentionPolicy", "default_generation_of", "plan_retention", "apply_retention"]

_GEN_RE = re.compile(r"(?:^|/)gen(\d+)(?:/|$)")


def default_generation_of(file_id: str) -> int | None:
    """Extract the generation number from ``.../genNNN/...`` ids.

    Returns ``None`` for ids without a generation component — such
    files are never expired by a generation-based policy.
    """
    m = _GEN_RE.search(file_id)
    return int(m.group(1)) if m else None


@dataclass(frozen=True)
class RetentionPolicy:
    """Generation-based keep rules.

    Parameters
    ----------
    keep_last:
        The newest ``keep_last`` generations are always kept.
    keep_every:
        Additionally keep every ``keep_every``-th older generation
        (``0`` disables — the grandfather tier of a GFS rotation).
    """

    keep_last: int = 7
    keep_every: int = 0

    def __post_init__(self) -> None:
        if self.keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {self.keep_last}")
        if self.keep_every < 0:
            raise ValueError(f"keep_every must be >= 0, got {self.keep_every}")

    def kept_generations(self, generations: Sequence[int]) -> set[int]:
        """Which of the present generations survive."""
        present = sorted(set(generations))
        if not present:
            return set()
        kept = set(present[-self.keep_last :])
        if self.keep_every:
            kept.update(g for g in present if g % self.keep_every == 0)
        return kept


def plan_retention(
    file_ids: Iterable[str],
    policy: RetentionPolicy,
    generation_of: Callable[[str], int | None] = default_generation_of,
) -> list[str]:
    """File ids the policy expires (pure; no store access)."""
    ids = list(file_ids)
    generations = [g for g in (generation_of(f) for f in ids) if g is not None]
    kept = policy.kept_generations(generations)
    victims: list[str] = []
    for file_id in ids:
        g = generation_of(file_id)
        if g is not None and g not in kept:
            victims.append(file_id)
    return victims


def apply_retention(
    backend: StorageBackend,
    file_ids: Iterable[str],
    policy: RetentionPolicy,
    generation_of: Callable[[str], int | None] = default_generation_of,
) -> tuple[list[str], GCReport]:
    """Expire per policy and sweep; returns (deleted ids, GC report)."""
    victims = plan_retention(file_ids, policy, generation_of)
    for file_id in victims:
        delete_file(backend, file_id)
    return victims, sweep(backend)
