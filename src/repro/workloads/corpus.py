"""Backup corpus — the full multi-machine, multi-generation stream.

This is the repository's stand-in for the paper's test dataset
("disk image backups of a group of 14 PCs ... over a period of two
weeks", 1.0 TB).  The default shape keeps the paper's fleet structure
(14 machines, 14 generations, 3 operating systems) at a size pure-
Python experiments can chew through; every dimension is a parameter.

Files are yielded in backup order: generation 0 of every machine, then
generation 1, and so on — the order a nightly backup job would feed an
in-line deduplicator, and the order that gives temporal locality its
meaning for manifest caching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator

from .machine import BackupFile, Machine, MachineConfig
from .mutations import EditConfig
from .templates import TemplateLibrary

__all__ = ["CorpusConfig", "BackupCorpus", "small_corpus", "tiny_corpus"]


@dataclass(frozen=True)
class CorpusConfig:
    """Fleet shape and churn parameters."""

    machines: int = 14
    generations: int = 14
    os_count: int = 3
    app_count: int = 6
    os_bytes: int = 1 << 21
    app_bytes: int = 1 << 19
    user_bytes: int = 1 << 21
    mean_file: int = 1 << 17
    edits: EditConfig = field(default_factory=EditConfig)
    #: Per-machine append-only log data (0 disables; see MachineConfig).
    log_bytes: int = 0
    #: Emit one concatenated disk image per machine per generation —
    #: the paper's literal input shape ("disk image backups") — instead
    #: of individual files.  Amortises per-file metadata over the whole
    #: image, the way GB-scale images do at the paper's scale.
    as_disk_images: bool = False
    seed: int = 2013  # the paper's year; any value works

    def __post_init__(self) -> None:
        if self.machines <= 0 or self.generations <= 0:
            raise ValueError("machines and generations must be positive")


class BackupCorpus:
    """Iterable corpus of :class:`BackupFile` records.

    Iterating the corpus twice from the same config yields identical
    bytes (machines are seeded per-index off the corpus seed).
    """

    def __init__(self, config: CorpusConfig | None = None):
        self.config = config or CorpusConfig()
        cfg = self.config
        self._library = TemplateLibrary(
            seed=cfg.seed,
            os_count=cfg.os_count,
            app_count=cfg.app_count,
            os_bytes=cfg.os_bytes,
            app_bytes=cfg.app_bytes,
            mean_file=cfg.mean_file,
        )

    def _make_machines(self) -> list[Machine]:
        cfg = self.config
        machines = []
        for m in range(cfg.machines):
            mc = MachineConfig(
                os_index=m % cfg.os_count,
                app_indices=tuple(
                    (m + k) % max(1, cfg.app_count) for k in range(2)
                ),
                user_bytes=cfg.user_bytes,
                mean_user_file=cfg.mean_file,
                edits=cfg.edits,
                log_bytes=cfg.log_bytes,
            )
            machines.append(
                Machine(f"pc{m:02d}", self._library, mc, seed=cfg.seed * 10_007 + m)
            )
        return machines

    def __iter__(self) -> Iterator[BackupFile]:
        """All files, generation-major (the nightly-backup order).

        With ``as_disk_images`` set, each machine-generation's files
        are concatenated (name-sorted, so layout is generation-stable)
        into a single ``<machine>/gen<g>/disk.img`` record.
        """
        machines = self._make_machines()
        for g in range(self.config.generations):
            for machine in machines:
                files = machine.generation(g)
                if not self.config.as_disk_images:
                    yield from files
                    continue
                ordered = sorted(files, key=lambda f: f.file_id)
                image = b"".join(f.data for f in ordered)
                yield BackupFile(f"{machine.machine_id}/gen{g:03d}/disk.img", image)

    def files(self) -> list[BackupFile]:
        """Materialise the whole corpus (convenient for small configs)."""
        return list(self)

    def total_bytes(self) -> int:
        """Total corpus size (regenerates the stream to count)."""
        return sum(f.size for f in self)

    def write_to(self, root: str | "os.PathLike") -> int:
        """Materialise the corpus as real files under ``root``.

        Lets external tools (or ``repro-dedup run --input-dir``) work
        with the exact seeded corpus; returns the number of files
        written.  File ids become relative paths.
        """
        import os

        count = 0
        for f in self:
            path = os.path.join(os.fspath(root), f.file_id)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "wb") as fh:
                fh.write(f.data)
            count += 1
        return count


def small_corpus(seed: int = 2013) -> BackupCorpus:
    """~40 MB fleet used by the benchmark harness (minutes-scale)."""
    return BackupCorpus(
        CorpusConfig(
            machines=4,
            generations=5,
            os_count=2,
            os_bytes=1 << 20,
            app_bytes=1 << 18,
            user_bytes=1 << 19,
            mean_file=1 << 16,
            seed=seed,
        )
    )


def tiny_corpus(seed: int = 2013) -> BackupCorpus:
    """~2–4 MB fleet used by integration tests (seconds-scale)."""
    return BackupCorpus(
        CorpusConfig(
            machines=3,
            generations=3,
            os_count=2,
            os_bytes=1 << 18,
            app_bytes=1 << 16,
            user_bytes=1 << 17,
            mean_file=1 << 15,
            seed=seed,
        )
    )
