"""One simulated PC and its evolution across backup generations.

A machine owns three classes of content, mirroring a real desktop
disk image:

* **OS files** — referenced from the template library; shared verbatim
  with every machine running the same OS; they receive light edits
  (system updates) at a reduced change rate.
* **App files** — a machine-specific subset of app bundles, also
  lightly edited.
* **User files** — unique per machine, generated from the machine's
  own seed, edited at the full configured change rate every
  generation; occasionally new user files appear and old ones vanish.

``generation(g)`` materialises the complete file list for backup day
``g``; generations are built incrementally and cached so that day ``g``
is day ``g-1`` plus one round of edits, matching how a real backup
stream evolves.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass, field, replace
from collections.abc import Callable
from typing import BinaryIO

import numpy as np

from .mutations import EditConfig, mutate
from .templates import TemplateLibrary

__all__ = ["BackupFile", "MachineConfig", "Machine"]


@dataclass(frozen=True)
class BackupFile:
    """One file in one backup generation (identity + content).

    Content comes from exactly one of two places:

    * ``data`` — the whole file as ``bytes`` (the original in-memory
      path, still used by the synthetic workload generators);
    * ``source`` — a zero-argument factory returning a fresh binary
      reader, for streaming ingest of files larger than RAM.  A factory
      rather than an open handle so the file can be read more than once
      (ingest, write-verify).

    ``open()`` is the uniform accessor: the dedup cores only ever pull
    windows from it, so both kinds ingest through the same
    bounded-memory pipeline.
    """

    file_id: str
    data: bytes | None = field(repr=False, default=None)
    source: Callable[[], BinaryIO] | None = field(repr=False, default=None)
    #: Size in bytes for ``source``-backed files (required there; the
    #: workload reporting helpers sum sizes without reading content).
    size_hint: int | None = None

    def __post_init__(self) -> None:
        if (self.data is None) == (self.source is None):
            raise ValueError("BackupFile needs exactly one of data= or source=")
        if self.source is not None and self.size_hint is None:
            raise ValueError("source-backed BackupFile requires size_hint")

    @property
    def size(self) -> int:
        """File size in bytes."""
        if self.data is not None:
            return len(self.data)
        return self.size_hint  # type: ignore[return-value]

    def open(self) -> BinaryIO:
        """A fresh binary reader over the file's content."""
        if self.data is not None:
            return io.BytesIO(self.data)
        return self.source()  # type: ignore[misc]

    def read_bytes(self) -> bytes:
        """Materialise the whole file (used by write-verify and tools
        that genuinely need all bytes — not by the ingest pipeline)."""
        if self.data is not None:
            return self.data
        with self.open() as fh:
            return fh.read()

    @classmethod
    def from_path(
        cls, path: str | os.PathLike[str], file_id: str | None = None
    ) -> BackupFile:
        """A source-backed record reading from ``path`` on demand."""
        p = os.fspath(path)
        return cls(
            file_id=file_id if file_id is not None else os.path.basename(p),
            # The factory intentionally returns an open handle: the
            # ingest pipeline context-manages it at the call site.
            source=lambda: open(p, "rb"),  # noqa: SIM115
            size_hint=os.path.getsize(p),
        )


@dataclass(frozen=True)
class MachineConfig:
    """Shape of one machine's content."""

    os_index: int = 0
    app_indices: tuple[int, ...] = (0, 1)
    user_bytes: int = 1 << 21
    mean_user_file: int = 1 << 17
    edits: EditConfig = field(default_factory=EditConfig)
    #: OS/app files change far more slowly than user data.
    system_change_scale: float = 0.1
    #: Probability a new user file appears in a generation.
    new_file_prob: float = 0.3
    #: Probability an existing user file is deleted in a generation.
    delete_file_prob: float = 0.05
    #: Append-only log data (0 disables).  Logs never rewrite history —
    #: each generation appends ``log_append_bytes`` — which produces the
    #: most dedup-friendly change pattern a real machine emits.
    log_bytes: int = 0
    log_append_bytes: int = 1 << 14


class Machine:
    """Generates a machine's backup stream, one generation at a time."""

    def __init__(
        self, machine_id: str, library: TemplateLibrary, config: MachineConfig, seed: int
    ):
        self.machine_id = machine_id
        self._config = config
        self._rng = np.random.default_rng(seed)
        self._system_edits = replace(
            config.edits,
            change_rate=config.edits.change_rate * config.system_change_scale,
        )
        # Current state: name -> bytes, evolved in place per generation.
        self._system: dict[str, bytes] = {}
        for tf in library.os_image(config.os_index):
            self._system[tf.name] = tf.data
        for idx in config.app_indices:
            for tf in library.app_bundle(idx):
                self._system[f"{tf.name}@{idx}"] = tf.data
        self._user: dict[str, bytes] = {}
        n_user = max(1, config.user_bytes // config.mean_user_file)
        for i in range(n_user):
            self._user[f"user/file{i:04d}"] = self._fresh_user_file()
        self._user_serial = n_user
        self._log = (
            self._rng.integers(0, 256, size=config.log_bytes, dtype=np.uint8).tobytes()
            if config.log_bytes
            else b""
        )
        self._generation = 0

    def _fresh_user_file(self) -> bytes:
        size = int(
            self._rng.lognormal(mean=np.log(self._config.mean_user_file), sigma=0.7)
        )
        size = max(2048, size)
        return self._rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()

    def _advance(self) -> None:
        """Apply one generation of churn to the machine state."""
        cfg = self._config
        for name in list(self._system):
            self._system[name] = mutate(self._system[name], self._rng, self._system_edits)
        for name in list(self._user):
            if self._rng.random() < cfg.delete_file_prob and len(self._user) > 1:
                del self._user[name]
                continue
            self._user[name] = mutate(self._user[name], self._rng, cfg.edits)
        if self._rng.random() < cfg.new_file_prob:
            self._user[f"user/file{self._user_serial:04d}"] = self._fresh_user_file()
            self._user_serial += 1
        if self._log:
            self._log += self._rng.integers(
                0, 256, size=cfg.log_append_bytes, dtype=np.uint8
            ).tobytes()

    def generation(self, g: int) -> list[BackupFile]:
        """Backup file list for day ``g`` (generations are sequential).

        Must be called with non-decreasing ``g``; the machine evolves
        monotonically like a real system.
        """
        if g < self._generation:
            raise ValueError(
                f"generation {g} already passed (machine is at {self._generation})"
            )
        while self._generation < g:
            self._advance()
            self._generation += 1
        prefix = f"{self.machine_id}/gen{g:03d}"
        files = [
            BackupFile(f"{prefix}/{name}", data)
            for name, data in list(self._system.items()) + list(self._user.items())
        ]
        if self._log:
            files.append(BackupFile(f"{prefix}/var/log/syslog", self._log))
        return files
