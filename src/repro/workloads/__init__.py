"""Synthetic disk-image backup workloads and dataset characterisation.

Substitutes for the paper's 1 TB / 14-PC / two-week corpus (see
DESIGN.md §2): :class:`BackupCorpus` generates a seeded fleet whose
duplication structure (cross-machine OS sharing, generational churn,
byte-shifting edits) exercises the same code paths; :func:`trace_corpus`
measures the resulting N, D, L, DER and DAD ground truth.
"""

from .corpus import BackupCorpus, CorpusConfig, small_corpus, tiny_corpus
from .machine import BackupFile, Machine, MachineConfig
from .mutations import EditConfig, mutate
from .profiles import PROFILES, make_corpus, profile_names
from .templates import TemplateFile, TemplateLibrary
from .traces import TraceStats, trace_corpus

__all__ = [
    "BackupCorpus",
    "CorpusConfig",
    "small_corpus",
    "tiny_corpus",
    "BackupFile",
    "Machine",
    "MachineConfig",
    "EditConfig",
    "mutate",
    "PROFILES",
    "make_corpus",
    "profile_names",
    "TemplateFile",
    "TemplateLibrary",
    "TraceStats",
    "trace_corpus",
]
