"""Named corpus profiles — reproducible workload presets.

Experiments and examples shouldn't hand-tune eight `CorpusConfig`
fields each time; these presets capture the workload archetypes the
dedup literature evaluates against, at laptop scale.  All are seeded
and deterministic; pass a different ``seed`` for another draw of the
same shape.
"""

from __future__ import annotations

from dataclasses import replace

from .corpus import BackupCorpus, CorpusConfig
from .mutations import EditConfig

__all__ = ["PROFILES", "make_corpus", "profile_names"]


def _office_fleet(seed: int) -> CorpusConfig:
    """Desktop PCs: shared OS images, document-style insert/delete
    churn — the paper's 14-PC corpus in miniature."""
    return CorpusConfig(
        machines=4,
        generations=5,
        os_count=2,
        os_bytes=1 << 20,
        app_bytes=1 << 18,
        user_bytes=1 << 19,
        mean_file=1 << 16,
        edits=EditConfig(change_rate=0.2, insert_fraction=0.5),
        seed=seed,
    )


def _server_fleet(seed: int) -> CorpusConfig:
    """Servers: one OS image, little user churn, big append-only logs
    — the most dedup-friendly shape."""
    return CorpusConfig(
        machines=3,
        generations=6,
        os_count=1,
        os_bytes=1 << 20,
        app_bytes=1 << 18,
        user_bytes=1 << 17,
        mean_file=1 << 16,
        edits=EditConfig(change_rate=0.05, insert_fraction=0.3),
        log_bytes=1 << 19,
        seed=seed,
    )


def _vm_images(seed: int) -> CorpusConfig:
    """Whole disk images per machine-day — the paper's literal input
    shape (one big file per backup; F is tiny)."""
    return replace(_office_fleet(seed), as_disk_images=True)


def _churny_workstations(seed: int) -> CorpusConfig:
    """Heavy-edit developers: high change rate, many insertions —
    the hardest corpus for all algorithms."""
    return CorpusConfig(
        machines=3,
        generations=5,
        os_count=2,
        os_bytes=1 << 19,
        app_bytes=1 << 17,
        user_bytes=1 << 20,
        mean_file=1 << 16,
        edits=EditConfig(change_rate=0.45, insert_fraction=0.7, edits_per_mb=12),
        seed=seed,
    )


PROFILES = {
    "office-fleet": _office_fleet,
    "server-fleet": _server_fleet,
    "vm-images": _vm_images,
    "churny-workstations": _churny_workstations,
}


def profile_names() -> list[str]:
    """Available preset names."""
    return sorted(PROFILES)


def make_corpus(profile: str, seed: int = 2013) -> BackupCorpus:
    """Instantiate a named corpus profile."""
    try:
        factory = PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown profile {profile!r}; choose from {profile_names()}"
        ) from None
    return BackupCorpus(factory(seed))
