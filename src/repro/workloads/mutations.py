"""Byte-level edit operators used to evolve backup generations.

Between two backups of the same machine, files change by in-place
overwrites (databases, registries), insertions and deletions (logs,
documents).  Insertions and deletions *shift* all subsequent bytes,
which is precisely what breaks fixed-size chunking and what CDC
resynchronises after — so the generator must produce genuine shifts,
not only overwrites.

Edits are expressed as a fraction of the file mutated per generation
(``change_rate``) split across a configurable number of edit *spans*;
span lengths control the duplication aggregation degree (DAD) of the
resulting corpus: fewer, larger preserved gaps between edits mean
longer duplicate slices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EditConfig", "mutate"]


@dataclass(frozen=True)
class EditConfig:
    """Shape of one generation's edits to one file.

    Parameters
    ----------
    change_rate:
        Fraction of file bytes replaced/inserted per generation.
    edits_per_mb:
        Edit spans per MiB of file; higher values fragment the
        surviving duplicate data into more, shorter slices (lower DAD).
    insert_fraction:
        Portion of edit spans realised as insertions of new bytes
        (shifting), the rest as in-place overwrites.
    delete_fraction:
        Portion of edit spans that *also* delete the original span
        (pure insertion keeps it, producing growth).
    """

    change_rate: float = 0.2
    edits_per_mb: float = 6.0
    insert_fraction: float = 0.5
    delete_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.change_rate <= 1.0:
            raise ValueError(f"change_rate must be in [0,1], got {self.change_rate}")
        if self.edits_per_mb <= 0:
            raise ValueError(f"edits_per_mb must be positive, got {self.edits_per_mb}")
        for name in ("insert_fraction", "delete_fraction"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0,1], got {v}")


def mutate(data: bytes, rng: np.random.Generator, config: EditConfig) -> bytes:
    """Apply one generation of edits to ``data``.

    Deterministic given the generator state.  Returns a new byte
    string; the original is untouched.
    """
    n = len(data)
    if n == 0 or config.change_rate == 0.0:
        return data
    n_edits = max(1, round(n / (1 << 20) * config.edits_per_mb))
    budget = max(1, int(n * config.change_rate))
    span = max(1, budget // n_edits)

    # Choose edit start positions, sorted so we can rebuild in one pass.
    starts = np.sort(rng.integers(0, max(1, n - span), size=n_edits))
    arr = np.frombuffer(data, dtype=np.uint8)
    out: list[np.ndarray] = []
    pos = 0
    for s in starts:
        s = int(s)
        if s < pos:  # overlapping edit spans collapse into the previous one
            continue
        out.append(arr[pos:s])
        fresh = rng.integers(0, 256, size=span, dtype=np.uint8)
        is_insert = rng.random() < config.insert_fraction
        if is_insert:
            out.append(fresh)
            if rng.random() < config.delete_fraction:
                pos = min(n, s + span)  # insertion replaces the original span
            else:
                pos = s  # pure insertion: original bytes survive after it
        else:
            out.append(fresh)  # overwrite
            pos = min(n, s + span)
    out.append(arr[pos:])
    return np.concatenate(out).tobytes()
