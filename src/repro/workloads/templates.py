"""Template library — shared OS and application content.

The paper's corpus is disk images of 14 PCs running Windows, Linux or
Mac.  Machines running the same OS share enormous amounts of identical
content (system files), which is the cross-machine component of the
corpus's duplication.  The library generates a small set of seeded
"OS images" and "application bundles" as deterministic pseudo-random
byte blobs split into files; machines reference them by index.

Blob content is incompressible random data: deduplication algorithms
observe only byte *equality*, so random bytes exercise them exactly as
real file systems do, while keeping the generator trivial to seed and
reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TemplateFile", "TemplateLibrary"]


@dataclass(frozen=True)
class TemplateFile:
    """One file inside a template (name + immutable content)."""

    name: str
    data: bytes = field(repr=False)

    @property
    def size(self) -> int:
        """Template file size in bytes."""
        return len(self.data)


def _make_files(
    rng: np.random.Generator, prefix: str, total_bytes: int, mean_file: int
) -> list[TemplateFile]:
    """Split ``total_bytes`` of random content into lognormal-sized files."""
    files: list[TemplateFile] = []
    remaining = total_bytes
    i = 0
    while remaining > 0:
        size = int(rng.lognormal(mean=np.log(mean_file), sigma=0.6))
        size = max(1024, min(size, remaining)) if remaining > 1024 else remaining
        data = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
        files.append(TemplateFile(f"{prefix}/file{i:04d}", data))
        remaining -= size
        i += 1
    return files


class TemplateLibrary:
    """Seeded collection of OS images and app bundles.

    Parameters
    ----------
    os_count, app_count:
        Number of distinct OS images / application bundles available.
    os_bytes, app_bytes:
        Content size of each OS image / app bundle.
    mean_file:
        Mean file size inside a template.
    """

    def __init__(
        self,
        seed: int = 0,
        os_count: int = 3,
        app_count: int = 6,
        os_bytes: int = 1 << 21,
        app_bytes: int = 1 << 19,
        mean_file: int = 1 << 17,
    ):
        if os_count <= 0 or app_count < 0:
            raise ValueError("os_count must be >= 1 and app_count >= 0")
        rng = np.random.default_rng(seed)
        self.os_images: list[list[TemplateFile]] = [
            _make_files(rng, f"os{i}", os_bytes, mean_file) for i in range(os_count)
        ]
        self.app_bundles: list[list[TemplateFile]] = [
            _make_files(rng, f"app{i}", app_bytes, mean_file) for i in range(app_count)
        ]

    def os_image(self, index: int) -> list[TemplateFile]:
        """OS image by index (wraps around the available set)."""
        return self.os_images[index % len(self.os_images)]

    def app_bundle(self, index: int) -> list[TemplateFile]:
        """App bundle by index (wraps around the available set)."""
        return self.app_bundles[index % len(self.app_bundles)]
