"""Dataset-characteristic measurement (the paper's Section V-D).

Computes algorithm-independent properties of a corpus at a given
chunking granularity by running an *exact* chunk-level deduplication
(a full in-memory hash set — the oracle no real system can afford):

* ``N`` / ``D`` — final counts of non-duplicate and duplicate chunks,
* ``L`` — number of *duplicate data slices* (maximal runs of
  consecutive duplicate chunks in the input stream),
* data-only DER ``(D+N)/N`` by chunk count and by bytes,
* DAD — Duplication Aggregation Degree: duplicate bytes per duplicate
  slice, the paper's measure of how concentrated duplication is
  (Fig. 10(a): 90–220 KB on their corpus),
* ``F`` — files not completely duplicate (the Manifest count in the
  paper's analysis).

These ground-truth numbers parameterise the Table I/II formula benches
and validate the synthetic corpus against the paper's dataset shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from ..chunking import Chunker
from ..hashing import StagedHasher, sha1
from .machine import BackupFile

__all__ = ["TraceStats", "trace_corpus"]


@dataclass(frozen=True)
class TraceStats:
    """Ground-truth duplication statistics of a corpus."""

    total_bytes: int
    total_chunks: int
    unique_chunks: int  # N
    duplicate_chunks: int  # D
    unique_bytes: int
    duplicate_bytes: int
    duplicate_slices: int  # L
    total_files: int
    partial_files: int  # F: files that are not completely duplicate

    @property
    def n(self) -> int:
        """The paper's N (non-duplicate chunks)."""
        return self.unique_chunks

    @property
    def d(self) -> int:
        """The paper's D (duplicate chunks)."""
        return self.duplicate_chunks

    @property
    def l(self) -> int:  # noqa: E741 - the paper's symbol
        """The paper's L (duplicate data slices)."""
        return self.duplicate_slices

    @property
    def f(self) -> int:
        """The paper's F (files not completely duplicate)."""
        return self.partial_files

    @property
    def chunk_der(self) -> float:
        """The paper's (D+N)/N duplication elimination ratio."""
        return (self.duplicate_chunks + self.unique_chunks) / max(1, self.unique_chunks)

    @property
    def byte_der(self) -> float:
        """Data-only DER by bytes (input / unique bytes)."""
        return self.total_bytes / max(1, self.unique_bytes)

    @property
    def dad(self) -> float:
        """Duplication Aggregation Degree: dup bytes per dup slice."""
        return self.duplicate_bytes / max(1, self.duplicate_slices)


def trace_corpus(
    files: Iterable[BackupFile],
    chunker: Chunker,
    *,
    staged: bool = False,
) -> TraceStats:
    """Exact-dedup oracle over a corpus at ``chunker``'s granularity.

    ``staged=True`` routes chunk identity through
    :class:`repro.hashing.StagedHasher` — the BLAKE2b probe with
    memoised SHA-1 confirm — so the oracle's SHA-1 cost scales with the
    corpus's *unique* bytes instead of its total bytes.  The resulting
    statistics are identical either way (the staged path returns the
    canonical SHA-1 for every chunk); this knob exists because the
    estimation oracle is exactly the duplicate-heavy, no-store-involved
    flow the staged scheme is designed for.
    """
    hasher = StagedHasher() if staged else None
    seen: set[bytes] = set()
    total_bytes = total_chunks = 0
    unique_chunks = duplicate_chunks = 0
    unique_bytes = duplicate_bytes = 0
    slices = 0
    total_files = partial_files = 0
    for f in files:
        total_files += 1
        in_dup_run = False
        any_unique = False
        with f.open() as reader:
            for batch in chunker.chunk_stream(reader):
                for chunk in batch:
                    total_chunks += 1
                    total_bytes += chunk.size
                    digest = (
                        hasher.digest(chunk.data)
                        if hasher is not None
                        else sha1(chunk.data)
                    )
                    if digest in seen:
                        duplicate_chunks += 1
                        duplicate_bytes += chunk.size
                        if not in_dup_run:
                            slices += 1
                            in_dup_run = True
                    else:
                        seen.add(digest)
                        unique_chunks += 1
                        unique_bytes += chunk.size
                        in_dup_run = False
                        any_unique = True
        if any_unique:
            partial_files += 1
    return TraceStats(
        total_bytes=total_bytes,
        total_chunks=total_chunks,
        unique_chunks=unique_chunks,
        duplicate_chunks=duplicate_chunks,
        unique_bytes=unique_bytes,
        duplicate_bytes=duplicate_bytes,
        duplicate_slices=slices,
        total_files=total_files,
        partial_files=partial_files,
    )
