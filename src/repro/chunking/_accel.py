"""Kernel auto-selection for the chunking hot path.

Every content-defined chunker in this package exists in two forms:

* a **batched** kernel — NumPy array passes over the whole buffer
  (candidate detection is O(n) elementwise work instead of an O(n)
  Python-level loop), worth 2–10× and more on the dominant ingest cost
  (see PAPERS.md: Vectorized Sequence-Based Chunking, arxiv 2505.21194;
  Accelerating Data Chunking using Vector Instructions, arxiv
  2508.05797);
* a **scalar** byte-at-a-time loop — the executable specification the
  batched kernel must match bit-for-bit (enforced by the equivalence
  suite in ``tests/chunking/``), the fallback when NumPy is
  unavailable, and the measured "pre" side of
  ``benchmarks/bench_throughput.py``.

The batched kernel is selected automatically whenever NumPy imports.
Setting ``REPRO_SCALAR_CHUNKING=1`` in the environment forces the
scalar loops process-wide (benchmark/debug knob), and each chunker
accepts an explicit ``batched=`` override that beats both.

NumPy is currently a hard dependency of the package as a whole (the
cut-point arrays and the workload generators use it), so in practice
:data:`HAVE_NUMPY` is true whenever :mod:`repro` imports at all; the
probe keeps the selection policy explicit, testable, and ready for a
future numpy-optional install.
"""

from __future__ import annotations

import os

__all__ = ["HAVE_NUMPY", "batched_enabled"]

try:  # pragma: no cover - the container always ships numpy
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

#: Environment knob forcing the scalar loops (bench/debug only).
_FORCE_SCALAR_ENV = "REPRO_SCALAR_CHUNKING"


def batched_enabled(override: bool | None) -> bool:
    """Resolve a chunker's ``batched=`` constructor argument.

    ``None`` (the default) auto-selects: batched when NumPy is
    importable and ``REPRO_SCALAR_CHUNKING`` is unset/empty, scalar
    otherwise.  An explicit ``True`` demands the NumPy kernel and
    raises if it cannot be honoured; an explicit ``False`` always
    forces the scalar loop.
    """
    if override is not None:
        if override and not HAVE_NUMPY:
            raise RuntimeError("batched chunking requires numpy")
        return override
    if os.environ.get(_FORCE_SCALAR_ENV, ""):
        return False
    return HAVE_NUMPY
