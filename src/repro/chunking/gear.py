"""Gear-hash CDC chunker (FastCDC-family), vectorised.

The gear rolling hash is ``H(i+1) = (H(i) << 1) + G[b_i]`` over a
256-entry random table ``G``.  Because the shift discards bits past
position 63, the hash of position ``p`` depends only on the previous
64 bytes — modulo-``2^64`` wraparound implements the sliding window
for free:

.. math:: H(p) = \\sum_{j=p-64}^{p-1} G[b_j] \\ll (p-1-j) \\bmod 2^{64}

Vectorisation: with ``g = G[b]`` this is a correlation of ``g`` with
the fixed kernel ``(2^63, ..., 2, 1)`` — ``min(window, 64)`` shifted
vectorised adds, each a single pass over the array.  For the default
32-byte window that is ~32 elementwise passes; still far faster than a
per-byte Python loop, and used in the repo as an *alternative* chunker
for ablation benches (the Karp–Rabin chunker is the default).

Cut condition: ``H`` falls below ``2^64 / ECS``, the
FastCDC-style high-bit threshold test (gear's high bits carry the
most entropy).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from ._accel import batched_enabled
from ._select import select_cut_points, splitmix64
from .base import Buffer, Chunker, ChunkerConfig

__all__ = ["GearChunker"]

_U64 = (1 << 64) - 1


class GearChunker(Chunker):
    """Gear-hash content-defined chunker (batched or scalar kernel).

    ``config.window`` is clamped to at most 64 (bits shifted past 63
    vanish, so a wider window is unobservable).

    ``batched=None`` auto-selects the NumPy kernel when available (see
    :mod:`repro.chunking._accel`); ``batched=False`` forces the scalar
    byte-at-a-time rolling loop, which is the executable specification
    the batched kernel must match bit-for-bit and the measured "pre"
    side of ``benchmarks/bench_throughput.py``.
    """

    def __init__(
        self,
        config: ChunkerConfig | None = None,
        *,
        batched: bool | None = None,
    ) -> None:
        self.config = config or ChunkerConfig()
        self.batched = batched_enabled(batched)
        rng = splitmix64(self.config.seed + 0x47454152)  # "GEAR" domain-separated
        self._table = np.array([rng.next() for _ in range(256)], dtype=np.uint64)
        # Plain-int mirror for the scalar loop: indexing a Python list
        # of ints avoids a numpy-scalar boxing per byte.
        self._table_list = [int(x) for x in self._table]
        self._window = min(self.config.window, 64)
        self._threshold = np.uint64(min(self.config.hash_threshold, (1 << 64) - 1))

    def candidates(self, data: Buffer) -> npt.NDArray[np.int64]:
        """Positions whose gear window hash satisfies the cut condition."""
        if self.batched:
            return self._candidates_batched(data)
        return self._candidates_scalar(data)

    #: Positions per batched block.  The kernel makes ``window`` passes
    #: over its ``uint64`` work arrays, so they must stay cache-resident:
    #: whole-buffer operation on a 16 MiB input is ~8× slower (memory
    #: bound) than 32 KiB blocks whose gather/shift/add loop runs in L2.
    _BLOCK = 1 << 15

    def _candidates_batched(self, data: Buffer) -> npt.NDArray[np.int64]:
        n = len(data)
        w = self._window
        if n < w:
            return np.empty(0, dtype=np.int64)
        raw = np.frombuffer(data, dtype=np.uint8)
        table, threshold = self._table, self._threshold
        pieces: list[npt.NDArray[np.int64]] = []
        with np.errstate(over="ignore"):
            # Block covering positions [p0, p1] needs bytes [p0-w, p1);
            # the hash depends only on window content, so per-block
            # results are globally exact.
            for p0 in range(w, n + 1, self._BLOCK):
                p1 = min(n, p0 + self._BLOCK - 1)
                g = table[raw[p0 - w : p1]]
                m = p1 - p0 + 1
                # H(p) for p in [p0, p1]; correlation of g with the
                # powers-of-two kernel: g[p-1-t] contributes << t.
                h = np.zeros(m, dtype=np.uint64)
                for t in range(w):
                    h += g[w - 1 - t : w - 1 - t + m] << np.uint64(t)
                idx = np.nonzero(h < threshold)[0]
                if idx.size:
                    pieces.append(idx.astype(np.int64) + p0)
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(pieces)

    def _candidates_scalar(self, data: Buffer) -> npt.NDArray[np.int64]:
        """Rolling byte-at-a-time gear loop — the executable spec.

        Maintains the windowed hash incrementally: the byte leaving the
        window sits at shift ``w-1`` just before the roll, so
        ``H(p) = ((H(p-1) - (G[b_{p-1-w}] << (w-1))) << 1) + G[b_{p-1}]``
        modulo ``2^64``.  (For ``w == 64`` the subtraction is a no-op
        mod ``2^64`` — the shift would discard that bit anyway — which
        keeps the formula uniform.)
        """
        n = len(data)
        w = self._window
        if n < w:
            return np.empty(0, dtype=np.int64)
        b = memoryview(data)
        table = self._table_list
        threshold = int(self._threshold)
        out: list[int] = []
        h = 0
        for j in range(w):  # H(w): gear over the first window
            h = ((h << 1) + table[b[j]]) & _U64
        if h < threshold:
            out.append(w)
        drop_shift = w - 1
        for p in range(w + 1, n + 1):
            h = (
                ((h - (table[b[p - 1 - w]] << drop_shift)) << 1) + table[b[p - 1]]
            ) & _U64
            if h < threshold:
                out.append(p)
        return np.array(out, dtype=np.int64)

    def cut_points(self, data: Buffer) -> npt.NDArray[np.int64]:
        n = len(data)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        return select_cut_points(
            self.candidates(data), n, self.config.min_size, self.config.max_size
        )
