"""Gear-hash CDC chunker (FastCDC-family), vectorised.

The gear rolling hash is ``H(i+1) = (H(i) << 1) + G[b_i]`` over a
256-entry random table ``G``.  Because the shift discards bits past
position 63, the hash of position ``p`` depends only on the previous
64 bytes — modulo-``2^64`` wraparound implements the sliding window
for free:

.. math:: H(p) = \\sum_{j=p-64}^{p-1} G[b_j] \\ll (p-1-j) \\bmod 2^{64}

Vectorisation: with ``g = G[b]`` this is a correlation of ``g`` with
the fixed kernel ``(2^63, ..., 2, 1)`` — ``min(window, 64)`` shifted
vectorised adds, each a single pass over the array.  For the default
32-byte window that is ~32 elementwise passes; still far faster than a
per-byte Python loop, and used in the repo as an *alternative* chunker
for ablation benches (the Karp–Rabin chunker is the default).

Cut condition: ``H`` falls below ``2^64 / ECS``, the
FastCDC-style high-bit threshold test (gear's high bits carry the
most entropy).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from ._select import select_cut_points, splitmix64
from .base import Buffer, Chunker, ChunkerConfig

__all__ = ["GearChunker"]


class GearChunker(Chunker):
    """Vectorised gear-hash content-defined chunker.

    ``config.window`` is clamped to at most 64 (bits shifted past 63
    vanish, so a wider window is unobservable).
    """

    def __init__(self, config: ChunkerConfig | None = None) -> None:
        self.config = config or ChunkerConfig()
        rng = splitmix64(self.config.seed + 0x47454152)  # "GEAR" domain-separated
        self._table = np.array([rng.next() for _ in range(256)], dtype=np.uint64)
        self._window = min(self.config.window, 64)
        self._threshold = np.uint64(min(self.config.hash_threshold, (1 << 64) - 1))

    def candidates(self, data: Buffer) -> npt.NDArray[np.int64]:
        """Positions whose gear window hash satisfies the cut condition."""
        n = len(data)
        w = self._window
        if n < w:
            return np.empty(0, dtype=np.int64)
        raw = np.frombuffer(data, dtype=np.uint8)
        g = self._table[raw]
        # H(p) for p in [w, n]; correlation with powers-of-two kernel.
        h = np.zeros(n - w + 1, dtype=np.uint64)
        with np.errstate(over="ignore"):
            for t in range(w):
                # g[p-1-t] contributes << t for p in [w, n]
                h += g[w - 1 - t : n - t] << np.uint64(t)
            cond = h < self._threshold
        return np.nonzero(cond)[0].astype(np.int64) + w

    def cut_points(self, data: Buffer) -> npt.NDArray[np.int64]:
        n = len(data)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        return select_cut_points(
            self.candidates(data), n, self.config.min_size, self.config.max_size
        )
