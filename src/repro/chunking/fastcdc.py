"""FastCDC-style normalized chunking (Xia et al., ATC'16 lineage).

A forward-looking extension beyond the paper's 2013 tool set: plain
CDC draws chunk sizes from a geometric distribution, so many chunks
land far from ``ECS`` — small ones inflate metadata, large ones hurt
dedup.  *Normalized chunking* tightens the distribution by using a
**stricter** cut condition before the target size and a **looser** one
after it:

* for positions closer than ``ECS`` to the last cut, a candidate must
  clear a threshold ``2^64 / (ECS << level)`` (``level`` extra bits of
  luck needed);
* past ``ECS``, the threshold loosens to ``2^64 / (ECS >> level)``.

Both thresholds are evaluated from the same Karp–Rabin hash array the
vectorised chunker computes, so normalization costs two candidate
scans and keeps the content-defined resynchronisation property (each
condition is position-in-chunk dependent, but boundaries still anchor
on content once streams realign — the looser mask is a superset of the
stricter one).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from ._accel import batched_enabled
from .base import Buffer, Chunker, ChunkerConfig
from .reference import ReferenceChunker
from .vectorized import VectorizedChunker

__all__ = ["FastCDCChunker"]


class FastCDCChunker(Chunker):
    """Normalized-chunking CDC on the shared Karp–Rabin hash.

    Parameters
    ----------
    normalization:
        The level ``NC-1``/``NC-2``/``NC-3`` from the FastCDC paper —
        how many bits the cut condition tightens/loosens by around the
        target size.  ``0`` degenerates to plain CDC.
    batched:
        Kernel selection for the two underlying candidate scans:
        ``None`` auto-selects the NumPy :class:`VectorizedChunker` when
        available, ``False`` forces the scalar
        :class:`~repro.chunking.reference.ReferenceChunker` spec loop.
        Both produce identical candidates, so normalized selection is
        byte-identical either way.
    """

    def __init__(
        self,
        config: ChunkerConfig | None = None,
        normalization: int = 2,
        *,
        batched: bool | None = None,
    ) -> None:
        self.config = config or ChunkerConfig()
        if not 0 <= normalization <= 4:
            raise ValueError(f"normalization must be in [0, 4], got {normalization}")
        self.normalization = normalization
        self.batched = batched_enabled(batched)
        # Two underlying chunkers give us the strict and loose candidate
        # sets from the identical rolling hash (same seed).
        strict_cfg = ChunkerConfig(
            expected_size=self.config.expected_size << normalization,
            min_size=self.config.min_size,
            max_size=self.config.max_size,
            window=self.config.window,
            seed=self.config.seed,
        )
        loose_cfg = ChunkerConfig(
            expected_size=max(16, self.config.expected_size >> normalization),
            min_size=self.config.min_size,
            max_size=self.config.max_size,
            window=self.config.window,
            seed=self.config.seed,
        )
        chunker_cls: type[VectorizedChunker] | type[ReferenceChunker] = (
            VectorizedChunker if self.batched else ReferenceChunker
        )
        self._strict: Chunker = chunker_cls(strict_cfg)
        self._loose: Chunker = chunker_cls(loose_cfg)

    def cut_points(self, data: Buffer) -> npt.NDArray[np.int64]:
        n = len(data)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        return self._select(
            self._strict.candidates(data), self._loose.candidates(data), n
        )

    def _cut_points_ctx(self, data: Buffer, hist: int) -> npt.NDArray[np.int64]:
        if hist == 0:
            return self.cut_points(data)
        strict = self._strict.candidates(data)
        loose = self._loose.candidates(data)
        cuts = self._select(
            strict[strict > hist] - hist, loose[loose > hist] - hist, len(data) - hist
        )
        return cuts + hist

    def _select(
        self,
        strict: npt.NDArray[np.int64],
        loose: npt.NDArray[np.int64],
        n: int,
    ) -> npt.NDArray[np.int64]:
        """Normalized-chunking cut selection over candidate arrays."""
        min_size, max_size = self.config.min_size, self.config.max_size
        target = self.config.expected_size
        cuts: list[int] = []
        start = 0
        while n - start > min_size:
            # Region 1: [start+min, start+target) — strict condition.
            lo, mid = start + min_size, min(start + target, n)
            k = int(np.searchsorted(strict, lo, side="left"))
            cut: int | None = None
            if k < len(strict) and strict[k] < mid:
                cut = int(strict[k])
            else:
                # Region 2: [start+target, start+max] — loose condition.
                hi = start + max_size
                k = int(np.searchsorted(loose, mid, side="left"))
                if k < len(loose) and loose[k] <= hi and loose[k] < n:
                    cut = int(loose[k])
                elif hi < n:
                    cut = hi  # forced
            if cut is None or cut >= n:
                break
            cuts.append(cut)
            start = cut
        cuts.append(n)
        return np.asarray(cuts, dtype=np.int64)
