"""NumPy-vectorised Karp–Rabin CDC chunker.

Computes the same sliding-window hash as
:class:`repro.chunking.reference.ReferenceChunker` but with O(n)
elementwise ``uint64`` array operations instead of a Python loop —
the standard HPC-Python answer to "byte-level chunking is slow".

The trick
---------
The window hash is a difference of prefix hashes:

.. math:: H(p) = P(p) - P(p-w)\\,M^w, \\qquad
          P(i) = \\sum_{j<i} b_j M^{\\,i-1-j}

``P`` itself is a linear recurrence (``P(i+1) = P(i) M + b_i``) and so
appears sequential, but because ``M`` is odd it is invertible modulo
``2^64``.  Writing ``Q(i) = \\sum_{j<i} b_j M^{-(j+1)}`` gives
``P(i) = M^i Q(i)`` where ``Q`` is a plain cumulative sum of
``b_j * Minv^{j+1}`` — and cumulative sums and products of ``uint64``
arrays wrap modulo ``2^64`` exactly as the maths requires.  Then

.. math:: H(p) = M^p\\,(Q(p) - Q(p-w))

which is four vectorised passes: two ``cumprod`` (powers of ``M`` and
``M^{-1}``), one ``cumsum``, one elementwise combine.

Inputs are processed in overlapping blocks (default 2 MiB) so peak
memory stays bounded at roughly ``5 × 8 ×`` block size regardless of
input length; the hash only depends on window *content*, so per-block
candidate positions are globally exact.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from ._select import select_cut_points
from .base import Buffer, Chunker, ChunkerConfig
from .reference import hash_params

__all__ = ["VectorizedChunker"]

_U64 = (1 << 64) - 1


def _modinv_pow2(a: int) -> int:
    """Inverse of odd ``a`` modulo ``2^64`` via Newton iteration.

    Raises :class:`ValueError` for even ``a`` (no inverse exists
    modulo a power of two) and verifies the result with an explicit
    check — a bare ``assert`` here would be stripped under
    ``python -O`` and let a silently-wrong inverse corrupt every cut
    point downstream.
    """
    if a & 1 == 0:
        raise ValueError(f"multiplier must be odd to be invertible mod 2^64, got {a}")
    x = a  # 3-bit correct seed for odd a
    for _ in range(6):  # doubles correct bits: 3→6→12→24→48→96
        x = (x * (2 - a * x)) & _U64
    if (a * x) & _U64 != 1:
        raise ValueError(f"modular inverse verification failed for multiplier {a}")
    return x


#: Process-wide power-table cache keyed by the rolling-hash multiplier.
#: The tables depend only on ``M`` (``Minv`` is derived from it), so
#: the key is complete: chunkers sharing a multiplier — FastCDC's
#: strict/loose pair, every default-seed chunker of a fleet — share one
#: pair of tables, while differently-seeded configs get distinct
#: entries and can never poison each other's hashes.  Entries only ever
#: grow and cached arrays are never mutated in place, so concurrent
#: readers (service fleet threads) always observe a consistent table;
#: the worst race is two threads computing the same entry and one
#: overwriting the other with identical values.
_POWER_TABLES: dict[int, tuple[npt.NDArray[np.uint64], npt.NDArray[np.uint64]]] = {}


def _shared_power_tables(
    mult: np.uint64, minv: np.uint64, m: int
) -> tuple[npt.NDArray[np.uint64], npt.NDArray[np.uint64]]:
    """``(Minv^(j+1))_{j<m}`` and ``(M^p)_{p<=m}``, cached per multiplier."""
    cached = _POWER_TABLES.get(int(mult))
    if cached is None or len(cached[0]) < m:
        with np.errstate(over="ignore"):
            pow_minv = np.full(m, minv, dtype=np.uint64)
            np.cumprod(pow_minv, out=pow_minv)
            pow_m = np.full(m + 1, mult, dtype=np.uint64)
            pow_m[0] = 1
            np.cumprod(pow_m, out=pow_m)
        cached = (pow_minv, pow_m)
        _POWER_TABLES[int(mult)] = cached
    return cached


class VectorizedChunker(Chunker):
    """Production CDC chunker; cut-point identical to the reference."""

    def __init__(
        self,
        config: ChunkerConfig | None = None,
        block_size: int = 2 << 20,
    ) -> None:
        self.config = config or ChunkerConfig()
        if block_size <= self.config.window:
            raise ValueError("block_size must exceed the hash window")
        self._block = block_size
        mult, final = hash_params(self.config.seed)
        self._mult = np.uint64(mult)
        self._minv = np.uint64(_modinv_pow2(mult))
        self._final = np.uint64(final)
        self._threshold = np.uint64(min(self.config.hash_threshold, (1 << 64) - 1))
        # Power tables are identical for every block of the same length
        # and depend only on the multiplier, so they live in the
        # process-wide ``_POWER_TABLES`` cache keyed by ``M`` (saves two
        # cumprod passes per block — the profiled hot spots — and shares
        # work across same-seed chunkers).  Instance mirrors keep the
        # arrays alive and let tests observe reuse.
        self._pow_minv: npt.NDArray[np.uint64] | None = None
        self._pow_m: npt.NDArray[np.uint64] | None = None

    def _power_tables(
        self, m: int
    ) -> tuple[npt.NDArray[np.uint64], npt.NDArray[np.uint64]]:
        """Cached ``(Minv^(j+1))_{j<m}`` and ``(M^p)_{p<=m}`` tables."""
        pow_minv, pow_m = self._pow_minv, self._pow_m
        if pow_minv is None or pow_m is None or len(pow_minv) < m:
            pow_minv, pow_m = _shared_power_tables(self._mult, self._minv, m)
            self._pow_minv, self._pow_m = pow_minv, pow_m
        return pow_minv[:m], pow_m[: m + 1]

    def candidates(self, data: Buffer) -> npt.NDArray[np.int64]:
        """Sorted positions satisfying the cut condition (global indices)."""
        n = len(data)
        w = self.config.window
        if n < w:
            return np.empty(0, dtype=np.int64)
        raw = np.frombuffer(data, dtype=np.uint8)
        pieces: list[npt.NDArray[np.int64]] = []
        # Block covering positions (p) in (lo, hi]; needs bytes [lo-w, hi).
        lo = 0
        with np.errstate(over="ignore"):
            while lo < n:
                hi = min(n, lo + self._block)
                # positions p in [max(w, lo+1), hi] need bytes [p-w, p)
                p_first = max(w, lo + 1)
                if p_first > hi:
                    break
                byte_start = p_first - w
                # The uint8 view is passed through as-is: widening to
                # uint64 happens fused into the first multiply inside
                # ``_candidates_block``, so the 8× ``astype`` copy that
                # used to dominate block setup never materialises.
                local = self._candidates_block(raw[byte_start:hi])
                if local.size:
                    pieces.append(local + byte_start)
                lo = hi
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(pieces)

    def _candidates_block(self, b: npt.NDArray[np.uint8]) -> npt.NDArray[np.int64]:
        """Candidate positions within one block (local indices).

        ``b`` is the block's raw ``uint8`` byte view (zero-copy slice of
        the caller's buffer); returns local positions ``p``
        (``w <= p <= len(b)``) where the window hash of ``b[p-w:p]``
        satisfies the cut condition.
        """
        m = len(b)
        w = self.config.window
        final, threshold = self._final, self._threshold
        pow_minv, pow_m = self._power_tables(m)
        # Q(i) = sum_{j<i} b_j * minv^(j+1); Q[0] = 0.  The multiply
        # widens uint8 → uint64 in chunked casting buffers (dtype=...),
        # so no 8× copy of the input block is ever allocated.
        q = np.empty(m + 1, dtype=np.uint64)
        q[0] = 0
        np.cumsum(np.multiply(b, pow_minv, dtype=np.uint64), out=q[1:])
        # H(p) = M^p * (Q(p) - Q(p-w)), p in [w, m]
        h = pow_m[w:] * (q[w:] - q[:-w])
        cond = (h * final) < threshold
        return np.nonzero(cond)[0].astype(np.int64) + w

    def cut_points(self, data: Buffer) -> npt.NDArray[np.int64]:
        n = len(data)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        return select_cut_points(
            self.candidates(data), n, self.config.min_size, self.config.max_size
        )
