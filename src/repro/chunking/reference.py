"""Pure-Python reference Karp–Rabin CDC chunker.

This is the executable specification of the rolling hash: a direct,
byte-at-a-time implementation of the sliding-window hash that the
vectorised chunker (:mod:`repro.chunking.vectorized`) reproduces with
NumPy prefix tricks.  It is O(n) Python-level work and therefore only
suitable for tests and small inputs — the property-based test-suite
checks the two implementations produce *identical* cut points.

Hash definition (shared with the vectorised chunker)
----------------------------------------------------
With window width ``w``, odd multiplier ``M`` and input bytes ``b``:

.. math:: H(p) = \\sum_{j=p-w}^{p-1} b_j \\, M^{\\,p-1-j} \\bmod 2^{64}

A position ``p`` (a cut *after* byte ``p-1``) is a candidate when the
top ``log2(ECS)`` bits of ``H(p) * C`` are all zero, where ``C`` is an
odd finalising multiplier.  Multiplicative finalisation is used because
the low bits of a mod-``2^64`` Karp–Rabin hash mix poorly; testing the
*top* bits of an odd-multiplier product gives an unbiased ``1/ECS``
cut probability even on structured data.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from ._select import select_cut_points, splitmix64
from .base import Buffer, Chunker, ChunkerConfig

__all__ = ["ReferenceChunker", "hash_params"]

_U64 = (1 << 64) - 1


def hash_params(seed: int) -> tuple[int, int]:
    """Derive the (multiplier, finalizer) pair from a seed.

    Both the reference and the vectorised chunker call this, so equal
    seeds imply equal cut decisions.
    """
    rng = splitmix64(seed)
    mult = rng.next_odd()
    final = rng.next_odd()
    return mult, final


class ReferenceChunker(Chunker):
    """Byte-at-a-time Karp–Rabin CDC (the executable specification)."""

    def __init__(self, config: ChunkerConfig | None = None) -> None:
        self.config = config or ChunkerConfig()
        self._mult, self._final = hash_params(self.config.seed)
        # Precompute M^(w-1) for the rolling update.
        self._mult_out = pow(self._mult, self.config.window - 1, 1 << 64)
        # Cut when the finalised hash falls below 2^64 / ECS.
        self._threshold = self.config.hash_threshold

    def candidates(self, data: Buffer) -> npt.NDArray[np.int64]:
        """All positions whose window hash satisfies the cut condition."""
        b = bytes(data)
        n = len(b)
        w = self.config.window
        if n < w:
            return np.empty(0, dtype=np.int64)
        mult, final, threshold = self._mult, self._final, self._threshold
        mult_out = self._mult_out
        out: list[int] = []
        h = 0
        for j in range(w):
            h = (h * mult + b[j]) & _U64
        # h == H(w)
        if ((h * final) & _U64) < threshold:
            out.append(w)
        for p in range(w + 1, n + 1):
            h = ((h - b[p - 1 - w] * mult_out) * mult + b[p - 1]) & _U64
            if ((h * final) & _U64) < threshold:
                out.append(p)
        return np.asarray(out, dtype=np.int64)

    def cut_points(self, data: Buffer) -> npt.NDArray[np.int64]:
        n = len(data)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        return select_cut_points(
            self.candidates(data), n, self.config.min_size, self.config.max_size
        )
