"""Cut-point selection shared by the content-defined chunkers.

The rolling hash proposes *candidate* positions; this module turns a
sorted candidate array into final cut points subject to the min/max
chunk-size bounds.  Keeping the selection logic in one place is what
lets the pure-Python reference chunker and the NumPy-vectorised
chunker agree bit-for-bit (a property the test-suite enforces).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

__all__ = ["select_cut_points", "splitmix64"]


def splitmix64(seed: int) -> _SplitMix64:
    """Deterministic 64-bit constant generator for hash parameters."""
    return _SplitMix64(seed)


class _SplitMix64:
    """SplitMix64 PRNG — tiny, seedable, and dependency-free."""

    _MASK = (1 << 64) - 1

    def __init__(self, seed: int) -> None:
        self._state = seed & self._MASK

    def next(self) -> int:
        self._state = (self._state + 0x9E3779B97F4A7C15) & self._MASK
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & self._MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & self._MASK
        return z ^ (z >> 31)

    def next_odd(self) -> int:
        return self.next() | 1


def select_cut_points(
    candidates: npt.NDArray[np.int64],
    n: int,
    min_size: int,
    max_size: int,
) -> npt.NDArray[np.int64]:
    """Choose final cut points from sorted candidate positions.

    Rules (matching the Rabin-fingerprint chunking described in the
    paper's Section II): starting from the previous cut, the next cut
    is the first candidate at least ``min_size`` bytes away; if no
    candidate occurs within ``max_size`` bytes the cut is forced at
    ``max_size``.  The final cut always lands exactly at ``n``.

    Parameters
    ----------
    candidates:
        Sorted ``int64`` positions where the rolling-hash condition
        held (a cut *after* byte ``p-1``).
    n:
        Input length; the trailing cut.
    """
    if n == 0:
        return np.empty(0, dtype=np.int64)
    cuts: list[int] = []
    start = 0
    k = 0  # index into candidates
    num = len(candidates)
    while n - start > max_size:
        lo = start + min_size
        hi = start + max_size
        k = int(np.searchsorted(candidates, lo, side="left"))
        if k < num and candidates[k] <= hi:
            cut = int(candidates[k])
        else:
            cut = hi
        cuts.append(cut)
        start = cut
    # Tail: shorter than max_size.  A candidate may still split it,
    # provided both resulting pieces respect min_size where possible.
    while n - start > min_size:
        lo = start + min_size
        k = int(np.searchsorted(candidates, lo, side="left"))
        if k < num and candidates[k] < n:
            cut = int(candidates[k])
            cuts.append(cut)
            start = cut
        else:
            break
    cuts.append(n)
    return np.asarray(cuts, dtype=np.int64)
