"""TTTD — the Two-Threshold Two-Divisor chunker (Eshghi & Tang 2005).

The paper's Section II describes TTTD as the improved CDC variant:
besides the *main* divisor ``D`` (expected size ``ECS``) it tracks a
*backup* divisor ``D' < D`` that matches more often.  While scanning
between ``min_size`` and ``max_size``, the most recent backup match is
remembered; if the scan reaches ``max_size`` without a main match, the
cut is placed at the remembered backup position instead of at the
arbitrary ``max_size`` byte.  This keeps forced cuts content-defined,
improving boundary resynchronisation after edits.

Implementation: reuses the vectorised Karp–Rabin window hash; the main
condition is ``top log2(ECS) bits of (H*C) == 0`` and the backup
condition ``top log2(ECS)-1 bits == 0`` (twice as likely, and a strict
superset of main matches — exactly the divisor pair relationship).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from .base import Buffer, Chunker, ChunkerConfig
from .vectorized import VectorizedChunker

__all__ = ["TTTDChunker"]


class TTTDChunker(Chunker):
    """Two-Threshold Two-Divisor chunking on the Karp–Rabin hash."""

    def __init__(self, config: ChunkerConfig | None = None) -> None:
        self.config = config or ChunkerConfig()
        # Backup divisor = ECS/2: backup candidates are positions whose
        # hash clears one fewer top bit.
        if self.config.expected_size < 128:
            raise ValueError("TTTD needs expected_size >= 128 for a backup divisor")
        backup_cfg = ChunkerConfig(
            expected_size=self.config.expected_size // 2,
            min_size=self.config.min_size,
            max_size=self.config.max_size,
            window=self.config.window,
            seed=self.config.seed,
        )
        self._main = VectorizedChunker(self.config)
        self._backup = VectorizedChunker(backup_cfg)

    def cut_points(self, data: Buffer) -> npt.NDArray[np.int64]:
        n = len(data)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        return self._select(
            self._main.candidates(data), self._backup.candidates(data), n
        )

    def _cut_points_ctx(self, data: Buffer, hist: int) -> npt.NDArray[np.int64]:
        if hist == 0:
            return self.cut_points(data)
        main = self._main.candidates(data)
        backup = self._backup.candidates(data)
        cuts = self._select(
            main[main > hist] - hist, backup[backup > hist] - hist, len(data) - hist
        )
        return cuts + hist

    def _select(
        self,
        main: npt.NDArray[np.int64],
        backup: npt.NDArray[np.int64],
        n: int,
    ) -> npt.NDArray[np.int64]:
        """TTTD cut selection over precomputed candidate arrays."""
        min_size, max_size = self.config.min_size, self.config.max_size
        cuts: list[int] = []
        start = 0
        while n - start > max_size:
            lo, hi = start + min_size, start + max_size
            k = int(np.searchsorted(main, lo, side="left"))
            if k < len(main) and main[k] <= hi:
                cut = int(main[k])
            else:
                # No main match: fall back to the *last* backup match
                # in-window, else force the cut at max_size.
                kb = int(np.searchsorted(backup, hi, side="right")) - 1
                if kb >= 0 and backup[kb] >= lo:
                    cut = int(backup[kb])
                else:
                    cut = hi
            cuts.append(cut)
            start = cut
        while n - start > min_size:
            lo = start + min_size
            k = int(np.searchsorted(main, lo, side="left"))
            if k < len(main) and main[k] < n:
                cut = int(main[k])
                cuts.append(cut)
                start = cut
            else:
                break
        cuts.append(n)
        return np.asarray(cuts, dtype=np.int64)
