"""Common chunking types: :class:`Chunk`, :class:`ChunkerConfig` and the
:class:`Chunker` interface.

All chunkers in this package share one contract: given an input buffer
they return a strictly increasing array of *cut points* ``[c_1, ...,
c_k]`` with ``c_k == len(data)``; chunk ``i`` covers bytes
``[c_{i-1}, c_i)`` (with ``c_0 == 0``).  Content-defined chunkers
(Karp–Rabin, Gear, TTTD) choose cut points from the data so that
boundaries resynchronise after insertions/deletions — the property
that defeats the boundary-shifting problem of fixed-size chunking.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Chunk", "ChunkerConfig", "Chunker", "chunks_from_cut_points"]


@dataclass(frozen=True)
class Chunk:
    """One chunk of an input buffer.

    ``data`` is a zero-copy :class:`memoryview` into the original
    buffer (copies of multi-megabyte streams are the dominant avoidable
    cost in Python dedup pipelines).
    """

    offset: int
    size: int
    data: memoryview = field(repr=False)

    def tobytes(self) -> bytes:
        """Materialise the chunk's bytes (copies)."""
        return bytes(self.data)


@dataclass(frozen=True)
class ChunkerConfig:
    """Parameters shared by the content-defined chunkers.

    Parameters
    ----------
    expected_size:
        The paper's ``ECS`` — the mean chunk size targeted by the cut
        condition, which fires when the finalised window hash falls
        below ``2^64 / ECS`` (probability exactly ``1/ECS``; any
        ECS ≥ 16 is supported, matching the paper's 768-byte sweep
        point).
    min_size, max_size:
        Hard bounds on chunk length.  Defaults follow LBFS-style
        practice: ``min = max(64, ECS // 4)`` and ``max = 8 * ECS``.
    window:
        Sliding-window width in bytes for the rolling hash.
    seed:
        Seeds the rolling-hash constants; two chunkers with the same
        seed make identical cut decisions.
    """

    expected_size: int = 4096
    min_size: int | None = None
    max_size: int | None = None
    window: int = 48
    seed: int = 0x9E3779B9

    def __post_init__(self) -> None:
        ecs = self.expected_size
        if ecs < 16:
            raise ValueError(f"expected_size must be >= 16, got {ecs}")
        if self.min_size is None:
            object.__setattr__(self, "min_size", max(64, ecs // 4))
        if self.max_size is None:
            object.__setattr__(self, "max_size", 8 * ecs)
        if self.min_size <= 0:
            raise ValueError(f"min_size must be positive, got {self.min_size}")
        if self.max_size < self.min_size:
            raise ValueError(
                f"max_size ({self.max_size}) must be >= min_size ({self.min_size})"
            )
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")

    @property
    def hash_threshold(self) -> int:
        """Finalised window hashes below this value are cut candidates
        (``2^64 / ECS``, giving an exact ``1/ECS`` probability)."""
        return (1 << 64) // self.expected_size

    def scaled(self, factor: int) -> "ChunkerConfig":
        """A config with ``expected_size`` multiplied by ``factor``.

        Used by the bimodal-family algorithms whose *big* chunk size is
        ``ECS * SD`` for sampling distance ``SD``.
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return ChunkerConfig(
            expected_size=self.expected_size * factor,
            min_size=None,
            max_size=None,
            window=self.window,
            seed=self.seed,
        )


def chunks_from_cut_points(data: bytes | memoryview, cuts: np.ndarray) -> list[Chunk]:
    """Build :class:`Chunk` views from a cut-point array."""
    view = memoryview(data)
    out: list[Chunk] = []
    start = 0
    for end in cuts:
        end = int(end)
        out.append(Chunk(offset=start, size=end - start, data=view[start:end]))
        start = end
    return out


class Chunker(ABC):
    """Interface implemented by every chunking algorithm."""

    config: ChunkerConfig

    @abstractmethod
    def cut_points(self, data: bytes | memoryview) -> np.ndarray:
        """Strictly increasing ``int64`` cut positions ending at ``len(data)``.

        An empty input yields an empty array.
        """

    def chunk(self, data: bytes | memoryview) -> list[Chunk]:
        """Split ``data`` into :class:`Chunk` views."""
        if len(data) == 0:
            return []
        return chunks_from_cut_points(data, self.cut_points(data))

    def validate_cuts(self, data_len: int, cuts: np.ndarray) -> None:
        """Assert the cut-point contract (used by tests and debug runs)."""
        if data_len == 0:
            if len(cuts) != 0:
                raise AssertionError("empty input must produce no cuts")
            return
        if len(cuts) == 0 or int(cuts[-1]) != data_len:
            raise AssertionError("last cut must equal input length")
        if np.any(np.diff(cuts) <= 0) or int(cuts[0]) <= 0:
            raise AssertionError("cut points must be strictly increasing and positive")
