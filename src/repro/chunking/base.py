"""Common chunking types: :class:`Chunk`, :class:`ChunkerConfig` and the
:class:`Chunker` interface.

All chunkers in this package share one contract: given an input buffer
they return a strictly increasing array of *cut points* ``[c_1, ...,
c_k]`` with ``c_k == len(data)``; chunk ``i`` covers bytes
``[c_{i-1}, c_i)`` (with ``c_0 == 0``).  Content-defined chunkers
(Karp–Rabin, Gear, TTTD) choose cut points from the data so that
boundaries resynchronise after insertions/deletions — the property
that defeats the boundary-shifting problem of fixed-size chunking.

Streaming
---------
:meth:`Chunker.chunk_stream` is the bounded-memory entry point: it
pulls ``window_bytes``-sized reads from a file-like object and yields
batches of :class:`Chunk` objects whose cut points are **identical**
to a whole-buffer :meth:`Chunker.chunk` call.  The driver holds back
the unconsumed tail (at most ``max_size`` plus the chunker's declared
lookahead) between windows, so peak buffering is
``window_bytes + max_size + lookahead + lookback`` regardless of
stream length.  Exactness rests on two properties every in-repo
chunker satisfies:

* candidate positions are *content-local*: whether position ``p`` is a
  cut candidate depends only on bytes within ``lookback`` before and
  ``lookahead`` after ``p`` (declared via :meth:`Chunker.stream_params`);
* cut selection is *sequential from the last cut*: the decision that
  produces the next cut inspects only candidates within ``max_size``
  of the current chunk start.

Chunks whose decisions could still be changed by unread bytes are
carried over to the next window; at EOF the remainder is flushed with
the genuine end-of-input rules.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np
import numpy.typing as npt

from ..obs.metrics import Histogram
from ._select import select_cut_points

__all__ = [
    "Chunk",
    "ChunkerConfig",
    "Chunker",
    "ChunkSource",
    "StreamStats",
    "chunks_from_cut_points",
    "DEFAULT_STREAM_WINDOW",
]

#: Buffer types every chunker accepts (streaming hands over
#: ``bytearray`` carry buffers; whole-file ingest hands over ``bytes``).
Buffer = bytes | bytearray | memoryview


class ChunkSource(Protocol):
    """The reader seam of the streaming pipeline.

    Anything with a ``read(n)`` returning at most ``n`` bytes (``b""``
    at end of stream) can feed :meth:`Chunker.chunk_stream` — open
    binary files, ``io.BytesIO``, sockets wrapped in a buffer, custom
    throttled readers.
    """

    def read(self, n: int, /) -> bytes:
        """Return up to ``n`` bytes; empty means end of stream."""
        ...

#: Default read size for :meth:`Chunker.chunk_stream` (1 MiB).
DEFAULT_STREAM_WINDOW = 1 << 20


@dataclass(frozen=True)
class Chunk:
    """One chunk of an input buffer.

    ``data`` is a zero-copy :class:`memoryview` into the original
    buffer (copies of multi-megabyte streams are the dominant avoidable
    cost in Python dedup pipelines).
    """

    offset: int
    size: int
    data: memoryview = field(repr=False)

    def tobytes(self) -> bytes:
        """Materialise the chunk's bytes (copies)."""
        return bytes(self.data)


@dataclass(frozen=True)
class ChunkerConfig:
    """Parameters shared by the content-defined chunkers.

    Parameters
    ----------
    expected_size:
        The paper's ``ECS`` — the mean chunk size targeted by the cut
        condition, which fires when the finalised window hash falls
        below ``2^64 / ECS`` (probability exactly ``1/ECS``; any
        ECS ≥ 16 is supported, matching the paper's 768-byte sweep
        point).
    min_size, max_size:
        Hard bounds on chunk length.  Leave at ``0`` (the default) to
        derive LBFS-style bounds: ``min = max(64, ECS // 4)`` and
        ``max = 8 * ECS``; after construction both are always concrete
        positive sizes.
    window:
        Sliding-window width in bytes for the rolling hash.
    seed:
        Seeds the rolling-hash constants; two chunkers with the same
        seed make identical cut decisions.
    """

    expected_size: int = 4096
    min_size: int = 0
    max_size: int = 0
    window: int = 48
    seed: int = 0x9E3779B9

    def __post_init__(self) -> None:
        ecs = self.expected_size
        if ecs < 16:
            raise ValueError(f"expected_size must be >= 16, got {ecs}")
        if not self.min_size:
            object.__setattr__(self, "min_size", max(64, ecs // 4))
        if not self.max_size:
            object.__setattr__(self, "max_size", 8 * ecs)
        if self.min_size <= 0:
            raise ValueError(f"min_size must be positive, got {self.min_size}")
        if self.max_size < self.min_size:
            raise ValueError(
                f"max_size ({self.max_size}) must be >= min_size ({self.min_size})"
            )
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")

    @property
    def hash_threshold(self) -> int:
        """Finalised window hashes below this value are cut candidates
        (``2^64 / ECS``, giving an exact ``1/ECS`` probability)."""
        return (1 << 64) // self.expected_size

    def scaled(self, factor: int) -> ChunkerConfig:
        """A config with ``expected_size`` multiplied by ``factor``.

        Used by the bimodal-family algorithms whose *big* chunk size is
        ``ECS * SD`` for sampling distance ``SD``.
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return ChunkerConfig(
            expected_size=self.expected_size * factor,
            window=self.window,
            seed=self.seed,
        )


def chunks_from_cut_points(data: Buffer, cuts: npt.NDArray[np.int64]) -> list[Chunk]:
    """Build :class:`Chunk` views from a cut-point array."""
    view = memoryview(data)
    out: list[Chunk] = []
    start = 0
    for raw_end in cuts:
        end = int(raw_end)
        out.append(Chunk(offset=start, size=end - start, data=view[start:end]))
        start = end
    return out


@dataclass
class StreamStats:
    """Per-stream counters :meth:`Chunker.chunk_stream` fills in.

    The deduplicators fold these into their pipeline statistics so a
    run can prove its chunking stage really was bounded-memory.
    """

    windows: int = 0  # non-empty reads pulled from the source
    stalls: int = 0  # windows that could not emit a single stable cut
    peak_buffer_bytes: int = 0  # high-water mark of carry + window
    #: When set (by telemetry-enabled ingest), every emitted chunk's
    #: size is observed here — the primary-stream size distribution.
    size_hist: Histogram | None = None


class Chunker(ABC):
    """Interface implemented by every chunking algorithm."""

    config: ChunkerConfig

    @abstractmethod
    def cut_points(self, data: Buffer) -> npt.NDArray[np.int64]:
        """Strictly increasing ``int64`` cut positions ending at ``len(data)``.

        An empty input yields an empty array.
        """

    def candidates(self, data: Buffer) -> npt.NDArray[np.int64]:
        """Positions where the cut condition fires, before selection.

        Chunkers relying on the default :meth:`_cut_points_ctx` (the
        ``select_cut_points(candidates(...))`` shape) implement this;
        chunkers with bespoke selection override :meth:`_cut_points_ctx`
        instead and may leave it unimplemented.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose cut candidates"
        )

    def chunk(self, data: Buffer) -> list[Chunk]:
        """Split ``data`` into :class:`Chunk` views.

        This is the one-big-window degenerate case of
        :meth:`chunk_stream` and remains the fast path for inputs that
        are already materialised in memory.
        """
        if len(data) == 0:
            return []
        return chunks_from_cut_points(data, self.cut_points(data))

    # ---- streaming -------------------------------------------------------

    def stream_params(self) -> tuple[int, int]:
        """``(lookback, lookahead)`` context bytes candidate decisions need.

        ``lookback`` bytes before a position and ``lookahead`` bytes
        after it must be buffered for the candidate test at that
        position to be byte-identical to a whole-input run.  The
        default covers every rolling-hash chunker (the hash window);
        chunkers with wider context (LMC's extremum radius) override.
        """
        return self.config.window, self.config.window

    def _cut_points_ctx(self, data: Buffer, hist: int) -> npt.NDArray[np.int64]:
        """Cut points of ``data[hist:]`` given ``data[:hist]`` as context.

        Positions are relative to ``data`` (i.e. ``> hist``, ending at
        ``len(data)``).  The context prefix participates in candidate
        *computation* (rolling-hash windows may reach into it) but cut
        *selection* starts at ``hist`` — exactly the state of a
        whole-input run whose previous cut landed at ``hist``.

        The default implementation covers chunkers of the
        ``select_cut_points(candidates(...))`` shape; chunkers with
        bespoke selection (TTTD, FastCDC, fixed) override.
        """
        if hist == 0:
            return self.cut_points(data)
        cands = self.candidates(data)
        local = cands[cands > hist] - hist
        cuts = select_cut_points(
            local, len(data) - hist, self.config.min_size, self.config.max_size
        )
        return cuts + hist

    def chunk_stream(
        self,
        reader: ChunkSource,
        window_bytes: int = DEFAULT_STREAM_WINDOW,
        stats: StreamStats | None = None,
    ) -> Iterator[list[Chunk]]:
        """Chunk a file-like object incrementally, in bounded memory.

        Yields batches of :class:`Chunk` objects whose offsets are
        absolute stream positions and whose concatenation reproduces
        the stream byte-for-byte.  Cut points are identical to
        ``chunk(whole_stream)`` for any ``window_bytes`` — the unstable
        tail (up to ``max_size + lookahead`` bytes) is carried into the
        next window instead of being cut early.
        """
        if window_bytes <= 0:
            raise ValueError(f"window_bytes must be positive, got {window_bytes}")
        lookback, lookahead = self.stream_params()
        holdback = self.config.max_size + lookahead
        # A bytearray so appending the next window is amortised O(n)
        # over the stream (``bytes +=`` would re-copy the whole carry
        # buffer per window — the quadratic pattern DDC005 rejects).
        # Re-slicing below rebinds to a fresh bytearray, so no exported
        # chunk view is ever resized under a consumer.
        buf = bytearray()  # lookback context + pending (unemitted) bytes
        hist = 0  # length of the already-emitted context prefix of buf
        pos = 0  # absolute stream offset of buf[hist]
        while True:
            piece = reader.read(window_bytes)
            if not piece:
                if len(buf) > hist:
                    # Sample the high-water mark here too: the carry +
                    # tail flushed at EOF is buffered memory just like a
                    # mid-stream window, and a reader that returns short
                    # reads could otherwise peak in this branch without
                    # the append-time sample below ever seeing it.
                    if stats is not None and len(buf) > stats.peak_buffer_bytes:
                        stats.peak_buffer_bytes = len(buf)
                    cuts = [int(c) for c in self._cut_points_ctx(buf, hist)]
                    tail = _emit_batch(buf, hist, cuts, pos)
                    if stats is not None and stats.size_hist is not None:
                        stats.size_hist.observe_many(c.size for c in tail)
                    yield tail
                return
            buf += piece
            if stats is not None:
                stats.windows += 1
                if len(buf) > stats.peak_buffer_bytes:
                    stats.peak_buffer_bytes = len(buf)
            # A decision starting at `start` is final only once
            # `start + holdback` bytes are buffered: the selector looks
            # at candidates up to start+max_size, and each candidate
            # needs `lookahead` bytes beyond itself.
            if hist + holdback > len(buf):
                if stats is not None:
                    stats.stalls += 1
                continue
            emit: list[int] = []
            last = hist
            for raw_cut in self._cut_points_ctx(buf, hist):
                cut = int(raw_cut)
                if last + holdback > len(buf):
                    break
                emit.append(cut)
                last = cut
            if not emit:
                if stats is not None:
                    stats.stalls += 1
                continue
            batch = _emit_batch(buf, hist, emit, pos)
            if stats is not None and stats.size_hist is not None:
                stats.size_hist.observe_many(c.size for c in batch)
            pos += emit[-1] - hist
            keep_from = emit[-1] - min(lookback, emit[-1])
            hist = emit[-1] - keep_from
            buf = buf[keep_from:]
            yield batch

    def validate_cuts(self, data_len: int, cuts: npt.NDArray[np.int64]) -> None:
        """Assert the cut-point contract (used by tests and debug runs)."""
        if data_len == 0:
            if len(cuts) != 0:
                raise AssertionError("empty input must produce no cuts")
            return
        if len(cuts) == 0 or int(cuts[-1]) != data_len:
            raise AssertionError("last cut must equal input length")
        if np.any(np.diff(cuts) <= 0) or int(cuts[0]) <= 0:
            raise AssertionError("cut points must be strictly increasing and positive")


def _emit_batch(buf: Buffer, hist: int, cuts: list[int], pos: int) -> list[Chunk]:
    """Build absolute-offset :class:`Chunk` views over one buffer."""
    view = memoryview(buf)
    out: list[Chunk] = []
    start = hist
    for c in cuts:
        out.append(Chunk(offset=pos + start - hist, size=c - start, data=view[start:c]))
        start = c
    return out
