"""Content-defined and fixed-size chunking algorithms.

:class:`VectorizedChunker` (NumPy Karp–Rabin CDC) is the default
chunker used by every deduplicator in the repository;
:class:`ReferenceChunker` is its byte-at-a-time executable
specification.  :class:`TTTDChunker`, :class:`GearChunker` and
:class:`FixedChunker` are the alternatives the paper discusses in its
related-work section, used in ablation benches.
"""

from ._accel import HAVE_NUMPY, batched_enabled
from .base import (
    DEFAULT_STREAM_WINDOW,
    Buffer,
    Chunk,
    Chunker,
    ChunkerConfig,
    ChunkSource,
    StreamStats,
    chunks_from_cut_points,
)
from .fastcdc import FastCDCChunker
from .fixed import FixedChunker
from .gear import GearChunker
from .lmc import LocalMaxChunker
from .reference import ReferenceChunker
from .tttd import TTTDChunker
from .vectorized import VectorizedChunker

__all__ = [
    "HAVE_NUMPY",
    "batched_enabled",
    "Buffer",
    "Chunk",
    "Chunker",
    "ChunkerConfig",
    "ChunkSource",
    "StreamStats",
    "DEFAULT_STREAM_WINDOW",
    "chunks_from_cut_points",
    "FastCDCChunker",
    "FixedChunker",
    "GearChunker",
    "LocalMaxChunker",
    "ReferenceChunker",
    "TTTDChunker",
    "VectorizedChunker",
]
