"""Fixed-size (FSP) chunker — the Venti/OceanStore baseline.

Included because the paper's introduction motivates CDC by fixed-size
chunking's *boundary-shifting problem*: a one-byte insertion shifts
every later chunk boundary, destroying all downstream duplicate
detection.  The test-suite demonstrates exactly this failure mode, and
the ablation benches use FSP as the no-CDC control.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from .base import Buffer, Chunker, ChunkerConfig

__all__ = ["FixedChunker"]


class FixedChunker(Chunker):
    """Cuts every ``expected_size`` bytes regardless of content."""

    def __init__(self, config: ChunkerConfig | None = None) -> None:
        self.config = config or ChunkerConfig()

    def cut_points(self, data: Buffer) -> npt.NDArray[np.int64]:
        n = len(data)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        step = self.config.expected_size
        cuts = np.arange(step, n, step, dtype=np.int64)
        return np.concatenate([cuts, np.asarray([n], dtype=np.int64)])

    def stream_params(self) -> tuple[int, int]:
        # Cut decisions are position-only: no byte context at all.
        return 0, 0

    def _cut_points_ctx(self, data: Buffer, hist: int) -> npt.NDArray[np.int64]:
        if hist == 0:
            return self.cut_points(data)
        return self.cut_points(memoryview(data)[hist:]) + hist
