"""Local-maximum chunking (the AE / LMC family, Zhang et al. 2015).

An alternative CDC family to rolling hashes: a position is a cut point
when its (permuted) byte value is the strict maximum of a symmetric
window of radius ``w`` around it.  A uniformly random position is that
maximum with probability ``1/(2w+1)``, so the expected chunk size is
``min_size + (2w+1)`` — the radius is derived from ``ECS``.

The attraction is vectorisability without any rolling state:
``scipy.ndimage.maximum_filter1d`` computes the windowed maximum in
one pass, and a strict-maximum test is a single comparison.  Byte
values are passed through a seeded 8-bit permutation first so that
structured data (ASCII, zero runs) doesn't starve the extremum test,
and ties (which break strictness) are resolved by mixing in low bits
of the position-independent neighbour values via a 16-bit key built
from byte pairs.

Included as a related-family ablation chunker; the Karp–Rabin
vectorised chunker remains the default.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt
from scipy.ndimage import maximum_filter1d

from ._select import select_cut_points, splitmix64
from .base import Buffer, Chunker, ChunkerConfig

__all__ = ["LocalMaxChunker"]


class LocalMaxChunker(Chunker):
    """Strict-local-maximum content-defined chunker."""

    def __init__(self, config: ChunkerConfig | None = None) -> None:
        self.config = config or ChunkerConfig()
        # Radius so that 2w+1 ~ expected_size.
        self._radius = max(2, (self.config.expected_size - 1) // 2)
        rng = splitmix64(self.config.seed + 0x4C4D43)  # "LMC"
        # Seeded 16-bit value table indexed by byte pairs: enough key
        # space that exact ties are rare even in structured data.
        self._table = np.array(
            [rng.next() & 0xFFFF for _ in range(65536)], dtype=np.uint16
        )

    def candidates(self, data: Buffer) -> npt.NDArray[np.int64]:
        """Strict local maxima of the keyed byte-pair sequence."""
        n = len(data)
        if n < 2:
            return np.empty(0, dtype=np.int64)
        raw = np.frombuffer(data, dtype=np.uint8)
        pair_keys = (raw[:-1].astype(np.uint32) << 8) | raw[1:]
        v = self._table[pair_keys]
        window_max = maximum_filter1d(v, size=2 * self._radius + 1, mode="nearest")
        is_max = v == window_max
        # Strictness: a value equal to a *different* position's max is
        # ambiguous; keep only positions whose value occurs once in the
        # window.  Cheap approximation: drop positions whose immediate
        # neighbours share the value.
        strict = is_max.copy()
        strict[1:] &= v[1:] != v[:-1]
        strict[:-1] &= v[:-1] != v[1:]
        # A candidate at pair position i cuts after byte i+1.
        return np.nonzero(strict)[0].astype(np.int64) + 2

    def stream_params(self) -> tuple[int, int]:
        # The strict-maximum test at pair index i inspects pair values
        # in [i - radius, i + radius]; each pair value covers two bytes.
        ctx = 2 * self._radius + 4
        return ctx, ctx

    def cut_points(self, data: Buffer) -> npt.NDArray[np.int64]:
        n = len(data)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        cands = self.candidates(data)
        cands = cands[cands <= n]
        return select_cut_points(
            cands, n, self.config.min_size, self.config.max_size
        )
