"""Typed seams between the dedup core and its pluggable pieces.

The core is deliberately structural: algorithms, manifest kinds and
storage backends plug in by *shape*, not by inheritance.  This module
writes those shapes down as :class:`typing.Protocol`\\ s so
``mypy --strict`` verifies every implementation instead of relying on
convention:

* :class:`BatchIngestHooks` — the ``_begin_file`` / ``_ingest_chunks``
  / ``_end_file`` contract every deduplicator's streaming ingest rests
  on (see :meth:`repro.core.base.Deduplicator.ingest`);
* :class:`CacheableManifest` / :class:`ManifestBackend` — what the
  shared LRU :class:`repro.core.manifest_cache.ManifestCache` needs
  from a manifest object and its persistence layer, satisfied by both
  :class:`repro.storage.Manifest` (MHD, per-DiskChunk) and
  :class:`repro.storage.multi_manifest.MultiManifest` (SubChunk /
  SparseIndexing bins and segments).

The chunk-source seam (:class:`repro.chunking.base.ChunkSource`) lives
with the chunkers; the object-store seam
(:class:`repro.storage.backend.ObjectBackend`) with the stores.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any, Protocol, TypeVar

from ..chunking.base import Chunk
from ..hashing import Digest
from ..workloads.machine import BackupFile

__all__ = [
    "BatchIngestHooks",
    "CacheableManifest",
    "IngestObserver",
    "ManifestBackend",
]


class BatchIngestHooks(Protocol):
    """The per-file hook contract of the streaming ingest pipeline.

    ``ingest()`` drives exactly this sequence per file::

        _begin_file(file); _ingest_chunks(batch)*; _end_file()

    Implementations must be *batch-boundary invariant*: splitting the
    same chunk sequence into different batches must not change any
    decision (dedupcheck rule DDC003 guards the most common way to
    break this — reaching for the whole file's bytes mid-stream).
    """

    def _begin_file(self, file: BackupFile) -> None:
        """Open per-file state (manifest, container writer, ...)."""

    def _ingest_chunks(self, batch: list[Chunk]) -> None:
        """Process one batch of stream chunks (absolute offsets)."""

    def _end_file(self) -> None:
        """Flush per-file state; the file's chunk stream is complete."""


class IngestObserver(Protocol):
    """Session hooks wrapped *around* the per-file ingest hooks.

    :meth:`repro.core.base.Deduplicator.ingest` drives, per file::

        begin_file(file)
        _begin_file(file)
        [observe_batch(nbytes, nchunks); _ingest_chunks(batch)]*
        _end_file()
        end_file(file)

    An observer is how a service session supervises a run it does not
    own the inner loop of: per-tenant quota and rate accounting happen
    in :meth:`observe_batch` *before* the batch reaches the dedup core,
    so an over-quota ingest aborts mid-file without the excess bytes
    ever being stored.  Any exception raised by a hook propagates out
    of ``ingest()``; the store is then repaired with
    :func:`repro.storage.recover.recover` (crash-safe abort — a raise
    here is indistinguishable from a crash at the same point).

    Unlike telemetry (read-only by decree, DDC007), an observer is a
    *control* seam: it may veto work by raising.
    """

    def begin_file(self, file: BackupFile) -> None:
        """Called before the algorithm opens per-file state."""

    def observe_batch(self, nbytes: int, nchunks: int) -> None:
        """Called before each chunk batch reaches the dedup core.

        Raising aborts the file (and the run) mid-stream.
        """

    def end_file(self, file: BackupFile) -> None:
        """Called after the algorithm flushed the file's state."""


class CacheableManifest(Protocol):
    """What the manifest cache needs from a manifest object.

    Both manifest kinds are hash tables with an identity, a dirty flag
    and a RAM cost; the cache touches nothing else.
    """

    @property
    def manifest_id(self) -> Digest:
        """Hash address of this manifest on the simulated disk."""
        ...

    @property
    def dirty(self) -> bool:
        """Whether the manifest must be written back before eviction."""
        ...

    @property
    def index(self) -> Mapping[Digest, Any]:
        """Digest -> position(s); the cache aggregates the key sets."""
        ...

    def ram_size(self) -> int:
        """Bytes occupied when cached in RAM (Table IV accounting)."""
        ...


#: The concrete manifest kind a cache instance holds.
M = TypeVar("M", bound=CacheableManifest)


class ManifestBackend(Protocol[M]):
    """Metered persistence for one manifest kind.

    Satisfied by :class:`repro.storage.ManifestStore` (``M`` =
    :class:`~repro.storage.Manifest`) and
    :class:`repro.storage.multi_manifest.MultiManifestStore` (``M`` =
    :class:`~repro.storage.multi_manifest.MultiManifest`).
    """

    def put(self, manifest: M) -> None:
        """Persist ``manifest`` (metered write; clears its dirty flag)."""
        ...

    def get(self, manifest_id: Digest) -> M:
        """Load a manifest from disk (metered read)."""
        ...
