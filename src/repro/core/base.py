"""Deduplicator base class, run statistics and the common plumbing.

Every algorithm in the repository — BF-MHD and the Bimodal, SubChunk,
CDC and SparseIndexing baselines — subclasses :class:`Deduplicator`,
which owns the storage substrate (metered stores over a pluggable
backend), the CPU-work counters the timing model consumes, duplicate-
slice tracking, and the restore/verification path.

Ingest is a bounded-memory streaming pipeline with explicit stages::

    source -> chunker -> hasher -> dedup core -> store

:meth:`Deduplicator.ingest` opens the file's source, drives the
subclass's chunker incrementally (:meth:`Chunker.chunk_stream`) and
hands each batch of chunks to the algorithm through three hooks:
:meth:`_begin_file`, :meth:`_ingest_chunks` (per batch) and
:meth:`_end_file`.  Peak memory is the chunker's carry window plus the
algorithm's own buffer (MHD's ``2·SD`` token buffer, a bimodal big
chunk, a sparse-indexing segment) — independent of file size.  Files
constructed with in-memory ``data`` take the same code path as one big
window, so whole-bytes and streamed ingest are decision-identical.

The statistics exposed by :class:`DedupStats` are exactly the paper's
evaluation quantities (Section V):

* data-only DER — input bytes / stored chunk bytes,
* real DER — input bytes / (stored bytes + *all* metadata incl. the
  256-byte inodes of every metadata file),
* MetaDataRatio — metadata bytes / input bytes,
* N, D, L — unique/duplicate chunk and duplicate-slice counts,
* per-namespace disk-access counts (Table II rows),
* peak RAM of the in-memory structures (Table III/IV).
"""

from __future__ import annotations

import logging
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..chunking.base import Chunk, Chunker, DEFAULT_STREAM_WINDOW, StreamStats
from ..hashing import BloomFilter, Digest
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from ..storage import (
    INODE_SIZE,
    DiskChunkStore,
    DiskModel,
    FileManifestStore,
    HookStore,
    IOSnapshot,
    ManifestStore,
    MemoryBackend,
    StorageBackend,
)
from ..storage.verify import IntegrityReport
from ..workloads.machine import BackupFile
from .config import DedupConfig

if TYPE_CHECKING:
    from .protocols import BatchIngestHooks, IngestObserver

__all__ = ["CpuWork", "DedupStats", "Deduplicator", "PipelineStats"]

logger = logging.getLogger("repro.dedup")


@dataclass
class CpuWork:
    """Byte counts of the three CPU-bound operations, for the timing model."""

    chunked: int = 0  # bytes scanned by rolling-hash chunkers
    hashed: int = 0  # bytes digested by SHA-1
    compared: int = 0  # bytes memcmp'd during HHR / byte verification


@dataclass
class PipelineStats:
    """Per-stage counters of the streaming ingest pipeline.

    Aggregated across all files of a run; the proof that the
    chunk→hash→index→store path really ran in bounded memory is
    ``peak_buffer_bytes`` staying at window + carry size while
    ``input_bytes`` grows without limit.
    """

    batches: int = 0  # chunk batches delivered to the dedup core
    windows: int = 0  # reads pulled from file sources by the chunkers
    stalls: int = 0  # windows that yielded no stable cut (carried over)
    peak_buffer_bytes: int = 0  # high-water of the chunker carry buffer
    streamed_files: int = 0  # files ingested from a source (not bytes)


@dataclass(frozen=True)
class DedupStats:
    """Everything an experiment reads out of one deduplication run."""

    algorithm: str
    config: DedupConfig
    input_bytes: int
    input_files: int
    stored_chunk_bytes: int
    manifest_bytes: int
    hook_bytes: int
    file_manifest_bytes: int
    chunk_inodes: int
    manifest_inodes: int
    hook_inodes: int
    file_manifest_inodes: int
    unique_chunks: int  # N
    duplicate_chunks: int  # D
    duplicate_slices: int  # L
    io: IOSnapshot
    cpu: CpuWork
    peak_ram_bytes: int
    extra_index_bytes: int = 0  # algorithm-private persistent metadata
    unique_bytes: int = 0  # bytes of the input stored as unique chunks
    duplicate_bytes: int = 0  # bytes of the input found duplicate
    pipeline: PipelineStats = field(default_factory=PipelineStats)

    # ---- the paper's derived metrics ----------------------------------

    @property
    def inode_bytes(self) -> int:
        """Inode overhead of all metadata files (256 B each)."""
        return (
            self.chunk_inodes
            + self.manifest_inodes
            + self.hook_inodes
            + self.file_manifest_inodes
        ) * INODE_SIZE

    @property
    def metadata_bytes(self) -> int:
        """All metadata: manifests + hooks + file manifests + inodes."""
        return (
            self.manifest_bytes
            + self.hook_bytes
            + self.file_manifest_bytes
            + self.inode_bytes
            + self.extra_index_bytes
        )

    @property
    def output_bytes(self) -> int:
        """Stored size "from the perspective of the file system"."""
        return self.stored_chunk_bytes + self.metadata_bytes

    @property
    def data_only_der(self) -> float:
        """Input bytes / stored chunk bytes (metadata excluded)."""
        return self.input_bytes / max(1, self.stored_chunk_bytes)

    @property
    def real_der(self) -> float:
        """Input bytes / total stored bytes including all metadata."""
        return self.input_bytes / max(1, self.output_bytes)

    @property
    def metadata_ratio(self) -> float:
        """The paper's MetaDataRatio (often reported as a percentage)."""
        return self.metadata_bytes / max(1, self.input_bytes)

    @property
    def inodes_per_mb(self) -> float:
        """Fig. 7(a)'s y-axis: metadata inodes per MB of input."""
        total_inodes = (
            self.chunk_inodes
            + self.manifest_inodes
            + self.hook_inodes
            + self.file_manifest_inodes
        )
        return total_inodes / max(1e-9, self.input_bytes / (1 << 20))

    @property
    def manifest_metadata_ratio(self) -> float:
        """Fig. 7(b): (Manifest + Hook bytes) / input bytes."""
        return (self.manifest_bytes + self.hook_bytes) / max(1, self.input_bytes)

    @property
    def file_manifest_metadata_ratio(self) -> float:
        """Fig. 7(c): FileManifest bytes / input bytes."""
        return self.file_manifest_bytes / max(1, self.input_bytes)

    def as_dict(self) -> dict[str, Any]:
        """JSON-serialisable snapshot (raw counters + derived metrics).

        Used by the benches to emit machine-readable results next to
        their text reports.
        """
        return {
            "algorithm": self.algorithm,
            "ecs": self.config.ecs,
            "sd": self.config.sd,
            "input_bytes": self.input_bytes,
            "input_files": self.input_files,
            "stored_chunk_bytes": self.stored_chunk_bytes,
            "manifest_bytes": self.manifest_bytes,
            "hook_bytes": self.hook_bytes,
            "file_manifest_bytes": self.file_manifest_bytes,
            "inode_bytes": self.inode_bytes,
            "metadata_bytes": self.metadata_bytes,
            "unique_chunks": self.unique_chunks,
            "duplicate_chunks": self.duplicate_chunks,
            "duplicate_slices": self.duplicate_slices,
            "unique_bytes": self.unique_bytes,
            "duplicate_bytes": self.duplicate_bytes,
            "data_only_der": self.data_only_der,
            "real_der": self.real_der,
            "metadata_ratio": self.metadata_ratio,
            "inodes_per_mb": self.inodes_per_mb,
            "disk_accesses": self.io.count(),
            "disk_bytes": self.io.nbytes(),
            "cpu_chunked": self.cpu.chunked,
            "cpu_hashed": self.cpu.hashed,
            "cpu_compared": self.cpu.compared,
            "peak_ram_bytes": self.peak_ram_bytes,
            "stream_batches": self.pipeline.batches,
            "stream_windows": self.pipeline.windows,
            "stream_stalls": self.pipeline.stalls,
            "stream_peak_buffer_bytes": self.pipeline.peak_buffer_bytes,
            "streamed_files": self.pipeline.streamed_files,
        }


class Deduplicator(ABC):
    """Common harness: storage, metering, slice tracking, restore."""

    #: Subclasses set their display name (used in reports/benches).
    name: str = "base"

    #: The chunker defining the algorithm's primary stream.  Declared
    #: here (assigned by subclass ``__init__``) so the default
    #: :meth:`_stream_chunker` seam is fully typed.
    chunker: Chunker

    def __init__(
        self,
        config: DedupConfig | None = None,
        backend: StorageBackend | None = None,
    ) -> None:
        self.config = config or DedupConfig()
        self.backend = backend or MemoryBackend()
        self.meter = DiskModel()
        self.chunks = DiskChunkStore(self.backend, self.meter)
        self.manifests = ManifestStore(self.backend, self.meter)
        self.hooks = HookStore(self.backend, self.meter)
        self.file_manifests = FileManifestStore(self.backend, self.meter)
        self.bloom = (
            BloomFilter(self.config.bloom_bytes) if self.config.bloom_bytes else None
        )
        self.cpu = CpuWork()
        self.pipeline = PipelineStats()
        self._input_bytes = 0
        self._input_files = 0
        self._unique_chunks = 0
        self._duplicate_chunks = 0
        self._duplicate_slices = 0
        self._unique_bytes = 0
        self._duplicate_bytes = 0
        self._in_dup_run = False
        self._peak_ram = 0
        self._finalized = False
        self._telemetry: Telemetry = NULL_TELEMETRY
        #: Optional session-level control hooks wrapped around the
        #: per-file ingest hooks (see
        #: :class:`repro.core.protocols.IngestObserver`).  ``None`` —
        #: the default — keeps the hot path to a single attribute test.
        self.ingest_observer: IngestObserver | None = None

    # ---- telemetry ------------------------------------------------------

    @property
    def telemetry(self) -> Telemetry:
        """The observing telemetry context (:data:`NULL_TELEMETRY` default).

        Assigning a live :class:`~repro.obs.Telemetry` turns on metric
        collection and (when it has sinks) span tracing for all
        subsequent ingests; the disk meter starts mirroring its
        per-namespace counters into the telemetry registry and the
        tracer's I/O probe is pointed at this run's meter.  Telemetry
        is attached post-construction precisely so none of the nine
        algorithm constructors need to know about it.
        """
        return self._telemetry

    @telemetry.setter
    def telemetry(self, tel: Telemetry) -> None:
        self._telemetry = tel
        self.meter.attach_registry(tel.registry if tel.enabled else None)
        tel.set_io_probe(self._io_probe)

    def _io_probe(self) -> tuple[int, int]:
        """Cumulative ``(disk_ops, disk_bytes)`` sampler for span I/O attribution."""
        return self.meter.total_ops, self.meter.total_bytes

    # ---- the ingest API -------------------------------------------------

    #: Paranoid mode: re-read and byte-compare every file right after
    #: ingesting it (off by default; costs a full restore per file).
    verify_writes: bool = False

    #: Read size for the streaming ingest path (source-backed files).
    stream_window_bytes: int = DEFAULT_STREAM_WINDOW

    def ingest(self, file: BackupFile) -> None:
        """Deduplicate one file into the store.

        Drives the streaming pipeline: chunks are pulled from the
        file's source a window at a time and handed to the algorithm in
        batches, so peak memory is bounded by the chunker carry window
        plus the algorithm's own buffering.  With :attr:`verify_writes`
        enabled the file is restored and byte-compared immediately; a
        mismatch raises ``RuntimeError`` before any further data is
        accepted.
        """
        if self._finalized:
            raise RuntimeError("deduplicator already finalized")
        self._input_files += 1
        self._in_dup_run = False  # duplicate slices do not span files
        logger.debug("%s ingesting %s (%d bytes)", self.name, file.file_id, file.size)
        tel = self._telemetry
        stream = StreamStats()
        if tel.enabled:
            stream.size_hist = tel.registry.histogram("chunk.size_bytes")
        nbytes = 0
        batches = 0
        observer = self.ingest_observer
        with tel.span("file", file_id=file.file_id, size=file.size):
            if observer is not None:
                observer.begin_file(file)
            self._begin_file(file)
            # Manual iteration so the time spent *producing* a batch
            # (the chunk stage) and the time *consuming* it (the dedup
            # core) land in separate spans.
            feed = self._file_batches(file, stream)
            while True:
                with tel.span("chunk"):
                    batch = next(feed, None)
                if batch is None:
                    break
                if not batch:
                    continue
                batch_bytes = sum(c.size for c in batch)
                if observer is not None:
                    # Before the dedup core sees the batch: a raising
                    # observer (quota hit) aborts mid-file with none of
                    # this batch's bytes stored.
                    observer.observe_batch(batch_bytes, len(batch))
                nbytes += batch_bytes
                batches += 1
                self.pipeline.batches += 1
                with tel.span("dedup", chunks=len(batch)):
                    self._ingest_chunks(batch)
            self._input_bytes += nbytes
            self.cpu.chunked += nbytes
            self.pipeline.windows += stream.windows
            self.pipeline.stalls += stream.stalls
            if stream.peak_buffer_bytes > self.pipeline.peak_buffer_bytes:
                self.pipeline.peak_buffer_bytes = stream.peak_buffer_bytes
            self._observe_ram(stream.peak_buffer_bytes)
            with tel.span("end_file"):
                self._end_file()
            if observer is not None:
                observer.end_file(file)
        if tel.enabled:
            reg = tel.registry
            reg.counter("ingest.files").inc()
            reg.counter("ingest.bytes").inc(nbytes)
            reg.counter("ingest.batches").inc(batches)
            reg.gauge("ram.peak_bytes").set_max(self._peak_ram)
        tel.heartbeat_tick(
            self._input_files,
            self._input_bytes,
            self._unique_bytes,
            self._duplicate_bytes,
        )
        if self.verify_writes:
            with tel.span("verify", file_id=file.file_id):
                expected = file.read_bytes()
                restored = self.restore(file.file_id)
            if restored != expected:
                raise RuntimeError(
                    f"write verification failed for {file.file_id!r}: "
                    f"restored {len(restored)} bytes != input {len(expected)}"
                )

    def _file_batches(
        self, file: BackupFile, stream: StreamStats
    ) -> Iterator[list[Chunk]]:
        """Chunk-batch iterator feeding :meth:`_ingest_chunks`.

        In-memory files go through the degenerate one-big-window path
        (no copy, no carry bookkeeping); source-backed files stream
        through :meth:`Chunker.chunk_stream` in bounded memory.  Both
        paths produce identical cut points, and every algorithm's batch
        hooks are batch-boundary invariant, so the two are
        decision-identical.
        """
        if file.data is not None:
            data = file.data
            if data:
                stream.windows += 1
                if len(data) > stream.peak_buffer_bytes:
                    stream.peak_buffer_bytes = len(data)
                batch = self._stream_chunker().chunk(data)
                if stream.size_hist is not None:
                    stream.size_hist.observe_many(c.size for c in batch)
                yield batch
            return
        self.pipeline.streamed_files += 1
        with file.open() as reader:
            yield from self._stream_chunker().chunk_stream(
                reader, self.stream_window_bytes, stream
            )

    def _stream_chunker(self) -> Chunker:
        """The chunker that defines this algorithm's primary stream.

        Defaults to the conventional ``self.chunker`` attribute; the
        bimodal-family algorithms override to chunk at the big
        granularity (small chunks are derived per big chunk).
        """
        try:
            return self.chunker
        except AttributeError:
            raise NotImplementedError(
                f"{type(self).__name__} must define self.chunker or override "
                "_stream_chunker()"
            ) from None

    # ---- per-file hooks implemented by the algorithms -------------------

    def _begin_file(self, file: BackupFile) -> None:
        """Open per-file state (manifest, container writer, ...)."""

    @abstractmethod
    def _ingest_chunks(self, batch: list[Chunk]) -> None:
        """Process one batch of stream chunks (absolute offsets).

        Implementations must be batch-boundary invariant: splitting the
        same chunk sequence into different batches must not change any
        decision, so whole-bytes and streamed ingest stay identical.
        """

    def _end_file(self) -> None:
        """Flush per-file state; the file's chunk stream is complete."""

    def process(self, files: Iterable[BackupFile]) -> DedupStats:
        """Ingest a whole corpus and finalize."""
        for f in files:
            self.ingest(f)
        return self.finalize()

    def finalize(self) -> DedupStats:
        """Flush algorithm state and assemble the run statistics."""
        if not self._finalized:
            self._flush()
            self._finalized = True
            stats = self._stats()
            logger.info(
                "%s finalized: %d files, %.1f MB in, %.1f MB stored, "
                "real DER %.3f, metadata %.2f%%",
                self.name,
                stats.input_files,
                stats.input_bytes / 1e6,
                stats.stored_chunk_bytes / 1e6,
                stats.real_der,
                stats.metadata_ratio * 100,
            )
            return stats
        return self._stats()

    def snapshot_stats(self) -> DedupStats:
        """Point-in-time statistics without finalizing the run.

        Mid-run numbers: open containers and dirty cached manifests are
        not yet on the backend, so stored/metadata byte counts lag the
        logical state slightly; the final word is :meth:`finalize`.
        """
        return self._stats()

    def _flush(self) -> None:
        """Subclass hook: write back caches / close open containers."""

    # ---- accounting helpers used by subclasses --------------------------

    def _count_unique(self, nbytes: int) -> None:
        """Record one unique (newly stored) chunk of ``nbytes``."""
        self._unique_chunks += 1
        self._unique_bytes += nbytes
        self._in_dup_run = False

    def _count_unique_many(self, count: int, nbytes: int) -> None:
        """Record ``count`` unique chunks totalling ``nbytes`` at once
        (an SHM flush group resolves a whole buffer of survivors)."""
        self._unique_chunks += count
        self._unique_bytes += nbytes
        self._in_dup_run = False

    def _count_duplicate(self, nbytes: int, run_continues: bool = False) -> None:
        """Record a duplicate chunk; a new run opens a duplicate slice.

        ``run_continues=True`` asserts the chunk extends the slice that
        is already open — match-extension paths (BME/FME/HHR) use it so
        the extension can never be miscounted as a fresh slice, however
        the caller interleaves unique flushes.
        """
        self._duplicate_chunks += 1
        self._duplicate_bytes += nbytes
        if not run_continues and not self._in_dup_run:
            self._duplicate_slices += 1
        self._in_dup_run = True

    def _break_dup_run(self) -> None:
        self._in_dup_run = False

    def _observe_ram(self, current_bytes: int) -> None:
        """Track the peak of the algorithm's in-memory structures."""
        total = current_bytes + (self.bloom.size_bytes if self.bloom else 0)
        if total > self._peak_ram:
            self._peak_ram = total

    def extra_index_bytes(self) -> int:
        """Algorithm-private persistent metadata (e.g. the sparse index)."""
        return 0

    # ---- verification ----------------------------------------------------

    def restore(self, file_id: str) -> bytes:
        """Reconstruct a file byte-for-byte (the dedup invariant)."""
        return self.file_manifests.get(file_id).restore(self.chunks)

    def warm_start(self) -> int:
        """Rebuild in-memory indexes from an existing store.

        A deduplicator object starts empty; when pointed at a backend
        that already holds a store (e.g. a ``DirectoryBackend`` from a
        previous process), the on-disk Hooks are re-registered with the
        in-memory front end (the Bloom filter here; subclasses extend
        this for their own RAM indexes) so new ingests deduplicate
        against the existing data.  Returns the number of hooks
        re-registered.

        This mirrors real systems' startup path: the Bloom filter is
        reconstructed by scanning the hook directory once.
        """
        hooks = self.backend.keys(DiskModel.HOOK)
        if self.bloom is not None:
            for raw in hooks:
                self.bloom.add(Digest(raw))
        return len(hooks)

    def verify_integrity(self, check_entry_hashes: bool = False) -> IntegrityReport:
        """Full-store fsck (see :func:`repro.storage.verify.verify_store`).

        Only meaningful after :meth:`finalize` — open containers and
        cached dirty manifests are not yet on the backend.
        """
        from ..storage.verify import verify_store

        if not self._finalized:
            raise RuntimeError("verify_integrity requires a finalized run")
        return verify_store(self.backend, check_entry_hashes=check_entry_hashes)

    # ---- statistics -------------------------------------------------------

    def _stats(self) -> DedupStats:
        b = self.backend
        return DedupStats(
            algorithm=self.name,
            config=self.config,
            input_bytes=self._input_bytes,
            input_files=self._input_files,
            stored_chunk_bytes=b.bytes_stored(DiskModel.CHUNK),
            manifest_bytes=b.bytes_stored(DiskModel.MANIFEST),
            hook_bytes=b.bytes_stored(DiskModel.HOOK),
            file_manifest_bytes=b.bytes_stored(DiskModel.FILE_MANIFEST),
            chunk_inodes=b.object_count(DiskModel.CHUNK),
            manifest_inodes=b.object_count(DiskModel.MANIFEST),
            hook_inodes=b.object_count(DiskModel.HOOK),
            file_manifest_inodes=b.object_count(DiskModel.FILE_MANIFEST),
            unique_chunks=self._unique_chunks,
            duplicate_chunks=self._duplicate_chunks,
            duplicate_slices=self._duplicate_slices,
            io=self.meter.snapshot(),
            cpu=self.cpu,
            peak_ram_bytes=self._peak_ram,
            extra_index_bytes=self.extra_index_bytes(),
            unique_bytes=self._unique_bytes,
            duplicate_bytes=self._duplicate_bytes,
            pipeline=self.pipeline,
        )


def _batch_hook_contract(dedup: Deduplicator) -> BatchIngestHooks:
    """Static assertion that every Deduplicator satisfies the
    :class:`~repro.core.protocols.BatchIngestHooks` protocol (checked
    by mypy; never called at runtime)."""
    return dedup
