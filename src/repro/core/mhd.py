"""BF-MHD — the paper's Metadata Harnessing Deduplication algorithm.

The deduplication loop (paper Fig. 4) per incoming chunk:

1. SHA-1 the chunk; search the manifest cache (hash tables in RAM).
2. On a cache miss, consult the Bloom filter; only if it says
   "probably seen" query the on-disk Hook store, and on a hook hit
   load the pointed-to Manifest into the LRU cache.
3. A *non-duplicate* chunk is buffered (capacity ``2·SD`` chunks); when
   the buffer fills, the first ``SD`` chunks are flushed to the
   per-file DiskChunk and represented by two hashes via SHM
   (:mod:`repro.core.shm`).
4. A *duplicate* hit triggers Bi-Directional Match Extension:
   buffered chunk hashes are compared against the manifest entries
   before the hit (BME) and upcoming chunk hashes against the entries
   after it (FME).  When extension mismatches at a merged entry that
   may straddle duplicate/non-duplicate data, the old bytes are
   reloaded and Hysteresis Hash Re-chunking (:mod:`repro.core.hhr`)
   splits the entry — the only mutation metadata ever undergoes.

Only Manifests are updated in place; DiskChunks and Hooks are
write-once, exactly as the paper requires.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from ..chunking import Chunk, Chunker, ChunkerConfig, VectorizedChunker
from ..hashing import Digest, sha1, sha1_many, sha1_spans
from ..obs.metrics import COUNT_BUCKETS
from ..storage import (
    ContainerWriter,
    FileManifest,
    Manifest,
    ManifestEntry,
    StorageBackend,
)
from ..storage.manifest import MHD_ENTRY_SIZE
from ..workloads.machine import BackupFile
from .base import Deduplicator
from .config import DedupConfig
from .hhr import (
    Span,
    align_prefix,
    align_suffix,
    apply_split,
    match_prefix_chunks,
    match_suffix_chunks,
    plan_backward_split,
    plan_forward_split,
)
from .manifest_cache import ManifestCache
from .shm import append_group

__all__ = ["MHDDeduplicator"]


class _Token:
    """One stream chunk's fate: pending in RAM, or resolved to an extent.

    Resolving releases the chunk's byte view, so the stream buffers it
    points into can be garbage-collected — the token buffer, not the
    whole file, is MHD's memory footprint.
    """

    __slots__ = ("digest", "data", "size", "container_id", "offset", "is_dup")

    def __init__(self, digest: Digest, data: memoryview, size: int) -> None:
        self.digest = digest
        self.data: memoryview | None = data
        self.size = size
        self.container_id: Digest | None = None
        self.offset = -1
        self.is_dup = False

    def view(self) -> memoryview:
        """The pending chunk bytes; only valid before :meth:`resolve`."""
        data = self.data
        if data is None:
            raise RuntimeError("token already resolved")
        return data

    def resolve(self, container_id: Digest, offset: int, is_dup: bool) -> None:
        if self.container_id is not None:
            raise RuntimeError("token resolved twice")
        self.container_id = container_id
        self.offset = offset
        self.is_dup = is_dup
        self.data = None  # free the stream bytes


@dataclass
class _FileContext:
    """Per-file ingest state."""

    file_id: str
    container_id: Digest
    manifest: Manifest
    fm: FileManifest
    tokens: list[_Token] = field(default_factory=list)
    buffer: list[_Token] = field(default_factory=list)  # unresolved tail
    writer: ContainerWriter | None = None
    # Stream chunks not yet consumed by the dedup loop (FME may need
    # forward lookahead that crosses a batch boundary).
    pending_chunks: list[Chunk] = field(default_factory=list)
    pending_digests: list[Digest] = field(default_factory=list)
    # Paused Forward Match Extension: (manifest, entry index) waiting
    # for more stream data before its next decision is final.
    fme: tuple[Manifest, int] | None = None
    # Entries matched by the paused FME so far, so the telemetry
    # histogram observes one figure per extension, not per resume.
    fme_entries: int = 0


class MHDDeduplicator(Deduplicator):
    """Bloom-filter-based MHD (the paper's BF-MHD configuration).

    Parameters
    ----------
    edge_hash:
        Ablation switch.  ``True`` (the paper's design) creates
        EdgeHash entries during HHR, preventing a repeated byte reload
        when the same duplicate slice arrives again.  ``False`` splits
        only when duplicate bytes were actually found, and leaves the
        boundary as part of the remainder.
    chunker_cls:
        The chunking algorithm (ablation knob); any
        :class:`repro.chunking.Chunker` subclass.  Default: the
        vectorised Karp–Rabin CDC chunker.
    contiguous_shm:
        The paper's alternative SHM strategy ("SHM can be performed on
        the contiguous non-duplicate chunks of the original input
        stream, to guarantee each non-duplicate data slice of the
        input stream 'owns' at least one Hook"): when a duplicate hit
        ends a run of pending chunks, the survivors are flushed
        immediately, so no SHM group ever merges chunks from opposite
        sides of a duplicate slice.  Costs extra hooks on
        fragmentation-heavy streams; the default (``False``) is the
        buffer-driven strategy the paper's prototype uses.
    """

    name = "bf-mhd"

    def __init__(
        self,
        config: DedupConfig | None = None,
        backend: StorageBackend | None = None,
        edge_hash: bool = True,
        chunker_cls: Callable[[ChunkerConfig], Chunker] = VectorizedChunker,
        contiguous_shm: bool = False,
    ) -> None:
        super().__init__(config, backend)
        self.chunker = chunker_cls(self.config.small_chunker_config())
        self.contiguous_shm = contiguous_shm
        self.cache: ManifestCache[Manifest] = ManifestCache(
            self.manifests, self.config.cache_manifests
        )
        self.edge_hash = edge_hash
        #: HHR statistics for Fig. 10(b): splits performed and the
        #: extra disk reads they caused.
        self.hhr_splits = 0
        self.hhr_reads = 0
        self._buffer_peak_bytes = 0
        self._ctx: _FileContext | None = None
        # Digests of HHR-created edge entries; a later duplicate match
        # landing on one proves the EdgeHash prevented a re-read.
        self._edge_digests: set[Digest] = set()

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------

    def _begin_file(self, file: BackupFile) -> None:
        fid = file.file_id.encode()
        self._ctx = _FileContext(
            file_id=file.file_id,
            container_id=sha1(fid),
            manifest=Manifest(
                sha1(fid + b"|manifest"), sha1(fid), entry_size=MHD_ENTRY_SIZE
            ),
            fm=FileManifest(file.file_id),
        )
        self.cache.add(self._ctx.manifest, pin=True)

    def _context(self) -> _FileContext:
        """The per-file context; only valid between the file hooks."""
        ctx = self._ctx
        if ctx is None:
            raise RuntimeError("no file is being ingested")
        return ctx

    def _ingest_chunks(self, batch: list[Chunk]) -> None:
        ctx = self._context()
        tel = self._telemetry
        ctx.pending_chunks.extend(batch)
        with tel.span("hash", chunks=len(batch)):
            # Batched digest call: the chunk views are zero-copy spans
            # into the stream buffer, hashed without materialising any
            # per-chunk bytes objects.
            ctx.pending_digests.extend(sha1_many(c.data for c in batch))
            self.cpu.hashed += sum(c.size for c in batch)
        with tel.span("index"):
            self._drain(ctx, eof=False)

    def _end_file(self) -> None:
        ctx = self._context()
        self._drain(ctx, eof=True)
        while ctx.buffer:
            self._flush_group(ctx, min(self.config.sd, len(ctx.buffer)))
        if ctx.writer is not None:
            ctx.writer.close()
        if ctx.manifest.entries:
            self.manifests.put(ctx.manifest)
        self.cache.unpin(ctx.manifest.manifest_id)
        self._emit_resolved(ctx)
        if ctx.tokens:
            raise AssertionError("unresolved token at end of file")
        self.file_manifests.put(ctx.fm)
        self._observe_ram(self.cache.ram_bytes() + self._buffer_peak_bytes)
        self._ctx = None

    def _drain(self, ctx: _FileContext, eof: bool) -> None:
        """Run the dedup loop over the pending chunks.

        Stops early (leaving the tail pending) whenever a decision
        would need stream data beyond what has arrived; at ``eof`` every
        decision is final and the pending list is fully consumed.
        """
        chunks, digests = ctx.pending_chunks, ctx.pending_digests
        i = 0
        if ctx.fme is not None:
            manifest, j = ctx.fme
            ctx.fme = None
            i = self._fme(manifest, j, chunks, digests, i, ctx, eof)
        while ctx.fme is None and i < len(chunks):
            chunk, digest = chunks[i], digests[i]
            hit = self._lookup(digest)
            if hit is None:
                token = _Token(digest, chunk.data, chunk.size)
                ctx.tokens.append(token)
                ctx.buffer.append(token)
                if len(ctx.buffer) >= 2 * self.config.sd:
                    self._flush_group(ctx, self.config.sd)
                i += 1
                continue
            manifest, idx = hit
            entry = manifest.entries[idx]
            self._note_edge_reuse(entry.digest)
            self._break_dup_run()  # a hit always opens a new slice
            self._count_duplicate(chunk.size)
            idx += self._bme(manifest, idx, ctx)
            if self.contiguous_shm:
                # BME has claimed every buffered chunk it can; what is
                # left belongs to the non-duplicate slice that just
                # ended, so it gets its own SHM group(s) and hook now.
                while ctx.buffer:
                    self._flush_group(ctx, min(self.config.sd, len(ctx.buffer)))
            hit_token = _Token(digest, chunk.data, chunk.size)
            hit_token.resolve(manifest.chunk_id, entry.offset, is_dup=True)
            ctx.tokens.append(hit_token)
            i += 1
            i = self._fme(manifest, idx + 1, chunks, digests, i, ctx, eof)
        del chunks[:i]
        del digests[:i]
        self._emit_resolved(ctx)

    def _emit_resolved(self, ctx: _FileContext) -> None:
        """Move the resolved token prefix into the file manifest.

        Keeps the token list bounded: only tokens still awaiting a
        container extent (the SHM buffer and anything after it) stay in
        RAM.
        """
        tokens = ctx.tokens
        k = 0
        while k < len(tokens):
            cid = tokens[k].container_id
            if cid is None:
                break
            t = tokens[k]
            ctx.fm.append(cid, t.offset, t.size)
            k += 1
        del tokens[:k]

    # ------------------------------------------------------------------
    # duplicate detection (Fig. 4 front half)
    # ------------------------------------------------------------------

    def _lookup(self, digest: Digest) -> tuple[Manifest, int] | None:
        """Cache → Bloom → on-disk Hook → Manifest load."""
        manifest = self.cache.search(digest)
        if manifest is not None:
            idx = manifest.find(digest)
            if idx is not None:
                return manifest, idx
        if self.bloom is not None and digest not in self.bloom:
            return None
        manifest_id = self.hooks.lookup(digest)
        if manifest_id is None:
            return None  # Bloom false positive
        manifest = self.cache.load(manifest_id)
        idx = manifest.find(digest)
        if idx is None:
            return None  # hook points at a manifest that lost the hash
        return manifest, idx

    # ------------------------------------------------------------------
    # SHM flush
    # ------------------------------------------------------------------

    def _flush_group(self, ctx: _FileContext, count: int) -> None:
        group = ctx.buffer[:count]
        del ctx.buffer[:count]
        datas = [t.view() for t in group]  # resolve() drops t.data
        writer = ctx.writer
        if writer is None:
            writer = ctx.writer = self.chunks.open_container(ctx.container_id)
        base = writer.size
        with self._telemetry.span("store", chunks=len(group)):
            for t, data in zip(group, datas, strict=True):
                off = writer.append(data)
                t.resolve(ctx.container_id, off, is_dup=False)
        self.cpu.hashed += append_group(
            ctx.manifest,
            [t.digest for t in group],
            [t.size for t in group],
            datas,
            base,
        )
        self.cache.reindex(ctx.manifest)
        self.hooks.put(group[0].digest, ctx.manifest.manifest_id)
        if self.bloom is not None:
            self.bloom.add(group[0].digest)
        group_bytes = sum(t.size for t in group)
        self._count_unique_many(len(group), group_bytes)
        if 2 * group_bytes > self._buffer_peak_bytes:
            self._buffer_peak_bytes = 2 * group_bytes
        tel = self._telemetry
        if tel.enabled:
            reg = tel.registry
            reg.counter("mhd.shm.flush_groups").inc()
            reg.counter("mhd.shm.flushed_chunks").inc(len(group))
            reg.histogram("mhd.shm.group_chunks", COUNT_BUCKETS).observe(len(group))

    # ------------------------------------------------------------------
    # Bi-Directional Match Extension + HHR
    # ------------------------------------------------------------------

    def _bme(self, manifest: Manifest, idx: int, ctx: _FileContext) -> int:
        """Backward Match Extension; returns the hit entry's index shift.

        Extension is hierarchical, as the paper describes ("duplication
        detection is conducted using its neighboring data and a
        relatively large chunk size"): first a direct digest compare
        (hook and post-HHR single-chunk entries), then a *span* hash
        over however many buffered chunks tile a merged entry exactly.
        Only when both fail and the entry may straddle duplicate and
        non-duplicate data are its bytes reloaded for HHR.
        """
        j = idx - 1
        shift = 0
        extended = 0  # manifest entries claimed by this extension
        while j >= 0 and ctx.buffer:
            entry = manifest.entries[j]
            tail = ctx.buffer[-1]
            if entry.digest == tail.digest:
                self._note_edge_reuse(entry.digest)
                ctx.buffer.pop()
                tail.resolve(manifest.chunk_id, entry.offset, is_dup=True)
                self._count_duplicate(tail.size, run_continues=True)
                j -= 1
                extended += 1
                continue
            if entry.is_hook:
                break
            k = align_suffix([t.size for t in ctx.buffer], entry.size)
            if k is not None and k > 1:
                span = ctx.buffer[-k:]
                self.cpu.hashed += entry.size
                if sha1_spans([t.view() for t in span]) == entry.digest:
                    del ctx.buffer[-k:]
                    pos = entry.offset
                    for t in span:
                        t.resolve(manifest.chunk_id, pos, is_dup=True)
                        pos += t.size
                        self._count_duplicate(t.size, run_continues=True)
                    j -= 1
                    extended += 1
                    continue
            if entry.size > tail.size:
                shift += self._hhr_backward(manifest, j, ctx)
            break
        tel = self._telemetry
        if tel.enabled:
            tel.registry.histogram("mhd.bme.extension_entries", COUNT_BUCKETS).observe(
                extended
            )
        return shift

    def _fme(
        self,
        manifest: Manifest,
        j: int,
        chunks: list[Chunk],
        digests: list[Digest],
        i: int,
        ctx: _FileContext,
        eof: bool,
    ) -> int:
        """Forward Match Extension from entry ``j``; returns the next
        stream index.

        Every per-entry decision needs at most ``entry.size + max_size``
        bytes of forward stream: the span tiling stops once cumulative
        size reaches ``entry.size``, HHR's head collection likewise, and
        the edge chunk right after either fits in one more ``max_size``.
        Mid-stream the decision is only taken once that much data has
        arrived; otherwise FME pauses (``ctx.fme``) and resumes on the
        next batch or at EOF, where actuals are final — so any batching
        of the stream makes identical decisions.
        """
        n = len(chunks)
        avail = sum(chunks[t].size for t in range(i, n))
        guard = self.chunker.config.max_size
        ext = 0  # manifest entries claimed since this (re)entry
        while j < len(manifest.entries):
            entry = manifest.entries[j]
            if not eof and avail < entry.size + guard:
                ctx.fme = (manifest, j)
                ctx.fme_entries += ext
                return i
            if i >= n:
                break
            if entry.digest == digests[i]:
                self._note_edge_reuse(entry.digest)
                token = _Token(digests[i], chunks[i].data, chunks[i].size)
                token.resolve(manifest.chunk_id, entry.offset, is_dup=True)
                ctx.tokens.append(token)
                self._count_duplicate(chunks[i].size, run_continues=True)
                avail -= chunks[i].size
                i += 1
                j += 1
                ext += 1
                continue
            if entry.is_hook:
                break
            k = align_prefix((chunks[t].size for t in range(i, n)), entry.size)
            if k is not None and k > 1:
                span = chunks[i : i + k]
                self.cpu.hashed += entry.size
                if sha1_spans([c.data for c in span]) == entry.digest:
                    pos = entry.offset
                    for m_k, c in enumerate(span):
                        token = _Token(digests[i + m_k], c.data, c.size)
                        token.resolve(manifest.chunk_id, pos, is_dup=True)
                        ctx.tokens.append(token)
                        pos += c.size
                        self._count_duplicate(c.size, run_continues=True)
                        avail -= c.size
                    i += k
                    j += 1
                    ext += 1
                    continue
            if entry.size > chunks[i].size:
                new_i = self._hhr_forward(manifest, j, chunks, digests, i, ctx)
                avail -= sum(chunks[t].size for t in range(i, new_i))
                i = new_i
            break
        tel = self._telemetry
        if tel.enabled:
            tel.registry.histogram("mhd.fme.extension_entries", COUNT_BUCKETS).observe(
                ctx.fme_entries + ext
            )
        ctx.fme_entries = 0
        return i

    def _hhr_backward(self, manifest: Manifest, j: int, ctx: _FileContext) -> int:
        """Reload entry ``j``'s bytes and split at the duplicate suffix."""
        entry = manifest.entries[j]
        old = self.chunks.read(manifest.chunk_id, entry.offset, entry.size)
        self.hhr_reads += 1
        # Views compare content-equal against bytes slices of `old`,
        # so no copies are needed for the suffix match.
        tail = [t.view() for t in ctx.buffer]
        matched, matched_bytes, compared = match_suffix_chunks(old, tail)
        self.cpu.compared += compared
        edge_size = None
        if matched < len(ctx.buffer):
            edge_size = ctx.buffer[-(matched + 1)].size
        if not self.edge_hash:
            edge_size = None
        if matched == 0 and edge_size is None:
            return 0
        spans = plan_backward_split(entry.size, matched_bytes, edge_size)
        shift = self._apply_split(manifest, j, entry, old, spans)
        # Resolve the matched buffer chunks onto the old extent.
        pos = entry.offset + entry.size
        for _ in range(matched):
            t = ctx.buffer.pop()
            pos -= t.size
            t.resolve(manifest.chunk_id, pos, is_dup=True)
            self._count_duplicate(t.size, run_continues=True)
        return shift

    def _hhr_forward(
        self,
        manifest: Manifest,
        j: int,
        chunks: list[Chunk],
        digests: list[Digest],
        i: int,
        ctx: _FileContext,
    ) -> int:
        """Reload entry ``j``'s bytes and split at the duplicate prefix."""
        entry = manifest.entries[j]
        old = self.chunks.read(manifest.chunk_id, entry.offset, entry.size)
        self.hhr_reads += 1
        # Only the chunks that can fit in the old extent participate;
        # zero-copy views suffice for the prefix comparison.
        head: list[memoryview] = []
        total = 0
        k = i
        while k < len(chunks) and total + chunks[k].size <= entry.size:
            head.append(chunks[k].data)
            total += chunks[k].size
            k += 1
        matched, matched_bytes, compared = match_prefix_chunks(old, head)
        self.cpu.compared += compared
        edge_size = None
        if i + matched < len(chunks):
            edge_size = chunks[i + matched].size
        if not self.edge_hash:
            edge_size = None
        if matched == 0 and edge_size is None:
            return i
        spans = plan_forward_split(entry.size, matched_bytes, edge_size)
        self._apply_split(manifest, j, entry, old, spans)
        pos = entry.offset
        for k in range(matched):
            token = _Token(digests[i + k], chunks[i + k].data, chunks[i + k].size)
            token.resolve(manifest.chunk_id, pos, is_dup=True)
            ctx.tokens.append(token)
            pos += chunks[i + k].size
            self._count_duplicate(chunks[i + k].size, run_continues=True)
        return i + matched

    def _apply_split(
        self,
        manifest: Manifest,
        j: int,
        entry: ManifestEntry,
        old: bytes,
        spans: Sequence[Span],
    ) -> int:
        """Replace entry ``j`` with the planned spans; returns index shift.

        The entry mutation itself lives in :func:`repro.core.hhr.apply_split`
        (the sanctioned DDC002 site); this wrapper folds in the cache
        and statistics bookkeeping.
        """
        shift, hashed = apply_split(manifest, j, entry, old, spans)
        if hashed == 0:
            return 0  # degenerate: nothing learned
        self.cpu.hashed += hashed
        self.cache.reindex(manifest)
        self.hhr_splits += 1
        if self.edge_hash:
            # Replacement entries are 1:1 with the planned spans, so the
            # EdgeHash entries sit at the spans' positions.
            for k, sp in enumerate(spans):
                if sp.role == "edge":
                    self._edge_digests.add(manifest.entries[j + k].digest)
        return shift

    def _note_edge_reuse(self, digest: Digest) -> None:
        """Count a duplicate match that landed on an HHR EdgeHash entry.

        Each such match is a byte reload the EdgeHash ablation would
        have paid — the quantity behind the paper's EdgeHash argument.
        """
        if self._edge_digests and digest in self._edge_digests:
            tel = self._telemetry
            if tel.enabled:
                tel.registry.counter("mhd.edge_hash.reuse").inc()

    # ------------------------------------------------------------------
    # finalize
    # ------------------------------------------------------------------

    def _flush(self) -> None:
        self.cache.flush()
        tel = self._telemetry
        if tel.enabled:
            # Cumulative algorithm counters, mirrored once at the end of
            # the run (the live values stay on the objects themselves).
            reg = tel.registry
            reg.counter("mhd.hhr.splits").inc(self.hhr_splits)
            reg.counter("mhd.hhr.reads").inc(self.hhr_reads)
            reg.counter("mhd.manifest_cache.hits").inc(self.cache.hits)
            reg.counter("mhd.manifest_cache.loads").inc(self.cache.loads)
            reg.counter("mhd.manifest_cache.writebacks").inc(self.cache.writebacks)
