"""Configuration shared by the deduplicators.

The paper's experiments are parameterised by two knobs: the expected
chunk size ``ECS`` (512–8192 bytes) and the sampling distance ``SD``
(250–1000 hashes).  Bimodal/SubChunk derive their *big* chunk size as
``ECS * SD``; SparseIndexing derives its segment size as
``ECS * SD * 5``.  :class:`DedupConfig` carries both knobs plus the
infrastructure sizes (Bloom filter budget, manifest-cache capacity).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chunking import ChunkerConfig

__all__ = ["DedupConfig"]


@dataclass(frozen=True)
class DedupConfig:
    """Common deduplicator parameters.

    Parameters
    ----------
    ecs:
        Expected (small) chunk size in bytes — the paper's ``ECS``.
    sd:
        Sampling distance in hashes — the paper's ``SD`` (any integer
        ≥ 2; the paper uses 250–1000 on a 1 TB corpus, scaled corpora
        use 8–32, see DESIGN.md §5).
    bloom_bytes:
        In-memory Bloom filter budget (paper: 100 MB at 1 TB; default
        scaled to 1 MB).  ``0`` disables the filter.
    cache_manifests:
        Manifest-cache capacity in manifests (LRU).
    window, seed:
        Rolling-hash parameters passed through to the chunkers.
    """

    ecs: int = 4096
    sd: int = 16
    bloom_bytes: int = 1 << 20
    cache_manifests: int = 64
    window: int = 48
    seed: int = 0x9E3779B9

    def __post_init__(self) -> None:
        if self.sd < 2:
            raise ValueError(f"sd must be >= 2, got {self.sd}")
        if self.bloom_bytes < 0:
            raise ValueError(f"bloom_bytes must be >= 0, got {self.bloom_bytes}")
        if self.cache_manifests < 1:
            raise ValueError(f"cache_manifests must be >= 1, got {self.cache_manifests}")
        # Validates ECS (power of two etc.) via ChunkerConfig.
        _ = self.small_chunker_config()

    def small_chunker_config(self) -> ChunkerConfig:
        """Chunker config at granularity ``ECS``."""
        return ChunkerConfig(
            expected_size=self.ecs, window=self.window, seed=self.seed
        )

    def big_chunker_config(self) -> ChunkerConfig:
        """Chunker config at granularity ``ECS * SD`` (Bimodal/SubChunk)."""
        return self.small_chunker_config().scaled(self.sd)

    @property
    def segment_bytes(self) -> int:
        """SparseIndexing segment size, ``ECS * SD * 5`` as in [13]."""
        return self.ecs * self.sd * 5
