"""SHM — Sampling and Hash Merging (pure helpers).

A flushed group of ``SD`` non-duplicate chunks is represented in the
Manifest by exactly two hashes: the group's first chunk becomes a
**Hook** (its own SHA-1, also written as an on-disk Hook file), and
the remaining ``SD - 1`` chunks are merged under one SHA-1 computed
over their concatenation.  This is what drives MHD's ``2N/SD`` Table I
manifest-entry count.

:func:`build_group_entries` is pure: it takes the group's
digests/sizes/bytes and the container offset where the group's data
begins, and returns manifest entries plus the number of extra bytes
hashed (CPU accounting for the merged digest).
:func:`append_group` writes one flush group onto a manifest — the
build-time manifest append lives here so that, together with HHR's
:func:`repro.core.hhr.apply_split`, all manifest-entry writes happen
inside the SHM/HHR machinery (dedupcheck rule DDC002).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..hashing import Digest, sha1_spans
from ..storage import Manifest, ManifestEntry

__all__ = ["build_group_entries", "append_group"]


def build_group_entries(
    digests: Sequence[Digest],
    sizes: Sequence[int],
    datas: Sequence[bytes | memoryview],
    base_offset: int,
) -> tuple[list[ManifestEntry], int]:
    """Manifest entries for one SHM flush group.

    Parameters
    ----------
    digests, sizes, datas:
        Per-chunk digest / byte size / content, in stream order.
    base_offset:
        Byte offset in the DiskChunk container where the group starts.

    Returns ``(entries, extra_hashed_bytes)``: one hook entry plus (for
    groups of two or more chunks) one merged entry, and the bytes
    SHA-1'd to form the merged digest.
    """
    if not digests:
        raise ValueError("flush group must contain at least one chunk")
    if not (len(digests) == len(sizes) == len(datas)):
        raise ValueError("digests, sizes and datas must have equal lengths")
    entries = [ManifestEntry(digests[0], base_offset, sizes[0], is_hook=True)]
    extra_hashed = 0
    if len(digests) > 1:
        merged_size = sum(sizes[1:])
        merged_digest = sha1_spans(datas[1:])
        extra_hashed = merged_size
        entries.append(
            ManifestEntry(
                merged_digest, base_offset + sizes[0], merged_size, is_hook=False
            )
        )
    return entries, extra_hashed


def append_group(
    manifest: Manifest,
    digests: Sequence[Digest],
    sizes: Sequence[int],
    datas: Sequence[bytes | memoryview],
    base_offset: int,
) -> int:
    """Append one SHM flush group's entries to ``manifest``.

    Returns the extra bytes SHA-1'd for the merged digest (CPU
    accounting).  The caller remains responsible for writing the hook
    file and refreshing any cache index.
    """
    entries, extra_hashed = build_group_entries(digests, sizes, datas, base_offset)
    for e in entries:
        manifest.append(e)
    return extra_hashed
