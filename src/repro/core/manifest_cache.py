"""LRU manifest cache with dirty write-back and an aggregate hash index.

"The cache contains a number of Manifests, each of which is organized
as a hash table. ... If the cache becomes full during this process,
one Manifest would be freed following the Least-Recently-Used (LRU)
policy.  A Manifest that has been set dirty, is written back to the
disk before it is freed."

The cache also maintains an aggregate digest → manifest index across
everything cached, so duplicate detection against cached manifests is
O(1) instead of a scan — functionally identical to probing each cached
manifest's hash table, just faster in Python.

Manifests can be *pinned* (the manifest of the file currently being
ingested must not be evicted mid-build).

The cache is generic over the manifest kind: any
:class:`~repro.core.protocols.CacheableManifest` backed by a matching
:class:`~repro.core.protocols.ManifestBackend` — MHD's per-DiskChunk
:class:`~repro.storage.Manifest` and the baselines'
:class:`~repro.storage.multi_manifest.MultiManifest` both qualify.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic

from ..hashing.digest import Digest
from .protocols import M, ManifestBackend

__all__ = ["ManifestCache"]


class ManifestCache(Generic[M]):
    """Bounded LRU of in-RAM manifests over a manifest backend."""

    def __init__(self, store: ManifestBackend[M], capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._store = store
        self._capacity = capacity
        self._cache: OrderedDict[Digest, M] = OrderedDict()
        self._pinned: set[Digest] = set()
        # Aggregate index: digest -> manifest ids that contain it, plus
        # the digest set indexed per manifest (so reindexing after a
        # mutation only touches the changed digests).
        self._digest_index: dict[Digest, set[Digest]] = {}
        self._indexed: dict[Digest, set[Digest]] = {}
        self.loads = 0  # disk loads (Table V "Manifests loading")
        self.hits = 0  # cache hits (RAM)
        self.writebacks = 0

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, manifest_id: Digest) -> bool:
        return manifest_id in self._cache

    @property
    def capacity(self) -> int:
        """Maximum number of cached manifests."""
        return self._capacity

    def ram_bytes(self) -> int:
        """Current RAM footprint of all cached manifests."""
        return sum(m.ram_size() for m in self._cache.values())

    # ---- indexing --------------------------------------------------------

    def _index_add(self, manifest: M) -> None:
        mid = manifest.manifest_id
        digests = set(manifest.index)
        self._indexed[mid] = digests
        for digest in digests:
            self._digest_index.setdefault(digest, set()).add(mid)

    def _index_remove(self, manifest_id: Digest) -> None:
        for digest in self._indexed.pop(manifest_id, ()):
            ids = self._digest_index.get(digest)
            if ids is not None:
                ids.discard(manifest_id)
                if not ids:
                    del self._digest_index[digest]

    def reindex(self, manifest: M) -> None:
        """Refresh the aggregate index after a manifest mutation.

        Mutators (SHM appends, HHR splits) change entry digests, so the
        owning deduplicator calls this after modifying a cached
        manifest.  Only the digest delta is touched.
        """
        mid = manifest.manifest_id
        if mid not in self._cache:
            raise KeyError("manifest is not cached")
        old = self._indexed.get(mid, set())
        new = set(manifest.index)
        for digest in old - new:
            ids = self._digest_index.get(digest)
            if ids is not None:
                ids.discard(mid)
                if not ids:
                    del self._digest_index[digest]
        for digest in new - old:
            self._digest_index.setdefault(digest, set()).add(mid)
        self._indexed[mid] = new

    # ---- lookup ------------------------------------------------------------

    def search(self, digest: Digest) -> M | None:
        """Find a cached manifest containing ``digest`` (RAM only).

        Touches the found manifest's LRU position and counts a hit.
        """
        ids = self._digest_index.get(digest)
        if not ids:
            return None
        # The digest may live in several cached manifests; pick the
        # winner deterministically (smallest id).  Iteration order of a
        # set[Digest] is PYTHONHASHSEED-dependent, so `next(iter(ids))`
        # made load/hit counts differ across runs — a violation of the
        # DDC004 determinism invariant.
        mid = min(ids)
        manifest = self._cache[mid]
        self._cache.move_to_end(mid)
        self.hits += 1
        return manifest

    def get(self, manifest_id: Digest) -> M | None:
        """RAM-only fetch by id (no disk fallback)."""
        m = self._cache.get(manifest_id)
        if m is not None:
            self._cache.move_to_end(manifest_id)
        return m

    def load(self, manifest_id: Digest) -> M:
        """Fetch by id, reading from disk (metered) on a cache miss."""
        m = self.get(manifest_id)
        if m is not None:
            return m
        m = self._store.get(manifest_id)
        self.loads += 1
        self.add(m)
        return m

    # ---- insertion / eviction ----------------------------------------------

    def add(self, manifest: M, pin: bool = False) -> None:
        """Insert a manifest built or loaded by the caller."""
        mid = manifest.manifest_id
        if mid in self._cache:
            raise ValueError(f"manifest {mid.hex()[:12]} already cached")
        self._evict_to(self._capacity - 1)
        self._cache[mid] = manifest
        self._index_add(manifest)
        if pin:
            self._pinned.add(mid)

    def unpin(self, manifest_id: Digest) -> None:
        """Make a pinned manifest evictable again.

        If pins ever pushed the cache past capacity, shrink back now so
        the overflow really is temporary — without this the cache would
        stay oversized until the next insertion.
        """
        self._pinned.discard(manifest_id)
        if len(self._cache) > self._capacity:
            self._evict_to(self._capacity)

    def _evict_to(self, target: int) -> None:
        while len(self._cache) > target:
            victim_id = next(
                (mid for mid in self._cache if mid not in self._pinned), None
            )
            if victim_id is None:
                return  # everything pinned; allow temporary overflow
            victim = self._cache[victim_id]
            if victim.dirty:
                # Write back *before* dropping the entry: if the store
                # raises (transient backend failure), the dirty manifest
                # stays cached and the eviction can be retried, instead
                # of the mutation being silently lost.
                self._store.put(victim)  # metered write-back
                self.writebacks += 1
            del self._cache[victim_id]
            self._index_remove(victim_id)

    def flush(self) -> None:
        """Write back every dirty cached manifest (run finalisation)."""
        for m in self._cache.values():
            if m.dirty:
                self._store.put(m)
                self.writebacks += 1
