"""SI-MHD — MHD over an in-RAM sparse index instead of the Bloom filter.

The paper names this variant without evaluating it: "the MHD algorithm
can also be implemented in conjunction with the sparse index data
structure in SparseIndexing.  In order to distinguish a sparse index
based MHD implementation, we denote the bloom filter based
implementation used in the experiments the BF-MHD algorithm."

SI-MHD replaces BF-MHD's duplicate-detection front end:

* BF-MHD: Bloom filter → on-disk Hook query → Hook read → Manifest
  load (three disk accesses per detected slice, plus false-positive
  queries).
* SI-MHD: an in-RAM map from hook digest → manifest address answers
  the existence question exactly, so only the Manifest load touches
  disk (one access per slice) — at the cost of keeping every hook in
  RAM, exactly the SparseIndexing trade-off the paper's Table III
  quantifies.

Hooks are still persisted as write-once files (recovery + the same
inode accounting as BF-MHD); they are just never *queried* from disk.
Everything downstream — SHM, match extension, HHR — is inherited
unchanged, which is the point: the paper's contribution is orthogonal
to the choice of in-memory index.
"""

from __future__ import annotations

from typing import Any

from ..hashing import Digest
from ..storage import DiskModel, Manifest, StorageBackend
from .base import DedupStats
from .config import DedupConfig
from .mhd import MHDDeduplicator, _FileContext

__all__ = ["SIMHDDeduplicator"]


class SIMHDDeduplicator(MHDDeduplicator):
    """Sparse-index-based MHD (the paper's named but unevaluated variant)."""

    name = "si-mhd"

    def __init__(
        self,
        config: DedupConfig | None = None,
        backend: StorageBackend | None = None,
        edge_hash: bool = True,
        **kw: Any,
    ) -> None:
        super().__init__(config, backend, edge_hash=edge_hash, **kw)
        # The sparse index fully replaces the Bloom filter.
        self.bloom = None
        self._hook_index: dict[Digest, Digest] = {}

    def hook_index_bytes(self) -> int:
        """RAM held by the in-memory hook index (Table III analogue)."""
        # 20-byte key + 20-byte manifest address + dict-slot overhead.
        return len(self._hook_index) * (20 + 20 + 16)

    def warm_start(self) -> int:
        """Rebuild the in-RAM hook index from the on-disk hook files."""
        hooks = self.backend.keys(DiskModel.HOOK)
        for raw in hooks:
            digest = Digest(raw)
            self._hook_index.setdefault(digest, self.hooks.get(digest))
        return len(hooks)

    def _lookup(self, digest: Digest) -> tuple[Manifest, int] | None:
        manifest = self.cache.search(digest)
        if manifest is not None:
            idx = manifest.find(digest)
            if idx is not None:
                return manifest, idx
        manifest_id = self._hook_index.get(digest)
        if manifest_id is None:
            return None  # exact answer: no disk access at all
        manifest = self.cache.load(manifest_id)
        idx = manifest.find(digest)
        if idx is None:
            return None
        return manifest, idx

    def _flush_group(self, ctx: _FileContext, count: int) -> None:
        # Reuse the BF-MHD flush (which persists the group-leader hook
        # on disk), then mirror that hook into the in-RAM index.
        super()._flush_group(ctx, count)
        group_hook = next(e for e in reversed(ctx.manifest.entries) if e.is_hook)
        self._hook_index.setdefault(group_hook.digest, ctx.manifest.manifest_id)

    def _stats(self) -> DedupStats:
        # The hook index is RAM, not persistent metadata; fold it into
        # peak RAM so comparisons with BF-MHD's bloom budget are fair.
        self._observe_ram(self.cache.ram_bytes() + self.hook_index_bytes())
        return super()._stats()
