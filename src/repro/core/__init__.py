"""The paper's primary contribution: BF-MHD and its building blocks."""

from .base import CpuWork, DedupStats, Deduplicator
from .config import DedupConfig
from .hhr import (
    HHRPlan,
    Span,
    match_prefix_chunks,
    match_suffix_chunks,
    plan_backward_split,
    plan_forward_split,
)
from .manifest_cache import ManifestCache
from .mhd import MHDDeduplicator
from .si_mhd import SIMHDDeduplicator
from .shm import build_group_entries

__all__ = [
    "CpuWork",
    "DedupStats",
    "Deduplicator",
    "DedupConfig",
    "HHRPlan",
    "Span",
    "match_prefix_chunks",
    "match_suffix_chunks",
    "plan_backward_split",
    "plan_forward_split",
    "ManifestCache",
    "MHDDeduplicator",
    "SIMHDDeduplicator",
    "build_group_entries",
]
