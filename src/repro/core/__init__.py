"""The paper's primary contribution: BF-MHD and its building blocks."""

from .base import CpuWork, DedupStats, Deduplicator
from .config import DedupConfig
from .hhr import (
    HHRPlan,
    Span,
    apply_split,
    match_prefix_chunks,
    match_suffix_chunks,
    plan_backward_split,
    plan_forward_split,
)
from .manifest_cache import ManifestCache
from .mhd import MHDDeduplicator
from .protocols import BatchIngestHooks, CacheableManifest, ManifestBackend
from .si_mhd import SIMHDDeduplicator
from .shm import append_group, build_group_entries

__all__ = [
    "CpuWork",
    "DedupStats",
    "Deduplicator",
    "DedupConfig",
    "HHRPlan",
    "Span",
    "apply_split",
    "match_prefix_chunks",
    "match_suffix_chunks",
    "plan_backward_split",
    "plan_forward_split",
    "ManifestCache",
    "MHDDeduplicator",
    "SIMHDDeduplicator",
    "BatchIngestHooks",
    "CacheableManifest",
    "ManifestBackend",
    "append_group",
    "build_group_entries",
]
