"""HHR — Hysteresis Hash Re-chunking (pure helpers).

When Bi-Directional Match Extension stops at a *merged* manifest entry
(one hash covering many original chunks) whose extent may straddle
duplicate and non-duplicate data, the old bytes are reloaded from the
DiskChunk and byte-compared against the incoming chunks.  The merged
entry is then split into at most three new entries:

* the **duplicate** span — the old bytes the incoming chunks matched
  (at the entry's *suffix* for backward extension, *prefix* for
  forward), represented by one new hash;
* the **EdgeHash** span — the old bytes aligned with the first
  *mismatching* incoming chunk (same size).  Its job is hysteresis:
  the next time the same duplicate slice arrives, its neighbour chunk
  hash-mismatches a small EdgeHash entry instead of a big merged one,
  so no byte reload is triggered again;
* the **remainder** span — whatever is left of the old extent.

The matching/planning helpers are pure byte/offset arithmetic so the
split logic is unit-testable in isolation.  :func:`apply_split`
materialises a plan onto a manifest — it is the **only sanctioned
manifest-entry mutation site** outside the SHM build path (dedupcheck
rule DDC002); the surrounding orchestration (cache updates, metering,
token resolution) stays in :mod:`repro.core.mhd`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..chunking import Buffer
from ..hashing import sha1
from ..storage import Manifest, ManifestEntry

__all__ = [
    "Span",
    "HHRPlan",
    "match_suffix_chunks",
    "match_prefix_chunks",
    "plan_backward_split",
    "plan_forward_split",
    "apply_split",
    "align_suffix",
    "align_prefix",
]


def align_suffix(sizes: Sequence[int], span: int) -> int | None:
    """Number of trailing elements whose sizes sum exactly to ``span``.

    Bi-Directional Match Extension compares *span* hashes: the hash of
    the last ``span`` buffered bytes against a merged manifest entry.
    The comparison is only attempted when whole buffered chunks tile
    the span exactly; returns ``None`` otherwise (or when the buffer is
    too short) — the caller then falls back to byte reloading.
    """
    total = 0
    k = 0
    for size in reversed(sizes):
        if total >= span:
            break
        total += size
        k += 1
    return k if total == span else None


def align_prefix(sizes: Sequence[int], span: int) -> int | None:
    """Number of leading elements whose sizes sum exactly to ``span``."""
    total = 0
    k = 0
    for size in sizes:
        if total >= span:
            break
        total += size
        k += 1
    return k if total == span else None


@dataclass(frozen=True)
class Span:
    """A sub-extent of the old entry, relative to the entry start."""

    offset: int
    size: int
    role: str  # "remainder" | "edge" | "duplicate"

    @property
    def end(self) -> int:
        """Exclusive end offset of this span."""
        return self.offset + self.size


@dataclass(frozen=True)
class HHRPlan:
    """Outcome of one HHR byte comparison."""

    matched_chunks: int  # whole incoming chunks found duplicate
    matched_bytes: int
    compared_bytes: int  # bytes memcmp'd (CPU accounting)
    spans: tuple[Span, ...]  # replacement tiling of the old extent

    @property
    def duplicate_span(self) -> Span | None:
        """The plan's duplicate span, if any bytes matched."""
        for s in self.spans:
            if s.role == "duplicate":
                return s
        return None


def match_suffix_chunks(
    old: bytes, tail_chunks: Sequence[Buffer]
) -> tuple[int, int, int]:
    """Match whole chunks backwards against the *suffix* of ``old``.

    ``tail_chunks`` is ordered as in the stream; matching proceeds from
    its last element (the chunk nearest the hit) towards the first.
    Returns ``(matched_count, matched_bytes, compared_bytes)``.
    """
    pos = len(old)
    matched = 0
    matched_bytes = 0
    compared = 0
    for chunk in reversed(tail_chunks):
        n = len(chunk)
        if n > pos:
            break  # old extent exhausted
        compared += n
        if old[pos - n : pos] == chunk:
            pos -= n
            matched += 1
            matched_bytes += n
        else:
            break
    return matched, matched_bytes, compared


def match_prefix_chunks(
    old: bytes, head_chunks: Sequence[Buffer]
) -> tuple[int, int, int]:
    """Match whole chunks forwards against the *prefix* of ``old``."""
    pos = 0
    matched = 0
    matched_bytes = 0
    compared = 0
    for chunk in head_chunks:
        n = len(chunk)
        if pos + n > len(old):
            break
        compared += n
        if old[pos : pos + n] == chunk:
            pos += n
            matched += 1
            matched_bytes += n
        else:
            break
    return matched, matched_bytes, compared


def _spans_or_none(spans: list[Span]) -> tuple[Span, ...]:
    return tuple(s for s in spans if s.size > 0)


def plan_backward_split(
    entry_size: int, matched_bytes: int, edge_chunk_size: int | None
) -> tuple[Span, ...]:
    """Replacement spans for a backward (suffix-matched) HHR.

    Layout: ``[remainder][edge][duplicate]``.  The edge is sized like
    the first mismatching incoming chunk, clipped to the bytes left of
    the duplicate span; ``None`` means the buffer ran out before a
    mismatch was seen (no edge needed).
    """
    if not 0 <= matched_bytes <= entry_size:
        raise ValueError(f"matched_bytes {matched_bytes} outside [0, {entry_size}]")
    dup_start = entry_size - matched_bytes
    edge = 0 if edge_chunk_size is None else min(edge_chunk_size, dup_start)
    return _spans_or_none(
        [
            Span(0, dup_start - edge, "remainder"),
            Span(dup_start - edge, edge, "edge"),
            Span(dup_start, matched_bytes, "duplicate"),
        ]
    )


def plan_forward_split(
    entry_size: int, matched_bytes: int, edge_chunk_size: int | None
) -> tuple[Span, ...]:
    """Replacement spans for a forward (prefix-matched) HHR.

    Layout: ``[duplicate][edge][remainder]``.
    """
    if not 0 <= matched_bytes <= entry_size:
        raise ValueError(f"matched_bytes {matched_bytes} outside [0, {entry_size}]")
    rest = entry_size - matched_bytes
    edge = 0 if edge_chunk_size is None else min(edge_chunk_size, rest)
    return _spans_or_none(
        [
            Span(0, matched_bytes, "duplicate"),
            Span(matched_bytes, edge, "edge"),
            Span(matched_bytes + edge, rest - edge, "remainder"),
        ]
    )


def apply_split(
    manifest: Manifest,
    index: int,
    entry: ManifestEntry,
    old: bytes,
    spans: Sequence[Span],
) -> tuple[int, int]:
    """Materialise an HHR plan: replace entry ``index`` with the spans.

    Each span's bytes are re-hashed from the reloaded extent ``old`` and
    written as a fresh (non-hook) entry; the DiskChunk bytes themselves
    never move, only their description is refined.

    Returns ``(index_shift, hashed_bytes)`` — how many extra entries the
    manifest gained and the SHA-1 work done (CPU accounting).  A
    degenerate plan (a single remainder span: nothing was learned)
    leaves the manifest untouched and returns ``(0, 0)``.
    """
    if len(spans) == 1 and spans[0].role == "remainder":
        return 0, 0
    replacements = [
        ManifestEntry(
            sha1(old[s.offset : s.end]), entry.offset + s.offset, s.size, is_hook=False
        )
        for s in spans
    ]
    manifest.replace_entry(index, replacements)
    return len(replacements) - 1, sum(s.size for s in spans)
