"""Device timing model — converts metered work into simulated seconds.

The paper's ThroughputRatio is "the time to pass the input data through
the deduplication system without deduplication operation (e.g. by
simply copying data) divided by the time taken for deduplication"
(larger = faster dedup; their measured band is 0.2–0.5).

Our prototypes run on a metered in-memory substrate, so wall-clock
time would measure Python, not the algorithms.  Instead, the
:class:`DeviceModel` charges each metered quantity at a calibrated
rate — random I/O latency per disk access, sequential transfer
bandwidth for bytes moved, and CPU rates for the three byte-bound
operations (chunking, SHA-1, byte comparison).  The *constants* set
the absolute scale; the *ordering and crossovers* between algorithms
come from the metered counts, which is the property the paper's
figures exhibit (see DESIGN.md §6).

Default constants model a 2013-era SATA disk + one CPU core:
8 ms seek, 100 MB/s sequential, 400 MB/s chunking, 200 MB/s SHA-1,
2 GB/s memcmp.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.base import DedupStats

__all__ = ["DeviceModel"]


@dataclass(frozen=True)
class DeviceModel:
    """Calibrated cost rates for the simulated testbed."""

    seek_s: float = 0.008  # per random disk access
    disk_bw: float = 100e6  # sequential bytes/second
    chunking_bw: float = 400e6  # rolling-hash scan bytes/second
    hashing_bw: float = 200e6  # SHA-1 bytes/second
    compare_bw: float = 2e9  # memcmp bytes/second

    def __post_init__(self) -> None:
        for name in ("seek_s", "disk_bw", "chunking_bw", "hashing_bw", "compare_bw"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def cpu_time(self, stats: DedupStats) -> float:
        """Seconds of CPU-bound work."""
        return (
            stats.cpu.chunked / self.chunking_bw
            + stats.cpu.hashed / self.hashing_bw
            + stats.cpu.compared / self.compare_bw
        )

    def io_time(self, stats: DedupStats) -> float:
        """Seconds of disk work: one seek per access + transfer."""
        return stats.io.count() * self.seek_s + stats.io.nbytes() / self.disk_bw

    def dedup_time(self, stats: DedupStats) -> float:
        """Total simulated wall time of the deduplication run."""
        return self.cpu_time(stats) + self.io_time(stats)

    def copy_time(self, input_bytes: int, input_files: int) -> float:
        """Baseline: stream the input straight to disk, one sequential
        write per file, no chunking or hashing."""
        return input_files * self.seek_s + input_bytes / self.disk_bw

    def throughput_ratio(self, stats: DedupStats) -> float:
        """The paper's ThroughputRatio (copy time / dedup time)."""
        dedup = self.dedup_time(stats)
        if dedup <= 0:
            return float("inf")
        return self.copy_time(stats.input_bytes, stats.input_files) / dedup

    def write_throughput(self, stats: DedupStats) -> float:
        """Bytes/second of simulated deduplicated write throughput."""
        return stats.input_bytes / max(1e-12, self.dedup_time(stats))
