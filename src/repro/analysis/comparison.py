"""Multi-run comparison helpers: rankings and Pareto frontiers.

The paper's Fig. 8 is a Pareto story — each algorithm traces a curve
in (overhead, DER) space and the reader judges who dominates whom.
These helpers make that judgement programmatic: benches and users can
ask which runs are Pareto-optimal for a chosen overhead/benefit pair
and how algorithms rank on a single metric.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from .metrics import AlgorithmRun

__all__ = ["rank_by", "pareto_front", "dominates"]


def rank_by(
    runs: Iterable[AlgorithmRun],
    metric: str | Callable[[AlgorithmRun], float],
    descending: bool = True,
) -> list[AlgorithmRun]:
    """Sort runs by a metric (attribute name or callable).

    ``descending=True`` puts the best-is-biggest metrics (DER,
    throughput ratio) first; pass ``False`` for cost metrics.
    """
    key = metric if callable(metric) else (lambda r: getattr(r, metric))
    return sorted(runs, key=key, reverse=descending)


def dominates(
    a: AlgorithmRun,
    b: AlgorithmRun,
    cost: Callable[[AlgorithmRun], float],
    benefit: Callable[[AlgorithmRun], float],
) -> bool:
    """True when ``a`` is at least as good as ``b`` on both axes and
    strictly better on one (lower cost, higher benefit)."""
    ca, cb = cost(a), cost(b)
    ba, bb = benefit(a), benefit(b)
    return ca <= cb and ba >= bb and (ca < cb or ba > bb)


def pareto_front(
    runs: Sequence[AlgorithmRun],
    cost: str | Callable[[AlgorithmRun], float] = "metadata_ratio",
    benefit: str | Callable[[AlgorithmRun], float] = "real_der",
) -> list[AlgorithmRun]:
    """Runs not dominated by any other run, sorted by ascending cost.

    Defaults answer the paper's Fig. 8(b) question: which (algorithm,
    ECS) settings are efficient in metadata-vs-real-DER space?
    """
    cost_fn = cost if callable(cost) else (lambda r: getattr(r, cost))
    benefit_fn = benefit if callable(benefit) else (lambda r: getattr(r, benefit))
    front = [
        run
        for run in runs
        if not any(
            dominates(other, run, cost_fn, benefit_fn)
            for other in runs
            if other is not run
        )
    ]
    return sorted(front, key=cost_fn)
