"""Experiment-level evaluation helpers.

Bundles one deduplication run's :class:`DedupStats` with the derived
timing metrics into an :class:`AlgorithmRun`, and provides the sweep
helpers the benches use to regenerate the paper's figures (one run per
algorithm per ECS point).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable, Sequence

from ..core.base import DedupStats, Deduplicator
from ..core.config import DedupConfig
from ..workloads.machine import BackupFile
from .timing import DeviceModel

__all__ = ["AlgorithmRun", "evaluate", "sweep_ecs"]


@dataclass(frozen=True)
class AlgorithmRun:
    """One (algorithm, config) point of an experiment grid."""

    stats: DedupStats
    throughput_ratio: float
    dedup_seconds: float

    @property
    def name(self) -> str:
        """The algorithm's display name."""
        return self.stats.algorithm

    @property
    def ecs(self) -> int:
        """Expected chunk size of this run."""
        return self.stats.config.ecs

    @property
    def sd(self) -> int:
        """Sampling distance of this run."""
        return self.stats.config.sd

    # Pass-throughs used by the benches when printing figure series.
    @property
    def data_only_der(self) -> float:
        """Pass-through of :attr:`DedupStats.data_only_der`."""
        return self.stats.data_only_der

    @property
    def real_der(self) -> float:
        """Pass-through of :attr:`DedupStats.real_der`."""
        return self.stats.real_der

    @property
    def metadata_ratio(self) -> float:
        """Pass-through of :attr:`DedupStats.metadata_ratio`."""
        return self.stats.metadata_ratio

    @property
    def inodes_per_mb(self) -> float:
        """Pass-through of :attr:`DedupStats.inodes_per_mb`."""
        return self.stats.inodes_per_mb


def evaluate(
    dedup: Deduplicator,
    files: Iterable[BackupFile],
    device: DeviceModel | None = None,
) -> AlgorithmRun:
    """Run one deduplicator over a corpus and derive its metrics."""
    device = device or DeviceModel()
    stats = dedup.process(files)
    return AlgorithmRun(
        stats=stats,
        throughput_ratio=device.throughput_ratio(stats),
        dedup_seconds=device.dedup_time(stats),
    )


def sweep_ecs(
    factory: Callable[[DedupConfig], Deduplicator],
    files: Sequence[BackupFile],
    ecs_values: Sequence[int],
    sd: int,
    device: DeviceModel | None = None,
    **config_kw,
) -> list[AlgorithmRun]:
    """Evaluate one algorithm across an ECS sweep (fresh state per point)."""
    runs = []
    for ecs in ecs_values:
        config = DedupConfig(ecs=ecs, sd=sd, **config_kw)
        runs.append(evaluate(factory(config), files, device))
    return runs
