"""Plain-text rendering of experiment tables and figure series.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output consistent (fixed-width ASCII tables
a diff tool can track between runs).
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_series", "ascii_chart", "fmt"]


def fmt(value, digits: int = 3) -> str:
    """Human-friendly scalar formatting for table cells."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 10 ** (-digits):
            return f"{value:.{digits}e}"
        return f"{value:,.{digits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in cells)) if cells else len(str(headers[i]))
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render (x, y) series as a terminal scatter chart.

    Each series gets a marker letter; overlapping points show the
    later series' marker.  The benches append these under the numeric
    tables so a figure's *shape* is visible straight from the report
    file — the closest a text artifact gets to the paper's plots.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(empty chart)"
    xs, ys = zip(*points)
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    legend = []
    for i, (name, pts) in enumerate(series.items()):
        mark = markers[i % len(markers)]
        legend.append(f"{mark}={name}")
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = mark
    lines = [f"{y_label}  {y_hi:.4g}".rstrip()]
    lines += ["  |" + "".join(row) for row in grid]
    lines.append("  +" + "-" * width)
    lines.append(f"   {x_lo:.4g}{' ' * max(1, width - 12)}{x_hi:.4g}  ({x_label})")
    lines.append("   " + "  ".join(legend))
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence,
    ys: Sequence,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one figure series as labelled (x, y) pairs."""
    pairs = ", ".join(f"({fmt(x)}, {fmt(y)})" for x, y in zip(xs, ys))
    return f"{name} [{x_label} -> {y_label}]: {pairs}"
