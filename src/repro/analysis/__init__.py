"""Analysis: closed-form models, the timing model, and reporting."""

from .comparison import dominates, pareto_front, rank_by
from .formulas import ALGORITHMS, CorpusParams, table1_metadata, table2_disk_accesses
from .metrics import AlgorithmRun, evaluate, sweep_ecs
from .projection import (
    PAPER_CORPUS,
    ScaleDescription,
    project,
    projected_metadata_ratios,
)
from .report import ascii_chart, fmt, format_series, format_table
from .restore_cost import RestoreCost, measure_restore_cost
from .timing import DeviceModel

__all__ = [
    "dominates",
    "pareto_front",
    "rank_by",
    "ALGORITHMS",
    "CorpusParams",
    "table1_metadata",
    "table2_disk_accesses",
    "AlgorithmRun",
    "evaluate",
    "sweep_ecs",
    "PAPER_CORPUS",
    "ScaleDescription",
    "project",
    "projected_metadata_ratios",
    "ascii_chart",
    "fmt",
    "format_series",
    "format_table",
    "DeviceModel",
    "RestoreCost",
    "measure_restore_cost",
]
