"""Closed-form metadata and disk-access models (the paper's Tables I & II).

The paper's Section IV derives, for each algorithm, the metadata bytes
and disk-access counts as functions of five corpus parameters:

* ``F`` — input files that are not completely duplicate,
* ``N`` — final non-duplicate chunks at granularity ``ECS``,
* ``D`` — duplicate chunks,
* ``L`` — duplicate data slices,
* ``SD`` — sampling distance (big-chunk factor).

This module reproduces every row of both tables.  Two summary values
are exposed per algorithm: ``summary`` — the exact sum of the rows —
and ``summary_paper`` — the closed form printed in the paper.  For
Bimodal and CDC the two coincide; for MHD and SubChunk the paper's
printed totals differ slightly from the sum of its own rows (e.g.
Table I prints ``424·N/SD`` for MHD where the rows sum to
``350·N/SD + 148·L``); EXPERIMENTS.md discusses the discrepancy.

Constants per the paper: 256-byte inodes, 20-byte hooks, 36-byte
manifest entries (37 with MHD's hook flag).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..storage.disk_model import INODE_SIZE
from ..workloads.traces import TraceStats

__all__ = ["CorpusParams", "table1_metadata", "table2_disk_accesses", "ALGORITHMS"]

ALGORITHMS = ("bf-mhd", "subchunk", "bimodal", "cdc")


@dataclass(frozen=True)
class CorpusParams:
    """The symbols of the paper's Section IV analysis."""

    f: int  # files not completely duplicate
    n: int  # non-duplicate chunks
    d: int  # duplicate chunks
    l: int  # duplicate data slices
    sd: int  # sampling distance

    def __post_init__(self) -> None:
        if min(self.f, self.n, self.d, self.l) < 0 or self.sd < 2:
            raise ValueError("parameters must be non-negative with sd >= 2")

    @classmethod
    def from_trace(cls, trace: TraceStats, sd: int) -> CorpusParams:
        """Instantiate from measured corpus ground truth."""
        return cls(f=trace.f, n=trace.n, d=trace.d, l=trace.l, sd=sd)


def table1_metadata(p: CorpusParams) -> dict[str, dict[str, float]]:
    """Table I — metadata size comparison (bytes / inode counts).

    Returns ``{algorithm: row_name -> value}`` with rows:
    ``chunk_inodes``, ``hook_inodes``, ``hook_bytes_each``,
    ``manifest_inodes``, ``manifest_bytes``, ``summary`` (exact sum of
    this table's rows, in bytes) and ``summary_paper`` (the closed form
    printed in the paper).
    """
    f, n, d, l, sd = p.f, p.n, p.d, p.l, p.sd
    i = INODE_SIZE

    rows: dict[str, dict[str, float]] = {}

    def finish(r: dict[str, float], paper: float) -> dict[str, float]:
        r["summary"] = (
            (r["chunk_inodes"] + r["hook_inodes"] + r["manifest_inodes"]) * i
            + r["hook_inodes"] * r["hook_bytes_each"]
            + r["manifest_bytes"]
        )
        r["summary_paper"] = paper
        return r

    rows["bf-mhd"] = finish(
        {
            "chunk_inodes": f,
            "hook_inodes": n / sd,
            "hook_bytes_each": 20,
            "manifest_inodes": f,
            "manifest_bytes": 74 * n / sd + 148 * l,
        },
        512 * f + 424 * n / sd,
    )
    rows["subchunk"] = finish(
        {
            "chunk_inodes": n / sd,
            "hook_inodes": f,
            "hook_bytes_each": 20,
            "manifest_inodes": f,
            "manifest_bytes": 36 * n + 28 * n / sd,
        },
        532 * f + 280 * n / sd + 36 * n,
    )
    rows["bimodal"] = finish(
        {
            "chunk_inodes": f,
            "hook_inodes": n / sd + 2 * l * (sd - 1),
            "hook_bytes_each": 20,
            "manifest_inodes": f,
            "manifest_bytes": 36 * n / sd + 72 * l * (sd - 1),
        },
        512 * f + 312 * n / sd + 624 * l * (sd - 1),
    )
    rows["cdc"] = finish(
        {
            "chunk_inodes": f,
            "hook_inodes": n,
            "hook_bytes_each": 20,
            "manifest_inodes": f,
            "manifest_bytes": 36 * n,
        },
        512 * f + 312 * n,
    )
    return rows


def table2_disk_accesses(p: CorpusParams) -> dict[str, dict[str, float]]:
    """Table II — disk access count comparison.

    Rows: ``chunk_out``, ``chunk_in``, ``hook_out``, ``hook_in``,
    ``manifest_out``, ``manifest_in``, ``big_queries``,
    ``small_queries``, plus ``summary_no_bloom`` / ``summary_bloom``
    (the paper's printed totals) and ``sum_no_bloom`` / ``sum_bloom``
    (exact row sums; with a perfect Bloom filter the ``N`` queries for
    new hashes vanish from ``small_queries``).
    """
    f, n, d, l, sd = p.f, p.n, p.d, p.l, p.sd

    def finish(r: dict[str, float], paper_no_bloom: float, paper_bloom: float, small_q_bloom: float) -> dict[str, float]:
        base = (
            r["chunk_out"]
            + r["chunk_in"]
            + r["hook_out"]
            + r["hook_in"]
            + r["manifest_out"]
            + r["manifest_in"]
            + r["big_queries"]
        )
        r["sum_no_bloom"] = base + r["small_queries"]
        r["sum_bloom"] = base + small_q_bloom
        r["summary_no_bloom"] = paper_no_bloom
        r["summary_bloom"] = paper_bloom
        return r

    rows: dict[str, dict[str, float]] = {}
    rows["bf-mhd"] = finish(
        {
            "chunk_out": f,
            "chunk_in": 2 * l,
            "hook_out": n / sd,
            "hook_in": l,
            "manifest_out": f + l,
            "manifest_in": l,
            "big_queries": 0,
            "small_queries": n + l,
        },
        2 * f + 6 * l + n + n / sd,
        2 * f + 6 * l + n / sd,
        small_q_bloom=l,
    )
    rows["subchunk"] = finish(
        {
            "chunk_out": n / sd,
            "chunk_in": 0,
            "hook_out": f,
            "hook_in": l,
            "manifest_out": f,
            "manifest_in": l,
            "big_queries": (n + d) / sd,
            "small_queries": n + l,
        },
        2 * f + 3 * l + n + (2 * n + d) / sd,
        2 * f + 3 * l + (n + d) / sd,
        small_q_bloom=l,
    )
    rows["bimodal"] = finish(
        {
            "chunk_out": f,
            "chunk_in": 0,
            "hook_out": n / sd + 2 * (sd - 1) * l,
            "hook_in": l,
            "manifest_out": f,
            "manifest_in": l,
            "big_queries": n / sd,
            "small_queries": (2 * sd + 1) * l,
        },
        2 * f + (4 * sd + 1) * l + 2 * n / sd,
        2 * f + (2 * sd + 1) * l + n / sd,
        small_q_bloom=(2 * sd + 1) * l,
    )
    rows["cdc"] = finish(
        {
            "chunk_out": f,
            "chunk_in": 0,
            "hook_out": n,
            "hook_in": l,
            "manifest_out": f,
            "manifest_in": l,
            "big_queries": 0,
            "small_queries": n + l,
        },
        2 * f + 3 * l + 2 * n,
        2 * f + 3 * l + n,
        small_q_bloom=l,
    )
    return rows
