"""Paper-scale projection — closing the scale gap analytically.

Our measured corpora are ~25,000× smaller than the paper's 1 TB
dataset, which inflates every per-file overhead (EXPERIMENTS.md
deviation #1).  But Section IV's closed forms take only five corpus
parameters — F, N, D, L, SD — and those *can* be evaluated at the
paper's scale, using the corpus characteristics the paper itself
reports:

* total input: 1.0 TB,
* maximal data-only DER: ~4.15 (so unique bytes ≈ input / 4.15),
* DAD: 90–220 KB (so L ≈ duplicate bytes / DAD),
* fleet: 14 PCs × 14 days of disk-image backups (F ≈ 196 streams),
* SD = 1000, ECS = 512–8192.

:func:`project` turns such a description into :class:`CorpusParams`,
and :func:`projected_metadata_ratios` evaluates Table I at that scale
— letting the bench check that the *absolute* MetaDataRatio the paper
reports (BF-MHD ≈ 0.2%, SubChunk ≈ 1.7%, SparseIndexing ≈ 3.8%)
falls out of the formulas we validated at small scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from .formulas import ALGORITHMS, CorpusParams, table1_metadata

__all__ = ["ScaleDescription", "PAPER_CORPUS", "project", "projected_metadata_ratios"]


@dataclass(frozen=True)
class ScaleDescription:
    """Corpus-level characteristics sufficient to instantiate Section IV.

    Parameters
    ----------
    total_bytes:
        Input stream size.
    data_only_der:
        Achievable data-only DER at the working ECS (input / unique).
    dad_bytes:
        Duplication Aggregation Degree — mean duplicate-slice length.
    files:
        Number of input files (backup streams) that are not completely
        duplicate; the paper's F.
    ecs, sd:
        Working granularity.
    """

    total_bytes: int
    data_only_der: float
    dad_bytes: float
    files: int
    ecs: int
    sd: int

    def __post_init__(self) -> None:
        if self.total_bytes <= 0 or self.files <= 0:
            raise ValueError("total_bytes and files must be positive")
        if self.data_only_der < 1.0:
            raise ValueError(f"data_only_der must be >= 1, got {self.data_only_der}")
        if self.dad_bytes <= 0 or self.ecs <= 0 or self.sd < 2:
            raise ValueError("dad_bytes/ecs must be positive and sd >= 2")


#: The paper's corpus as its Section V describes it (DAD mid-band).
PAPER_CORPUS = ScaleDescription(
    total_bytes=10**12,
    data_only_der=4.15,
    dad_bytes=150 * 1024,
    files=14 * 14,
    ecs=1024,
    sd=1000,
)


def project(desc: ScaleDescription) -> CorpusParams:
    """Instantiate Section IV's (F, N, D, L, SD) from corpus traits."""
    unique_bytes = desc.total_bytes / desc.data_only_der
    duplicate_bytes = desc.total_bytes - unique_bytes
    return CorpusParams(
        f=desc.files,
        n=round(unique_bytes / desc.ecs),
        d=round(duplicate_bytes / desc.ecs),
        l=round(duplicate_bytes / desc.dad_bytes),
        sd=desc.sd,
    )


def projected_metadata_ratios(desc: ScaleDescription) -> dict[str, float]:
    """Table I metadata totals at scale, as a fraction of the input.

    Uses the exact row sums (``summary``), not the paper's printed
    closed forms (see formulas module docstring for the discrepancy).
    """
    params = project(desc)
    table = table1_metadata(params)
    return {
        algo: table[algo]["summary"] / desc.total_bytes for algo in ALGORITHMS
    }
