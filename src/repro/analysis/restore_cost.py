"""Restore-cost analysis — the other side of the dedup bargain.

The paper evaluates *write* throughput ("the deduplication throughput
refers to the write throughput"); production systems also care what
deduplication does to **restores**: every extent a FileManifest holds
is one random disk access at read time, so fragmentation accumulated
by chunk-level sharing directly taxes recovery speed.

This module measures, per deduplicated store:

* extents per restored file (the fragmentation factor),
* distinct containers touched (cache/locality footprint),
* simulated restore seconds and MB/s under the shared
  :class:`~repro.analysis.timing.DeviceModel` (one seek per extent +
  sequential transfer),
* restore slowdown vs reading the file sequentially without dedup.

MHD's FileManifest run-coalescing is precisely an optimisation of this
cost, so the accompanying bench shows the coalescing payoff next to
the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from ..core.base import Deduplicator
from .timing import DeviceModel

__all__ = ["RestoreCost", "measure_restore_cost"]


@dataclass(frozen=True)
class RestoreCost:
    """Aggregate cost of restoring a set of files."""

    files: int
    restored_bytes: int
    extents: int
    distinct_containers: int
    seconds: float
    plain_read_seconds: float

    @property
    def extents_per_file(self) -> float:
        """Mean fragmentation factor."""
        return self.extents / max(1, self.files)

    @property
    def extents_per_mb(self) -> float:
        """Seeks paid per MB restored."""
        return self.extents / max(1e-9, self.restored_bytes / (1 << 20))

    @property
    def throughput_bps(self) -> float:
        """Simulated restore bytes/second."""
        return self.restored_bytes / max(1e-12, self.seconds)

    @property
    def slowdown(self) -> float:
        """Restore time / plain sequential-read time (≥ ~1)."""
        return self.seconds / max(1e-12, self.plain_read_seconds)


def measure_restore_cost(
    dedup: Deduplicator,
    file_ids: Sequence[str] | Iterable[str],
    device: DeviceModel | None = None,
) -> RestoreCost:
    """Walk FileManifests and price their extent lists.

    Static analysis of the recipes — no bytes are actually moved, so
    this is cheap enough to run over a whole store.
    """
    device = device or DeviceModel()
    files = 0
    restored_bytes = 0
    extents = 0
    containers: set[bytes] = set()
    for file_id in file_ids:
        fm = dedup.file_manifests.get(file_id)
        files += 1
        for e in fm.extents:
            extents += 1
            restored_bytes += e.size
            containers.add(e.container_id)
    seconds = extents * device.seek_s + restored_bytes / device.disk_bw
    plain = files * device.seek_s + restored_bytes / device.disk_bw
    return RestoreCost(
        files=files,
        restored_bytes=restored_bytes,
        extents=extents,
        distinct_containers=len(containers),
        seconds=seconds,
        plain_read_seconds=plain,
    )
