"""Command-line interface: ``repro-dedup``.

Sub-commands:

* ``run`` — deduplicate a synthetic corpus (or a real directory) with a
  chosen algorithm and print the paper's metrics.
* ``compare`` — run every algorithm over the same corpus and print the
  comparison table (the Fig. 8 summary view).
* ``trace`` — print corpus ground truth (N, D, L, DER, DAD — the
  Fig. 10(a) characteristics).
* ``restore`` — list or extract files from a persistent store created
  by ``run --store-dir``.
* ``gc`` — expire files from a persistent store and reclaim space.
* ``stats`` — summarise a persistent store's contents.
* ``fsck`` — check a persistent store's integrity; with ``--repair``,
  quarantine damaged objects and reconcile metadata after a crash.
* ``list`` — enumerate the registered algorithms with one-line
  descriptions.
* ``serve`` — run the multi-tenant dedup service (JSON-lines ingest
  protocol + HTTP ``/metrics`` on one port).
* ``client`` — talk to a running service: push files, restore them,
  list a tenant's store, show quota usage.
* ``gen-corpus`` — write the seeded synthetic corpus to a directory.
* ``inspect`` — dump one file's recipe and the manifests behind it.
* ``trace-view`` — render the per-stage time/I/O attribution table of
  one span trace, or merge several (e.g. a client trace plus the
  server's session trace) into one cross-process tree first.
* ``profile`` — run any other sub-command under the continuous stack
  sampler and write a collapsed-stack (flamegraph-ready) profile.

Examples::

    repro-dedup run --algo bf-mhd --ecs 2048 --sd 16
    repro-dedup compare --machines 4 --generations 5
    repro-dedup trace --ecs 1024
    repro-dedup run --input-dir ~/files --store-dir /backup/store --verify --fsck
    repro-dedup run --algo bf-mhd --trace t.jsonl --metrics m.prom --progress
    repro-dedup trace-view t.jsonl
    repro-dedup run --store-dir /backup/store --fsync data --retries 3 --fault-rate 0.01
    repro-dedup fsck --store-dir /backup/store --repair
    repro-dedup restore --store-dir /backup/store --list
    repro-dedup restore --store-dir /backup/store --output-dir /tmp/out
    repro-dedup gc --store-dir /backup/store --delete 'pc00/gen000/*'
    repro-dedup list
    repro-dedup serve --store-dir /srv/dedup --port 7846 --max-bytes 1073741824
    repro-dedup serve --store-dir /srv/dedup --trace-dir /srv/traces --profile srv.folded
    repro-dedup client push --tenant alice --port 7846 ~/disks/*.img
    repro-dedup client push --tenant alice --port 7846 --trace push.jsonl ~/disks/*.img
    repro-dedup trace-view push.jsonl /srv/traces/trace-alice-0001.jsonl
    repro-dedup profile --out run.folded run --algo bf-mhd --machines 2
    repro-dedup client restore --tenant alice --port 7846 --output-dir /tmp/out
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from collections.abc import Iterable

from .analysis import DeviceModel, format_table
from .storage import (
    DirectoryBackend,
    DiskChunkStore,
    DiskModel,
    FaultInjectingBackend,
    FileManifestStore,
    MemoryBackend,
    RetentionPolicy,
    RetryingBackend,
    RetryPolicy,
    StorageBackend,
    apply_retention,
    delete_file,
    recover,
    sweep,
    verify_store,
)
from .chunking import VectorizedChunker
from .core import DedupConfig
from .obs import (
    HeartbeatEvent,
    JsonlTraceSink,
    PromTextSink,
    Telemetry,
    load_trace,
    merge_traces,
    summarize,
)
from .obs.traceview import render_table as render_span_table
from .registry import available, resolve
from .workloads import BackupCorpus, BackupFile, CorpusConfig, make_corpus, profile_names, trace_corpus


def _add_corpus_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--machines", type=int, default=4, help="fleet size")
    p.add_argument("--generations", type=int, default=5, help="backups per machine")
    p.add_argument("--seed", type=int, default=2013)
    p.add_argument(
        "--input-dir",
        help="deduplicate real files from this directory instead of the synthetic corpus",
    )
    p.add_argument(
        "--profile",
        choices=profile_names(),
        help="use a named corpus preset instead of the machines/generations knobs",
    )


def _add_dedup_args(p: argparse.ArgumentParser, store_dir: bool = True) -> None:
    p.add_argument("--ecs", type=int, default=2048, help="expected chunk size (bytes)")
    p.add_argument("--sd", type=int, default=16, help="sampling distance (hashes)")
    p.add_argument("--bloom-kb", type=int, default=1024, help="bloom filter budget (KB)")
    p.add_argument("--cache", type=int, default=64, help="manifest cache capacity")
    if store_dir:
        p.add_argument(
            "--store-dir",
            help="persist the deduplicated store as real files under this directory",
        )


def _corpus(args) -> Iterable[BackupFile]:
    if args.input_dir:
        return _walk_dir(args.input_dir)
    if getattr(args, "profile", None):
        return make_corpus(args.profile, seed=args.seed)
    return BackupCorpus(
        CorpusConfig(
            machines=args.machines,
            generations=args.generations,
            os_count=2,
            os_bytes=1 << 20,
            app_bytes=1 << 18,
            user_bytes=1 << 19,
            mean_file=1 << 16,
            seed=args.seed,
        )
    )


def _walk_dir(root: str) -> list[BackupFile]:
    # Source-backed records: content is streamed through the bounded
    # ingest window at process time, never loaded whole.
    files = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in sorted(filenames):
            path = os.path.join(dirpath, name)
            try:
                with open(path, "rb"):
                    pass  # probe readability now, like the old eager read
                files.append(BackupFile.from_path(path, os.path.relpath(path, root)))
            except OSError as e:
                print(f"skipping {path}: {e}", file=sys.stderr)
    if not files:
        raise SystemExit(f"no readable files under {root}")
    return files


def _config(args) -> DedupConfig:
    return DedupConfig(
        ecs=args.ecs,
        sd=args.sd,
        bloom_bytes=args.bloom_kb * 1024,
        cache_manifests=args.cache,
    )


def _print_stats(stats, device: DeviceModel) -> None:
    rows = [
        ["input", f"{stats.input_bytes:,} B in {stats.input_files} files"],
        ["stored chunk data", f"{stats.stored_chunk_bytes:,} B"],
        ["metadata", f"{stats.metadata_bytes:,} B ({stats.metadata_ratio:.2%})"],
        ["data-only DER", f"{stats.data_only_der:.3f}"],
        ["real DER", f"{stats.real_der:.3f}"],
        ["unique / duplicate chunks", f"{stats.unique_chunks:,} / {stats.duplicate_chunks:,}"],
        ["duplicate slices (L)", f"{stats.duplicate_slices:,}"],
        ["disk accesses", f"{stats.io.count():,}"],
        ["throughput ratio", f"{device.throughput_ratio(stats):.3f}"],
        ["peak RAM", f"{stats.peak_ram_bytes:,} B"],
    ]
    print(format_table(["metric", "value"], rows, title=f"{stats.algorithm} results"))


def _run_telemetry(args) -> Telemetry | None:
    """Build the run's telemetry from ``--trace``/``--metrics``/``--progress``."""
    sinks = []
    if args.trace:
        sinks.append(JsonlTraceSink(args.trace))
    if args.metrics:
        sinks.append(PromTextSink(args.metrics))
    heartbeat = None
    if args.progress:

        def _beat(ev: HeartbeatEvent) -> None:
            print(
                f"  {ev.files} files, {ev.input_bytes / 1e6:.1f} MB in, "
                f"DER so far {ev.der_so_far:.3f}",
                file=sys.stderr,
            )

        heartbeat = _beat
    if not sinks and heartbeat is None:
        return None
    return Telemetry(sinks=sinks, heartbeat=heartbeat)


def _run_backend(args) -> StorageBackend | None:
    """Compose the run's backend stack from the durability/chaos flags.

    ``RetryingBackend(FaultInjectingBackend(DirectoryBackend))`` — the
    retry layer outermost so injected transient errors are absorbed the
    way a production store would absorb real ones.
    """
    backend: StorageBackend | None = None
    if args.store_dir:
        backend = DirectoryBackend(args.store_dir, fsync=args.fsync)
    if args.fault_rate:
        backend = FaultInjectingBackend(
            backend or MemoryBackend(),
            seed=args.fault_seed,
            transient_rate=args.fault_rate,
        )
    if args.retries:
        backend = RetryingBackend(
            backend or MemoryBackend(),
            RetryPolicy(attempts=args.retries + 1, base_delay=0.001),
        )
    return backend


def cmd_run(args) -> int:
    backend = _run_backend(args)
    dedup = resolve(args.algo)(_config(args), backend)
    tel = _run_telemetry(args)
    if tel is None:
        stats = dedup.process(_corpus(args))
    else:
        dedup.telemetry = tel
        # One root span over ingest *and* finalize, so trace-view's
        # per-stage self times partition the whole run duration.
        with tel.span("run", algo=args.algo):
            stats = dedup.process(_corpus(args))
        tel.close()
        if args.trace:
            print(f"trace written to {args.trace}")
        if args.metrics:
            print(f"metrics written to {args.metrics}")
    _print_stats(stats, DeviceModel())
    layer: StorageBackend | None = backend
    while layer is not None:
        if isinstance(layer, RetryingBackend):
            print(
                f"transient backend errors: {layer.retries} retried, "
                f"{layer.giveups} exhausted the retry budget"
            )
        if isinstance(layer, FaultInjectingBackend):
            fired = dict(sorted(layer.faults_injected.items()))
            print(f"faults injected (seed {args.fault_seed}): {fired or 'none'}")
        layer = getattr(layer, "inner", None)
    if args.verify:
        files = list(_corpus(args))
        bad = [f.file_id for f in files if dedup.restore(f.file_id) != f.read_bytes()]
        if bad:
            print(f"RESTORE FAILURES: {bad}", file=sys.stderr)
            return 1
        print(f"verified: all {len(files)} files restore byte-identically")
    if args.fsck:
        report = dedup.verify_integrity(check_entry_hashes=True)
        print(report.summary())
        if not report.ok:
            for err in report.errors[:20]:
                print(f"  {err}", file=sys.stderr)
            return 1
    if args.store_dir:
        print(f"store persisted under {args.store_dir}")
    return 0


def cmd_restore(args) -> int:
    backend = DirectoryBackend(args.store_dir)
    meter = DiskModel()
    file_manifests = FileManifestStore(backend, meter)
    chunks = DiskChunkStore(backend, meter)
    ids = file_manifests.list_ids()
    if args.list:
        for file_id in ids:
            print(file_id)
        print(f"{len(ids)} files in store", file=sys.stderr)
        return 0
    targets = args.files or ids
    unknown = sorted(set(targets) - set(ids))
    if unknown:
        print(f"not in store: {unknown}", file=sys.stderr)
        return 1
    for file_id in targets:
        data = file_manifests.get(file_id).restore(chunks)
        out_path = os.path.join(args.output_dir, file_id)
        os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
        with open(out_path, "wb") as fh:
            fh.write(data)
    print(f"restored {len(targets)} files to {args.output_dir}")
    return 0


def cmd_compare(args) -> int:
    files = list(_corpus(args))
    device = DeviceModel()
    rows = []
    for name in available():
        stats = resolve(name)(_config(args)).process(files)
        rows.append(
            [
                name,
                f"{stats.data_only_der:.3f}",
                f"{stats.real_der:.3f}",
                f"{stats.metadata_ratio:.2%}",
                f"{stats.io.count():,}",
                f"{device.throughput_ratio(stats):.3f}",
            ]
        )
    print(
        format_table(
            ["algorithm", "data DER", "real DER", "metadata", "disk IOs", "tput ratio"],
            rows,
            title=f"comparison (ECS={args.ecs}, SD={args.sd}, "
            f"{sum(f.size for f in files) / 1e6:.1f} MB)",
        )
    )
    return 0


def cmd_trace(args) -> int:
    config = _config(args)
    stats = trace_corpus(_corpus(args), VectorizedChunker(config.small_chunker_config()))
    rows = [
        ["total bytes", f"{stats.total_bytes:,}"],
        ["total chunks", f"{stats.total_chunks:,}"],
        ["unique chunks (N)", f"{stats.unique_chunks:,}"],
        ["duplicate chunks (D)", f"{stats.duplicate_chunks:,}"],
        ["duplicate slices (L)", f"{stats.duplicate_slices:,}"],
        ["partial files (F)", f"{stats.partial_files:,} of {stats.total_files:,}"],
        ["data-only DER (bytes)", f"{stats.byte_der:.3f}"],
        ["chunk DER (D+N)/N", f"{stats.chunk_der:.3f}"],
        ["DAD", f"{stats.dad / 1024:.1f} KB"],
    ]
    print(format_table(["characteristic", "value"], rows, title=f"corpus trace @ ECS={args.ecs}"))
    return 0


def cmd_inspect(args) -> int:
    from .hashing import hex_short
    from .storage import Manifest
    from .storage.verify import load_manifest

    backend = DirectoryBackend(args.store_dir)
    meter = DiskModel()
    fm_store = FileManifestStore(backend, meter)
    try:
        fm = fm_store.get(args.file)
    except KeyError:
        print(f"{args.file!r} not in store", file=sys.stderr)
        return 1

    print(f"file {fm.file_id!r}: {fm.total_size:,} bytes in {len(fm.extents)} extents")
    rows = [
        [i, hex_short(e.container_id), f"{e.offset:,}", f"{e.size:,}"]
        for i, e in enumerate(fm.extents)
    ]
    print(format_table(["#", "container", "offset", "size"], rows, title="recipe"))

    if not args.manifests:
        return 0
    # Show the manifests that describe the touched containers.
    touched = {e.container_id for e in fm.extents}
    shown = 0
    for key in backend.keys(DiskModel.MANIFEST):
        manifest = load_manifest(backend.get(DiskModel.MANIFEST, key))
        if isinstance(manifest, Manifest):
            containers = {manifest.chunk_id}
        else:
            containers = {e.container_id for e in manifest.entries}
        if not (containers & touched):
            continue
        shown += 1
        print(f"\nmanifest {hex_short(manifest.manifest_id)} "
              f"({len(manifest.entries)} entries)")
        rows = []
        for i, e in enumerate(manifest.entries[: args.limit]):
            hook = getattr(e, "is_hook", False)
            rows.append(
                [i, hex_short(e.digest), f"{e.offset:,}", f"{e.size:,}",
                 "hook" if hook else ""]
            )
        print(format_table(["#", "digest", "offset", "size", "flag"], rows))
        if len(manifest.entries) > args.limit:
            print(f"  ... {len(manifest.entries) - args.limit} more entries")
    print(f"\n{shown} manifest(s) reference this file's containers")
    return 0


def cmd_trace_view(args) -> int:
    try:
        loaded = [load_trace(p) for p in args.trace_files]
        if len(loaded) == 1:
            spans = loaded[0][0]
        else:
            spans = merge_traces([s for s, _ in loaded])
        metrics: dict = {}
        for _, m in loaded:
            metrics.update(m)
        summary = summarize(spans)
    except (OSError, ValueError) as e:
        print(f"invalid trace: {e}", file=sys.stderr)
        return 1
    if not spans:
        print(f"{', '.join(args.trace_files)}: trace contains no spans", file=sys.stderr)
        return 1
    trace_ids = {ev.trace_id for ev in spans if ev.trace_id}
    print(render_span_table(summary))
    print(
        f"{summary.span_count} spans; run {summary.run_s:.4f}s; "
        f"stage self-times cover {summary.coverage:.1%}; "
        f"wait {summary.wait_s:.4f}s / work {summary.work_s:.4f}s"
    )
    if len(loaded) > 1:
        print(
            f"merged {len(loaded)} trace files; "
            f"{len(trace_ids) or 1} distinct trace id(s)"
        )
    if args.show_metrics:
        if not metrics:
            print("(trace carries no metrics record)", file=sys.stderr)
        else:
            rows = []
            for name in sorted(metrics):
                v = metrics[name]
                if isinstance(v, dict) and "counts" in v:
                    v = f"histogram n={v.get('count')} sum={v.get('sum')}"
                rows.append([name, str(v)])
            print(format_table(["metric", "value"], rows, title="final metrics"))
    return 0


def cmd_gen_corpus(args) -> int:
    corpus = _corpus(args)
    if args.input_dir:
        raise SystemExit("gen-corpus generates data; --input-dir makes no sense here")
    count = corpus.write_to(args.output_dir)
    total = sum(f.size for f in corpus)
    print(f"wrote {count} files ({total / 1e6:.1f} MB) under {args.output_dir}")
    return 0


def cmd_stats(args) -> int:
    backend = DirectoryBackend(args.store_dir)
    from .storage import INODE_SIZE

    rows = []
    total_payload = 0
    for ns in (DiskModel.CHUNK, DiskModel.MANIFEST, DiskModel.HOOK, DiskModel.FILE_MANIFEST):
        count = backend.object_count(ns)
        payload = backend.bytes_stored(ns)
        total_payload += payload
        rows.append([ns, f"{count:,}", f"{payload:,} B", f"{count * INODE_SIZE:,} B"])
    print(format_table(["namespace", "objects", "payload", "inode bytes"], rows,
                       title=f"store {args.store_dir}"))
    data = backend.bytes_stored(DiskModel.CHUNK)
    meta = total_payload - data + backend.total_stored() - total_payload
    print(f"chunk data {data:,} B; metadata (incl. inodes) {meta:,} B")
    if args.fsck:
        report = verify_store(backend, check_entry_hashes=True)
        print(report.summary())
        return 0 if report.ok else 1
    return 0


def cmd_fsck(args) -> int:
    backend = DirectoryBackend(args.store_dir)
    if not args.repair:
        report = verify_store(backend, deep=True, check_entry_hashes=args.check_hashes)
        print(report.summary())
        for err in report.errors[:20]:
            print(f"  {err}", file=sys.stderr)
        return 0 if report.ok else 1
    rep = recover(backend, check_hashes=args.check_hashes)
    print(rep.summary())
    for action in rep.actions:
        print(f"  {action}")
    assert rep.integrity is not None
    print(rep.integrity.summary())
    for err in rep.integrity.errors[:20]:
        print(f"  {err}", file=sys.stderr)
    return 0 if rep.ok else 1


def cmd_gc(args) -> int:
    import fnmatch

    backend = DirectoryBackend(args.store_dir)
    meter = DiskModel()
    ids = FileManifestStore(backend, meter).list_ids()
    victims = [
        file_id
        for file_id in ids
        if any(fnmatch.fnmatch(file_id, pat) for pat in args.delete)
    ]
    if args.delete and not victims:
        print("no stored files match the given patterns", file=sys.stderr)
        return 1
    if args.keep_last is not None:
        policy = RetentionPolicy(keep_last=args.keep_last, keep_every=args.keep_every)
        expired, report = apply_retention(backend, ids, policy)
        for file_id in victims:
            delete_file(backend, file_id)
        for file_id in expired + victims:
            print(f"deleted {file_id}")
        report = sweep(backend) if victims else report
    else:
        for file_id in victims:
            delete_file(backend, file_id)
            print(f"deleted {file_id}")
        report = sweep(backend)
    print(report.summary())
    check = verify_store(backend)
    print(check.summary())
    return 0 if check.ok else 1


def cmd_list(args) -> int:
    from .registry import entries

    width = max(len(name) for name, _ in entries())
    for name, desc in entries():
        print(f"{name:<{width}}  {desc}")
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from .parallel import FleetExecutor
    from .service import DedupServer, TenantQuota

    backend: StorageBackend = DirectoryBackend(args.store_dir)
    server = DedupServer(
        backend,
        host=args.host,
        port=args.port,
        default_quota=TenantQuota(max_bytes=args.max_bytes, max_files=args.max_files),
        default_rate_bytes=args.rate_bytes,
        algorithm=args.algo,
        config=_config(args),
        workers=args.workers,
        queue_depth=args.queue_depth,
        max_rate_delay=args.max_rate_delay,
        trace_dir=args.trace_dir,
    )
    sampler = None
    if args.profile:
        from .obs.profile import StackSampler

        # Sample only the ingest fleet: the event loop's stacks are
        # all epoll waits, which would drown the interesting frames.
        sampler = StackSampler(thread_prefixes=(FleetExecutor.THREAD_NAME_PREFIX,))
        sampler.start()

    async def _run() -> None:
        await server.start()
        # Machine-parsable ready line (the CI smoke test and scripts
        # wait for it, then read the bound port from it).
        print(f"serving on {server.host}:{server.port}", flush=True)
        print(f"store: {args.store_dir}  algo: {args.algo}", flush=True)
        if args.trace_dir:
            print(f"traces: {args.trace_dir}", flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("interrupted; server stopped", file=sys.stderr)
    finally:
        if sampler is not None:
            sampler.stop()
            stacks = sampler.write(args.profile)
            print(
                f"profile: {stacks} stacks ({sampler.samples} samples) "
                f"-> {args.profile}",
                file=sys.stderr,
            )
    return 0


def _client_files(paths: list[str]) -> list[tuple[str, bytes]]:
    """Expand CLI path arguments into (client path, content) pairs."""
    out: list[tuple[str, bytes]] = []
    for p in paths:
        if os.path.isdir(p):
            for f in _walk_dir(p):
                out.append((f.file_id, f.read_bytes()))
        else:
            with open(p, "rb") as fh:
                out.append((os.path.basename(p), fh.read()))
    return out


def cmd_client(args) -> int:
    tel: Telemetry | None = None
    if getattr(args, "trace", None):
        tel = Telemetry(sinks=[JsonlTraceSink(args.trace)], origin="client")
    try:
        return _cmd_client_inner(args, tel)
    finally:
        if tel is not None:
            trace_id = tel.trace_id
            tel.close()
            print(
                f"client trace written to {args.trace} (trace id {trace_id})",
                file=sys.stderr,
            )


def _cmd_client_inner(args, tel: Telemetry | None) -> int:
    from .service import ServiceClient, ServiceError

    with ServiceClient(args.host, args.port, telemetry=tel) as client:
        try:
            if args.action == "push":
                files = _client_files(args.paths)
                client.open(
                    args.tenant,
                    algorithm=args.algo,
                    max_bytes=args.max_bytes or None,
                    max_files=args.max_files or None,
                    rate_bytes=args.rate_bytes or None,
                )
                responses = client.push_many(files)
                failed = 0
                for (path, data), r in zip(files, responses):
                    if r.get("ok"):
                        print(f"pushed {path} ({len(data):,} B) -> {r['store_id']}")
                    else:
                        failed += 1
                        print(f"REFUSED {path}: {r.get('message')}", file=sys.stderr)
                if failed:
                    return 1
                result = client.commit()
                usage = result["usage"]
                print(
                    f"committed session {result['session']}: "
                    f"{usage['bytes_used']:,} B / {usage['files_used']} files used"
                )
            elif args.action == "restore":
                targets = args.paths or sorted(client.list_files(args.tenant))
                for path in targets:
                    data = client.get(args.tenant, path)
                    out_path = os.path.join(args.output_dir, path)
                    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
                    with open(out_path, "wb") as fh:
                        fh.write(data)
                print(f"restored {len(targets)} files to {args.output_dir}")
            elif args.action == "list":
                files = client.list_files(args.tenant)
                for path, store_id in files.items():
                    print(f"{path}\t{store_id}")
                print(f"{len(files)} files", file=sys.stderr)
            elif args.action == "usage":
                usage = client.usage(args.tenant)
                for key, value in usage.items():
                    print(f"{key}: {value:,}")
        except ServiceError as e:
            print(f"service refused: {e}", file=sys.stderr)
            return 1
    return 0


def cmd_profile(args) -> int:
    from .obs.profile import StackSampler

    rest = [a for a in args.rest if a != "--"]
    if not rest:
        print("profile: give a sub-command to run, e.g. "
              "`repro-dedup profile --out p.txt run --algo bf-mhd`", file=sys.stderr)
        return 2
    if rest[0] == "profile":
        print("profile: cannot profile itself", file=sys.stderr)
        return 2
    inner = build_parser().parse_args(rest)
    prefixes = None
    if args.threads:
        prefixes = tuple(p for p in args.threads.split(",") if p)
    sampler = StackSampler(interval_s=args.interval, thread_prefixes=prefixes)
    with sampler:
        code = int(inner.func(inner))
    stacks = sampler.write(args.out)
    print(
        f"profile: {stacks} stacks ({sampler.samples} samples) -> {args.out}",
        file=sys.stderr,
    )
    return code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dedup",
        description="MHD deduplication reproduction (Zhou & Wen, ICPP 2013)",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="log per-file dedup progress"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one algorithm and print its metrics")
    p_run.add_argument("--algo", choices=sorted(available()), default="bf-mhd")
    p_run.add_argument("--verify", action="store_true", help="verify all restores")
    p_run.add_argument(
        "--fsck", action="store_true", help="run a deep store-integrity check"
    )
    p_run.add_argument(
        "--trace",
        metavar="PATH",
        help="write a JSONL span trace of the run (render with trace-view)",
    )
    p_run.add_argument(
        "--metrics",
        metavar="PATH",
        help="write the run's final metrics in Prometheus text format",
    )
    p_run.add_argument(
        "--progress",
        action="store_true",
        help="print heartbeat lines (files/bytes/DER-so-far) to stderr",
    )
    dur = p_run.add_argument_group("durability / fault injection")
    dur.add_argument(
        "--fsync",
        choices=("none", "data", "full"),
        default="none",
        help="fsync policy for --store-dir writes (default: none)",
    )
    dur.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry transient backend errors up to N times with backoff",
    )
    dur.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="inject seeded transient backend errors with probability P per op",
    )
    dur.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="RNG seed for --fault-rate injection (default: 0)",
    )
    _add_dedup_args(p_run)
    _add_corpus_args(p_run)
    p_run.set_defaults(func=cmd_run)

    p_rst = sub.add_parser("restore", help="list or extract files from a store")
    p_rst.add_argument("--store-dir", required=True, help="store created by run --store-dir")
    p_rst.add_argument("--list", action="store_true", help="list stored file ids")
    p_rst.add_argument("--output-dir", default=".", help="where to write restored files")
    p_rst.add_argument("files", nargs="*", help="specific file ids (default: all)")
    p_rst.set_defaults(func=cmd_restore)

    p_gc = sub.add_parser("gc", help="expire files and reclaim space in a store")
    p_gc.add_argument("--store-dir", required=True)
    p_gc.add_argument(
        "--delete",
        action="append",
        default=[],
        metavar="GLOB",
        help="file-id glob(s) to expire before sweeping (may repeat)",
    )
    p_gc.add_argument(
        "--keep-last",
        type=int,
        metavar="N",
        help="retention: keep only the newest N generations",
    )
    p_gc.add_argument(
        "--keep-every",
        type=int,
        default=0,
        metavar="K",
        help="retention: additionally keep every K-th older generation",
    )
    p_gc.set_defaults(func=cmd_gc)

    p_st = sub.add_parser("stats", help="summarise a persistent store")
    p_st.add_argument("--store-dir", required=True)
    p_st.add_argument("--fsck", action="store_true", help="deep integrity check")
    p_st.set_defaults(func=cmd_stats)

    p_fsck = sub.add_parser(
        "fsck", help="check a persistent store; --repair recovers after a crash"
    )
    p_fsck.add_argument("--store-dir", required=True)
    p_fsck.add_argument(
        "--check-hashes",
        action="store_true",
        help="also re-hash manifest entries against container bytes (slow)",
    )
    p_fsck.add_argument(
        "--repair",
        action="store_true",
        help="quarantine damaged objects and reconcile metadata, then re-verify",
    )
    p_fsck.set_defaults(func=cmd_fsck)

    p_gen = sub.add_parser("gen-corpus", help="materialise the synthetic corpus as files")
    p_gen.add_argument("--output-dir", required=True)
    _add_corpus_args(p_gen)
    p_gen.set_defaults(func=cmd_gen_corpus)

    p_ins = sub.add_parser("inspect", help="dump a file's recipe and manifests")
    p_ins.add_argument("--store-dir", required=True)
    p_ins.add_argument("--file", required=True, help="file id to inspect")
    p_ins.add_argument(
        "--manifests", action="store_true", help="also dump owning manifests"
    )
    p_ins.add_argument("--limit", type=int, default=20, help="entries shown per manifest")
    p_ins.set_defaults(func=cmd_inspect)

    p_cmp = sub.add_parser("compare", help="run every algorithm on one corpus")
    _add_dedup_args(p_cmp)
    _add_corpus_args(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_tr = sub.add_parser("trace", help="print corpus duplication ground truth")
    _add_dedup_args(p_tr)
    _add_corpus_args(p_tr)
    p_tr.set_defaults(func=cmd_trace)

    p_ls = sub.add_parser(
        "list", help="list registered algorithms with one-line descriptions"
    )
    p_ls.set_defaults(func=cmd_list)

    p_srv = sub.add_parser(
        "serve", help="run the multi-tenant dedup service on one TCP port"
    )
    p_srv.add_argument("--store-dir", required=True, help="shared physical store")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument(
        "--port", type=int, default=0, help="listen port (0 = pick a free one)"
    )
    p_srv.add_argument("--algo", choices=sorted(available()), default="bf-mhd")
    p_srv.add_argument(
        "--max-bytes",
        type=int,
        default=0,
        help="default per-tenant byte quota (0 = unlimited)",
    )
    p_srv.add_argument(
        "--max-files",
        type=int,
        default=0,
        help="default per-tenant file quota (0 = unlimited)",
    )
    p_srv.add_argument(
        "--rate-bytes",
        type=float,
        default=0.0,
        help="default per-tenant ingest rate in bytes/s (0 = unlimited)",
    )
    p_srv.add_argument(
        "--workers", type=int, default=None, help="fleet thread-pool size"
    )
    p_srv.add_argument(
        "--queue-depth",
        type=int,
        default=4,
        help="bounded per-session put queue before socket back-pressure",
    )
    p_srv.add_argument(
        "--max-rate-delay",
        type=float,
        default=5.0,
        help="longest back-pressure sleep before a 429-style refusal (s)",
    )
    p_srv.add_argument(
        "--trace-dir",
        metavar="DIR",
        help="write one JSONL span trace per traced session under DIR",
    )
    p_srv.add_argument(
        "--profile",
        metavar="PATH",
        help="sample fleet-thread stacks; write collapsed stacks to PATH on exit",
    )
    _add_dedup_args(p_srv, store_dir=False)
    p_srv.set_defaults(func=cmd_serve)

    p_cl = sub.add_parser("client", help="talk to a running dedup service")
    cl_sub = p_cl.add_subparsers(dest="action", required=True)

    def _client_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--tenant", required=True, help="tenant id")
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, required=True)
        p.set_defaults(func=cmd_client)

    p_push = cl_sub.add_parser("push", help="open a session and push files")
    _client_common(p_push)
    p_push.add_argument("--algo", default=None, help="algorithm for this session")
    p_push.add_argument(
        "--max-bytes", type=int, default=0, help="tenant byte quota on first contact"
    )
    p_push.add_argument(
        "--max-files", type=int, default=0, help="tenant file quota on first contact"
    )
    p_push.add_argument(
        "--rate-bytes", type=float, default=0.0, help="tenant rate limit on first contact"
    )
    p_push.add_argument(
        "--trace",
        metavar="PATH",
        help="trace the push client-side and propagate the trace id to the server",
    )
    p_push.add_argument("paths", nargs="+", help="files or directories to push")

    p_get = cl_sub.add_parser("restore", help="restore a tenant's files")
    _client_common(p_get)
    p_get.add_argument("--output-dir", default=".", help="restore destination")
    p_get.add_argument("paths", nargs="*", help="store paths (default: all)")

    _client_common(cl_sub.add_parser("list", help="list a tenant's files"))
    _client_common(cl_sub.add_parser("usage", help="show a tenant's quota usage"))

    p_tv = sub.add_parser(
        "trace-view", help="render a span trace's per-stage attribution table"
    )
    p_tv.add_argument(
        "trace_files",
        nargs="+",
        help="JSONL trace(s); several files are merged into one cross-process tree",
    )
    p_tv.add_argument(
        "--show-metrics",
        action="store_true",
        help="also print the final metric values recorded in the trace",
    )
    p_tv.set_defaults(func=cmd_trace_view)

    p_prof = sub.add_parser(
        "profile", help="run another sub-command under the continuous stack sampler"
    )
    p_prof.add_argument(
        "--out", required=True, metavar="PATH", help="collapsed-stack output file"
    )
    p_prof.add_argument(
        "--interval", type=float, default=0.005, help="sampling interval (s)"
    )
    p_prof.add_argument(
        "--threads",
        metavar="PREFIX[,PREFIX...]",
        help="only sample threads whose name starts with one of these prefixes",
    )
    p_prof.add_argument(
        "rest",
        nargs=argparse.REMAINDER,
        help="the repro-dedup sub-command to run (e.g. `run --algo bf-mhd`)",
    )
    p_prof.set_defaults(func=cmd_profile)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if getattr(args, "verbose", False) else logging.WARNING,
        format="%(levelname)s %(name)s: %(message)s",
    )
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
