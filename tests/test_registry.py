"""The shared algorithm registry: one nine-entry table for everyone."""

import pytest

from repro.registry import available, capabilities, resolve


def test_all_nine_algorithms_registered():
    names = available()
    assert len(names) == 9
    assert set(names) == {
        "bf-mhd",
        "si-mhd",
        "cdc",
        "bimodal",
        "subchunk",
        "sparse-indexing",
        "fingerdiff",
        "fbc",
        "extreme-binning",
    }


def test_resolve_returns_constructible_classes():
    for name in available():
        cls = resolve(name)
        assert cls.name == name
        assert cls().name == name  # default-constructible


def test_resolve_unknown_name_lists_alternatives():
    with pytest.raises(ValueError, match="bf-mhd"):
        resolve("no-such-algo")


def test_consumers_share_the_registry():
    """cli and parallel no longer keep private copies."""
    from repro import cli

    assert not hasattr(cli, "ALGORITHMS")
    parser = cli.build_parser()
    args = parser.parse_args(["run", "--algo", "extreme-binning"])
    assert args.algo == "extreme-binning"


def test_capabilities_cover_every_algorithm():
    """Every registered name answers; hook-bearing designs say so."""
    for name in available():
        caps = capabilities(name)
        assert isinstance(caps, frozenset)
    assert "hooks" in capabilities("bf-mhd")
    assert capabilities("sparse-indexing") >= {"hooks", "segments"}
    assert capabilities("extreme-binning") == {"representative"}
    assert capabilities("fbc") == frozenset()


def test_capabilities_unknown_name_rejected():
    with pytest.raises(ValueError, match="unknown"):
        capabilities("no-such-algo")
