"""Unit tests for quota ledgers and the token-bucket rate limiter."""

import pytest

from repro.service import QuotaExceeded, QuotaLedger, TenantQuota, TokenBucket


class TestTenantQuota:
    def test_defaults_unlimited(self):
        q = TenantQuota()
        assert q.unlimited
        assert q.max_bytes == 0 and q.max_files == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TenantQuota(max_bytes=-1)
        with pytest.raises(ValueError):
            TenantQuota(max_files=-1)


class TestQuotaLedger:
    def test_admit_checks_do_not_charge(self):
        ledger = QuotaLedger(TenantQuota(max_bytes=100))
        ledger.check_admit("t", 90)
        assert ledger.bytes_used == 0
        with pytest.raises(QuotaExceeded):
            ledger.check_admit("t", 101)

    def test_charge_bytes_raises_before_charging(self):
        ledger = QuotaLedger(TenantQuota(max_bytes=100))
        ledger.charge_bytes("t", 60)
        with pytest.raises(QuotaExceeded):
            ledger.charge_bytes("t", 41)
        # The refused batch left no partial charge behind.
        assert ledger.bytes_used == 60
        ledger.charge_bytes("t", 40)  # exactly to the ceiling is fine
        assert ledger.bytes_used == 100

    def test_file_quota(self):
        ledger = QuotaLedger(TenantQuota(max_files=2))
        ledger.charge_file("t")
        ledger.charge_file("t")
        with pytest.raises(QuotaExceeded):
            ledger.charge_file("t")
        assert ledger.files_used == 2

    def test_unlimited_never_raises(self):
        ledger = QuotaLedger(TenantQuota())
        ledger.charge_bytes("t", 10**12)
        ledger.charge_file("t")
        ledger.check_admit("t", 10**15)

    def test_preexisting_usage(self):
        """A returning tenant's ledger starts from its stored bytes."""
        ledger = QuotaLedger(TenantQuota(max_bytes=100), bytes_used=80)
        with pytest.raises(QuotaExceeded):
            ledger.check_admit("t", 21)
        ledger.check_admit("t", 20)

    def test_snapshot(self):
        ledger = QuotaLedger(TenantQuota(max_bytes=5, max_files=7))
        ledger.charge_bytes("t", 3)
        assert ledger.snapshot() == {
            "bytes_used": 3,
            "files_used": 0,
            "max_bytes": 5,
            "max_files": 7,
        }


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_zero_rate_disables(self):
        bucket = TokenBucket(0.0)
        assert bucket.reserve(10**9) == 0.0

    def test_burst_then_delay(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=100.0, clock=clock)
        assert bucket.reserve(100) == 0.0  # burst absorbs it
        assert bucket.reserve(50) == pytest.approx(0.5)  # 50 tokens of debt

    def test_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=100.0, clock=clock)
        bucket.reserve(100)
        clock.now = 1.0  # a full second refills the burst
        assert bucket.reserve(100) == 0.0

    def test_debt_beyond_burst_is_admitted(self):
        """One file larger than the burst still goes through — it just
        waits proportionally longer (debt queues, never refuses)."""
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=10.0, clock=clock)
        assert bucket.reserve(510) == pytest.approx(5.0)
        assert bucket.tokens == pytest.approx(-500.0)

    def test_cancel_refunds(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=100.0, clock=clock)
        bucket.reserve(100)
        bucket.cancel(100)
        assert bucket.reserve(100) == 0.0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)
