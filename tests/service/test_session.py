"""DedupSession lifecycle: generations, quota aborts, rate limiting.

The acceptance bar for the service core: sessions commit or abort
cleanly, aborted stores pass fsck, re-pushes pay only the delta, and a
rate-limited session still produces byte-identical restores.
"""

import io

import pytest

from repro.core import DedupConfig
from repro.registry import resolve
from repro.service import (
    DedupSession,
    QuotaExceeded,
    RateLimited,
    SessionClosed,
    TenantBusy,
    TenantQuota,
    TenantRegistry,
    latest_files,
    restore_file,
)
from repro.service.session import split_store_id
from repro.storage import DirectoryBackend

CFG = DedupConfig(ecs=1024, sd=8, bloom_bytes=1 << 18)


def rand(n, seed):
    import numpy as np

    return np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8).tobytes()


@pytest.fixture
def registry(tmp_path):
    return TenantRegistry(DirectoryBackend(tmp_path / "store"))


def fsck_ok(view) -> bool:
    dedup = resolve("bf-mhd")(CFG, backend=view)
    dedup.warm_start()
    dedup.process([])
    return dedup.verify_integrity(check_entry_hashes=True).ok


class TestStoreIds:
    def test_split_roundtrip(self):
        assert split_store_id("g000002/a/b.img") == (2, "a/b.img")
        assert split_store_id("plain/file") == (-1, "plain/file")


class TestLifecycle:
    def test_commit_then_restore(self, registry):
        tenant = registry.register("alice")
        blob = rand(40_000, 1)
        with DedupSession(tenant, config=CFG) as session:
            store_id = session.write("disk.img", blob)
        assert session.state == "committed"
        assert store_id == "g000000/disk.img"
        assert session.stats is not None and session.stats.input_bytes == 40_000
        assert restore_file(registry.view("alice"), "disk.img") == blob

    def test_write_after_commit_raises(self, registry):
        session = DedupSession(registry.register("alice"), config=CFG).open()
        session.write("a", b"x" * 2000)
        session.commit()
        with pytest.raises(SessionClosed):
            session.write("b", b"y" * 2000)

    def test_sessions_serialize_per_tenant(self, registry):
        tenant = registry.register("alice")
        with DedupSession(tenant, config=CFG) as first:
            first.write("a", b"x" * 2000)
            # The tenant lock is held: a second open() would block, which
            # we can observe without deadlocking via the lock itself.
            assert tenant.lock.locked()
        assert not tenant.lock.locked()

    def test_open_refuses_busy_tenant_after_open_wait(self, registry):
        """open() waits a *bounded* time for the tenant lock, then
        refuses with TenantBusy — never an unbounded acquire (the PR 6
        pool-starvation shape, now also machine-checked as DDC102)."""
        tenant = registry.register("alice")
        tenant.lock.acquire()  # another session of this tenant is live
        try:
            session = DedupSession(tenant, config=CFG, open_wait=0.05)
            with pytest.raises(TenantBusy) as exc_info:
                session.open()
            assert exc_info.value.tenant_id == "alice"
            assert session.state == "new"  # refusal leaves it reopenable
            assert tenant.lock.locked()  # the holder keeps the lock
        finally:
            tenant.lock.release()
        # Once the holder is gone the same session opens fine.
        session.open()
        session.write("a", b"x" * 2000)
        session.commit()

    def test_context_manager_aborts_on_error(self, registry):
        tenant = registry.register("alice")
        with pytest.raises(RuntimeError, match="boom"):
            with DedupSession(tenant, config=CFG) as session:
                session.write("a", b"x" * 2000)
                raise RuntimeError("boom")
        assert session.state == "aborted"
        assert fsck_ok(registry.view("alice"))

    def test_close_is_idempotent(self, registry):
        session = DedupSession(registry.register("alice"), config=CFG).open()
        session.close()
        assert session.state == "aborted"
        session.close()  # no-op


class TestGenerations:
    def test_incremental_repush_pays_delta_only(self, registry):
        tenant = registry.register("alice")
        base = rand(120_000, 2)
        with DedupSession(tenant, config=CFG) as s1:
            s1.write("disk.img", base)
        stored_after_gen0 = s1.stats.stored_chunk_bytes

        # Unchanged content, new generation: warm start dedups it away.
        with DedupSession(tenant, config=CFG) as s2:
            assert s2.generation == 1
            s2.write("disk.img", base)
        new_bytes = s2.stats.stored_chunk_bytes - stored_after_gen0
        assert new_bytes < len(base) * 0.05
        assert s2.stats.duplicate_bytes == len(base)

        # An edited tail: only the delta is new.
        edited = base[:100_000] + rand(20_000, 3)
        with DedupSession(tenant, config=CFG) as s3:
            s3.write("disk.img", edited)
        delta = s3.stats.stored_chunk_bytes - s2.stats.stored_chunk_bytes
        assert delta < len(edited) * 0.5

        # latest_files resolves to the newest generation.
        view = registry.view("alice")
        assert latest_files(view)["disk.img"] == "g000002/disk.img"
        assert restore_file(view, "disk.img") == edited


class TestQuota:
    def test_precheck_refusal_keeps_session_open(self, registry):
        tenant = registry.register("bob", quota=TenantQuota(max_bytes=10_000))
        session = DedupSession(tenant, config=CFG).open()
        with pytest.raises(QuotaExceeded):
            session.write("big.img", rand(20_000, 4))
        assert session.state == "open"  # nothing moved, nothing to repair
        session.write("small.img", rand(5_000, 5))
        session.commit()

    def test_midstream_quota_aborts_cleanly(self, registry):
        """A stream that outgrows its declared size is cut off at the
        first over-quota batch; the abort leaves no partial manifests
        and an fsck-clean store."""
        tenant = registry.register("bob", quota=TenantQuota(max_bytes=30_000))
        committed = rand(8_000, 6)
        with DedupSession(tenant, config=CFG) as s0:
            s0.write("ok.img", committed)

        big = rand(200_000, 7)  # way past the quota; claims to be tiny
        session = DedupSession(tenant, config=CFG).open()
        with pytest.raises(QuotaExceeded):
            session.write_stream("liar.img", lambda: io.BytesIO(big), 1_000)
        assert session.state == "aborted"
        assert session.recovery is not None

        view = registry.view("bob")
        assert fsck_ok(view)
        # No partial file manifest leaked; the committed file survived.
        assert list(latest_files(view)) == ["ok.img"]
        assert restore_file(view, "ok.img") == committed
        # The ledger kept the charge for work actually done, and it is
        # bounded by quota, not by the stream's full size.
        assert tenant.ledger.bytes_used <= 30_000

    def test_file_quota_refused_at_admission(self, registry):
        """The file ceiling trips in the pre-check: refused before any
        byte moves, so the session survives and can still commit."""
        tenant = registry.register("bob", quota=TenantQuota(max_files=1))
        session = DedupSession(tenant, config=CFG).open()
        session.write("a.img", rand(2_000, 8))
        with pytest.raises(QuotaExceeded):
            session.write("b.img", rand(2_000, 9))
        assert session.state == "open"
        session.commit()
        assert fsck_ok(registry.view("bob"))
        assert list(latest_files(registry.view("bob"))) == ["a.img"]


class TestLoopSideAdmission:
    """The server-facing split: ``admit()`` runs on the event loop and
    returns the back-pressure delay; ``write(preadmitted=True)`` then
    skips admission on the pool thread.  Regression for the fleet
    starvation bug — a throttled session must never sleep (or wait)
    while holding a pool thread."""

    def test_admit_returns_delay_without_sleeping(self, registry):
        tenant = registry.register("alice", rate_bytes=1000.0, burst_bytes=1000.0)
        slept = []
        session = DedupSession(
            tenant, config=CFG, max_rate_delay=10.0, sleep=slept.append
        ).open()
        delay = session.admit(3000)  # 2000-token debt at 1000 B/s
        assert delay == pytest.approx(2.0)
        assert slept == []  # the caller owns the sleep now
        session.write("a", b"x" * 3000, preadmitted=True)
        assert slept == []  # and no second reservation happened
        session.commit()

    def test_admit_refuses_past_max_delay_and_refunds(self, registry):
        tenant = registry.register("bob", rate_bytes=100.0, burst_bytes=100.0)
        session = DedupSession(tenant, config=CFG, max_rate_delay=0.05).open()
        with pytest.raises(RateLimited):
            session.admit(50_000)
        # Tokens were given back: a payable reservation still succeeds.
        assert session.admit(50) == pytest.approx(0.0, abs=0.6)
        session.abort()

    def test_open_locked_takes_ownership_of_preacquired_lock(self, registry):
        tenant = registry.register("carol")
        tenant.lock.acquire()
        session = DedupSession(tenant, config=CFG).open(locked=True)
        assert tenant.lock.locked()
        session.write("a", b"x" * 2000)
        session.commit()
        assert not tenant.lock.locked()

    def test_open_locked_releases_on_failure(self, registry):
        tenant = registry.register("dave")
        tenant.lock.acquire()
        with pytest.raises(ValueError, match="unknown algorithm"):
            DedupSession(tenant, algorithm="nope", config=CFG).open(locked=True)
        assert not tenant.lock.locked()


class TestRateLimit:
    def test_backpressure_sleeps_then_finishes_identical(self, registry):
        """A rate-limited session is slowed, not corrupted: writes sleep
        for the bucket's delay and every restore is still byte-identical."""
        tenant = registry.register("carol", rate_bytes=1e9, burst_bytes=10_000.0)
        sleeps = []
        session = DedupSession(
            tenant, config=CFG, max_rate_delay=60.0, sleep=sleeps.append
        )
        blobs = {f"f{i}.img": rand(30_000, 10 + i) for i in range(3)}
        with session:
            for path, blob in blobs.items():
                session.write(path, blob)
        assert sleeps and all(d > 0 for d in sleeps)
        view = registry.view("carol")
        for path, blob in blobs.items():
            assert restore_file(view, path) == blob

    def test_rejection_past_max_delay(self, registry):
        tenant = registry.register("carol", rate_bytes=10.0, burst_bytes=10.0)
        session = DedupSession(
            tenant, config=CFG, max_rate_delay=0.5, sleep=lambda _d: None
        )
        session.open()
        with pytest.raises(RateLimited) as exc_info:
            session.write("big.img", rand(20_000, 14))
        assert exc_info.value.retry_after > 0.5
        # Refusal happened before any byte moved: session still open,
        # and the refunded tokens let a small write through.
        assert session.state == "open"
        tenant.bucket.cancel(-tenant.bucket.tokens)  # drain test debt
        session.abort()
