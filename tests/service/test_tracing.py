"""Cross-process trace propagation through the dedup service.

A real server with ``trace_dir`` set, driven by a traced
:class:`ServiceClient` — then the client-side and server-side JSONL
traces are merged and the stitched tree is checked end to end: one
trace id, the server session hanging off the client root, ingest
spans under the session, wait-time attributed separately from work.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.core import DedupConfig
from repro.obs import (
    HeartbeatEvent,
    InMemorySink,
    Telemetry,
    load_trace,
    merge_traces,
    summarize,
)
from repro.obs.traceview import WAIT_PREFIX
from repro.service import DedupServer, ServiceClient
from repro.storage import DirectoryBackend

CFG = DedupConfig(ecs=1024, sd=8, bloom_bytes=1 << 18)


def rand(n, seed):
    return np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8).tobytes()


class TracedHarness:
    """A DedupServer with tracing enabled, on a background loop thread."""

    def __init__(self, tmp_path, **kwargs):
        self.trace_dir = tmp_path / "traces"
        kwargs.setdefault("config", CFG)
        kwargs.setdefault("workers", 4)
        kwargs.setdefault("trace_dir", self.trace_dir)
        self.server = DedupServer(DirectoryBackend(tmp_path / "store"), **kwargs)
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert started.wait(10), "server did not start"

    @property
    def port(self):
        return self.server.port

    def client(self, telemetry=None) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.port, telemetry=telemetry)

    def server_spans(self):
        spans = []
        for path in sorted(self.trace_dir.glob("*.jsonl")):
            spans.append(load_trace(path)[0])
        return spans

    def stop(self):
        asyncio.run_coroutine_threadsafe(self.server.stop(), self.loop).result(30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture
def harness(tmp_path):
    h = TracedHarness(tmp_path)
    yield h
    h.stop()


def traced_push(harness, files, tenant="alice", **open_kw):
    """Push files under a client-side trace; returns the client's spans."""
    sink = InMemorySink()
    tel = Telemetry(sinks=[sink], origin="client")
    with harness.client(telemetry=tel) as client:
        client.open(tenant, **open_kw)
        responses = client.push_many(files)
        assert all(r["ok"] for r in responses)
        client.commit()
    tel.close()
    return sink.spans


class TestCrossProcessTrace:
    def test_single_trace_covers_client_server_ingest(self, harness):
        files = [(f"f{i}.img", rand(60_000, i)) for i in range(3)]
        client_spans = traced_push(harness, files)

        server_traces = harness.server_spans()
        assert len(server_traces) == 1, "expected one session trace file"
        merged = merge_traces([client_spans] + server_traces)

        # One trace id spans both processes.
        trace_ids = {ev.trace_id for ev in merged if ev.trace_id}
        assert len(trace_ids) == 1

        # One root: the client's push span; the server session hangs
        # off it after remote-parent stitching.
        by_id = {ev.span_id: ev for ev in merged}
        roots = [ev for ev in merged if ev.parent not in by_id]
        assert [r.name for r in roots] == ["client.push"]
        session = next(ev for ev in merged if ev.name == "session")
        assert session.parent == roots[0].span_id
        assert session.origin.startswith("server ")

        # Ingest batch spans are inside the session subtree.
        names = {ev.name for ev in merged}
        assert {"file", "chunk", "dedup", "end_file", "commit"} <= names
        file_spans = [ev for ev in merged if ev.name == "file"]
        assert len(file_spans) == len(files)

        # Acceptance: the merged spans' self-times cover >= 95% of the
        # client-observed wall time.  (Pipelining lets queue/rate waits
        # overlap ingest work, so coverage may legitimately exceed 1.)
        summary = summarize(merged)
        assert summary.coverage >= 0.95

    def test_wait_time_attributed_separately(self, tmp_path):
        # Rate-limit hard enough that the second/third put must sleep
        # on the token bucket; those sleeps surface as wait.rate spans.
        harness = TracedHarness(
            tmp_path, default_rate_bytes=2_000_000.0, default_burst_bytes=100_000.0
        )
        try:
            files = [(f"f{i}.img", rand(150_000, 40 + i)) for i in range(3)]
            client_spans = traced_push(harness, files)
            merged = merge_traces([client_spans] + harness.server_spans())
        finally:
            harness.stop()
        waits = [ev for ev in merged if ev.name.startswith(WAIT_PREFIX)]
        assert any(ev.name == "wait.rate" for ev in waits)
        summary = summarize(merged)
        # 450 KB at 2 MB/s with a 100 KB burst: >= 0.15 s of pure wait.
        assert summary.wait_s >= 0.15
        assert summary.work_s > 0.0
        assert summary.wait_s + summary.work_s == pytest.approx(summary.covered_s)
        # The wait rows are attributed to the session, not to work
        # stages: removing them leaves the work stages untouched.
        work_names = {ev.name for ev in merged} - {ev.name for ev in waits}
        assert "chunk" in work_names

    def test_open_response_returns_trace_id(self, harness):
        sink = InMemorySink()
        tel = Telemetry(sinks=[sink], origin="client")
        with harness.client(telemetry=tel) as client:
            opened = client.open("alice")
            assert opened["trace_id"] == tel.trace_id
            client.put("a.img", rand(10_000, 7))
            client.commit()
        tel.close()

    def test_untraced_client_still_served(self, harness):
        # Old clients send no trace fields; the server opens its own
        # root trace (no remote parent) and everything still works.
        with harness.client() as client:
            client.open("alice")
            client.put("a.img", rand(10_000, 8))
            client.commit()
        (spans,) = harness.server_spans()
        session = next(ev for ev in spans if ev.name == "session")
        assert "remote_parent" not in session.attrs
        by_id = {ev.span_id for ev in spans}
        assert session.parent not in by_id

    def test_aborted_session_trace_is_closed(self, harness):
        sink = InMemorySink()
        tel = Telemetry(sinks=[sink], origin="client")
        with harness.client(telemetry=tel) as client:
            client.open("alice")
            client.put("a.img", rand(10_000, 9))
            client.abort()
        tel.close()
        (spans,) = harness.server_spans()
        session = next(ev for ev in spans if ev.name == "session")
        assert session.attrs["outcome"] == "aborted"
        client_root = next(ev for ev in sink.spans if ev.name == "client.push")
        assert client_root.attrs["outcome"] == "aborted"

    def test_two_sessions_get_distinct_trace_files_and_ids(self, harness):
        for i, tenant in enumerate(("alice", "bob")):
            traced_push(harness, [("x.img", rand(20_000, 50 + i))], tenant=tenant)
        traces = harness.server_spans()
        assert len(traces) == 2
        ids = {ev.trace_id for spans in traces for ev in spans}
        assert len(ids) == 2


class TestHeartbeatFields:
    def test_heartbeat_carries_tenant_and_active_sessions(self):
        beats = []
        tel = Telemetry(
            heartbeat=beats.append,
            tenant="alice",
            active_sessions=lambda: 3,
        )
        tel.heartbeat_tick(
            files=10_000, input_bytes=1 << 30, unique_bytes=1 << 29, duplicate_bytes=0
        )
        assert beats, "heartbeat should fire on a huge first tick"
        beat = beats[0]
        assert beat.tenant == "alice"
        assert beat.active_sessions == 3

    def test_heartbeat_defaults_outside_the_service(self):
        event = HeartbeatEvent(files=1, input_bytes=2, unique_bytes=2, duplicate_bytes=0)
        assert event.tenant == ""
        assert event.active_sessions == 0

    def test_server_active_sessions_counts_open_sessions(self, harness):
        registry = harness.server.registry
        assert registry.active_sessions() == 0
        sink = InMemorySink()
        tel = Telemetry(sinks=[sink], origin="client")
        with harness.client(telemetry=tel) as client:
            client.open("alice")
            assert registry.active_sessions() == 1
            client.put("a.img", rand(10_000, 11))
            client.commit()
            assert registry.active_sessions() == 0
        tel.close()
