"""TenantRegistry: views, discovery, returning-tenant accounting."""

import pytest

from repro.core import DedupConfig
from repro.registry import resolve
from repro.service import TenantQuota, TenantRegistry, tenant_namespace_prefix
from repro.service.tenancy import validate_tenant_id
from repro.storage import DirectoryBackend, MemoryBackend
from repro.workloads import BackupFile

CFG = DedupConfig(ecs=1024, sd=8, bloom_bytes=1 << 18)


class TestTenantIds:
    @pytest.mark.parametrize("tid", ["alice", "a", "pc-01", "x_y", "0" * 64])
    def test_valid(self, tid):
        assert validate_tenant_id(tid) == tid

    @pytest.mark.parametrize(
        "tid", ["", "Alice", "a/b", "a.b", "-lead", "x" * 65, "a b"]
    )
    def test_invalid(self, tid):
        with pytest.raises(ValueError):
            validate_tenant_id(tid)

    def test_prefix_shape(self):
        assert tenant_namespace_prefix("alice") == "tenant.alice."


class TestTenantRegistry:
    def test_register_is_idempotent_for_same_or_absent_limits(self):
        reg = TenantRegistry(MemoryBackend())
        t1 = reg.register("alice", quota=TenantQuota(max_bytes=100))
        assert reg.register("alice") is t1  # no args: plain fetch
        assert reg.register("alice", quota=TenantQuota(max_bytes=100)) is t1
        assert t1.ledger.quota.max_bytes == 100

    def test_register_rejects_conflicting_limits(self):
        """Limits are first-registration-sticky — a later register with
        *different* explicit limits must fail loudly, not silently keep
        the old ones (operators would believe the change took)."""
        reg = TenantRegistry(MemoryBackend())
        reg.register("alice", quota=TenantQuota(max_bytes=100), rate_bytes=50.0)
        with pytest.raises(ValueError, match="first-registration-sticky"):
            reg.register("alice", quota=TenantQuota(max_bytes=999))
        with pytest.raises(ValueError, match="rate_bytes"):
            reg.register("alice", rate_bytes=75.0)
        # Matching limits still fetch fine.
        t = reg.register("alice", quota=TenantQuota(max_bytes=100), rate_bytes=50.0)
        assert t.ledger.quota.max_bytes == 100

    def test_rejects_bad_ids(self):
        reg = TenantRegistry(MemoryBackend())
        with pytest.raises(ValueError):
            reg.register("No/Good")

    def test_get_unknown_raises(self):
        reg = TenantRegistry(MemoryBackend())
        with pytest.raises(KeyError):
            reg.get("ghost")

    def test_views_are_physically_prefixed(self):
        backend = MemoryBackend()
        reg = TenantRegistry(backend)
        view = reg.view("alice")
        view.put("chunk", b"k" * 20, b"data")
        assert backend.namespaces() == ["tenant.alice.chunk"]
        assert reg.view("bob").namespaces() == []

    def test_discover_finds_unregistered_tenants(self, tmp_path):
        backend = DirectoryBackend(tmp_path / "s")
        reg = TenantRegistry(backend)
        reg.view("carol").put("chunk", b"k" * 20, b"x")
        reg.view("dave").put("hook", b"h" * 20, b"y")
        reg.register("erin")
        assert reg.discover() == ["carol", "dave", "erin"]
        assert reg.registered() == ["erin"]

    def test_returning_tenant_ledger_starts_from_stored_bytes(self, tmp_path):
        """A service restart must not grant a full quota reset."""
        backend = DirectoryBackend(tmp_path / "s")
        reg = TenantRegistry(backend)
        dedup = resolve("bf-mhd")(CFG, backend=reg.view("alice"))
        dedup.process([BackupFile("g000000/a.img", b"\x07" * 50_000)])

        fresh = TenantRegistry(backend)  # simulated restart
        tenant = fresh.register("alice")
        assert tenant.ledger.bytes_used > 0
        assert tenant.ledger.files_used == 1

    def test_metrics_by_tenant_sorted(self):
        reg = TenantRegistry(MemoryBackend())
        reg.register("zeta")
        reg.register("alpha")
        assert [tid for tid, _ in reg.metrics_by_tenant()] == ["alpha", "zeta"]


class TestTenantMetricsThreadSafety:
    """Tenant metrics are shared between session lane threads and the
    event loop's /metrics renderer; the locked helpers must not lose
    updates or serve torn snapshots."""

    def test_concurrent_incs_and_snapshots_lose_nothing(self):
        import sys
        import threading

        reg = TenantRegistry(MemoryBackend())
        tenant = reg.register("alice")
        n_threads, n_incs = 8, 2000
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)  # force frequent preemption
        try:
            stop = threading.Event()

            def snapshotter():
                while not stop.is_set():
                    snap = tenant.metrics_snapshot()
                    # Each writer bumps "a" by 3 before "b" by 1, so any
                    # consistent snapshot has a >= 3*b.
                    if "a" in snap and "b" in snap:
                        assert snap.counter("a").value >= 3 * snap.counter("b").value

            def incrementer():
                for _ in range(n_incs):
                    tenant.inc_metric("a", 3)
                    tenant.inc_metric("b", 1)

            reader = threading.Thread(target=snapshotter)
            reader.start()
            writers = [
                threading.Thread(target=incrementer) for _ in range(n_threads)
            ]
            for w in writers:
                w.start()
            for w in writers:
                w.join(timeout=60)
            stop.set()
            reader.join(timeout=60)
        finally:
            sys.setswitchinterval(old_interval)
        final = tenant.metrics_snapshot()
        assert final.counter("a").value == n_threads * n_incs * 3
        assert final.counter("b").value == n_threads * n_incs
