"""TenantRegistry: views, discovery, returning-tenant accounting."""

import pytest

from repro.core import DedupConfig
from repro.registry import resolve
from repro.service import TenantQuota, TenantRegistry, tenant_namespace_prefix
from repro.service.tenancy import validate_tenant_id
from repro.storage import DirectoryBackend, MemoryBackend
from repro.workloads import BackupFile

CFG = DedupConfig(ecs=1024, sd=8, bloom_bytes=1 << 18)


class TestTenantIds:
    @pytest.mark.parametrize("tid", ["alice", "a", "pc-01", "x_y", "0" * 64])
    def test_valid(self, tid):
        assert validate_tenant_id(tid) == tid

    @pytest.mark.parametrize(
        "tid", ["", "Alice", "a/b", "a.b", "-lead", "x" * 65, "a b"]
    )
    def test_invalid(self, tid):
        with pytest.raises(ValueError):
            validate_tenant_id(tid)

    def test_prefix_shape(self):
        assert tenant_namespace_prefix("alice") == "tenant.alice."


class TestTenantRegistry:
    def test_register_is_idempotent(self):
        reg = TenantRegistry(MemoryBackend())
        t1 = reg.register("alice", quota=TenantQuota(max_bytes=100))
        t2 = reg.register("alice", quota=TenantQuota(max_bytes=999))
        assert t1 is t2
        assert t1.ledger.quota.max_bytes == 100  # first registration wins

    def test_rejects_bad_ids(self):
        reg = TenantRegistry(MemoryBackend())
        with pytest.raises(ValueError):
            reg.register("No/Good")

    def test_get_unknown_raises(self):
        reg = TenantRegistry(MemoryBackend())
        with pytest.raises(KeyError):
            reg.get("ghost")

    def test_views_are_physically_prefixed(self):
        backend = MemoryBackend()
        reg = TenantRegistry(backend)
        view = reg.view("alice")
        view.put("chunk", b"k" * 20, b"data")
        assert backend.namespaces() == ["tenant.alice.chunk"]
        assert reg.view("bob").namespaces() == []

    def test_discover_finds_unregistered_tenants(self, tmp_path):
        backend = DirectoryBackend(tmp_path / "s")
        reg = TenantRegistry(backend)
        reg.view("carol").put("chunk", b"k" * 20, b"x")
        reg.view("dave").put("hook", b"h" * 20, b"y")
        reg.register("erin")
        assert reg.discover() == ["carol", "dave", "erin"]
        assert reg.registered() == ["erin"]

    def test_returning_tenant_ledger_starts_from_stored_bytes(self, tmp_path):
        """A service restart must not grant a full quota reset."""
        backend = DirectoryBackend(tmp_path / "s")
        reg = TenantRegistry(backend)
        dedup = resolve("bf-mhd")(CFG, backend=reg.view("alice"))
        dedup.process([BackupFile("g000000/a.img", b"\x07" * 50_000)])

        fresh = TenantRegistry(backend)  # simulated restart
        tenant = fresh.register("alice")
        assert tenant.ledger.bytes_used > 0
        assert tenant.ledger.files_used == 1

    def test_metrics_by_tenant_sorted(self):
        reg = TenantRegistry(MemoryBackend())
        reg.register("zeta")
        reg.register("alpha")
        assert [tid for tid, _ in reg.metrics_by_tenant()] == ["alpha", "zeta"]
