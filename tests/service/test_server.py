"""End-to-end tests of the asyncio service front end.

A real :class:`DedupServer` on a loopback port, driven by real
:class:`ServiceClient` sockets — concurrent tenants, incremental
re-pushes, mid-session disconnects, live ``/metrics`` scrapes.
"""

import asyncio
import json
import re
import socket
import threading
import time

import numpy as np
import pytest

from repro.core import DedupConfig
from repro.registry import resolve
from repro.service import (
    DedupServer,
    QuotaExceeded,
    RateLimited,
    ServiceClient,
    ServiceError,
    TenantBusy,
)
from repro.storage import DirectoryBackend

CFG = DedupConfig(ecs=1024, sd=8, bloom_bytes=1 << 18)


def rand(n, seed):
    return np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8).tobytes()


def fsck_ok(view) -> bool:
    dedup = resolve("bf-mhd")(CFG, backend=view)
    dedup.warm_start()
    dedup.process([])
    return dedup.verify_integrity(check_entry_hashes=True).ok


class ServerHarness:
    """A DedupServer on a background event-loop thread."""

    def __init__(self, tmp_path, **kwargs):
        self.backend = DirectoryBackend(tmp_path / "store")
        kwargs.setdefault("config", CFG)
        kwargs.setdefault("workers", 8)
        self.server = DedupServer(self.backend, **kwargs)
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert started.wait(10), "server did not start"

    @property
    def port(self):
        return self.server.port

    def client(self) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.port)

    def stop(self):
        asyncio.run_coroutine_threadsafe(self.server.stop(), self.loop).result(30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture
def harness(tmp_path):
    h = ServerHarness(tmp_path)
    yield h
    h.stop()


class TestBasicProtocol:
    def test_ping(self, harness):
        with harness.client() as client:
            assert client.ping()

    def test_push_commit_restore(self, harness):
        blob = rand(40_000, 1)
        with harness.client() as client:
            opened = client.open("alice")
            assert opened["generation"] == 0
            result = client.put("disk.img", blob)
            assert result["store_id"] == "g000000/disk.img"
            committed = client.commit()
            assert committed["usage"]["bytes_used"] == 40_000
        with harness.client() as client:
            assert client.get("alice", "disk.img") == blob
            assert client.list_files("alice") == {"disk.img": "g000000/disk.img"}

    def test_pipelined_push_many(self, harness):
        files = [(f"f{i}.img", rand(20_000, 10 + i)) for i in range(6)]
        with harness.client() as client:
            client.open("alice")
            responses = client.push_many(files)
            assert all(r["ok"] for r in responses)
            assert [r["store_id"] for r in responses] == [
                f"g000000/{path}" for path, _ in files
            ]
            client.commit()
        with harness.client() as client:
            for path, blob in files:
                assert client.get("alice", path) == blob

    def test_unknown_file_is_not_found(self, harness):
        from repro.service import ServiceError

        with harness.client() as client:
            with pytest.raises(ServiceError):
                client.get("alice", "ghost.img")

    def test_bad_tenant_id_refused(self, harness):
        from repro.service import ServiceError

        with harness.client() as client:
            with pytest.raises((ServiceError, ConnectionError)):
                client.open("No/Good")


class TestConcurrentTenants:
    N_FILES = 4

    def test_two_tenants_push_concurrently_fully_isolated(self, harness):
        """The acceptance criterion: concurrent pushes from two tenants,
        byte-identical per-tenant restores, neither tenant's accounting
        observes the other's bytes."""
        blobs = {
            tid: {f"f{i}.img": rand(25_000, seed * 100 + i) for i in range(self.N_FILES)}
            for seed, tid in enumerate(["alice", "bob"], start=1)
        }
        barrier = threading.Barrier(2)
        errors = []

        def push(tid):
            try:
                with harness.client() as client:
                    client.open(tid)
                    barrier.wait(timeout=10)
                    for path, blob in blobs[tid].items():
                        client.put(path, blob)
                    client.commit()
            except BaseException as e:  # noqa: BLE001 - surfaced below
                errors.append((tid, e))

        threads = [threading.Thread(target=push, args=(t,)) for t in blobs]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors

        expected = self.N_FILES * 25_000
        with harness.client() as client:
            for tid in blobs:
                # Quota accounting saw exactly this tenant's bytes.
                usage = client.usage(tid)
                assert usage["bytes_used"] == expected
                assert usage["files_used"] == self.N_FILES
                for path, blob in blobs[tid].items():
                    assert client.get(tid, path) == blob

        # Physical keyspaces are disjoint prefixes of one store.
        prefixes = {ns.split(".")[1] for ns in harness.backend.namespaces()}
        assert prefixes == {"alice", "bob"}
        for tid in blobs:
            assert fsck_ok(harness.server.registry.view(tid))

    def test_incremental_repush_two_generations(self, harness):
        """Generation 1 re-push of overlapping content pays only the
        delta, for both tenants, and every restore is byte-identical."""
        gen0 = {tid: rand(100_000, seed) for seed, tid in enumerate(["alice", "bob"])}
        # Second generation: first 80k unchanged, tail rewritten.
        gen1 = {
            tid: blob[:80_000] + rand(20_000, 50 + seed)
            for seed, (tid, blob) in enumerate(gen0.items())
        }

        for tid in gen0:
            with harness.client() as client:
                client.open(tid)
                client.put("disk.img", gen0[tid])
                client.commit()
        stored_after_gen0 = sum(
            harness.backend.bytes_stored(ns)
            for ns in harness.backend.namespaces()
            if ns.endswith(".chunk")
        )
        for tid in gen1:
            with harness.client() as client:
                opened = client.open(tid)
                assert opened["generation"] == 1
                client.put("disk.img", gen1[tid])
                client.commit()
        stored_after_gen1 = sum(
            harness.backend.bytes_stored(ns)
            for ns in harness.backend.namespaces()
            if ns.endswith(".chunk")
        )
        # Both tenants re-pushed 100k each but only ~20k changed.
        assert stored_after_gen1 - stored_after_gen0 < 2 * 20_000 * 2.5

        with harness.client() as client:
            for tid, blob in gen1.items():
                assert client.list_files(tid)["disk.img"] == "g000001/disk.img"
                assert client.get(tid, blob and "disk.img") == blob


class TestQuotaAndRateOverTheWire:
    def test_quota_refusal_maps_to_exception(self, tmp_path):
        harness = ServerHarness(tmp_path)
        try:
            with harness.client() as client:
                client.open("alice", max_bytes=10_000)
                with pytest.raises(QuotaExceeded):
                    client.put("big.img", rand(20_000, 3))
                client.put("ok.img", rand(5_000, 4))
                client.commit()
        finally:
            harness.stop()

    def test_rate_limit_refusal_carries_retry_after(self, tmp_path):
        harness = ServerHarness(tmp_path, max_rate_delay=0.05)
        try:
            with harness.client() as client:
                client.open("alice", rate_bytes=100.0)
                with pytest.raises(RateLimited) as exc_info:
                    client.put("big.img", rand(50_000, 5))
                assert exc_info.value.retry_after > 0.05
        finally:
            harness.stop()


class TestPoolStarvation:
    """Regressions for the fleet-starvation deadlock: nothing may wait
    (for the tenant lock, or a rate-limit sleep) while holding a pool
    thread."""

    def test_concurrent_opens_of_busy_tenant_do_not_starve_the_pool(self, tmp_path):
        """More queued opens than worker threads used to occupy the whole
        pool waiting for alice's lock, so the lock holder's own writes
        and commit could never run — a permanent service-wide deadlock."""
        harness = ServerHarness(tmp_path, workers=2, open_wait=30.0)
        try:
            holder = harness.client()
            holder.open("alice")
            waiters = [harness.client() for _ in range(4)]
            for w in waiters:
                w._send({"op": "open", "tenant": "alice"})  # don't read yet
            time.sleep(0.3)  # let every open reach the server and park
            blob = rand(20_000, 11)
            holder.put("disk.img", blob)  # needs a pool thread
            holder.commit()  # hung forever before the fix
            holder.close()

            # Liveness: every parked waiter wins the lock in turn.
            def drain(w):
                assert w._recv()["ok"]  # blocks until this waiter's open
                w._send({"op": "abort"})
                w._recv()
                w.close()

            threads = [threading.Thread(target=drain, args=(w,)) for w in waiters]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not any(t.is_alive() for t in threads)
            with harness.client() as client:
                assert client.get("alice", "disk.img") == blob
        finally:
            harness.stop()

    def test_open_past_open_wait_is_refused_busy(self, tmp_path):
        harness = ServerHarness(tmp_path, open_wait=0.1)
        try:
            holder = harness.client()
            holder.open("alice")
            with harness.client() as client:
                with pytest.raises(TenantBusy) as exc_info:
                    client.open("alice")
                assert exc_info.value.retry_after > 0
            holder.abort()  # the refusal disturbed nothing
            holder.close()
        finally:
            harness.stop()

    def test_rate_limit_sleep_does_not_hold_the_only_worker(self, tmp_path):
        """Alice's 2 s back-pressure sleep happens on the event loop, so
        bob's whole session fits through a single-thread pool meanwhile."""
        harness = ServerHarness(tmp_path, workers=1, max_rate_delay=5.0)
        try:
            slow = harness.client()
            # burst == rate == 20 kB/s; a 60 kB put owes 2 s of debt.
            slow.open("alice", rate_bytes=20_000.0)
            blob = rand(60_000, 21)
            slow_thread = threading.Thread(target=slow.put, args=("slow.img", blob))
            slow_thread.start()
            time.sleep(0.2)  # alice is now sleeping out her delay
            start = time.monotonic()
            with harness.client() as fast:
                fast.open("bob")
                fast.put("fast.img", rand(20_000, 22))
                fast.commit()
            assert time.monotonic() - start < 1.5, (
                "bob waited out alice's rate-limit sleep: a fleet thread "
                "was held during back-pressure"
            )
            slow_thread.join(timeout=30)
            assert not slow_thread.is_alive()
            slow.commit()
            slow.close()
            # Throttled, but still byte-identical.
            with harness.client() as client:
                assert client.get("alice", "slow.img") == blob
        finally:
            harness.stop()


class TestBadInputsAnswered:
    """Plausible bad inputs must be answered with a machine-readable
    refusal, never a silent connection drop (regressions for the
    uncaught-exception paths)."""

    def test_unknown_algorithm(self, harness):
        with harness.client() as client:
            with pytest.raises(ServiceError) as exc_info:
                client.open("alice", algorithm="nope")
            assert exc_info.value.code == "bad_request"

    def test_non_numeric_quota(self, harness):
        with harness.client() as client:
            client._send({"op": "open", "tenant": "alice", "max_bytes": "lots"})
            response = client._recv()
            assert response["ok"] is False
            assert response["error"] == "bad_request"

    def test_non_numeric_rate(self, harness):
        with harness.client() as client:
            client._send({"op": "open", "tenant": "alice", "rate_bytes": "fast"})
            assert client._recv()["error"] == "bad_request"

    @pytest.mark.parametrize(
        "request_obj",
        [
            {"op": "list", "tenant": "No/Good"},
            {"op": "get", "tenant": "../../etc", "path": "x"},
            {"op": "usage", "tenant": "UPPER"},
        ],
    )
    def test_bad_tenant_id_in_sessionless_ops(self, harness, request_obj):
        with harness.client() as client:
            client._send(request_obj)
            response = client._recv()
            assert response["ok"] is False
            assert response["error"] == "bad_request"

    def test_overlong_first_line(self, harness):
        sock = socket.create_connection(("127.0.0.1", harness.port), timeout=10)
        rfile = sock.makefile("rb")
        sock.sendall(b'{"op":"ping","pad":"' + b"x" * (1 << 17) + b'"}\n')
        response = json.loads(rfile.readline())
        assert response["ok"] is False
        assert response["error"] == "bad_request"
        rfile.close()
        sock.close()

    def test_overlong_line_mid_protocol(self, harness):
        with harness.client() as client:
            assert client.ping()
            client._send({"op": "ping", "pad": "x" * (1 << 17)})
            assert client._recv()["error"] == "bad_request"

    def test_conflicting_relimit_refused_over_the_wire(self, harness):
        with harness.client() as client:
            client.open("alice", max_bytes=10_000)
            client.abort()
        with harness.client() as client:
            with pytest.raises(ServiceError) as exc_info:
                client.open("alice", max_bytes=99_999)
            assert exc_info.value.code == "bad_request"
            assert "first-registration-sticky" in str(exc_info.value)


class TestDisconnect:
    def test_midsession_disconnect_aborts_and_store_stays_clean(self, harness):
        committed = rand(30_000, 6)
        with harness.client() as client:
            client.open("alice")
            client.put("ok.img", committed)
            client.commit()

        # A raw socket: open a session, send half a payload, vanish.
        sock = socket.create_connection(("127.0.0.1", harness.port), timeout=10)
        rfile = sock.makefile("rb")
        sock.sendall(json.dumps({"op": "open", "tenant": "alice"}).encode() + b"\n")
        assert json.loads(rfile.readline())["ok"]
        sock.sendall(
            json.dumps({"op": "put", "path": "torn.img", "size": 50_000}).encode()
            + b"\n"
        )
        sock.sendall(rand(20_000, 7))  # 30k short of the declared size
        rfile.close()
        sock.shutdown(socket.SHUT_RDWR)  # actually hang up (FIN), then free
        sock.close()

        # Opening a new session synchronises with the server-side abort:
        # the tenant lock is only released once cleanup has repaired the
        # keyspace.
        with harness.client() as client:
            opened = client.open("alice")
            assert opened["ok"]
            client.abort()

        view = harness.server.registry.view("alice")
        assert fsck_ok(view)
        with harness.client() as client:
            assert client.get("alice", "ok.img") == committed
            assert "torn.img" not in client.list_files("alice")


_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.e+-]+(e[+-][0-9]+)?$|^# TYPE \S+ (counter|gauge|histogram)$"
)


def http_get(port: int, path: str) -> tuple[int, str]:
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    sock.sendall(f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode())
    data = b""
    while True:
        part = sock.recv(65536)
        if not part:
            break
        data += part
    sock.close()
    head, _, body = data.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, body.decode()


class TestMetricsEndpoint:
    def test_healthz(self, harness):
        status, body = http_get(harness.port, "/healthz")
        assert status == 200 and body == "ok\n"

    def test_unknown_path_404(self, harness):
        status, _body = http_get(harness.port, "/nope")
        assert status == 404

    def test_metrics_are_valid_and_tenant_labeled(self, harness):
        for tid, seed in (("alice", 1), ("bob", 2)):
            with harness.client() as client:
                client.open(tid)
                client.put("disk.img", rand(30_000, seed))
                client.commit()
        status, body = http_get(harness.port, "/metrics")
        assert status == 200

        typed = set()
        for line in body.splitlines():
            assert _SAMPLE_RE.match(line), f"invalid exposition line: {line!r}"
            if line.startswith("# TYPE"):
                name = line.split()[2]
                assert name not in typed, f"duplicate TYPE for {name}"
                typed.add(name)
        assert 'tenant="alice"' in body and 'tenant="bob"' in body
        # Session counters and merged dedup-run metrics both present.
        assert re.search(
            r'repro_service_sessions_committed_total\{tenant="alice"\} 1', body
        )
        assert re.search(
            r'repro_service_ingest_bytes_total\{tenant="bob"\} 30000', body
        )
