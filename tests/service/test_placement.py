"""Tenant placement on the cluster ring: stability and coverage."""

import pytest

from repro.cluster import HashRing
from repro.service import TenantRegistry, partitions, placement_of, tenant_node
from repro.storage import MemoryBackend

TENANTS = [f"tenant-{i:02d}" for i in range(24)]


class TestTenantNode:
    def test_deterministic_across_rings(self):
        a = HashRing(["w0", "w1", "w2"])
        b = HashRing(["w2", "w1", "w0"])
        for tid in TENANTS:
            assert tenant_node(a, tid) == tenant_node(b, tid)

    def test_validates_tenant_id(self):
        ring = HashRing(["w0"])
        with pytest.raises(ValueError):
            tenant_node(ring, "Not Valid!")

    def test_domain_separated_from_raw_labels(self):
        """Tenant keys are tagged so they can't collide with segment
        fingerprints routed on the same ring."""
        ring = HashRing(["w0", "w1", "w2", "w3", "w4"])
        same = [tid for tid in TENANTS if tenant_node(ring, tid) == ring.route_label(tid)]
        assert len(same) < len(TENANTS)  # tagging actually changes positions


class TestPartitions:
    def test_covers_every_node(self):
        ring = HashRing(["w0", "w1", "w2"])
        parts = partitions(ring, TENANTS)
        assert set(parts) == {"w0", "w1", "w2"}
        placed = [t for bucket in parts.values() for t in bucket]
        assert sorted(placed) == sorted(TENANTS)
        for bucket in parts.values():
            assert bucket == sorted(bucket)

    def test_empty_tenants_still_lists_nodes(self):
        ring = HashRing(["w0", "w1"])
        assert partitions(ring, []) == {"w0": [], "w1": []}

    def test_stable_under_growth(self):
        """Joining a worker only reassigns tenants onto the joiner —
        no tenant moves between two surviving workers."""
        ring = HashRing(["w0", "w1", "w2"])
        before = {tid: tenant_node(ring, tid) for tid in TENANTS}
        ring.add_node("w3")
        for tid in TENANTS:
            after = tenant_node(ring, tid)
            if after != before[tid]:
                assert after == "w3"


class TestPlacementOf:
    def test_places_discovered_tenants(self):
        backend = MemoryBackend()
        reg = TenantRegistry(backend)
        for tid in ["alice", "bob", "carol"]:
            reg.register(tid)
        ring = HashRing(["w0", "w1"])
        parts = placement_of(ring, reg)
        placed = sorted(t for bucket in parts.values() for t in bucket)
        assert placed == ["alice", "bob", "carol"]
        # Matches the pure function over the same ids.
        assert parts == partitions(ring, ["alice", "bob", "carol"])
