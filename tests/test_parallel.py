"""Tests for sharded multi-process deduplication and the thread fleet."""

import os
import signal
import threading
import time

import pytest

from repro.core import DedupConfig, MHDDeduplicator
from repro.parallel import (
    FleetExecutor,
    FleetResult,
    SerialLane,
    dedup_sharded,
    shard_by_machine,
)
from repro.workloads import BackupFile, tiny_corpus

CFG = DedupConfig(ecs=1024, sd=8, bloom_bytes=1 << 18)


@pytest.fixture(scope="module")
def files():
    return tiny_corpus().files()


def test_shard_by_machine(files):
    shards = shard_by_machine(files)
    assert set(shards) == {"pc00", "pc01", "pc02"}
    assert sum(len(v) for v in shards.values()) == len(files)
    for shard, shard_files in shards.items():
        assert all(f.file_id.startswith(shard) for f in shard_files)


def test_empty_corpus():
    fleet = dedup_sharded([], config=CFG, workers=1)
    assert fleet.shards == ()
    assert fleet.makespan_seconds == 0.0


def test_unknown_algorithm_fails_fast(files):
    with pytest.raises(ValueError):
        dedup_sharded(files[:5], algo="no-such-algo", config=CFG, workers=1)


def test_inprocess_matches_per_shard_sequential(files):
    """workers=1 must equal running each shard by hand."""
    fleet = dedup_sharded(files, config=CFG, workers=1)
    shards = shard_by_machine(files)
    for result in fleet.shards:
        manual = MHDDeduplicator(CFG).process(shards[result.shard])
        assert result.stats.stored_chunk_bytes == manual.stored_chunk_bytes
        assert result.stats.unique_chunks == manual.unique_chunks


def test_multiprocess_matches_inprocess(files):
    """The pool changes wall time, never results."""
    seq = dedup_sharded(files, config=CFG, workers=1)
    par = dedup_sharded(files, config=CFG, workers=3)
    assert len(seq.shards) == len(par.shards)
    for a, b in zip(seq.shards, par.shards):
        assert a.shard == b.shard
        assert a.stats.stored_chunk_bytes == b.stats.stored_chunk_bytes
        assert a.stats.io.ops == b.stats.io.ops


def test_aggregate_identities(files):
    fleet = dedup_sharded(files, config=CFG, workers=1)
    assert fleet.input_bytes == sum(f.size for f in files)
    assert fleet.data_only_der >= fleet.real_der >= 1.0
    assert fleet.makespan_seconds <= fleet.aggregate_seconds
    assert fleet.speedup >= 1.0


def test_sharding_misses_cross_shard_duplicates(files):
    """The scale-out trade-off: machines share OS content, so a global
    run dedups more than the sharded fleet."""
    fleet = dedup_sharded(files, config=CFG, workers=1)
    global_stats = MHDDeduplicator(CFG).process(files)
    assert fleet.stored_chunk_bytes >= global_stats.stored_chunk_bytes
    assert fleet.data_only_der <= global_stats.data_only_der


def test_custom_shard_function(files):
    """Shard by generation instead of machine."""

    def by_generation(fs):
        shards = {}
        for f in fs:
            shards.setdefault(f.file_id.split("/")[1], []).append(f)
        return shards

    fleet = dedup_sharded(files, config=CFG, workers=1, shard_fn=by_generation)
    assert {s.shard for s in fleet.shards} == {"gen000", "gen001", "gen002"}


def test_single_machine_corpus():
    files = [BackupFile("pc00/gen000/x", b"a" * 10_000)]
    fleet = dedup_sharded(files, config=CFG, workers=4)
    assert len(fleet.shards) == 1


def test_single_shard_speedup_is_one():
    files = [BackupFile("pc00/gen000/x", b"a" * 50_000)]
    fleet = dedup_sharded(files, config=CFG, workers=1)
    assert fleet.speedup == pytest.approx(1.0)


def test_device_model_passed_through(files):
    from repro.analysis import DeviceModel

    slow = dedup_sharded(files[:30], config=CFG, workers=1,
                         device=DeviceModel(seek_s=0.05))
    fast = dedup_sharded(files[:30], config=CFG, workers=1,
                         device=DeviceModel(seek_s=0.001))
    assert slow.makespan_seconds > fast.makespan_seconds


def test_fleet_cpu_and_pipeline_aggregates(files):
    fleet = dedup_sharded(files, config=CFG, workers=1)
    cpu = fleet.cpu
    pipe = fleet.pipeline
    assert cpu.hashed == sum(s.stats.cpu.hashed for s in fleet.shards)
    assert cpu.chunked == sum(s.stats.cpu.chunked for s in fleet.shards)
    assert pipe.batches == sum(s.stats.pipeline.batches for s in fleet.shards)
    assert pipe.peak_buffer_bytes == max(
        s.stats.pipeline.peak_buffer_bytes for s in fleet.shards
    )


def test_fleet_metrics_disabled_by_default(files):
    fleet = dedup_sharded(files, config=CFG, workers=1)
    assert all(s.metrics is None for s in fleet.shards)
    assert len(fleet.metrics()) == 0


def test_fleet_metrics_collected_and_merged(files):
    fleet = dedup_sharded(files, config=CFG, workers=1, collect_metrics=True)
    assert all(s.metrics is not None for s in fleet.shards)
    merged = fleet.metrics()
    assert merged.counter("ingest.files").value == len(files)
    assert merged.counter("ingest.bytes").value == sum(f.size for f in files)
    # The merged registry mirrors the fleet's summed I/O meter.
    total_ops = sum(s.stats.io.count() for s in fleet.shards)
    mirrored = sum(
        m.value
        for name, m in merged.items()
        if name.startswith("disk.") and name.endswith(".ops")
    )
    assert mirrored == total_ops


class TestFleetExecutor:
    def test_lane_preserves_submission_order(self):
        with FleetExecutor(workers=4) as fleet:
            lane = fleet.lane()
            order = []
            futs = [lane.submit(lambda i=i: order.append(i)) for i in range(20)]
            for fut in futs:
                fut.result(timeout=10)
        assert order == list(range(20))

    def test_lane_tasks_never_overlap(self):
        active = 0
        peak = 0
        lock = threading.Lock()

        def task():
            nonlocal active, peak
            with lock:
                active += 1
                peak = max(peak, active)
            time.sleep(0.002)
            with lock:
                active -= 1

        with FleetExecutor(workers=8) as fleet:
            lane = fleet.lane()
            futs = [lane.submit(task) for _ in range(10)]
            for fut in futs:
                fut.result(timeout=10)
        assert peak == 1

    def test_independent_lanes_run_concurrently(self):
        """Two lanes blocked on each other's event can only finish if the
        pool runs them at the same time."""
        a, b = threading.Event(), threading.Event()
        with FleetExecutor(workers=4) as fleet:
            fa = fleet.lane().submit(lambda: (a.set(), b.wait(10))[1])
            fb = fleet.lane().submit(lambda: (b.set(), a.wait(10))[1])
            assert fa.result(timeout=10) and fb.result(timeout=10)

    def test_exceptions_delivered_via_future(self):
        with FleetExecutor(workers=2) as fleet:
            lane = fleet.lane()
            boom = lane.submit(lambda: 1 / 0)
            after = lane.submit(lambda: "survived")
            with pytest.raises(ZeroDivisionError):
                boom.result(timeout=10)
            assert after.result(timeout=10) == "survived"

    def test_lane_idle_after_drain(self):
        with FleetExecutor(workers=2) as fleet:
            lane = fleet.lane()
            lane.submit(lambda: None).result(timeout=10)
            assert lane.depth == 0
            # A drained lane accepts new work (the pump restarts).
            assert lane.submit(lambda: 7).result(timeout=10) == 7

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            FleetExecutor(workers=0)

    def test_submit_after_shutdown_raises_and_strands_nothing(self):
        fleet = FleetExecutor(workers=2)
        lane = fleet.lane()
        assert lane.submit(lambda: 1).result(timeout=10) == 1
        fleet.shutdown()
        with pytest.raises(RuntimeError):
            lane.submit(lambda: 2)
        # The doomed task was drained, not left behind a pump that
        # will never run.
        assert lane.depth == 0

    def test_submit_failure_fails_racing_futures(self):
        """A submit racing the losing pump start gets its future failed,
        not stranded forever behind a pump that never runs."""
        box = {}

        class ClosedPool:
            def submit(self, fn):
                # Emulate a second lane.submit landing between the
                # pump flag being set and the pump start failing: it
                # queues without trying to start a pump of its own.
                box["racer"] = box["lane"].submit(lambda: "never runs")
                raise RuntimeError("cannot schedule new futures after shutdown")

        lane = SerialLane(ClosedPool())
        box["lane"] = lane
        with pytest.raises(RuntimeError):
            lane.submit(lambda: "never runs")
        with pytest.raises(RuntimeError, match="shut down"):
            box["racer"].result(timeout=0)
        assert lane.depth == 0
        # The lane stays usable once a pool accepts work again.
        assert not lane._pumping


def test_thread_executor_matches_process_results(files):
    """executor="thread" is a semantic no-op: same stats, same shards."""
    proc = dedup_sharded(files, config=CFG, workers=3)
    thr = dedup_sharded(files, config=CFG, workers=3, executor="thread")
    assert len(proc.shards) == len(thr.shards)
    for a, b in zip(proc.shards, thr.shards):
        assert a.shard == b.shard
        assert a.stats.stored_chunk_bytes == b.stats.stored_chunk_bytes
        assert a.stats.unique_chunks == b.stats.unique_chunks
        assert a.stats.io.ops == b.stats.io.ops


def test_unknown_executor_fails_fast(files):
    with pytest.raises(ValueError):
        dedup_sharded(files[:5], config=CFG, workers=1, executor="carrier-pigeon")


def test_fleet_metrics_cross_process(files):
    """Shard registries survive the multiprocessing pickle boundary."""
    seq = dedup_sharded(files, config=CFG, workers=1, collect_metrics=True)
    par = dedup_sharded(files, config=CFG, workers=3, collect_metrics=True)
    assert seq.metrics().as_dict() == par.metrics().as_dict()


# -- failure capture and per-shard result streaming ------------------------


class KamikazeDedup(MHDDeduplicator):
    """Test algorithm: SIGKILLs its own process on the pc01 shard."""

    name = "kamikaze"

    def ingest(self, file):
        if "pc01" in file.file_id:
            os.kill(os.getpid(), signal.SIGKILL)
        super().ingest(file)


def _gen0(files):
    return [f for f in files if "/gen000/" in f.file_id]


def test_kill_one_worker_keeps_surviving_shards(files, monkeypatch):
    """An OOM-killed worker costs its shard, not the fleet (the old
    ``pool.map`` path discarded every completed result)."""
    import multiprocessing as mp

    if mp.get_start_method() != "fork":
        pytest.skip("kamikaze registration reaches workers via fork only")
    from repro import registry

    registry.available()  # populate before patching
    monkeypatch.setitem(registry._REGISTRY, "kamikaze", KamikazeDedup)
    fleet = dedup_sharded(
        _gen0(files), algo="kamikaze", config=CFG, workers=3, shard_timeout=5.0
    )
    assert not fleet.ok
    assert {s.shard for s in fleet.shards} == {"pc00", "pc02"}
    assert [f.shard for f in fleet.failures] == ["pc01"]
    assert fleet.failures[0].kind == "lost"
    # Survivors' aggregates still work.
    assert fleet.input_bytes == sum(
        f.size for f in _gen0(files) if "pc01" not in f.file_id
    )


def _broken_reader():
    raise OSError("disk on fire")


def test_worker_exception_reported_not_raised(files):
    """A shard whose source raises is reported on failures; the other
    shards' results survive, in every executor."""
    bad = BackupFile("pc99/gen000/bad", source=_broken_reader, size_hint=10)
    corpus = _gen0(files) + [bad]
    for kwargs in (
        {"workers": 1},
        {"workers": 3, "executor": "thread"},
        {"workers": 3, "executor": "process"},
    ):
        fleet = dedup_sharded(corpus, config=CFG, **kwargs)
        assert not fleet.ok
        assert {s.shard for s in fleet.shards} == {"pc00", "pc01", "pc02"}
        assert [f.shard for f in fleet.failures] == ["pc99"]
        assert fleet.failures[0].kind == "error"
        assert "disk on fire" in fleet.failures[0].error


def test_no_failures_on_happy_path(files):
    fleet = dedup_sharded(_gen0(files), config=CFG, workers=1)
    assert fleet.ok
    assert fleet.failures == ()


# -- speedup property + deprecated callable shim ---------------------------


def test_speedup_is_a_property(files):
    fleet = dedup_sharded(_gen0(files), config=CFG, workers=1)
    assert isinstance(fleet.speedup, float)
    assert fleet.speedup >= 1.0


def test_speedup_legacy_call_form_warns():
    files = [BackupFile("pc00/gen000/x", b"a" * 50_000)]
    fleet = dedup_sharded(files, config=CFG, workers=1)
    with pytest.deprecated_call():
        value = fleet.speedup()
    assert value == pytest.approx(float(fleet.speedup))


# -- edge cases ------------------------------------------------------------


def test_empty_shard_map(files):
    fleet = dedup_sharded(files[:5], config=CFG, workers=1, shard_fn=lambda fs: {})
    assert fleet.shards == ()
    assert fleet.ok
    assert fleet.input_bytes == 0
    assert fleet.makespan_seconds == 0.0


def test_all_executors_produce_identical_stats(files):
    """workers=1, thread pool and process pool are semantically equal."""
    corpus = _gen0(files)
    serial = dedup_sharded(corpus, config=CFG, workers=1)
    thread = dedup_sharded(corpus, config=CFG, workers=3, executor="thread")
    process = dedup_sharded(corpus, config=CFG, workers=3, executor="process")
    for fleet in (thread, process):
        assert len(fleet.shards) == len(serial.shards)
        for a, b in zip(serial.shards, fleet.shards):
            assert a.shard == b.shard
            assert a.stats.stored_chunk_bytes == b.stats.stored_chunk_bytes
            assert a.stats.unique_chunks == b.stats.unique_chunks
            assert a.stats.metadata_bytes == b.stats.metadata_bytes
            assert a.stats.io.ops == b.stats.io.ops


def test_zero_byte_corpus_ders_are_finite():
    corpus = [
        BackupFile("pc00/gen000/empty", b""),
        BackupFile("pc01/gen000/empty", b""),
    ]
    fleet = dedup_sharded(corpus, config=CFG, workers=1)
    assert fleet.input_bytes == 0
    assert fleet.data_only_der == 0.0
    assert fleet.real_der == 0.0
    assert fleet.ok


def test_metrics_degrade_with_partial_collection(files):
    """metrics() over a mixed fleet merges only the shards that
    collected, and never explodes on the ones that did not."""
    corpus = _gen0(files)
    with_metrics = dedup_sharded(corpus, config=CFG, workers=1, collect_metrics=True)
    without = dedup_sharded(corpus, config=CFG, workers=1, collect_metrics=False)
    mixed = FleetResult(shards=(with_metrics.shards[0],) + without.shards[1:])
    merged = mixed.metrics()
    assert merged.counter("ingest.files").value == with_metrics.shards[0].metrics.counter(
        "ingest.files"
    ).value
    assert without.shards[1].metrics is None
