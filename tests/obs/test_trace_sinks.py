"""Tests for span tracing, the JSONL trace format and the Prometheus sink."""

import json

import pytest

from repro.obs import (
    InMemorySink,
    JsonlTraceSink,
    MetricsRegistry,
    NullSink,
    PromTextSink,
    Sink,
    SpanEvent,
    Tracer,
    load_trace,
    prom_text,
    prom_text_multi,
)


class TestTracer:
    def test_nesting_establishes_parentage(self):
        sink = InMemorySink()
        tracer = Tracer([sink.emit_span])
        with tracer.span("run") as run:
            with tracer.span("file") as f:
                with tracer.span("hash"):
                    pass
        names = [e.name for e in sink.spans]
        assert names == ["hash", "file", "run"]  # innermost closes first
        hash_ev, file_ev, run_ev = sink.spans
        assert run_ev.parent == -1
        assert file_ev.parent == run_ev.span_id
        assert hash_ev.parent == file_ev.span_id
        assert run.span_id == run_ev.span_id and f.span_id == file_ev.span_id

    def test_span_ids_unique_and_durations_nest(self):
        sink = InMemorySink()
        tracer = Tracer([sink.emit_span])
        with tracer.span("outer"):
            for _ in range(3):
                with tracer.span("inner"):
                    pass
        ids = [e.span_id for e in sink.spans]
        assert len(set(ids)) == len(ids)
        outer = next(e for e in sink.spans if e.name == "outer")
        inner_total = sum(e.duration for e in sink.spans if e.name == "inner")
        assert outer.duration >= inner_total

    def test_io_probe_deltas_attached(self):
        state = {"ops": 0, "bytes": 0}
        sink = InMemorySink()
        tracer = Tracer([sink.emit_span], io_probe=lambda: (state["ops"], state["bytes"]))
        with tracer.span("store"):
            state["ops"] += 5
            state["bytes"] += 4096
        (ev,) = sink.spans
        assert ev.attrs["io_ops"] == 5
        assert ev.attrs["io_bytes"] == 4096

    def test_attrs_survive_with_set_attr(self):
        sink = InMemorySink()
        tracer = Tracer([sink.emit_span])
        with tracer.span("file", {"file_id": "a"}) as sp:
            sp.set_attr("size", 10)
        (ev,) = sink.spans
        assert ev.attrs["file_id"] == "a" and ev.attrs["size"] == 10


class TestSpanEvent:
    def test_dict_round_trip(self):
        ev = SpanEvent("hash", 3, 1, 0.5, 0.25, {"chunks": 7})
        assert SpanEvent.from_dict(ev.as_dict()) == ev


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlTraceSink(path)
        events = [
            SpanEvent("run", 1, -1, 0.0, 1.0, {}),
            SpanEvent("file", 2, 1, 0.1, 0.5, {"io_ops": 3}),
        ]
        for ev in events:
            sink.emit_span(ev)
        reg = MetricsRegistry()
        reg.counter("ingest.files").inc(2)
        sink.emit_metrics(reg)
        sink.close()

        spans, metrics = load_trace(path)
        assert spans == events
        assert metrics == {"ingest.files": 2}

    def test_every_line_is_complete_json(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlTraceSink(path)
        sink.emit_span(SpanEvent("run", 1, -1, 0.0, 1.0, {}))
        sink.close()
        for line in open(path, encoding="utf-8"):
            assert json.loads(line)["type"] == "span"

    def test_write_after_close_raises(self, tmp_path):
        sink = JsonlTraceSink(str(tmp_path / "t.jsonl"))
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(ValueError):
            sink.emit_span(SpanEvent("run", 1, -1, 0.0, 1.0, {}))

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(ValueError):
            load_trace(str(bad))

    def test_load_rejects_unknown_record_type(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type":"mystery"}\n')
        with pytest.raises(ValueError):
            load_trace(str(bad))

    def test_load_skips_blank_lines_and_empty_metrics(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text("\n")
        spans, metrics = load_trace(str(p))
        assert spans == [] and metrics == {}


class TestPromExposition:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("ingest.files").inc(3)
        reg.gauge("ram.peak_bytes").set(1024.0)
        h = reg.histogram("chunk.size_bytes", [64.0, 128.0])
        h.observe_many([32.0, 100.0, 999.0])
        return reg

    def test_text_format_is_valid(self):
        text = prom_text(self._registry())
        lines = text.splitlines()
        assert text.endswith("\n")
        # Every line is a TYPE comment or a sample.
        for line in lines:
            assert line.startswith("# TYPE ") or line.startswith("repro_"), line
        assert "# TYPE repro_ingest_files_total counter" in lines
        assert "repro_ingest_files_total 3" in lines
        assert "repro_ram_peak_bytes 1024" in lines

    def test_histogram_buckets_are_cumulative_and_monotone(self):
        text = prom_text(self._registry())
        buckets = {}
        for line in text.splitlines():
            if line.startswith("repro_chunk_size_bytes_bucket"):
                le = line.split('le="')[1].split('"')[0]
                buckets[le] = int(line.rsplit(" ", 1)[1])
        assert buckets == {"64": 1, "128": 2, "+Inf": 3}
        assert "repro_chunk_size_bytes_count 3" in text
        assert "repro_chunk_size_bytes_sum 1131" in text

    def test_empty_registry_renders_empty(self):
        assert prom_text(MetricsRegistry()) == ""

    def test_prom_sink_writes_at_close(self, tmp_path):
        path = str(tmp_path / "m.prom")
        sink = PromTextSink(path)
        sink.emit_span(SpanEvent("run", 1, -1, 0.0, 1.0, {}))  # ignored
        sink.emit_metrics(self._registry())
        sink.close()
        content = open(path, encoding="utf-8").read()
        assert "repro_ingest_files_total 3" in content

    def test_prom_sink_without_metrics_writes_empty_file(self, tmp_path):
        path = str(tmp_path / "m.prom")
        sink = PromTextSink(path)
        sink.close()
        assert open(path, encoding="utf-8").read() == ""


class TestPromMulti:
    def _tenant(self, n: int) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("ingest.bytes").inc(n)
        return reg

    def test_type_line_appears_once_per_metric(self):
        text = prom_text_multi(
            [({"tenant": "alice"}, self._tenant(10)), ({"tenant": "bob"}, self._tenant(20))]
        )
        lines = text.splitlines()
        assert lines.count("# TYPE repro_ingest_bytes_total counter") == 1
        assert 'repro_ingest_bytes_total{tenant="alice"} 10' in lines
        assert 'repro_ingest_bytes_total{tenant="bob"} 20' in lines

    def test_unlabeled_group_renders_bare_samples(self):
        reg = MetricsRegistry()
        reg.gauge("sessions.active").set(2.0)
        text = prom_text_multi([({}, reg)])
        assert "repro_sessions_active 2" in text.splitlines()

    def test_histograms_carry_labels_and_le(self):
        reg = MetricsRegistry()
        reg.histogram("lat", [1.0]).observe_many([0.5, 3.0])
        text = prom_text_multi([({"tenant": "t"}, reg)])
        assert 'repro_lat_bucket{le="1",tenant="t"} 1' in text
        assert 'repro_lat_bucket{le="+Inf",tenant="t"} 2' in text
        assert 'repro_lat_count{tenant="t"} 2' in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(1)
        text = prom_text_multi([({"tenant": 'a"b\\c\nd'}, reg)])
        assert 'repro_c_total{tenant="a\\"b\\\\c\\nd"} 1' in text

    def test_kind_conflict_across_groups_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x")
        b.gauge("x")
        with pytest.raises(ValueError):
            prom_text_multi([({"g": "1"}, a), ({"g": "2"}, b)])

    def test_empty_groups_render_empty(self):
        assert prom_text_multi([]) == ""
        assert prom_text_multi([({}, MetricsRegistry())]) == ""


def test_all_sinks_satisfy_protocol():
    assert isinstance(NullSink(), Sink)
    assert isinstance(InMemorySink(), Sink)
    assert isinstance(PromTextSink("unused"), Sink)
