"""Tests for the Telemetry facade and the instrumented dedup pipeline."""

import pytest

from repro.core import DedupConfig, MHDDeduplicator
from repro.obs import (
    NULL_SPAN,
    NULL_TELEMETRY,
    HeartbeatEvent,
    InMemorySink,
    Telemetry,
    note_anomaly,
    runtime_anomalies,
    summarize,
)
from repro.workloads import tiny_corpus

CFG = DedupConfig(ecs=1024, sd=8, bloom_bytes=1 << 18)


@pytest.fixture(scope="module")
def files():
    return tiny_corpus().files()


class TestFacade:
    def test_span_without_sinks_is_null(self):
        tel = Telemetry()
        assert tel.enabled and not tel.tracing
        assert tel.span("run") is NULL_SPAN

    def test_span_with_sink_is_live(self):
        sink = InMemorySink()
        tel = Telemetry(sinks=[sink])
        assert tel.tracing
        with tel.span("run", algo="bf-mhd"):
            pass
        (ev,) = sink.spans
        assert ev.name == "run" and ev.attrs["algo"] == "bf-mhd"

    def test_close_delivers_metrics_once_then_closes(self):
        sink = InMemorySink()
        tel = Telemetry(sinks=[sink])
        tel.registry.counter("x").inc()
        tel.close()
        tel.close()  # idempotent
        assert len(sink.registries) == 1
        assert sink.registries[0] is tel.registry
        assert sink.closed

    def test_heartbeat_rate_limit(self):
        beats: list[HeartbeatEvent] = []
        tel = Telemetry(heartbeat=beats.append, heartbeat_files=10)
        for f in range(1, 25):
            tel.heartbeat_tick(f, f * 100, f * 60, f * 40)
        assert [b.files for b in beats] == [10, 20]
        assert beats[0].der_so_far == pytest.approx(1000 / 600)

    def test_heartbeat_byte_trigger(self):
        beats: list[HeartbeatEvent] = []
        tel = Telemetry(
            heartbeat=beats.append, heartbeat_files=10**9, heartbeat_bytes=1000
        )
        tel.heartbeat_tick(1, 500, 500, 0)
        tel.heartbeat_tick(2, 1500, 1500, 0)
        assert [b.input_bytes for b in beats] == [1500]

    def test_heartbeat_interval_validation(self):
        with pytest.raises(ValueError):
            Telemetry(heartbeat_files=0)


class TestNullTelemetry:
    def test_disabled_flags(self):
        assert not NULL_TELEMETRY.enabled
        assert NULL_TELEMETRY.span("anything", k=1) is NULL_SPAN

    def test_uninstrumented_ingest_collects_nothing(self, files):
        """Zero-overhead contract: with the default NULL_TELEMETRY, an
        ingest leaves the null registry empty — any unguarded metric
        write in the hot path fails this test."""
        before = len(NULL_TELEMETRY.registry)
        dedup = MHDDeduplicator(CFG)
        dedup.process(files)
        assert len(NULL_TELEMETRY.registry) == before == 0


class TestInstrumentedPipeline:
    def test_telemetry_does_not_change_dedup_results(self, files):
        plain_stats = MHDDeduplicator(CFG).process(files)
        traced = MHDDeduplicator(CFG)
        traced.telemetry = Telemetry(sinks=[InMemorySink()])
        traced_stats = traced.process(files)
        assert traced_stats.as_dict() == plain_stats.as_dict()

    def test_metrics_cover_the_mhd_event_catalogue(self, files):
        tel = Telemetry()
        dedup = MHDDeduplicator(CFG)
        dedup.telemetry = tel
        dedup.process(files)
        names = tel.registry.names()
        for expected in (
            "chunk.size_bytes",
            "ingest.files",
            "ingest.bytes",
            "mhd.bme.extension_entries",
            "mhd.fme.extension_entries",
            "mhd.shm.flush_groups",
            "mhd.shm.group_chunks",
            "mhd.hhr.splits",
            "mhd.manifest_cache.hits",
            "disk.chunk.write.ops",
        ):
            assert expected in names, expected
        assert tel.registry.counter("ingest.files").value == len(files)
        total = sum(f.size for f in files)
        assert tel.registry.counter("ingest.bytes").value == total
        assert tel.registry.histogram("chunk.size_bytes").sum == pytest.approx(total)

    def test_disk_counters_mirror_the_io_meter(self, files):
        tel = Telemetry()
        dedup = MHDDeduplicator(CFG)
        dedup.telemetry = tel
        snap = dedup.process(files).io
        mirrored_ops = sum(
            m.value
            for name, m in tel.registry.items()
            if name.startswith("disk.") and name.endswith(".ops")
        )
        assert mirrored_ops == snap.count()

    def test_trace_spans_nest_and_cover_the_run(self, files):
        sink = InMemorySink()
        tel = Telemetry(sinks=[sink])
        dedup = MHDDeduplicator(CFG)
        dedup.telemetry = tel
        with tel.span("run"):
            dedup.process(files)
        summary = summarize(sink.spans)
        stages = {r.name for r in summary.rows}
        assert {"run", "file", "chunk", "hash", "index", "store"} <= stages
        # Per-stage self-times account for the run within 5%.
        assert summary.coverage == pytest.approx(1.0, abs=0.05)

    def test_spans_carry_io_attribution(self, files):
        sink = InMemorySink()
        tel = Telemetry(sinks=[sink])
        dedup = MHDDeduplicator(CFG)
        dedup.telemetry = tel
        # Wrap in a root span (as the CLI does) so finalize-time I/O —
        # e.g. the manifest-cache flush — is attributed too.
        with tel.span("run"):
            stats = dedup.process(files)
        total_ops = sum(
            e.attrs.get("io_ops", 0) for e in sink.spans if e.parent == -1
        )
        assert total_ops == stats.io.count()


class TestAnomalyChannel:
    def test_note_anomaly_counts_and_logs(self, caplog):
        before = runtime_anomalies().get("anomaly.test.synthetic", 0)
        with caplog.at_level("WARNING", logger="repro.obs"):
            note_anomaly("test.synthetic", "detail text")
        assert runtime_anomalies()["anomaly.test.synthetic"] == before + 1
        assert any("detail text" in r.message for r in caplog.records)
