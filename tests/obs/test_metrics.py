"""Tests for the metrics primitives: counters, gauges, histograms, registry."""

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import COUNT_BUCKETS, SIZE_BUCKETS, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_adds(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_rejects_negative_increments(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 0


class TestGauge:
    def test_set_and_set_max(self):
        g = MetricsRegistry().gauge("x")
        g.set(5.0)
        g.set_max(3.0)
        assert g.value == 5.0
        g.set_max(9.0)
        assert g.value == 9.0
        g.set(1.0)  # plain set may go down
        assert g.value == 1.0


class TestHistogramBoundaries:
    """Bucket-edge semantics: a value equal to a bound lands in that
    bucket (``le`` semantics, matching Prometheus)."""

    def test_value_on_bound_goes_to_that_bucket(self):
        h = Histogram([10.0, 20.0, 30.0])
        h.observe(10.0)
        assert h.counts == [1, 0, 0, 0]
        h.observe(10.5)
        assert h.counts == [1, 1, 0, 0]
        h.observe(30.0)
        assert h.counts == [1, 1, 1, 0]

    def test_overflow_goes_to_inf_bucket(self):
        h = Histogram([10.0])
        h.observe(10.0001)
        assert h.counts == [0, 1]

    def test_below_first_bound_goes_to_first_bucket(self):
        h = Histogram([10.0, 20.0])
        h.observe(-5.0)
        h.observe(0.0)
        assert h.counts == [2, 0, 0]

    def test_cumulative_is_running_sum(self):
        h = Histogram([1.0, 2.0, 4.0])
        h.observe_many([0.5, 1.0, 1.5, 3.0, 99.0])
        assert h.counts == [2, 1, 1, 1]
        assert h.cumulative() == [2, 3, 4, 5]
        assert h.total == 5
        assert h.sum == pytest.approx(105.0)

    def test_default_buckets_cover_every_paper_ecs(self):
        h = Histogram(SIZE_BUCKETS)
        for ecs in (512, 1024, 2048, 4096, 8192):
            h.observe(float(ecs))
        assert h.counts[-1] == 0  # nothing overflowed to +Inf

    def test_bounds_must_be_strictly_increasing(self):
        with pytest.raises(ValueError):
            Histogram([1.0, 1.0])
        with pytest.raises(ValueError):
            Histogram([2.0, 1.0])
        with pytest.raises(ValueError):
            Histogram([])

    def test_merge_requires_identical_bounds(self):
        a, b = Histogram([1.0, 2.0]), Histogram([1.0, 3.0])
        with pytest.raises(ValueError):
            a.merge(b)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h", COUNT_BUCKETS) is reg.histogram("h", COUNT_BUCKETS)

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")
        with pytest.raises(TypeError):
            reg.histogram("a")

    def test_histogram_bounds_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", [1.0, 2.0])
        with pytest.raises(ValueError):
            reg.histogram("h", [1.0, 3.0])

    def test_names_and_len(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ("a", "b")
        assert len(reg) == 2
        assert "a" in reg and "z" not in reg

    def test_as_dict_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", [1.0]).observe(0.5)
        d = reg.as_dict()
        assert d["c"] == 3
        assert d["g"] == 1.5
        assert d["h"] == {"bounds": [1.0], "counts": [1, 0], "count": 1, "sum": 0.5}

    def test_pickle_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(7)
        reg.gauge("g").set(2.0)
        reg.histogram("h", [1.0, 2.0]).observe_many([0.5, 5.0])
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.as_dict() == reg.as_dict()
        # The clone is independent: updating it leaves the original alone.
        clone.counter("c").inc()
        assert reg.counter("c").value == 7


# ---- merge algebra ---------------------------------------------------------


def _registry(spec: dict) -> MetricsRegistry:
    """Build a registry from {name: int|float|list-of-observations}."""
    reg = MetricsRegistry()
    for name, v in spec.items():
        if name.startswith("c."):
            reg.counter(name).inc(v)
        elif name.startswith("g."):
            reg.gauge(name).set(v)
        else:
            reg.histogram(name, COUNT_BUCKETS).observe_many(v)
    return reg


_SPECS = st.dictionaries(
    st.sampled_from(["c.a", "c.b", "g.a", "g.b", "h.a", "h.b"]),
    st.integers(min_value=0, max_value=100),
    max_size=6,
).map(
    lambda d: {
        k: (
            [float(v)] * 3
            if k.startswith("h.")
            else (float(v) if k.startswith("g.") else v)
        )
        for k, v in d.items()
    }
)


@given(_SPECS, _SPECS, _SPECS)
def test_merge_is_associative_and_commutative(sa, sb, sc):
    """(a+b)+c == a+(b+c) and a+b == b+a, for every metric kind."""
    left = _registry(sa)
    left.merge(_registry(sb))
    left.merge(_registry(sc))

    bc = _registry(sb)
    bc.merge(_registry(sc))
    right = _registry(sa)
    right.merge(bc)
    assert left.as_dict() == right.as_dict()

    ba = _registry(sb)
    ba.merge(_registry(sa))
    ab = _registry(sa)
    ab.merge(_registry(sb))
    assert ab.as_dict() == ba.as_dict()


def test_merge_kind_conflict_raises():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("x")
    b.gauge("x")
    with pytest.raises(TypeError):
        a.merge(b)


def test_merge_deep_copies_missing_metrics():
    a, b = MetricsRegistry(), MetricsRegistry()
    b.counter("only.b").inc(2)
    a.merge(b)
    a.counter("only.b").inc(10)
    assert b.counter("only.b").value == 2


class TestFiltered:
    def test_prefix_selection(self):
        reg = MetricsRegistry()
        reg.counter("cluster.route.segments").inc(7)
        reg.gauge("cluster.ring.nodes").set(3)
        reg.histogram("disk.chunk.sizes", SIZE_BUCKETS).observe(128.0)
        view = reg.filtered("cluster.")
        assert view.names() == ("cluster.ring.nodes", "cluster.route.segments")
        assert view.counter("cluster.route.segments").value == 7
        assert view.gauge("cluster.ring.nodes").value == 3

    def test_copies_are_independent(self):
        reg = MetricsRegistry()
        reg.counter("cluster.files").inc(1)
        reg.histogram("cluster.seg.sizes", COUNT_BUCKETS).observe(2.0)
        view = reg.filtered("cluster.")
        view.counter("cluster.files").inc(100)
        view.histogram("cluster.seg.sizes", COUNT_BUCKETS).observe(4.0)
        assert reg.counter("cluster.files").value == 1
        assert reg.histogram("cluster.seg.sizes", COUNT_BUCKETS).total == 1

    def test_empty_match(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        assert len(reg.filtered("zz.")) == 0
