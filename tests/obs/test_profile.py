"""Unit tests for the continuous stack sampler.

``sample_once`` is called directly where possible, so most tests need
no background sampler thread and no timing assumptions.
"""

import sys
import threading

import pytest

from repro.obs import StackSampler


def parked_thread(name: str):
    """A live thread parked on an Event, plus its release function."""
    release = threading.Event()

    def body():
        waiting.set()
        release.wait(30)

    waiting = threading.Event()
    thread = threading.Thread(target=body, name=name, daemon=True)
    thread.start()
    assert waiting.wait(10)
    return thread, release


class TestSampling:
    def test_sample_once_captures_this_thread(self):
        sampler = StackSampler()
        thread, release = parked_thread("worker-1")
        try:
            sampler.sample_once()
        finally:
            release.set()
            thread.join(10)
        text = sampler.collapsed()
        assert text, "expected at least one stack"
        # The parked thread's stack ends in Event.wait machinery.
        assert "threading:wait" in text
        assert "test_profile:body" in text

    def test_collapsed_format_is_stack_space_count(self):
        sampler = StackSampler()
        thread, release = parked_thread("worker-1")
        try:
            sampler.sample_once()
            sampler.sample_once()
        finally:
            release.set()
            thread.join(10)
        for line in sampler.collapsed().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) >= 1
            for label in stack.split(";"):
                mod, _, func = label.partition(":")
                assert mod and func

    def test_repeated_stacks_accumulate(self):
        sampler = StackSampler()
        thread, release = parked_thread("worker-1")
        try:
            for _ in range(5):
                sampler.sample_once()
        finally:
            release.set()
            thread.join(10)
        counts = [
            int(line.rpartition(" ")[2])
            for line in sampler.collapsed().splitlines()
            if "test_profile:body" in line
        ]
        assert sum(counts) == 5
        assert sampler.samples == 5

    def test_thread_prefix_filter(self):
        sampler = StackSampler(thread_prefixes=("fleet",))
        fleet, release_fleet = parked_thread("fleet-0")
        other, release_other = parked_thread("loiterer")
        try:
            sampler.sample_once()
        finally:
            release_fleet.set()
            release_other.set()
            fleet.join(10)
            other.join(10)
        text = sampler.collapsed()
        assert "test_profile:body" in text
        # Exactly one eligible thread: every stack is the fleet one's.
        assert all(
            "test_profile:body" in line for line in text.splitlines()
        ), text

    def test_max_depth_keeps_the_leaf_frames(self):
        deep = threading.Event()
        release = threading.Event()

        def recurse(n):
            if n == 0:
                deep.set()
                release.wait(30)
                return
            recurse(n - 1)

        shallow = StackSampler(max_depth=3)
        thread = threading.Thread(target=recurse, args=(10,), daemon=True)
        thread.start()
        try:
            assert deep.wait(10)
            shallow.sample_once()
        finally:
            release.set()
            thread.join(10)
        (line,) = shallow.collapsed().splitlines()
        stack = line.rpartition(" ")[0].split(";")
        assert len(stack) == 3
        # Leaf end (the Event.wait frames) survives; the root frames —
        # thread bootstrap and most of the recursion — are dropped.
        assert stack[-1] == "threading:wait"
        assert "threading:_bootstrap" not in stack

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            StackSampler(interval_s=0.0)


class TestLifecycle:
    def test_context_manager_samples_in_background(self):
        thread, release = parked_thread("worker-1")
        try:
            with StackSampler(interval_s=0.001) as sampler:
                release_gate = threading.Event()
                release_gate.wait(0.1)
        finally:
            release.set()
            thread.join(10)
        assert sampler.samples > 0
        assert "test_profile:body" in sampler.collapsed()

    def test_start_and_stop_are_idempotent(self):
        sampler = StackSampler(interval_s=0.001)
        sampler.start()
        sampler.start()
        sampler.stop()
        sampler.stop()

    def test_write_returns_stack_count(self, tmp_path):
        sampler = StackSampler()
        thread, release = parked_thread("worker-1")
        try:
            sampler.sample_once()
        finally:
            release.set()
            thread.join(10)
        out = tmp_path / "profile.collapsed"
        stacks = sampler.write(out)
        lines = [ln for ln in out.read_text().splitlines() if ln]
        assert stacks == len(lines) > 0

    def test_write_empty_profile(self, tmp_path):
        sampler = StackSampler(thread_prefixes=("nothing-matches",))
        sampler.sample_once()
        out = tmp_path / "profile.collapsed"
        assert sampler.write(out) == 0
        assert out.read_text() == ""
