"""Tests for the per-stage trace attribution (summarize / render_table)."""

import pytest

from repro.obs import SpanEvent, merge_traces, summarize
from repro.obs.traceview import render_table


def _ev(name, span_id, parent, duration, start=0.0, **attrs):
    return SpanEvent(name, span_id, parent, start, duration, dict(attrs))


class TestSummarize:
    def test_self_time_partitions_the_root(self):
        spans = [
            _ev("hash", 3, 2, 0.2, io_ops=1, io_bytes=10),
            _ev("store", 4, 2, 0.3, io_ops=4, io_bytes=90),
            _ev("file", 2, 1, 0.6, io_ops=5, io_bytes=100),
            _ev("run", 1, -1, 1.0, io_ops=5, io_bytes=100),
        ]
        summary = summarize(spans)
        assert summary.run_s == pytest.approx(1.0)
        rows = {r.name: r for r in summary.rows}
        assert rows["hash"].self_s == pytest.approx(0.2)
        assert rows["store"].self_s == pytest.approx(0.3)
        assert rows["file"].self_s == pytest.approx(0.1)  # 0.6 - 0.5
        assert rows["run"].self_s == pytest.approx(0.4)  # 1.0 - 0.6
        # The partition invariant: self times sum exactly to the run.
        assert summary.covered_s == pytest.approx(summary.run_s)
        assert summary.coverage == pytest.approx(1.0)

    def test_io_attribution_is_self_only(self):
        spans = [
            _ev("store", 2, 1, 0.3, io_ops=4, io_bytes=90),
            _ev("file", 1, -1, 1.0, io_ops=5, io_bytes=100),
        ]
        rows = {r.name: r for r in summarize(spans).rows}
        assert rows["store"].io_ops == 4 and rows["store"].io_bytes == 90
        assert rows["file"].io_ops == 1 and rows["file"].io_bytes == 10

    def test_same_stage_spans_aggregate(self):
        spans = [
            _ev("chunk", 1, -1, 0.1),
            _ev("chunk", 2, -1, 0.2),
            _ev("chunk", 3, -1, 0.3),
        ]
        summary = summarize(spans)
        (row,) = summary.rows
        assert row.count == 3
        assert row.total_s == pytest.approx(0.6)
        assert summary.run_s == pytest.approx(0.6)  # three roots

    def test_rows_sorted_by_self_time(self):
        spans = [
            _ev("fast", 1, -1, 0.1),
            _ev("slow", 2, -1, 0.9),
        ]
        assert [r.name for r in summarize(spans).rows] == ["slow", "fast"]

    def test_duplicate_span_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate span id"):
            summarize([_ev("a", 1, -1, 0.1), _ev("b", 1, -1, 0.1)])

    def test_unknown_parent_rejected(self):
        with pytest.raises(ValueError, match="unknown parent"):
            summarize([_ev("a", 1, 99, 0.1)])

    def test_empty_trace(self):
        summary = summarize([])
        assert summary.rows == [] and summary.run_s == 0.0
        assert summary.coverage == 0.0

    def test_clock_skew_clamped_to_zero(self):
        """A child longer than its parent (timer jitter) never yields
        negative self time."""
        spans = [
            _ev("child", 2, 1, 0.5),
            _ev("parent", 1, -1, 0.4),
        ]
        rows = {r.name: r for r in summarize(spans).rows}
        assert rows["parent"].self_s == 0.0


class TestRenderTable:
    def test_renders_aligned_rows_and_summary(self):
        spans = [
            _ev("hash", 2, 1, 0.25, io_ops=2, io_bytes=2048),
            _ev("run", 1, -1, 1.0),
        ]
        text = render_table(summarize(spans))
        lines = text.splitlines()
        assert lines[0].startswith("stage")
        assert set(lines[1]) <= {"-", " "}
        assert any(line.startswith("hash") for line in lines)
        assert lines[-1].startswith("(run)")
        assert "2.0 KiB" in text

    def test_empty_summary_renders_header_only(self):
        text = render_table(summarize([]))
        assert text.splitlines()[-1].startswith("(run)")


def _rev(name, span_id, parent, duration, origin, trace_id="t1", **attrs):
    """A span event stamped with an origin + trace id (cross-process)."""
    return SpanEvent(name, span_id, parent, 0.0, duration, dict(attrs), trace_id, origin)


class TestWaitWorkSplit:
    def test_wait_spans_split_out_of_coverage(self):
        spans = [
            _ev("wait.rate", 2, 1, 0.3),
            _ev("chunk", 3, 1, 0.5),
            _ev("session", 1, -1, 1.0),
        ]
        summary = summarize(spans)
        assert summary.wait_s == pytest.approx(0.3)
        assert summary.work_s == pytest.approx(summary.covered_s - 0.3)

    def test_no_wait_spans_means_all_work(self):
        summary = summarize([_ev("run", 1, -1, 1.0)])
        assert summary.wait_s == 0.0
        assert summary.work_s == pytest.approx(summary.covered_s)

    def test_render_table_shows_wait_and_work_rows(self):
        spans = [
            _ev("wait.rate", 2, 1, 0.3),
            _ev("session", 1, -1, 1.0),
        ]
        text = render_table(summarize(spans))
        lines = text.splitlines()
        assert any(line.startswith("(wait)") for line in lines)
        assert any(line.startswith("(work)") for line in lines)
        assert lines[-1].startswith("(run)")


class TestMergeTraces:
    def test_remote_parent_stitches_processes(self):
        client = [
            _rev("client.push", 1, -1, 1.0, "client"),
            _rev("client.send", 2, 1, 0.1, "client"),
        ]
        server = [
            _rev("session", 1, -1, 0.8, "server s1", remote_parent="client#1"),
            _rev("file", 2, 1, 0.5, "server s1"),
        ]
        merged = merge_traces([client, server])
        assert len(merged) == 4
        by_name = {ev.name: ev for ev in merged}
        ids = {ev.span_id for ev in merged}
        assert len(ids) == 4, "span ids must be rebased into one space"
        assert by_name["session"].parent == by_name["client.push"].span_id
        assert by_name["file"].parent == by_name["session"].span_id
        # The merged tree is summarizable (one root, no dangling refs).
        summary = summarize(merged)
        assert summary.run_s == pytest.approx(1.0)

    def test_unresolvable_remote_parent_stays_root(self):
        server = [
            _rev("session", 1, -1, 0.8, "server s1", remote_parent="client#99"),
        ]
        (merged,) = merge_traces([server])
        assert merged.parent == -1

    def test_single_file_passthrough_keeps_tree_shape(self):
        spans = [
            _rev("run", 1, -1, 1.0, "run"),
            _rev("file", 2, 1, 0.4, "run"),
        ]
        merged = merge_traces([spans])
        assert {(ev.name, ev.parent != -1) for ev in merged} == {
            ("run", False),
            ("file", True),
        }

    def test_colliding_span_ids_across_files_are_rebased(self):
        a = [_rev("a", 1, -1, 0.1, "p1")]
        b = [_rev("b", 1, -1, 0.2, "p2")]
        merged = merge_traces([a, b])
        assert len({ev.span_id for ev in merged}) == 2

    def test_duplicate_ids_within_one_file_rejected(self):
        bad = [_rev("a", 1, -1, 0.1, "p1"), _rev("b", 1, -1, 0.2, "p1")]
        with pytest.raises(ValueError, match="duplicate span id"):
            merge_traces([bad])

    def test_dangling_in_file_parent_rejected(self):
        bad = [_rev("a", 2, 77, 0.1, "p1")]
        with pytest.raises(ValueError, match="unknown parent"):
            merge_traces([bad])

    def test_empty_input(self):
        assert merge_traces([]) == []
        assert merge_traces([[], []]) == []
