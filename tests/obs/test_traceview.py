"""Tests for the per-stage trace attribution (summarize / render_table)."""

import pytest

from repro.obs import SpanEvent, summarize
from repro.obs.traceview import render_table


def _ev(name, span_id, parent, duration, start=0.0, **attrs):
    return SpanEvent(name, span_id, parent, start, duration, dict(attrs))


class TestSummarize:
    def test_self_time_partitions_the_root(self):
        spans = [
            _ev("hash", 3, 2, 0.2, io_ops=1, io_bytes=10),
            _ev("store", 4, 2, 0.3, io_ops=4, io_bytes=90),
            _ev("file", 2, 1, 0.6, io_ops=5, io_bytes=100),
            _ev("run", 1, -1, 1.0, io_ops=5, io_bytes=100),
        ]
        summary = summarize(spans)
        assert summary.run_s == pytest.approx(1.0)
        rows = {r.name: r for r in summary.rows}
        assert rows["hash"].self_s == pytest.approx(0.2)
        assert rows["store"].self_s == pytest.approx(0.3)
        assert rows["file"].self_s == pytest.approx(0.1)  # 0.6 - 0.5
        assert rows["run"].self_s == pytest.approx(0.4)  # 1.0 - 0.6
        # The partition invariant: self times sum exactly to the run.
        assert summary.covered_s == pytest.approx(summary.run_s)
        assert summary.coverage == pytest.approx(1.0)

    def test_io_attribution_is_self_only(self):
        spans = [
            _ev("store", 2, 1, 0.3, io_ops=4, io_bytes=90),
            _ev("file", 1, -1, 1.0, io_ops=5, io_bytes=100),
        ]
        rows = {r.name: r for r in summarize(spans).rows}
        assert rows["store"].io_ops == 4 and rows["store"].io_bytes == 90
        assert rows["file"].io_ops == 1 and rows["file"].io_bytes == 10

    def test_same_stage_spans_aggregate(self):
        spans = [
            _ev("chunk", 1, -1, 0.1),
            _ev("chunk", 2, -1, 0.2),
            _ev("chunk", 3, -1, 0.3),
        ]
        summary = summarize(spans)
        (row,) = summary.rows
        assert row.count == 3
        assert row.total_s == pytest.approx(0.6)
        assert summary.run_s == pytest.approx(0.6)  # three roots

    def test_rows_sorted_by_self_time(self):
        spans = [
            _ev("fast", 1, -1, 0.1),
            _ev("slow", 2, -1, 0.9),
        ]
        assert [r.name for r in summarize(spans).rows] == ["slow", "fast"]

    def test_duplicate_span_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate span id"):
            summarize([_ev("a", 1, -1, 0.1), _ev("b", 1, -1, 0.1)])

    def test_unknown_parent_rejected(self):
        with pytest.raises(ValueError, match="unknown parent"):
            summarize([_ev("a", 1, 99, 0.1)])

    def test_empty_trace(self):
        summary = summarize([])
        assert summary.rows == [] and summary.run_s == 0.0
        assert summary.coverage == 0.0

    def test_clock_skew_clamped_to_zero(self):
        """A child longer than its parent (timer jitter) never yields
        negative self time."""
        spans = [
            _ev("child", 2, 1, 0.5),
            _ev("parent", 1, -1, 0.4),
        ]
        rows = {r.name: r for r in summarize(spans).rows}
        assert rows["parent"].self_s == 0.0


class TestRenderTable:
    def test_renders_aligned_rows_and_summary(self):
        spans = [
            _ev("hash", 2, 1, 0.25, io_ops=2, io_bytes=2048),
            _ev("run", 1, -1, 1.0),
        ]
        text = render_table(summarize(spans))
        lines = text.splitlines()
        assert lines[0].startswith("stage")
        assert set(lines[1]) <= {"-", " "}
        assert any(line.startswith("hash") for line in lines)
        assert lines[-1].startswith("(run)")
        assert "2.0 KiB" in text

    def test_empty_summary_renders_header_only(self):
        text = render_table(summarize([]))
        assert text.splitlines()[-1].startswith("(run)")
