"""Unit tests for the per-tenant SLO engine.

All burn-rate behaviour is driven through an injectable synthetic
clock — no sleeps anywhere.
"""

import pytest

from repro.obs import DEFAULT_SLOS, SLOEngine, SLOSpec


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


ERRORS = SLOSpec(
    name="errors",
    kind="error_rate",
    objective=0.9,
    window_s=600.0,
    short_window_s=60.0,
    burn_alert=2.0,
)
LATENCY = SLOSpec(
    name="slow",
    kind="latency",
    objective=0.5,
    threshold_s=1.0,
    window_s=600.0,
    short_window_s=60.0,
    burn_alert=1.5,
)
REJECTS = SLOSpec(
    name="rejects",
    kind="rejection_rate",
    objective=0.8,
    window_s=600.0,
    short_window_s=60.0,
    burn_alert=2.0,
)


def engine(*specs, clock=None, alerts=None):
    return SLOEngine(
        specs=specs or DEFAULT_SLOS,
        clock=clock or FakeClock(),
        anomaly=(lambda name, detail: alerts.append((name, detail)))
        if alerts is not None
        else (lambda name, detail: None),
        bucket_s=10.0,
    )


class TestSpecValidation:
    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="latency_rate", objective=0.9)

    def test_objective_must_be_a_fraction(self):
        for bad in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                SLOSpec(name="x", kind="error_rate", objective=bad)

    def test_short_window_must_fit_in_long(self):
        with pytest.raises(ValueError):
            SLOSpec(
                name="x", kind="error_rate", objective=0.9,
                window_s=60.0, short_window_s=600.0,
            )

    def test_duplicate_spec_names_rejected(self):
        with pytest.raises(ValueError):
            SLOEngine(specs=[ERRORS, ERRORS])


class TestBurnRates:
    def test_no_traffic_is_zero_burn(self):
        eng = engine(ERRORS)
        assert eng.burn_rates("alice", ERRORS) == (0.0, 0.0)

    def test_burn_is_bad_fraction_over_budget(self):
        # objective 0.9 -> 10% error budget; 20% errors -> burn 2.0.
        clk = FakeClock()
        eng = engine(ERRORS, clock=clk)
        for i in range(10):
            eng.record_session("alice", 0.1, ok=(i != 0 and i != 5))
        long_burn, short_burn = eng.burn_rates("alice", ERRORS)
        assert long_burn == pytest.approx(2.0)
        assert short_burn == pytest.approx(2.0)

    def test_short_window_recovers_before_long(self):
        clk = FakeClock()
        eng = engine(ERRORS, clock=clk)
        for _ in range(4):
            eng.record_session("alice", 0.1, ok=False)
        # Move past the short window; fresh healthy traffic dominates it.
        clk.advance(120.0)
        for _ in range(4):
            eng.record_session("alice", 0.1, ok=True)
        long_burn, short_burn = eng.burn_rates("alice", ERRORS)
        assert short_burn == 0.0
        assert long_burn == pytest.approx(5.0)  # 4/8 errors vs 10% budget

    def test_events_age_out_of_the_long_window(self):
        clk = FakeClock()
        eng = engine(ERRORS, clock=clk)
        eng.record_session("alice", 0.1, ok=False)
        clk.advance(ERRORS.window_s + 30.0)
        eng.record_session("alice", 0.1, ok=True)
        long_burn, _ = eng.burn_rates("alice", ERRORS)
        assert long_burn == 0.0

    def test_latency_kind_counts_threshold_breaches(self):
        eng = engine(LATENCY)
        eng.record_session("alice", 0.2)
        eng.record_session("alice", 3.0)  # breaches the 1s threshold
        long_burn, _ = eng.burn_rates("alice", LATENCY)
        # 1/2 slow vs 50% budget -> burn 1.0.
        assert long_burn == pytest.approx(1.0)

    def test_rejection_kind_uses_admissions(self):
        eng = engine(REJECTS)
        for i in range(5):
            eng.record_admission("alice", rejected=(i == 0 or i == 1))
        long_burn, _ = eng.burn_rates("alice", REJECTS)
        # 2/5 rejected vs 20% budget -> burn 2.0.
        assert long_burn == pytest.approx(2.0)

    def test_tenants_are_independent(self):
        eng = engine(ERRORS)
        eng.record_session("alice", 0.1, ok=False)
        eng.record_session("bob", 0.1, ok=True)
        assert eng.burn_rates("alice", ERRORS)[0] > 0.0
        assert eng.burn_rates("bob", ERRORS) == (0.0, 0.0)


class TestAlerting:
    def test_alert_requires_both_windows(self):
        clk = FakeClock()
        alerts = []
        eng = engine(ERRORS, clock=clk, alerts=alerts)
        # Errors only in the distant past: long window burns, short clean.
        for _ in range(4):
            eng.record_session("alice", 0.1, ok=False)
        alerts.clear()
        clk.advance(120.0)
        eng.record_session("alice", 0.1, ok=True)
        # Long burn still 4/5 vs 10% budget = 8 >= 2, short burn 0.
        assert eng.burn_rates("alice", ERRORS)[0] >= ERRORS.burn_alert
        assert alerts == []

    def test_sustained_burn_fires_anomaly(self):
        alerts = []
        eng = engine(ERRORS, alerts=alerts)
        for _ in range(3):
            eng.record_session("alice", 0.1, ok=False)
        assert alerts, "multi-window burn should alert"
        name, detail = alerts[0]
        assert name == "slo.errors"
        assert "tenant=alice" in detail and "burn_long=" in detail

    def test_alerts_are_debounced_per_short_window(self):
        clk = FakeClock()
        alerts = []
        eng = engine(ERRORS, clock=clk, alerts=alerts)
        for _ in range(20):
            eng.record_session("alice", 0.1, ok=False)
        assert len(alerts) == 1
        clk.advance(ERRORS.short_window_s + 1.0)
        eng.record_session("alice", 0.1, ok=False)
        assert len(alerts) == 2

    def test_debounce_is_per_tenant(self):
        alerts = []
        eng = engine(ERRORS, alerts=alerts)
        for _ in range(3):
            eng.record_session("alice", 0.1, ok=False)
            eng.record_session("bob", 0.1, ok=False)
        assert {d.split()[0] for _, d in alerts} == {"tenant=alice", "tenant=bob"}


class TestSnapshot:
    def test_snapshot_shape(self):
        eng = engine(ERRORS, LATENCY)
        eng.record_session("alice", 0.4, ok=True)
        eng.record_session("alice", 2.0, ok=False)
        doc = eng.snapshot()
        assert [s["name"] for s in doc["specs"]] == ["errors", "slow"]
        alice = doc["tenants"]["alice"]
        assert alice["latency"]["count"] == 2
        assert alice["latency"]["p50_s"] == pytest.approx(0.4)
        assert alice["latency"]["p99_s"] == pytest.approx(2.0)
        errors = alice["slos"]["errors"]
        assert errors["bad"] == 1 and errors["total"] == 2
        assert errors["burn_long"] == pytest.approx(5.0)

    def test_snapshot_is_json_safe(self):
        import json

        eng = engine()
        eng.record_session("alice", 0.1)
        eng.record_admission("alice")
        json.dumps(eng.snapshot())

    def test_gauge_registries_expose_burn_and_alerting(self):
        eng = engine(ERRORS)
        for _ in range(3):
            eng.record_session("alice", 0.1, ok=False)
        regs = eng.gauge_registries()
        reg = regs["alice"]
        assert reg.gauge("slo.burn_long.errors").value >= ERRORS.burn_alert
        assert reg.gauge("slo.alerting.errors").value == 1.0
        assert reg.gauge("slo.latency_p50_s").value == pytest.approx(0.1)
