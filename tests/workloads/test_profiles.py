"""Tests for the named corpus profiles."""

import pytest

from repro.workloads import PROFILES, make_corpus, profile_names


def test_profile_names_sorted():
    assert profile_names() == sorted(PROFILES)
    assert "office-fleet" in profile_names()


def test_unknown_profile_raises():
    with pytest.raises(ValueError, match="unknown profile"):
        make_corpus("no-such-thing")


@pytest.mark.parametrize("name", sorted(PROFILES))
def test_profiles_generate_nonempty_corpora(name):
    files = []
    for f in make_corpus(name):
        files.append(f)
        if len(files) > 400:
            break
    assert files
    assert all(f.size > 0 for f in files)


def test_profiles_deterministic():
    a = make_corpus("office-fleet").files()[:5]
    b = make_corpus("office-fleet").files()[:5]
    assert [(f.file_id, f.data) for f in a] == [(f.file_id, f.data) for f in b]


def test_seed_changes_content():
    a = make_corpus("office-fleet", seed=1).files()[0]
    b = make_corpus("office-fleet", seed=2).files()[0]
    assert a.data != b.data


def test_vm_images_shape():
    files = make_corpus("vm-images").files()
    assert all(f.file_id.endswith("disk.img") for f in files)


def test_server_fleet_has_logs():
    files = make_corpus("server-fleet").files()
    assert any("var/log" in f.file_id for f in files)


def test_server_fleet_most_dedupable():
    """Ordering sanity: the server fleet dedups better than the churny
    workstations at the same granularity."""
    from repro.chunking import ChunkerConfig, VectorizedChunker
    from repro.workloads import trace_corpus

    chunker = VectorizedChunker(ChunkerConfig(expected_size=2048))
    server = trace_corpus(make_corpus("server-fleet"), chunker)
    churny = trace_corpus(make_corpus("churny-workstations"), chunker)
    assert server.byte_der > churny.byte_der
