"""Tests for the byte-level edit operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import EditConfig, mutate


def rng(seed=0):
    return np.random.default_rng(seed)


class TestEditConfig:
    def test_defaults_valid(self):
        EditConfig()

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rejects_bad_rate(self, rate):
        with pytest.raises(ValueError):
            EditConfig(change_rate=rate)

    def test_rejects_bad_edits_per_mb(self):
        with pytest.raises(ValueError):
            EditConfig(edits_per_mb=0)

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            EditConfig(insert_fraction=2.0)
        with pytest.raises(ValueError):
            EditConfig(delete_fraction=-1.0)


class TestMutate:
    def test_empty_input(self):
        assert mutate(b"", rng(), EditConfig()) == b""

    def test_zero_rate_is_identity(self):
        data = bytes(range(256)) * 10
        assert mutate(data, rng(), EditConfig(change_rate=0.0)) is data

    def test_changes_content(self):
        data = rng(1).integers(0, 256, size=100_000, dtype=np.uint8).tobytes()
        out = mutate(data, rng(2), EditConfig(change_rate=0.1))
        assert out != data

    def test_deterministic_given_rng_state(self):
        data = rng(1).integers(0, 256, size=50_000, dtype=np.uint8).tobytes()
        a = mutate(data, rng(7), EditConfig())
        b = mutate(data, rng(7), EditConfig())
        assert a == b

    @given(seed=st.integers(0, 2**31), rate=st.sampled_from([0.05, 0.2, 0.5]))
    @settings(max_examples=20, deadline=None)
    def test_size_stays_close(self, seed, rate):
        """Overwrites preserve size; insert/delete roughly cancel."""
        n = 200_000
        data = rng(seed).integers(0, 256, size=n, dtype=np.uint8).tobytes()
        out = mutate(data, rng(seed + 1), EditConfig(change_rate=rate))
        assert 0.6 * n < len(out) < 1.8 * n

    def test_most_bytes_survive_at_low_rate(self):
        """An 0.1 change rate must leave long common substrings (the
        duplicate slices the dedupers will find), detectable by CDC."""
        from repro.chunking import ChunkerConfig, VectorizedChunker
        from repro.hashing import sha1

        n = 500_000
        data = rng(3).integers(0, 256, size=n, dtype=np.uint8).tobytes()
        out = mutate(data, rng(4), EditConfig(change_rate=0.1, edits_per_mb=4))
        chunker = VectorizedChunker(ChunkerConfig(expected_size=2048))
        orig = {sha1(c.data) for c in chunker.chunk(data)}
        survived = sum(1 for c in chunker.chunk(out) if sha1(c.data) in orig)
        assert survived >= len(orig) // 2

    def test_pure_overwrite_keeps_length(self):
        data = rng(5).integers(0, 256, size=100_000, dtype=np.uint8).tobytes()
        cfg = EditConfig(change_rate=0.3, insert_fraction=0.0)
        out = mutate(data, rng(6), cfg)
        assert len(out) == len(data)

    def test_insert_only_grows(self):
        data = rng(5).integers(0, 256, size=100_000, dtype=np.uint8).tobytes()
        cfg = EditConfig(change_rate=0.2, insert_fraction=1.0, delete_fraction=0.0)
        out = mutate(data, rng(6), cfg)
        assert len(out) > len(data)
