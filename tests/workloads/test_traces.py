"""Tests for the exact-dedup trace oracle."""

import numpy as np

from repro.chunking import ChunkerConfig, FixedChunker, VectorizedChunker
from repro.workloads import BackupFile, tiny_corpus, trace_corpus

CFG = ChunkerConfig(expected_size=256, min_size=64, max_size=1024, window=16)


def bf(name, data):
    return BackupFile(name, data)


def rand(n, seed=0):
    return np.random.default_rng(seed).integers(0, 256, size=n, dtype=np.uint8).tobytes()


class TestTraceBasics:
    def test_empty_corpus(self):
        s = trace_corpus([], VectorizedChunker(CFG))
        assert s.total_bytes == 0
        assert s.chunk_der == 0.0
        assert s.dad == 0

    def test_single_file_all_unique(self):
        s = trace_corpus([bf("a", rand(10_000))], VectorizedChunker(CFG))
        assert s.duplicate_chunks == 0
        assert s.unique_bytes == s.total_bytes == 10_000
        assert s.byte_der == 1.0
        assert s.l == 0
        assert s.f == 1

    def test_identical_files_fully_duplicate(self):
        data = rand(8192, seed=1)
        s = trace_corpus([bf("a", data), bf("b", data)], FixedChunker(CFG))
        assert s.duplicate_bytes == s.unique_bytes == 8192
        assert s.byte_der == 2.0
        assert s.l == 1  # one maximal duplicate run
        assert s.f == 1  # file b is completely duplicate
        assert s.total_files == 2

    def test_interleaved_dup_slices(self):
        """u d u d pattern (fixed chunking for surgical control)."""
        u1, d1, u2, d2 = rand(256, 1), rand(256, 2), rand(256, 3), rand(256, 4)
        base = bf("base", d1 + d2)
        probe = bf("probe", u1 + d1 + u2 + d2)
        s = trace_corpus([base, probe], FixedChunker(CFG))
        assert s.duplicate_chunks == 2
        assert s.l == 2  # two separate duplicate slices in `probe`

    def test_consecutive_dup_chunks_one_slice(self):
        d = rand(1024, 7)
        s = trace_corpus([bf("a", d), bf("b", rand(256, 8) + d)], FixedChunker(CFG))
        assert s.duplicate_chunks == 4
        assert s.l == 1
        assert s.dad == 1024

    def test_identities(self):
        files = tiny_corpus().files()[:40]
        s = trace_corpus(files, VectorizedChunker(CFG))
        assert s.unique_chunks + s.duplicate_chunks == s.total_chunks
        assert s.unique_bytes + s.duplicate_bytes == s.total_bytes
        assert s.byte_der >= 1.0
        assert s.l <= s.duplicate_chunks


class TestCorpusShape:
    """The synthetic corpus must look like the paper's dataset."""

    def test_tiny_corpus_has_substantial_duplication(self):
        s = trace_corpus(tiny_corpus().files(), VectorizedChunker(ChunkerConfig(expected_size=1024)))
        assert s.byte_der > 1.8, f"DER {s.byte_der}"

    def test_smaller_ecs_finds_more_duplicate_bytes(self):
        files = tiny_corpus().files()
        small = trace_corpus(files, VectorizedChunker(ChunkerConfig(expected_size=512)))
        big = trace_corpus(files, VectorizedChunker(ChunkerConfig(expected_size=8192)))
        assert small.duplicate_bytes >= big.duplicate_bytes

    def test_dad_shrinks_with_smaller_ecs(self):
        """Fig. 10(a): smaller ECS detects shorter slices -> smaller DAD."""
        files = tiny_corpus().files()
        small = trace_corpus(files, VectorizedChunker(ChunkerConfig(expected_size=512)))
        big = trace_corpus(files, VectorizedChunker(ChunkerConfig(expected_size=4096)))
        assert small.dad <= big.dad * 1.5  # allow noise; trend must not invert badly
