"""Tests for templates, machines and the backup corpus."""

import pytest

from repro.workloads import (
    BackupCorpus,
    CorpusConfig,
    Machine,
    MachineConfig,
    TemplateLibrary,
    tiny_corpus,
)


class TestTemplateLibrary:
    def test_deterministic(self):
        a = TemplateLibrary(seed=1, os_bytes=1 << 16, app_bytes=1 << 14)
        b = TemplateLibrary(seed=1, os_bytes=1 << 16, app_bytes=1 << 14)
        assert a.os_images[0][0].data == b.os_images[0][0].data

    def test_different_seeds_differ(self):
        a = TemplateLibrary(seed=1, os_bytes=1 << 16)
        b = TemplateLibrary(seed=2, os_bytes=1 << 16)
        assert a.os_images[0][0].data != b.os_images[0][0].data

    def test_os_image_total_size(self):
        lib = TemplateLibrary(seed=0, os_bytes=1 << 18)
        total = sum(f.size for f in lib.os_images[0])
        assert total == 1 << 18

    def test_index_wraps(self):
        lib = TemplateLibrary(seed=0, os_count=2, os_bytes=1 << 14)
        assert lib.os_image(0) is lib.os_image(2)

    def test_rejects_zero_os(self):
        with pytest.raises(ValueError):
            TemplateLibrary(os_count=0)


def make_machine(seed=5, **kw):
    lib = TemplateLibrary(seed=0, os_bytes=1 << 16, app_bytes=1 << 14)
    defaults = dict(user_bytes=1 << 16, mean_user_file=1 << 14)
    defaults.update(kw)
    return Machine("pcX", lib, MachineConfig(**defaults), seed=seed)


class TestMachine:
    def test_generation_zero_contains_os_and_user(self):
        files = make_machine().generation(0)
        names = [f.file_id for f in files]
        assert any("os0" in n for n in names)
        assert any("user/" in n for n in names)

    def test_generations_monotonic(self):
        m = make_machine()
        m.generation(1)
        with pytest.raises(ValueError):
            m.generation(0)

    def test_generations_share_most_content(self):
        m = make_machine()
        g0 = {f.file_id.split("/", 2)[-1]: f.data for f in m.generation(0)}
        g1 = {f.file_id.split("/", 2)[-1]: f.data for f in m.generation(1)}
        shared_names = set(g0) & set(g1)
        assert len(shared_names) >= len(g0) * 0.7

    def test_same_seed_reproducible(self):
        a = make_machine(seed=9).generation(2)
        b = make_machine(seed=9).generation(2)
        assert [(f.file_id, f.data) for f in a] == [(f.file_id, f.data) for f in b]

    def test_file_ids_carry_generation(self):
        m = make_machine()
        for f in m.generation(0):
            assert f.file_id.startswith("pcX/gen000/")


class TestCorpus:
    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            CorpusConfig(machines=0)

    def test_iteration_is_repeatable(self):
        c = tiny_corpus()
        a = [(f.file_id, f.data) for f in c]
        b = [(f.file_id, f.data) for f in c]
        assert a == b

    def test_generation_major_order(self):
        c = tiny_corpus()
        gens = [int(f.file_id.split("/")[1][3:]) for f in c]
        assert gens == sorted(gens)

    def test_machines_share_os_template_content(self):
        cfg = CorpusConfig(
            machines=2,
            generations=1,
            os_count=1,
            os_bytes=1 << 16,
            app_bytes=1 << 14,
            user_bytes=1 << 14,
            mean_file=1 << 13,
        )
        files = BackupCorpus(cfg).files()
        by_machine: dict[str, set[bytes]] = {}
        for f in files:
            by_machine.setdefault(f.file_id.split("/")[0], set()).add(f.data)
        pc0, pc1 = by_machine["pc00"], by_machine["pc01"]
        assert pc0 & pc1  # identical OS files across machines

    def test_total_bytes_positive(self):
        assert tiny_corpus().total_bytes() > 1 << 20

    def test_unique_file_ids(self):
        ids = [f.file_id for f in tiny_corpus()]
        assert len(ids) == len(set(ids))


class TestLogFiles:
    def make(self, **kw):
        return make_machine(log_bytes=1 << 15, log_append_bytes=1 << 12, **kw)

    def test_log_present_when_enabled(self):
        files = self.make().generation(0)
        logs = [f for f in files if "var/log" in f.file_id]
        assert len(logs) == 1
        assert logs[0].size == 1 << 15

    def test_log_absent_by_default(self):
        files = make_machine().generation(0)
        assert not any("var/log" in f.file_id for f in files)

    def test_log_is_append_only(self):
        m = self.make()
        g0 = next(f for f in m.generation(0) if "var/log" in f.file_id)
        g2 = next(f for f in m.generation(2) if "var/log" in f.file_id)
        assert g2.size == g0.size + 2 * (1 << 12)
        assert g2.data[: g0.size] == g0.data  # history never rewritten

    def test_logs_dedup_almost_fully(self):
        """Append-only files are the best case for any chunk dedup."""
        from repro.core import DedupConfig, MHDDeduplicator

        m = self.make()
        logs = [
            next(f for f in m.generation(g) if "var/log" in f.file_id)
            for g in range(4)
        ]
        d = MHDDeduplicator(DedupConfig(ecs=512, sd=4, bloom_bytes=1 << 16, window=16))
        stats = d.process(logs)
        # stored ~= final log size (every prefix deduplicates)
        assert stats.stored_chunk_bytes < logs[-1].size * 1.2
        for f in logs:
            assert d.restore(f.file_id) == f.data


class TestDiskImageMode:
    def cfg(self, **kw):
        from repro.workloads import CorpusConfig

        defaults = dict(
            machines=2, generations=2, os_count=1, os_bytes=1 << 17,
            app_bytes=1 << 14, user_bytes=1 << 15, mean_file=1 << 14,
            as_disk_images=True,
        )
        defaults.update(kw)
        return CorpusConfig(**defaults)

    def test_one_image_per_machine_generation(self):
        files = BackupCorpus(self.cfg()).files()
        assert len(files) == 4
        assert all(f.file_id.endswith("disk.img") for f in files)

    def test_image_bytes_equal_member_files(self):
        from dataclasses import replace

        cfg = self.cfg()
        images = BackupCorpus(cfg).files()
        members = BackupCorpus(replace(cfg, as_disk_images=False)).files()
        by_gen = {}
        for f in members:
            key = "/".join(f.file_id.split("/")[:2])
            by_gen.setdefault(key, []).append(f)
        for image in images:
            key = "/".join(image.file_id.split("/")[:2])
            expected = b"".join(
                f.data for f in sorted(by_gen[key], key=lambda f: f.file_id)
            )
            assert image.data == expected

    def test_generations_share_content(self):
        """Consecutive images of one machine stay mostly identical."""
        from repro.chunking import ChunkerConfig, VectorizedChunker
        from repro.hashing import sha1

        files = BackupCorpus(self.cfg()).files()
        pc0 = [f for f in files if f.file_id.startswith("pc00")]
        chunker = VectorizedChunker(ChunkerConfig(expected_size=1024))
        g0 = {sha1(c.data) for c in chunker.chunk(pc0[0].data)}
        shared = sum(1 for c in chunker.chunk(pc0[1].data) if sha1(c.data) in g0)
        assert shared > 0.5 * len(g0)
