"""Performance guardrails.

Generous wall-clock bounds that catch order-of-magnitude regressions
(an accidentally quadratic loop, a lost vectorisation) without being
flaky on slow CI machines.
"""

import time

import numpy as np

from repro.chunking import ChunkerConfig, VectorizedChunker
from repro.core import DedupConfig, MHDDeduplicator
from repro.workloads import tiny_corpus


def test_vectorized_chunker_throughput_floor():
    """≥ 5 MB/s (typically 40-80); the reference runs at ~1 MB/s, so
    this also guards against silently falling back to scalar code."""
    data = np.random.default_rng(0).integers(0, 256, size=16 << 20, dtype=np.uint8).tobytes()
    chunker = VectorizedChunker(ChunkerConfig(expected_size=4096))
    start = time.perf_counter()
    chunker.cut_points(data)
    elapsed = time.perf_counter() - start
    mbps = 16 / elapsed
    assert mbps > 5, f"chunker at {mbps:.1f} MB/s"


def test_mhd_pipeline_throughput_floor():
    """End-to-end MHD ≥ 2 MB/s on the tiny corpus (typically 20-40)."""
    files = tiny_corpus().files()
    total = sum(f.size for f in files)
    d = MHDDeduplicator(DedupConfig(ecs=2048, sd=8))
    start = time.perf_counter()
    d.process(files)
    elapsed = time.perf_counter() - start
    mbps = total / 1e6 / elapsed
    assert mbps > 2, f"MHD at {mbps:.1f} MB/s"


def test_ingest_scales_linearly():
    """Doubling the input must not quadruple the time (quadratic-loop
    guard).  Uses one big unique file so chunk counts dominate."""
    rng = np.random.default_rng(1)
    small = rng.integers(0, 256, size=2 << 20, dtype=np.uint8).tobytes()
    big = rng.integers(0, 256, size=8 << 20, dtype=np.uint8).tobytes()
    from repro.workloads import BackupFile

    def run(data):
        d = MHDDeduplicator(DedupConfig(ecs=1024, sd=8))
        start = time.perf_counter()
        d.process([BackupFile("x", data)])
        return time.perf_counter() - start

    t_small = run(small)
    t_big = run(big)
    # 4x the data may cost at most ~10x the time (noise headroom).
    assert t_big < t_small * 10 + 0.5, (t_small, t_big)
