"""Fast-scale certification of the paper's headline claims.

The benchmark suite reproduces every table and figure at bench scale;
this module re-checks the four headline claims on the seconds-scale
tiny corpus so that ``pytest tests/`` alone certifies the reproduction
(with wide tolerances — exact numbers belong to the benches).
"""

import pytest

from repro.baselines import (
    BimodalDeduplicator,
    CDCDeduplicator,
    SparseIndexingDeduplicator,
    SubChunkDeduplicator,
)
from repro.core import DedupConfig, MHDDeduplicator
from repro.workloads import tiny_corpus

ALGOS = {
    "bf-mhd": MHDDeduplicator,
    "cdc": CDCDeduplicator,
    "bimodal": BimodalDeduplicator,
    "subchunk": SubChunkDeduplicator,
    "sparse-indexing": SparseIndexingDeduplicator,
}


@pytest.fixture(scope="module")
def runs():
    files = tiny_corpus().files()
    config = DedupConfig(ecs=512, sd=16)
    out = {}
    for name, cls in ALGOS.items():
        dedup = cls(config)
        out[name] = (dedup, dedup.process(files))
    return out


def test_claim_1_mhd_least_metadata(runs):
    """Section V-A / Fig. 7(d): BF-MHD's MetaDataRatio is the lowest."""
    mhd = runs["bf-mhd"][1].metadata_ratio
    for name, (_d, stats) in runs.items():
        assert mhd <= stats.metadata_ratio, name


def test_claim_2_mhd_best_real_der(runs):
    """Fig. 8(b): BF-MHD achieves the best real DER."""
    mhd = runs["bf-mhd"][1].real_der
    for name, (_d, stats) in runs.items():
        assert mhd >= stats.real_der, name


def test_claim_3_bimodal_worst_data_der(runs):
    """Fig. 8(a): Bimodal finds the fewest duplicates."""
    bim = runs["bimodal"][1].data_only_der
    for name, (_d, stats) in runs.items():
        assert bim <= stats.data_only_der, name


def test_claim_4_hhr_cost_below_worst_case(runs):
    """Fig. 10(b): HHR's actual disk reads stay far below 3L."""
    dedup, stats = runs["bf-mhd"]
    assert dedup.hhr_reads < stats.duplicate_slices
    assert dedup.hhr_reads < 3 * stats.duplicate_slices


def test_claim_5_metadata_grows_as_n_over_sd(runs):
    """Table I: MHD hooks ~ N/SD vs CDC's N."""
    mhd = runs["bf-mhd"][1]
    cdc = runs["cdc"][1]
    sd = mhd.config.sd
    # CDC mints one hook per unique chunk; MHD roughly one per SD.
    assert mhd.hook_inodes < cdc.hook_inodes / (sd / 4)


def test_every_run_restores_exactly(runs):
    files = tiny_corpus().files()
    for name, (dedup, _stats) in runs.items():
        for f in files[:: max(1, len(files) // 15)]:
            assert dedup.restore(f.file_id) == f.data, name
