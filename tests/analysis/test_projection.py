"""Tests for the paper-scale projection."""

import pytest

from repro.analysis import PAPER_CORPUS, ScaleDescription, project, projected_metadata_ratios


class TestScaleDescription:
    def test_paper_corpus_constants(self):
        assert PAPER_CORPUS.total_bytes == 10**12
        assert PAPER_CORPUS.sd == 1000
        assert PAPER_CORPUS.files == 196

    def test_validation(self):
        with pytest.raises(ValueError):
            ScaleDescription(0, 4.0, 1000, 10, 1024, 16)
        with pytest.raises(ValueError):
            ScaleDescription(100, 0.5, 1000, 10, 1024, 16)
        with pytest.raises(ValueError):
            ScaleDescription(100, 4.0, 0, 10, 1024, 16)


class TestProject:
    def test_byte_conservation(self):
        p = project(PAPER_CORPUS)
        total = (p.n + p.d) * PAPER_CORPUS.ecs
        assert total == pytest.approx(PAPER_CORPUS.total_bytes, rel=0.01)

    def test_der_recovered(self):
        p = project(PAPER_CORPUS)
        assert (p.n + p.d) / p.n == pytest.approx(PAPER_CORPUS.data_only_der, rel=0.01)

    def test_l_from_dad(self):
        p = project(PAPER_CORPUS)
        dup_bytes = PAPER_CORPUS.total_bytes * (1 - 1 / PAPER_CORPUS.data_only_der)
        assert p.l == pytest.approx(dup_bytes / PAPER_CORPUS.dad_bytes, rel=0.01)


class TestProjectedRatios:
    def test_mhd_lands_in_the_papers_band(self):
        """The paper reports BF-MHD max metadata ~0.2% of input; the
        projection from its own corpus characteristics must land within
        a small factor of that."""
        ratios = projected_metadata_ratios(PAPER_CORPUS)
        assert 0.0002 / 4 < ratios["bf-mhd"] < 0.002, ratios["bf-mhd"]

    def test_subchunk_same_order_as_paper(self):
        """Paper: SubChunk ~1.7%."""
        ratios = projected_metadata_ratios(PAPER_CORPUS)
        assert 0.017 / 4 < ratios["subchunk"] < 0.017 * 4

    def test_ordering_mhd_smallest(self):
        ratios = projected_metadata_ratios(PAPER_CORPUS)
        assert ratios["bf-mhd"] == min(ratios.values())

    def test_smaller_sd_costs_more_metadata(self):
        from dataclasses import replace

        low = projected_metadata_ratios(replace(PAPER_CORPUS, sd=250))
        high = projected_metadata_ratios(PAPER_CORPUS)
        assert low["bf-mhd"] > high["bf-mhd"]
