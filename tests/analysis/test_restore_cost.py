"""Tests for restore-cost analysis."""

import numpy as np
import pytest

from repro.analysis import DeviceModel, measure_restore_cost
from repro.baselines import CDCDeduplicator
from repro.core import DedupConfig, MHDDeduplicator
from repro.workloads import BackupFile, tiny_corpus


def rand(n, seed):
    return np.random.default_rng(seed).integers(0, 256, size=n, dtype=np.uint8).tobytes()


def test_fresh_file_costs_one_extent():
    d = MHDDeduplicator(DedupConfig(ecs=512, sd=4, window=16))
    data = rand(60_000, 1)
    d.process([BackupFile("a", data)])
    cost = measure_restore_cost(d, ["a"])
    assert cost.files == 1
    assert cost.extents == 1  # fully coalesced
    assert cost.restored_bytes == len(data)
    assert cost.slowdown == pytest.approx(1.0)


def test_fragmented_restore_costs_more():
    d = MHDDeduplicator(DedupConfig(ecs=512, sd=4, window=16))
    base = rand(120_000, 2)
    probe = (
        rand(4_000, 3) + base[10_000:40_000] + rand(4_000, 4) + base[70_000:100_000]
    )
    d.process([BackupFile("base", base), BackupFile("probe", probe)])
    cost = measure_restore_cost(d, ["probe"])
    assert cost.extents >= 3
    assert cost.distinct_containers == 2
    assert cost.slowdown > 1.0


def test_device_model_scaling():
    d = MHDDeduplicator(DedupConfig(ecs=512, sd=4, window=16))
    d.process([BackupFile("a", rand(50_000, 5))])
    slow = measure_restore_cost(d, ["a"], DeviceModel(seek_s=0.05))
    fast = measure_restore_cost(d, ["a"], DeviceModel(seek_s=0.001))
    assert slow.seconds > fast.seconds
    assert slow.throughput_bps < fast.throughput_bps


def test_mhd_restores_less_fragmented_than_cdc():
    """Coalescing pays off: MHD's recipes have fewer extents per MB
    than CDC's on the same corpus."""
    files = tiny_corpus().files()
    ids = [f.file_id for f in files]
    mhd = MHDDeduplicator(DedupConfig(ecs=1024, sd=8))
    mhd.process(files)
    cdc = CDCDeduplicator(DedupConfig(ecs=1024, sd=8))
    cdc.process(files)
    mhd_cost = measure_restore_cost(mhd, ids)
    cdc_cost = measure_restore_cost(cdc, ids)
    assert mhd_cost.restored_bytes == cdc_cost.restored_bytes
    assert mhd_cost.extents <= cdc_cost.extents


def test_extents_per_mb_consistent():
    d = MHDDeduplicator(DedupConfig(ecs=512, sd=4, window=16))
    d.process([BackupFile("a", rand(2 << 20, 6))])
    cost = measure_restore_cost(d, ["a"])
    assert cost.extents_per_mb == pytest.approx(cost.extents / 2, rel=0.01)
    assert cost.extents_per_file == cost.extents
