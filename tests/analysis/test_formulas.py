"""Tests for the Table I / Table II closed-form models."""

import pytest

from repro.analysis import ALGORITHMS, CorpusParams, table1_metadata, table2_disk_accesses


@pytest.fixture
def params():
    # A plausible corpus: 1000 files, 1M unique chunks, 3M dups,
    # 50k duplicate slices, SD=1000 (the paper's setting).
    return CorpusParams(f=1000, n=1_000_000, d=3_000_000, l=50_000, sd=1000)


def test_params_validation():
    with pytest.raises(ValueError):
        CorpusParams(f=-1, n=0, d=0, l=0, sd=2)
    with pytest.raises(ValueError):
        CorpusParams(f=0, n=0, d=0, l=0, sd=1)


def test_params_from_trace():
    from repro.workloads import TraceStats

    trace = TraceStats(
        total_bytes=100,
        total_chunks=10,
        unique_chunks=6,
        duplicate_chunks=4,
        unique_bytes=60,
        duplicate_bytes=40,
        duplicate_slices=2,
        total_files=3,
        partial_files=2,
    )
    p = CorpusParams.from_trace(trace, sd=16)
    assert (p.f, p.n, p.d, p.l, p.sd) == (2, 6, 4, 2, 16)


class TestTable1:
    def test_all_algorithms_present(self, params):
        t = table1_metadata(params)
        assert set(t) == set(ALGORITHMS)

    def test_cdc_matches_paper_closed_form(self, params):
        t = table1_metadata(params)
        f, n = params.f, params.n
        assert t["cdc"]["summary"] == t["cdc"]["summary_paper"] == 512 * f + 312 * n

    def test_bimodal_matches_paper_closed_form(self, params):
        t = table1_metadata(params)
        f, n, l, sd = params.f, params.n, params.l, params.sd
        expected = 512 * f + 312 * n / sd + 624 * l * (sd - 1)
        assert t["bimodal"]["summary"] == pytest.approx(expected)
        assert t["bimodal"]["summary_paper"] == pytest.approx(expected)

    def test_mhd_smallest_at_high_sd(self, params):
        """The paper's headline: with SD high, MHD needs the least."""
        t = table1_metadata(params)
        mhd = t["bf-mhd"]["summary"]
        assert mhd < t["cdc"]["summary"]
        assert mhd < t["subchunk"]["summary"]
        assert mhd < t["bimodal"]["summary"]

    def test_mhd_rows(self, params):
        t = table1_metadata(params)
        r = t["bf-mhd"]
        assert r["chunk_inodes"] == params.f
        assert r["hook_inodes"] == params.n / params.sd
        assert r["manifest_bytes"] == 74 * params.n / params.sd + 148 * params.l

    def test_subchunk_manifest_dominated_by_36n(self, params):
        t = table1_metadata(params)
        assert t["subchunk"]["manifest_bytes"] >= 36 * params.n

    def test_summary_scales_linearly_in_n(self):
        small = CorpusParams(f=10, n=1000, d=100, l=5, sd=16)
        big = CorpusParams(f=10, n=2000, d=100, l=5, sd=16)
        t_small, t_big = table1_metadata(small), table1_metadata(big)
        for algo in ALGORITHMS:
            assert t_big[algo]["summary"] > t_small[algo]["summary"]


class TestTable2:
    def test_cdc_summaries_match_row_sums(self, params):
        t = table2_disk_accesses(params)
        assert t["cdc"]["sum_no_bloom"] == pytest.approx(t["cdc"]["summary_no_bloom"])
        assert t["cdc"]["sum_bloom"] == pytest.approx(t["cdc"]["summary_bloom"])

    def test_mhd_summaries_match_row_sums(self, params):
        t = table2_disk_accesses(params)
        assert t["bf-mhd"]["sum_no_bloom"] == pytest.approx(
            t["bf-mhd"]["summary_no_bloom"]
        )
        assert t["bf-mhd"]["sum_bloom"] == pytest.approx(t["bf-mhd"]["summary_bloom"])

    def test_mhd_no_big_queries(self, params):
        t = table2_disk_accesses(params)
        assert t["bf-mhd"]["big_queries"] == 0
        assert t["subchunk"]["big_queries"] > 0
        assert t["bimodal"]["big_queries"] > 0

    def test_mhd_fewest_accesses_when_3l_below_d_over_sd(self):
        """Paper: when 3L < D/SD, MHD needs fewest disk accesses."""
        p = CorpusParams(f=1000, n=1_000_000, d=9_000_000, l=2_000, sd=1000)
        assert 3 * p.l < p.d / p.sd
        t = table2_disk_accesses(p)
        mhd = t["bf-mhd"]["sum_bloom"]
        assert mhd < t["subchunk"]["sum_bloom"]
        assert mhd < t["bimodal"]["sum_bloom"]
        assert mhd < t["cdc"]["sum_bloom"]

    def test_bloom_reduces_every_algorithm(self, params):
        t = table2_disk_accesses(params)
        for algo in ALGORITHMS:
            assert t[algo]["sum_bloom"] <= t[algo]["sum_no_bloom"]

    def test_hhr_cost_rows(self, params):
        """MHD pays 2L chunk reloads + L manifest updates (the 3L bound)."""
        t = table2_disk_accesses(params)
        r = t["bf-mhd"]
        assert r["chunk_in"] == 2 * params.l
        assert r["manifest_out"] == params.f + params.l
