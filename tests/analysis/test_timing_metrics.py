"""Tests for the device timing model, metrics helpers and report rendering."""

import pytest

from repro.analysis import (
    DeviceModel,
    evaluate,
    fmt,
    format_series,
    format_table,
    sweep_ecs,
)
from repro.baselines import CDCDeduplicator
from repro.core import DedupConfig, MHDDeduplicator
from repro.workloads import tiny_corpus


@pytest.fixture(scope="module")
def corpus():
    return tiny_corpus().files()[:50]


class TestDeviceModel:
    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ValueError):
            DeviceModel(seek_s=0)
        with pytest.raises(ValueError):
            DeviceModel(disk_bw=-1)

    def test_copy_time_components(self):
        dm = DeviceModel(seek_s=0.01, disk_bw=1e6)
        assert dm.copy_time(2_000_000, 10) == pytest.approx(10 * 0.01 + 2.0)

    def test_dedup_time_positive_and_decomposes(self, corpus):
        dm = DeviceModel()
        run = evaluate(MHDDeduplicator(DedupConfig(ecs=1024, sd=8)), corpus, dm)
        s = run.stats
        assert dm.dedup_time(s) == pytest.approx(dm.cpu_time(s) + dm.io_time(s))
        assert run.dedup_seconds > 0

    def test_throughput_ratio_below_one(self, corpus):
        """Dedup must be slower than plain copying (paper band 0.2-0.5)."""
        run = evaluate(MHDDeduplicator(DedupConfig(ecs=1024, sd=8)), corpus)
        assert 0 < run.throughput_ratio < 1.0

    def test_faster_disk_raises_cpu_share(self, corpus):
        stats = MHDDeduplicator(DedupConfig(ecs=1024, sd=8)).process(corpus)
        slow = DeviceModel(seek_s=0.02)
        fast = DeviceModel(seek_s=0.001)
        assert fast.dedup_time(stats) < slow.dedup_time(stats)

    def test_write_throughput(self, corpus):
        run = evaluate(CDCDeduplicator(DedupConfig(ecs=1024, sd=8)), corpus)
        dm = DeviceModel()
        assert dm.write_throughput(run.stats) == pytest.approx(
            run.stats.input_bytes / run.dedup_seconds
        )


class TestSweep:
    def test_sweep_ecs_runs_each_point(self, corpus):
        runs = sweep_ecs(
            CDCDeduplicator, corpus, ecs_values=[512, 1024], sd=8, window=16
        )
        assert [r.ecs for r in runs] == [512, 1024]
        assert all(r.stats.input_files == len(corpus) for r in runs)

    def test_smaller_ecs_more_metadata(self, corpus):
        runs = sweep_ecs(
            CDCDeduplicator, corpus, ecs_values=[512, 4096], sd=8, window=16
        )
        assert runs[0].metadata_ratio > runs[1].metadata_ratio


class TestReport:
    def test_fmt_ints_and_floats(self):
        assert fmt(1234567) == "1,234,567"
        assert fmt(0.12345, 3) == "0.123"
        assert fmt(1.5e9) == "1.500e+09"
        assert fmt(0) == "0"
        assert fmt("abc") == "abc"

    def test_format_table_alignment(self):
        out = format_table(["a", "bee"], [[1, 2.5], [33, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bee" in lines[2]
        assert len(lines) == 6

    def test_format_table_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out

    def test_format_series(self):
        s = format_series("mhd", [512, 1024], [0.1, 0.2], "ECS", "ratio")
        assert s.startswith("mhd [ECS -> ratio]:")
        assert "(512, 0.100)" in s


class TestAsciiChart:
    def test_empty(self):
        from repro.analysis import ascii_chart

        assert ascii_chart({}) == "(empty chart)"

    def test_single_point(self):
        from repro.analysis import ascii_chart

        out = ascii_chart({"s": [(1.0, 2.0)]})
        assert "A=s" in out
        assert "A" in out.splitlines()[1:][0] or any(
            "A" in line for line in out.splitlines()
        )

    def test_markers_and_extents(self):
        from repro.analysis import ascii_chart

        out = ascii_chart(
            {"one": [(0, 0), (10, 5)], "two": [(5, 2)]},
            width=20,
            height=5,
            x_label="ecs",
            y_label="der",
        )
        assert "A=one" in out and "B=two" in out
        assert "(ecs)" in out
        assert out.splitlines()[0].startswith("der")
        # corner points land on the grid edges
        grid_lines = [l for l in out.splitlines() if l.startswith("  |")]
        assert any("A" in l for l in grid_lines)
        assert any("B" in l for l in grid_lines)

    def test_flat_series_no_crash(self):
        from repro.analysis import ascii_chart

        out = ascii_chart({"flat": [(1, 3), (2, 3), (3, 3)]})
        assert "A=flat" in out
