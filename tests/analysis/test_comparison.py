"""Tests for ranking and Pareto-front helpers."""


from repro.analysis import AlgorithmRun, dominates, pareto_front, rank_by
from repro.core import CpuWork, DedupConfig, DedupStats
from repro.storage import IOSnapshot


def run(name, metadata_ratio, real_der):
    """Synthesise an AlgorithmRun at a chosen (cost, benefit) point."""
    input_bytes = 1_000_000
    output = int(input_bytes / real_der)
    meta = int(metadata_ratio * input_bytes)
    stats = DedupStats(
        algorithm=name,
        config=DedupConfig(ecs=1024, sd=8),
        input_bytes=input_bytes,
        input_files=1,
        stored_chunk_bytes=output - meta,
        manifest_bytes=meta,
        hook_bytes=0,
        file_manifest_bytes=0,
        chunk_inodes=0,
        manifest_inodes=0,
        hook_inodes=0,
        file_manifest_inodes=0,
        unique_chunks=1,
        duplicate_chunks=0,
        duplicate_slices=0,
        io=IOSnapshot(),
        cpu=CpuWork(),
        peak_ram_bytes=1,
    )
    return AlgorithmRun(stats=stats, throughput_ratio=0.1, dedup_seconds=1.0)


A = run("a", 0.01, 3.0)  # cheap and good
B = run("b", 0.02, 2.0)  # dominated by A
C = run("c", 0.03, 4.0)  # expensive but best DER
D = run("d", 0.01, 3.0)  # ties A exactly


class TestRank:
    def test_rank_by_attribute(self):
        out = rank_by([A, B, C], "real_der")
        assert [r.name for r in out] == ["c", "a", "b"]

    def test_rank_ascending(self):
        out = rank_by([A, B, C], "metadata_ratio", descending=False)
        assert [r.name for r in out] == ["a", "b", "c"]

    def test_rank_by_callable(self):
        out = rank_by([A, C], lambda r: r.real_der / r.metadata_ratio)
        assert out[0].name == "a"


class TestDominates:
    cost = staticmethod(lambda r: r.metadata_ratio)
    benefit = staticmethod(lambda r: r.real_der)

    def test_strict_domination(self):
        assert dominates(A, B, self.cost, self.benefit)
        assert not dominates(B, A, self.cost, self.benefit)

    def test_tradeoff_no_domination(self):
        assert not dominates(A, C, self.cost, self.benefit)
        assert not dominates(C, A, self.cost, self.benefit)

    def test_exact_tie_does_not_dominate(self):
        assert not dominates(A, D, self.cost, self.benefit)


class TestParetoFront:
    def test_front_drops_dominated(self):
        front = pareto_front([A, B, C])
        assert [r.name for r in front] == ["a", "c"]

    def test_front_sorted_by_cost(self):
        front = pareto_front([C, A])
        assert [r.name for r in front] == ["a", "c"]

    def test_ties_both_kept(self):
        names = {r.name for r in pareto_front([A, D])}
        assert names == {"a", "d"}

    def test_real_grid(self):
        """On a real mini-grid the front is non-empty and every member
        is undominated."""
        from repro.baselines import CDCDeduplicator
        from repro.core import MHDDeduplicator
        from repro.analysis import evaluate
        from repro.workloads import tiny_corpus

        files = tiny_corpus().files()[:60]
        runs = [
            evaluate(cls(DedupConfig(ecs=ecs, sd=8)), files)
            for cls in (MHDDeduplicator, CDCDeduplicator)
            for ecs in (512, 2048)
        ]
        front = pareto_front(runs)
        assert front
        cost = lambda r: r.metadata_ratio
        benefit = lambda r: r.real_der
        for member in front:
            assert not any(
                dominates(other, member, cost, benefit)
                for other in runs
                if other is not member
            )
