"""Fixture tests for the dedupcheck rule pack.

Each rule gets one violating and one clean fixture (same virtual
package path, so only the code differs), plus applicability tests for
the path-based exemptions and a self-check that the real source tree
is DDC-clean.
"""

from pathlib import Path

import pytest

from tools.dedupcheck import ALL_RULES, Violation, check_paths, check_source
from tools.dedupcheck.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

#: (rule code, fixture stem, virtual path the fixture pretends to live at)
CASES = [
    ("DDC001", "ddc001", "src/repro/baselines/newalgo.py"),
    ("DDC002", "ddc002", "src/repro/baselines/newalgo.py"),
    ("DDC003", "ddc003", "src/repro/baselines/newalgo.py"),
    ("DDC004", "ddc004", "src/repro/chunking/newchunker.py"),
    ("DDC005", "ddc005", "src/repro/storage/newstore.py"),
    ("DDC006", "ddc006", "src/repro/baselines/newalgo.py"),
    ("DDC007", "ddc007", "src/repro/obs/newsink.py"),
]


def run(fixture: str, virtual_path: str) -> list[Violation]:
    source = (FIXTURES / fixture).read_text()
    return check_source(source, virtual_path, ALL_RULES)


@pytest.mark.parametrize(("code", "stem", "path"), CASES)
def test_violating_fixture_flagged(code, stem, path):
    """The bad fixture triggers its rule (and only that rule)."""
    violations = run(f"{stem}_bad.py", path)
    assert violations, f"{stem}_bad.py should violate {code}"
    assert {v.code for v in violations} == {code}
    for v in violations:
        assert v.path == path
        assert v.line > 0


@pytest.mark.parametrize(("code", "stem", "path"), CASES)
def test_clean_fixture_passes(code, stem, path):
    """The ok fixture is clean at the same virtual path."""
    assert run(f"{stem}_ok.py", path) == []


def test_ddc001_exempt_inside_hashing_package():
    """The same hashlib use is legal under repro/hashing/."""
    assert run("ddc001_bad.py", "src/repro/hashing/newdigest.py") == []


def test_ddc002_exempt_inside_hhr():
    """Entry mutation is the HHR/SHM machinery's job."""
    for allowed in ("src/repro/core/hhr.py", "src/repro/core/shm.py"):
        assert run("ddc002_bad.py", allowed) == []


def test_ddc004_only_polices_algorithm_packages():
    """Workload generators may use seeded randomness APIs freely."""
    assert run("ddc004_bad.py", "src/repro/workloads/machine.py") == []


def test_ddc005_ignores_cold_paths():
    """The perf lint only covers the hot-path packages."""
    assert run("ddc005_bad.py", "src/repro/analysis/report.py") == []


def test_ddc007_only_polices_obs():
    """The same code is legal outside the observation leaf."""
    assert run("ddc007_bad.py", "src/repro/analysis/newthing.py") == []


def test_ddc006_exempt_in_base():
    """core/base.py owns the counters and their helpers."""
    assert run("ddc006_bad.py", "src/repro/core/base.py") == []


def test_violation_rendering():
    """Output lines follow the path:line:col: CODE message shape."""
    (violation, *_rest) = run("ddc005_bad.py", "src/repro/storage/x.py")
    rendered = violation.render()
    assert rendered.startswith("src/repro/storage/x.py:")
    assert " DDC005 " in rendered


def test_source_tree_is_ddc_clean():
    """Self-check: the shipped source tree has zero violations."""
    violations = check_paths([str(REPO_ROOT / "src" / "repro")], ALL_RULES)
    assert violations == [], "\n".join(v.render() for v in violations)


def test_cli_reports_and_exits_nonzero(tmp_path, capsys):
    """The module CLI prints violations and fails the build."""
    bad = tmp_path / "repro" / "core" / "newalgo.py"
    bad.parent.mkdir(parents=True)
    bad.write_text((FIXTURES / "ddc001_bad.py").read_text())
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "DDC001" in out

    assert main([str(REPO_ROOT / "src" / "repro" / "hashing")]) == 0


def test_cli_list_rules(capsys):
    """--list prints the full catalogue."""
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.code in out
    assert len(ALL_RULES) == 7
