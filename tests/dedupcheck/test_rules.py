"""Fixture tests for the dedupcheck rule pack.

Each rule gets one violating and one clean fixture (same virtual
package path, so only the code differs), plus applicability tests for
the path-based exemptions and a self-check that the real source tree
is DDC-clean.
"""

from pathlib import Path

import pytest

from tools.dedupcheck import ALL_RULES, Violation, check_paths, check_source
from tools.dedupcheck.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

#: (rule code, fixture stem, virtual path the fixture pretends to live at)
CASES = [
    ("DDC001", "ddc001", "src/repro/baselines/newalgo.py"),
    ("DDC002", "ddc002", "src/repro/baselines/newalgo.py"),
    ("DDC003", "ddc003", "src/repro/baselines/newalgo.py"),
    ("DDC004", "ddc004", "src/repro/chunking/newchunker.py"),
    ("DDC005", "ddc005", "src/repro/storage/newstore.py"),
    ("DDC006", "ddc006", "src/repro/baselines/newalgo.py"),
    ("DDC007", "ddc007", "src/repro/obs/newsink.py"),
    ("DDC007", "ddc007_slo", "src/repro/obs/slo.py"),
    ("DDC007", "ddc007_profile", "src/repro/obs/profile.py"),
    ("DDC101", "ddc101", "src/repro/service/newloop.py"),
    ("DDC102", "ddc102", "src/repro/service/newlane.py"),
    ("DDC103", "ddc103", "src/repro/service/newserver.py"),
    ("DDC104", "ddc104", "src/repro/service/newledger.py"),
    ("DDC105", "ddc105", "src/repro/service/newnotify.py"),
    ("DDC106", "ddc106", "src/repro/service/newconn.py"),
]


def run(fixture: str, virtual_path: str) -> list[Violation]:
    source = (FIXTURES / fixture).read_text()
    return check_source(source, virtual_path, ALL_RULES)


@pytest.mark.parametrize(("code", "stem", "path"), CASES)
def test_violating_fixture_flagged(code, stem, path):
    """The bad fixture triggers its rule (and only that rule)."""
    violations = run(f"{stem}_bad.py", path)
    assert violations, f"{stem}_bad.py should violate {code}"
    assert {v.code for v in violations} == {code}
    for v in violations:
        assert v.path == path
        assert v.line > 0


@pytest.mark.parametrize(("code", "stem", "path"), CASES)
def test_clean_fixture_passes(code, stem, path):
    """The ok fixture is clean at the same virtual path."""
    assert run(f"{stem}_ok.py", path) == []


def test_ddc001_exempt_inside_hashing_package():
    """The same hashlib use is legal under repro/hashing/."""
    assert run("ddc001_bad.py", "src/repro/hashing/newdigest.py") == []


def test_ddc002_exempt_inside_hhr():
    """Entry mutation is the HHR/SHM machinery's job."""
    for allowed in ("src/repro/core/hhr.py", "src/repro/core/shm.py"):
        assert run("ddc002_bad.py", allowed) == []


def test_ddc004_only_polices_algorithm_packages():
    """Workload generators may use seeded randomness APIs freely."""
    assert run("ddc004_bad.py", "src/repro/workloads/machine.py") == []


def test_ddc005_ignores_cold_paths():
    """The perf lint only covers the hot-path packages."""
    assert run("ddc005_bad.py", "src/repro/analysis/report.py") == []


def test_ddc007_only_polices_obs():
    """The same code is legal outside the observation leaf."""
    assert run("ddc007_bad.py", "src/repro/analysis/newthing.py") == []


def test_ddc006_exempt_in_base():
    """core/base.py owns the counters and their helpers."""
    assert run("ddc006_bad.py", "src/repro/core/base.py") == []


def test_ddc102_needs_a_submission_site():
    """The same waits are legal when nothing routes them to the fleet."""
    source = (FIXTURES / "ddc102_bad.py").read_text()
    source = source.replace("return lane.submit(self.run)", "return None")
    assert check_source(source, "src/repro/service/newlane.py", ALL_RULES) == []


def test_ddc104_and_ddc106_only_police_the_service():
    """Both rules are scoped to repro/service/ handler code."""
    assert run("ddc104_bad.py", "src/repro/analysis/report.py") == []
    assert run("ddc106_bad.py", "src/repro/analysis/report.py") == []


def test_pr6_deadlock_revert_is_caught():
    """Reverting the PR 6 starvation fix trips DDC102.

    The fixture is the pre-fix server shape: a lane task taking the
    tenant lock untimed on a fleet thread.  The linter must fail it
    (non-zero CLI exit) while the real source tree stays clean.
    """
    violations = run("pr6_deadlock_revert.py", "src/repro/service/server.py")
    assert violations, "the reverted deadlock must be flagged"
    assert {v.code for v in violations} == {"DDC102"}
    assert any("Session.open" in v.message for v in violations)


def test_violation_rendering():
    """Output lines follow the path:line:col: CODE message shape."""
    (violation, *_rest) = run("ddc005_bad.py", "src/repro/storage/x.py")
    rendered = violation.render()
    assert rendered.startswith("src/repro/storage/x.py:")
    assert " DDC005 " in rendered


def test_source_tree_is_ddc_clean():
    """Self-check: the shipped source tree has zero violations."""
    violations = check_paths([str(REPO_ROOT / "src" / "repro")], ALL_RULES)
    assert violations == [], "\n".join(v.render() for v in violations)


def test_cli_reports_and_exits_nonzero(tmp_path, capsys):
    """The module CLI prints violations and fails the build."""
    bad = tmp_path / "repro" / "core" / "newalgo.py"
    bad.parent.mkdir(parents=True)
    bad.write_text((FIXTURES / "ddc001_bad.py").read_text())
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "DDC001" in out

    assert main([str(REPO_ROOT / "src" / "repro" / "hashing")]) == 0


def test_cli_list_rules(capsys):
    """--list prints the full catalogue, sorted and stable."""
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.code in out
    assert len(ALL_RULES) == 13
    assert "DDC000" in out  # the suppression pseudo-rule is documented
    codes = [line.split()[0] for line in out.strip().splitlines()]
    assert codes == sorted(codes)
    # Stable: a second render is byte-identical (usable in docs).
    assert main(["--list"]) == 0
    assert capsys.readouterr().out == out


class TestSuppressions:
    BAD = (FIXTURES / "ddc104_bad.py").read_text()
    PATH = "src/repro/service/newledger.py"

    def test_inline_suppression_silences_the_finding(self):
        source = self.BAD.replace(
            ".inc(n)", ".inc(n)  # ddc: ignore[DDC104]"
        )
        assert check_source(source, self.PATH, ALL_RULES) == []

    def test_unused_suppression_is_itself_an_error(self):
        source = '"""Clean module."""\n\nVALUE = 1  # ddc: ignore[DDC104]\n'
        violations = check_source(source, self.PATH, ALL_RULES)
        assert [v.code for v in violations] == ["DDC000"]

    def test_suppression_is_code_specific(self):
        """Suppressing the wrong code silences nothing and is unused."""
        source = self.BAD.replace(
            ".inc(n)", ".inc(n)  # ddc: ignore[DDC101]"
        )
        violations = check_source(source, self.PATH, ALL_RULES)
        assert {v.code for v in violations} == {"DDC000", "DDC104"}


class TestBaseline:
    def _scan_tree(self, tmp_path):
        bad = tmp_path / "repro" / "service" / "newledger.py"
        bad.parent.mkdir(parents=True)
        bad.write_text((FIXTURES / "ddc104_bad.py").read_text())
        return bad

    def test_round_trip_silences_known_findings(self, tmp_path, capsys):
        self._scan_tree(tmp_path)
        baseline = tmp_path / "baseline.txt"
        assert main([str(tmp_path)]) == 1
        capsys.readouterr()
        assert (
            main([str(tmp_path), "--baseline", str(baseline), "--update-baseline"])
            == 0
        )
        capsys.readouterr()
        # Grandfathered findings no longer fail the run.
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 0

    def test_growth_beyond_the_baseline_fails(self, tmp_path, capsys):
        bad = self._scan_tree(tmp_path)
        baseline = tmp_path / "baseline.txt"
        main([str(tmp_path), "--baseline", str(baseline), "--update-baseline"])
        capsys.readouterr()
        bad.write_text(
            bad.read_text()
            + "\n\nclass More:\n    def poke(self, tenant):\n"
            + "        return tenant.metrics\n"
        )
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 1
        err = capsys.readouterr().err
        assert "beyond the baseline" in err

    def test_stale_entries_are_reported_prunable(self, tmp_path, capsys):
        bad = self._scan_tree(tmp_path)
        baseline = tmp_path / "baseline.txt"
        main([str(tmp_path), "--baseline", str(baseline), "--update-baseline"])
        capsys.readouterr()
        bad.write_text('"""Fixed."""\n')
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 0
        err = capsys.readouterr().err
        assert "stale baseline entry" in err

    def test_committed_baseline_is_empty(self):
        """The repo's own baseline never grows — src stays clean."""
        committed = REPO_ROOT / "tools" / "dedupcheck" / "baseline.txt"
        entries = [
            line
            for line in committed.read_text().splitlines()
            if line.strip() and not line.startswith("#")
        ]
        assert entries == []


def test_sarif_output_is_valid(tmp_path):
    """--format sarif emits a well-formed SARIF 2.1.0 log."""
    import json

    bad = tmp_path / "repro" / "service" / "newledger.py"
    bad.parent.mkdir(parents=True)
    bad.write_text((FIXTURES / "ddc104_bad.py").read_text())
    out = tmp_path / "report.sarif"
    assert main([str(tmp_path), "--format", "sarif", "--output", str(out)]) == 1
    log = json.loads(out.read_text())
    assert log["version"] == "2.1.0"
    (run_obj,) = log["runs"]
    rule_ids = {r["id"] for r in run_obj["tool"]["driver"]["rules"]}
    assert {rule.code for rule in ALL_RULES} <= rule_ids
    results = run_obj["results"]
    assert results and all(r["ruleId"] == "DDC104" for r in results)
    loc = results[0]["locations"][0]["physicalLocation"]
    assert loc["region"]["startLine"] > 0
    assert loc["region"]["startColumn"] > 0  # SARIF columns are 1-based
