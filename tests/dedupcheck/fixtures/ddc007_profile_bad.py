"""A profiler that drives the pipeline it is meant to sample."""

from repro.core.base import Deduplicator


class WarmupSampler:
    """Re-runs ingest "to have something to profile"."""

    def __init__(self, dedup: Deduplicator) -> None:
        self.dedup = dedup
        self.samples = 0

    def start(self, files) -> None:
        """Warm the pipeline by running it — a write, not a sample."""
        self.dedup.process(files)
        self.samples += 1
