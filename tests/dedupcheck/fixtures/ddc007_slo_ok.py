"""An SLO engine that only counts outcomes and computes burn rates."""

import threading


class CountingSLOEngine:
    """Pure observation: tallies passed to it, ratios computed from them."""

    def __init__(self, objective: float) -> None:
        self.objective = objective
        self.bad = 0
        self.total = 0
        self._lock = threading.Lock()

    def record_session(self, ok: bool) -> None:
        """Count one finished session outcome."""
        with self._lock:
            self.total += 1
            if not ok:
                self.bad += 1

    def burn_rate(self) -> float:
        """Error-budget consumption rate over the recorded window."""
        with self._lock:
            if self.total == 0:
                return 0.0
            return (self.bad / self.total) / (1.0 - self.objective)
