"""Clean under DDC105: every task handle is retained and consumed."""

import asyncio


class Notifier:
    def __init__(self):
        self.inflight = set()

    async def fire(self, payload):
        task = asyncio.create_task(self.push(payload))
        self.inflight.add(task)
        await task
