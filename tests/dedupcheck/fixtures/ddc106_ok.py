"""Clean under DDC106: every caught error answers, or the peer is gone."""


class Connection:
    async def serve_one(self, request):
        try:
            return self.dispatch(request)
        except ValueError as e:
            self.send({"ok": False, "error": "bad_request", "message": str(e)})
        except ConnectionResetError:
            pass  # peer hung up; there is no one left to answer

    async def cleanup(self):
        try:
            await self.drain()
        except (ConnectionError, TimeoutError):
            pass
