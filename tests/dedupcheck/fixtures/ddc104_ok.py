"""Clean under DDC104: shared metrics move through the locked helpers."""


class Accountant:
    def __init__(self):
        self.metrics = {}

    def record(self, tenant, n):
        tenant.inc_metric("session.bytes", n)

    def report(self, tenant):
        return tenant.metrics_snapshot()

    def local(self, n):
        # An object's own registry is not shared state.
        self.metrics["session.bytes"] = n
