"""A profiler that only samples interpreter state: stdlib in, text out."""

import sys
import threading


class IdleSampler:
    """Counts frames per thread without touching the observed program."""

    def __init__(self) -> None:
        self.samples: dict[int, int] = {}
        self._lock = threading.Lock()

    def sample_once(self) -> None:
        """Snapshot every thread's current frame depth."""
        frames = sys._current_frames()
        with self._lock:
            for thread_id, frame in frames.items():
                depth = 0
                while frame is not None:
                    depth += 1
                    frame = frame.f_back
                self.samples[thread_id] = depth
