"""A sink that drives the pipeline it is supposed to observe."""

from repro.storage import DiskModel

from ..core.base import Deduplicator


class MeddlingSink:
    """Re-runs ingest and meters phantom I/O from inside a sink."""

    def emit_span(self, event, dedup: Deduplicator, disk: DiskModel) -> None:
        """Mutate observed state on every span."""
        dedup.process([])
        disk.record("chunk", "read", 1)

    def emit_metrics(self, registry) -> None:
        """Nothing to do."""

    def close(self) -> None:
        """Nothing to do."""
