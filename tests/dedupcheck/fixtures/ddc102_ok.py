"""Clean under DDC102: fleet-side waits are bounded or lock-scoped."""


class Worker:
    def start(self, lane):
        return lane.submit(self.run)

    def run(self):
        if not self.tenant.lock.acquire(timeout=30.0):
            raise TimeoutError("tenant busy")
        try:
            return self.upstream.result(timeout=30.0)
        finally:
            self.tenant.lock.release()

    def snapshot(self):
        # A bounded critical section is mutual exclusion, not waiting.
        with self.lock:
            return dict(self.counters)
