"""Clean under DDC103: copy under the lock, await after release."""


class Server:
    async def flush(self):
        with self.metrics_lock:
            payload = self.render()
        await self.send(payload)

    async def flush_async_lock(self):
        # asyncio locks are made to be held across suspension points.
        async with self.state_lock:
            await self.send(self.render())
