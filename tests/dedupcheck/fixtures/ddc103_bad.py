"""Violates DDC103: awaits while holding a threading lock."""


class Server:
    async def flush(self):
        with self.metrics_lock:
            payload = self.render()
            await self.send(payload)
