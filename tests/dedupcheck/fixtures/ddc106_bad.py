"""Violates DDC106: swallows operation errors without replying."""


class Connection:
    async def serve_one(self, request):
        try:
            return self.dispatch(request)
        except ValueError:
            pass
        except Exception:
            ...
