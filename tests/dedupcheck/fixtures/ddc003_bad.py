"""Violates DDC003: materialises the whole file mid-stream."""


class Dedup:
    def _begin_file(self, file):
        self._file = file

    def _ingest_chunks(self, batch):
        whole = self._file.data  # whole-file bytes: breaks streaming
        again = self._file.read_bytes()
        return len(whole) + len(again)
