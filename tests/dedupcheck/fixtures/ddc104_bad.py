"""Violates DDC104: pokes a tenant's registry around its lock."""


class Accountant:
    def record(self, tenant, n):
        tenant.metrics.counter("session.bytes").inc(n)
