"""Clean for DDC001: digests flow through repro.hashing."""

from repro.hashing import sha1


def digest_chunk(data: bytes) -> bytes:
    return sha1(data)
