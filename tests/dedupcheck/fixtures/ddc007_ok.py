"""A sink that only observes: intra-package imports, no write-backs."""

from .metrics import MetricsRegistry


class CountingSink:
    """Counts spans and snapshots registries without touching dedup."""

    def __init__(self) -> None:
        self.spans = 0
        self.registries: list[MetricsRegistry] = []

    def emit_span(self, event) -> None:
        """Tally the span."""
        self.spans += 1

    def emit_metrics(self, registry: MetricsRegistry) -> None:
        """Keep a reference to the final registry."""
        self.registries.append(registry)

    def close(self) -> None:
        """Nothing to release."""
