"""Violates DDC004: entropy and wall clock in an algorithm."""

import random
import time

import numpy as np


def sample(hashes):
    rng = np.random.default_rng()
    jitter = time.time()
    return random.choice(hashes), rng, jitter
