"""An SLO engine that enforces admission instead of observing it."""

from repro.service.quotas import QuotaLedger, TokenBucket


class EnforcingSLOEngine:
    """Charges ledgers and reserves rate tokens from inside obs."""

    def __init__(self, ledger: QuotaLedger, bucket: TokenBucket) -> None:
        self.ledger = ledger
        self.bucket = bucket
        self.bad = 0
        self.total = 0

    def record_session(self, tenant: str, nbytes: int, ok: bool) -> None:
        """Admission control disguised as burn-rate accounting."""
        self.ledger.check_admit(tenant, nbytes)
        self.ledger.charge_bytes(tenant, nbytes)
        self.ledger.charge_file(tenant)
        self.bucket.reserve(float(nbytes))
        self.total += 1
        if not ok:
            self.bad += 1

    def burn_rate(self, objective: float) -> float:
        """The only part of this class that belongs in obs."""
        if self.total == 0:
            return 0.0
        return (self.bad / self.total) / (1.0 - objective)
