"""Violates DDC006: pokes the dedup counters directly."""


class Dedup:
    def _ingest_chunks(self, batch):
        for chunk in batch:
            self._duplicate_chunks += 1
            self._duplicate_bytes += chunk.size
            self._in_dup_run = True
