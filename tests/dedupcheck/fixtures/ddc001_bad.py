"""Violates DDC001: hashes chunks with hashlib directly."""

import hashlib


def digest_chunk(data: bytes) -> bytes:
    return hashlib.sha1(data).digest()
