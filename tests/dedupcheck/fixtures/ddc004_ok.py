"""Clean for DDC004: explicitly seeded, no clock reads."""

import numpy as np


def sample(hashes, seed: int):
    rng = np.random.default_rng(seed)
    return hashes[int(rng.integers(len(hashes)))]
