"""Violates DDC002: rewrites manifest entries by hand."""


def splice(manifest, i, replacements, extra):
    manifest.replace_entry(i, replacements)
    manifest.entries.append(extra)
    manifest.entries[0] = extra
