"""Clean for DDC005: linear accumulation strategies."""


def restore(extents, read):
    out = bytearray()
    for e in extents:
        out += read(e)
    return bytes(out)


def restore_join(extents, read):
    return b"".join(read(e) for e in extents)
