"""The PR 6 pool-starvation deadlock, as originally written.

This fixture reverts the PR 6 fix: the tenant lock is taken *inside*
the lane task — on a fleet thread, with no timeout.  With every worker
parked on a busy tenant's lock, the queued lane task that would
release it can never get a thread.  DDC102 must catch this shape so
the deadlock class cannot be reintroduced.
"""


class Session:
    def open(self):
        self.tenant.lock.acquire()
        self.warm_start()
        return self


class Connection:
    async def op_open(self, lane, session):
        fut = lane.submit(session.open)
        return await self.wrap(fut)
