"""Violates DDC101: blocking calls inside a coroutine."""

import time


class Handler:
    async def handle(self, request):
        time.sleep(0.5)
        self._lock.acquire()
        with open("/tmp/spool", "rb") as fh:
            return fh.read()
