"""Clean for DDC002: splits go through the HHR machinery."""

from repro.core.hhr import apply_split


def splice(manifest, index, entry, old, spans):
    added, rehashed = apply_split(manifest, index, entry, old, spans)
    for e in manifest.entries:  # reading entries is always fine
        _ = e.digest
    return added, rehashed
