"""Clean for DDC006: counters move through the helpers."""


class Dedup:
    def _ingest_chunks(self, batch):
        for chunk in batch:
            self._count_duplicate(chunk.size, run_continues=True)
