"""Violates DDC005: quadratic bytes accumulation in a loop."""


def restore(extents, read):
    out = b""
    for e in extents:
        out += read(e)
    return out
