"""Violates DDC105: drops spawned task handles."""

import asyncio


class Notifier:
    async def fire(self, payload):
        asyncio.create_task(self.push(payload))
        asyncio.ensure_future(self.push(payload))
