"""Clean under DDC101: waits are async, file I/O runs on the fleet."""

import asyncio


class Handler:
    async def handle(self, request, lane):
        await asyncio.sleep(0.5)
        if not self._lock.acquire(timeout=1.0):
            raise TimeoutError("busy")
        self._lock.release()
        return await asyncio.wrap_future(lane.submit(self._read))

    def _read(self):
        with open("/tmp/spool", "rb") as fh:
            return fh.read()
