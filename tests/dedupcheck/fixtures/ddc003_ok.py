"""Clean for DDC003: only touches the streamed batch."""


class Dedup:
    def _begin_file(self, file):
        self._size = file.size  # metadata is fine outside the hook

    def _ingest_chunks(self, batch):
        for chunk in batch:
            _ = bytes(chunk.data)  # per-chunk bytes are stream-local
