"""Violates DDC102: a fleet-submitted function waits without timeouts."""

import time


class Worker:
    def start(self, lane):
        return lane.submit(self.run)

    def run(self):
        self.tenant.lock.acquire()
        try:
            time.sleep(1.0)
            return self.upstream.result()
        finally:
            self.tenant.lock.release()
