"""Make the repository root importable so ``tools.dedupcheck`` loads.

Tier-1 runs (``python -m pytest`` from the repo root) already have the
root on ``sys.path``; this keeps the suite working from other CWDs.
"""

import sys
from pathlib import Path

_ROOT = str(Path(__file__).resolve().parents[2])
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)
