"""Shared fixtures and data strategies for chunker tests."""

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.chunking import ChunkerConfig


@pytest.fixture
def small_config():
    """A config small enough that short test buffers contain many chunks."""
    return ChunkerConfig(expected_size=256, min_size=64, max_size=1024, window=16)


def random_bytes(n: int, seed: int = 0) -> bytes:
    return np.random.default_rng(seed).integers(0, 256, size=n, dtype=np.uint8).tobytes()


# Strategy producing "realistic" buffers: random spans interleaved with
# repeated/structured spans, which stress hash bias and min/max clamping.
_random_span = st.integers(0, 2**32 - 1).map(lambda s: random_bytes(500, seed=s))
_repeat_span = st.tuples(st.binary(min_size=1, max_size=8), st.integers(1, 400)).map(
    lambda t: t[0] * t[1]
)
buffers = st.lists(_random_span | _repeat_span, min_size=0, max_size=8).map(b"".join)
