"""Tests for chunking base types and config validation."""

import numpy as np
import pytest

from repro.chunking import ChunkerConfig, VectorizedChunker, chunks_from_cut_points


class TestChunkerConfig:
    def test_defaults_derived_from_ecs(self):
        cfg = ChunkerConfig(expected_size=4096)
        assert cfg.min_size == 1024
        assert cfg.max_size == 32768
        assert cfg.hash_threshold == (1 << 64) // 4096

    def test_min_size_floor_for_small_ecs(self):
        cfg = ChunkerConfig(expected_size=128)
        assert cfg.min_size == 64

    def test_accepts_non_power_of_two(self):
        # The paper's Fig. 10 sweeps ECS=768.
        cfg = ChunkerConfig(expected_size=768)
        assert cfg.hash_threshold == (1 << 64) // 768

    def test_rejects_tiny_ecs(self):
        with pytest.raises(ValueError):
            ChunkerConfig(expected_size=0)
        with pytest.raises(ValueError):
            ChunkerConfig(expected_size=8)

    def test_rejects_max_below_min(self):
        with pytest.raises(ValueError):
            ChunkerConfig(expected_size=1024, min_size=512, max_size=256)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            ChunkerConfig(expected_size=1024, window=0)

    def test_scaled_multiplies_ecs(self):
        cfg = ChunkerConfig(expected_size=1024, seed=7)
        big = cfg.scaled(16)
        assert big.expected_size == 16384
        assert big.seed == 7

    def test_scaled_accepts_any_positive_factor(self):
        assert ChunkerConfig(expected_size=1024).scaled(3).expected_size == 3072

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ChunkerConfig(expected_size=1024).scaled(0)


class TestChunk:
    def test_chunks_from_cut_points(self):
        data = bytes(range(10))
        cuts = np.array([3, 7, 10], dtype=np.int64)
        chunks = chunks_from_cut_points(data, cuts)
        assert [c.offset for c in chunks] == [0, 3, 7]
        assert [c.size for c in chunks] == [3, 4, 3]
        assert b"".join(c.tobytes() for c in chunks) == data

    def test_chunk_data_is_view(self):
        data = bytearray(b"abcdef")
        chunks = chunks_from_cut_points(data, np.array([3, 6]))
        data[0] = ord("z")
        assert chunks[0].tobytes() == b"zbc"  # zero-copy view


class TestValidateCuts:
    def test_accepts_valid(self):
        v = VectorizedChunker(ChunkerConfig(expected_size=256))
        v.validate_cuts(10, np.array([4, 10]))

    def test_rejects_bad_last(self):
        v = VectorizedChunker(ChunkerConfig(expected_size=256))
        with pytest.raises(AssertionError):
            v.validate_cuts(10, np.array([4, 9]))

    def test_rejects_non_increasing(self):
        v = VectorizedChunker(ChunkerConfig(expected_size=256))
        with pytest.raises(AssertionError):
            v.validate_cuts(10, np.array([5, 5, 10]))

    def test_empty_input(self):
        v = VectorizedChunker(ChunkerConfig(expected_size=256))
        v.validate_cuts(0, np.empty(0, dtype=np.int64))
        with pytest.raises(AssertionError):
            v.validate_cuts(0, np.array([1]))
