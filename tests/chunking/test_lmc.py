"""Tests for the local-maximum (AE-family) chunker."""

import numpy as np

from repro.chunking import ChunkerConfig, LocalMaxChunker

from .conftest import random_bytes

CFG = ChunkerConfig(expected_size=512, min_size=128, max_size=4096, window=16)


def test_cut_contract():
    c = LocalMaxChunker(CFG)
    data = random_bytes(100_000, seed=1)
    cuts = c.cut_points(data)
    c.validate_cuts(len(data), cuts)


def test_tiles_input():
    c = LocalMaxChunker(CFG)
    data = random_bytes(40_000, seed=2)
    assert b"".join(ch.tobytes() for ch in c.chunk(data)) == data


def test_empty_and_tiny():
    c = LocalMaxChunker(CFG)
    assert c.cut_points(b"").size == 0
    assert list(c.cut_points(b"a")) == [1]


def test_mean_near_expected():
    c = LocalMaxChunker(CFG)
    data = random_bytes(2_000_000, seed=3)
    cuts = c.cut_points(data)
    mean = len(data) / len(cuts)
    assert 0.9 * CFG.expected_size < mean < 2.5 * CFG.expected_size, mean


def test_size_bounds():
    c = LocalMaxChunker(CFG)
    data = random_bytes(500_000, seed=4)
    sizes = np.diff(np.concatenate([[0], c.cut_points(data)]))
    assert np.all(sizes[:-1] >= CFG.min_size)
    assert np.all(sizes <= CFG.max_size)


def test_resynchronises_after_insertion():
    c = LocalMaxChunker(CFG)
    data = random_bytes(200_000, seed=5)
    orig = set(int(p) for p in c.cut_points(data))
    shift = 13
    new = set(int(p) - shift for p in c.cut_points(random_bytes(shift, seed=6) + data))
    assert len(orig & new) >= len(orig) // 2


def test_deterministic_and_seeded():
    data = random_bytes(100_000, seed=7)
    a = LocalMaxChunker(CFG).cut_points(data)
    b = LocalMaxChunker(CFG).cut_points(data)
    assert np.array_equal(a, b)
    other = LocalMaxChunker(
        ChunkerConfig(expected_size=512, min_size=128, max_size=4096, seed=99)
    ).cut_points(data)
    assert not np.array_equal(a, other)


def test_structured_input_not_degenerate():
    """Zero runs and ASCII text must still chunk near the target."""
    c = LocalMaxChunker(CFG)
    data = (b"\x00" * 3000 + bytes(range(32, 127)) * 40) * 30
    cuts = c.cut_points(data)
    mean = len(data) / len(cuts)
    assert mean < 4 * CFG.expected_size, mean


def test_dedup_integration():
    from repro.core import DedupConfig, MHDDeduplicator
    from repro.workloads import BackupFile

    data = random_bytes(120_000, seed=8)
    d = MHDDeduplicator(
        DedupConfig(ecs=512, sd=4, bloom_bytes=1 << 16, window=16),
        chunker_cls=LocalMaxChunker,
    )
    d.process([BackupFile("a", data), BackupFile("b", data)])
    assert d.restore("a") == data
    assert d.restore("b") == data
