"""Chunking invariants common to all chunkers (property-based).

1. Cut points tile the input exactly (concatenation invariant).
2. Sizes respect the configured bounds (all but the final chunk).
3. Content-defined chunkers resynchronise after a prefix edit — the
   property that motivates CDC over fixed-size chunking in the paper's
   introduction (the "boundary-shifting problem").
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chunking import (
    ChunkerConfig,
    FixedChunker,
    GearChunker,
    ReferenceChunker,
    TTTDChunker,
    VectorizedChunker,
)

from .conftest import buffers, random_bytes

SMALL = ChunkerConfig(expected_size=256, min_size=64, max_size=1024, window=16)

ALL_CHUNKERS = [VectorizedChunker, GearChunker, TTTDChunker, FixedChunker]
CDC_CHUNKERS = [VectorizedChunker, GearChunker, TTTDChunker]


@pytest.mark.parametrize("cls", ALL_CHUNKERS)
@given(data=buffers)
@settings(max_examples=25, deadline=None)
def test_chunks_tile_input(cls, data):
    chunker = cls(SMALL)
    chunks = chunker.chunk(data)
    assert b"".join(c.tobytes() for c in chunks) == data
    pos = 0
    for c in chunks:
        assert c.offset == pos
        pos += c.size
    assert pos == len(data)


@pytest.mark.parametrize("cls", ALL_CHUNKERS)
@given(data=buffers)
@settings(max_examples=25, deadline=None)
def test_cut_contract(cls, data):
    chunker = cls(SMALL)
    cuts = chunker.cut_points(data)
    chunker.validate_cuts(len(data), cuts)


@pytest.mark.parametrize("cls", CDC_CHUNKERS)
@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_size_bounds(cls, seed):
    data = random_bytes(60_000, seed=seed)
    sizes = np.diff(np.concatenate([[0], cls(SMALL).cut_points(data)]))
    # All chunks except possibly the last respect the bounds.
    assert np.all(sizes[:-1] >= SMALL.min_size)
    assert np.all(sizes <= SMALL.max_size)


@pytest.mark.parametrize("cls", CDC_CHUNKERS)
def test_mean_size_near_expected(cls):
    """On random data the mean chunk size ~ min_size + ECS (clamping)."""
    data = random_bytes(2_000_000, seed=42)
    cuts = cls(SMALL).cut_points(data)
    mean = len(data) / len(cuts)
    assert SMALL.expected_size * 0.7 < mean < SMALL.expected_size * 2.2, mean


@pytest.mark.parametrize("cls", CDC_CHUNKERS)
@given(seed=st.integers(0, 2**32 - 1), edit=st.integers(1, 64))
@settings(max_examples=15, deadline=None)
def test_cdc_resynchronises_after_prefix_insertion(cls, seed, edit):
    """Inserting bytes near the start must leave most boundaries intact."""
    data = random_bytes(80_000, seed=seed)
    edited = random_bytes(edit, seed=seed ^ 0xFFFF) + data
    chunker = cls(SMALL)
    orig = set(int(p) for p in chunker.cut_points(data))
    new = set(int(p) - edit for p in chunker.cut_points(edited))
    # At least half the original boundaries reappear (far more in practice).
    common = len(orig & new)
    assert common >= len(orig) // 2, (common, len(orig))


def test_fixed_chunker_does_not_resynchronise():
    """The boundary-shifting problem: FSP loses all alignment."""
    data = random_bytes(80_000, seed=7)
    chunker = FixedChunker(SMALL)
    orig = set(int(p) for p in chunker.cut_points(data))
    shifted = set(int(p) - 1 for p in chunker.cut_points(b"!" + data))
    interior = {p for p in orig if p < len(data)}
    assert not (interior & shifted)


@pytest.mark.parametrize("cls", ALL_CHUNKERS + [ReferenceChunker])
def test_empty_input(cls):
    chunker = cls(SMALL)
    assert chunker.cut_points(b"").size == 0
    assert chunker.chunk(b"") == []


@pytest.mark.parametrize("cls", ALL_CHUNKERS)
def test_single_byte(cls):
    chunker = cls(SMALL)
    assert list(chunker.cut_points(b"x")) == [1]


@pytest.mark.parametrize("cls", CDC_CHUNKERS)
def test_determinism(cls):
    data = random_bytes(30_000, seed=3)
    a = cls(SMALL).cut_points(data)
    b = cls(SMALL).cut_points(data)
    assert np.array_equal(a, b)


def test_tttd_rejects_tiny_ecs():
    with pytest.raises(ValueError):
        TTTDChunker(ChunkerConfig(expected_size=64))


def test_tttd_forced_cuts_rarer_than_plain_cdc():
    """TTTD's backup divisor should replace most max_size forced cuts."""
    # Data with long low-candidate regions: constant runs.
    rng = np.random.default_rng(5)
    parts = []
    for _ in range(200):
        parts.append(rng.integers(0, 256, size=100, dtype=np.uint8).tobytes())
        parts.append(bytes([rng.integers(0, 256)]) * rng.integers(200, 800))
    data = b"".join(parts)
    cfg = ChunkerConfig(expected_size=256, min_size=64, max_size=512, window=16)
    plain_sizes = np.diff(np.concatenate([[0], VectorizedChunker(cfg).cut_points(data)]))
    tttd_sizes = np.diff(np.concatenate([[0], TTTDChunker(cfg).cut_points(data)]))
    plain_forced = int(np.sum(plain_sizes == cfg.max_size))
    tttd_forced = int(np.sum(tttd_sizes == cfg.max_size))
    assert tttd_forced <= plain_forced


def test_gear_window_clamped_to_64():
    chunker = GearChunker(ChunkerConfig(expected_size=256, window=200))
    assert chunker._window == 64
    data = random_bytes(50_000, seed=11)
    chunker.validate_cuts(len(data), chunker.cut_points(data))
