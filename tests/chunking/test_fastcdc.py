"""Tests for FastCDC-style normalized chunking."""

import numpy as np
import pytest

from repro.chunking import ChunkerConfig, FastCDCChunker, VectorizedChunker

from .conftest import random_bytes

CFG = ChunkerConfig(expected_size=512, min_size=128, max_size=4096, window=16)


def test_rejects_bad_normalization():
    with pytest.raises(ValueError):
        FastCDCChunker(CFG, normalization=-1)
    with pytest.raises(ValueError):
        FastCDCChunker(CFG, normalization=5)


def test_cut_contract():
    data = random_bytes(200_000, seed=1)
    chunker = FastCDCChunker(CFG)
    cuts = chunker.cut_points(data)
    chunker.validate_cuts(len(data), cuts)


def test_tiles_input():
    data = random_bytes(50_000, seed=2)
    chunks = FastCDCChunker(CFG).chunk(data)
    assert b"".join(c.tobytes() for c in chunks) == data


def test_empty_and_tiny_inputs():
    c = FastCDCChunker(CFG)
    assert c.cut_points(b"").size == 0
    assert list(c.cut_points(b"xy")) == [2]


def test_size_bounds_respected():
    data = random_bytes(500_000, seed=3)
    sizes = np.diff(np.concatenate([[0], FastCDCChunker(CFG).cut_points(data)]))
    assert np.all(sizes[:-1] >= CFG.min_size)
    assert np.all(sizes <= CFG.max_size)


def test_normalization_tightens_distribution():
    """The whole point: lower coefficient of variation than plain CDC
    at a comparable mean."""
    data = random_bytes(3_000_000, seed=4)

    def cv(chunker):
        sizes = np.diff(np.concatenate([[0], chunker.cut_points(data)]))
        return sizes.std() / sizes.mean(), sizes.mean()

    cv_plain, mean_plain = cv(VectorizedChunker(CFG))
    cv_norm, mean_norm = cv(FastCDCChunker(CFG, normalization=2))
    assert cv_norm < cv_plain * 0.6, (cv_norm, cv_plain)
    assert 0.5 * mean_plain < mean_norm < 1.5 * mean_plain


def test_higher_normalization_tighter():
    data = random_bytes(2_000_000, seed=5)

    def cv(level):
        sizes = np.diff(
            np.concatenate([[0], FastCDCChunker(CFG, normalization=level).cut_points(data)])
        )
        return sizes.std() / sizes.mean()

    assert cv(3) < cv(1)


def test_level_zero_close_to_plain_cdc():
    """normalization=0 uses one condition both sides of the target."""
    data = random_bytes(500_000, seed=6)
    plain = VectorizedChunker(CFG).cut_points(data)
    nc0 = FastCDCChunker(CFG, normalization=0).cut_points(data)
    shared = len(set(map(int, plain)) & set(map(int, nc0)))
    assert shared > 0.8 * min(len(plain), len(nc0))


def test_resynchronises_after_insertion():
    data = random_bytes(150_000, seed=7)
    chunker = FastCDCChunker(CFG)
    orig = set(int(p) for p in chunker.cut_points(data))
    edited = random_bytes(17, seed=8) + data
    new = set(int(p) - 17 for p in chunker.cut_points(edited))
    assert len(orig & new) >= len(orig) // 2


def test_deduplicator_integration():
    """FastCDC plugs into MHD via chunker_cls like any other chunker."""
    from repro.core import DedupConfig, MHDDeduplicator
    from repro.workloads import BackupFile

    data = random_bytes(150_000, seed=9)
    d = MHDDeduplicator(
        DedupConfig(ecs=512, sd=4, bloom_bytes=1 << 16, window=16),
        chunker_cls=FastCDCChunker,
    )
    d.process([BackupFile("a", data), BackupFile("b", data)])
    assert d.restore("a") == data
    assert d.restore("b") == data
