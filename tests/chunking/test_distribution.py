"""Statistical validation of the CDC cut-point process.

On uniform random input the cut condition fires independently per
position with probability ``1/ECS``, so chunk sizes should follow
``min_size + Geometric(1/ECS)`` truncated at ``max_size``.  These tests
check that structure with scipy rather than eyeballing a mean — a
biased rolling hash (the classic low-bit Karp–Rabin trap) fails them.
"""

import numpy as np
import pytest
from scipy import stats as sps

from repro.chunking import ChunkerConfig, GearChunker, VectorizedChunker

ECS = 512
CFG = ChunkerConfig(expected_size=ECS, min_size=128, max_size=4096, window=16)
N = 8_000_000


@pytest.fixture(scope="module")
def sizes():
    data = np.random.default_rng(99).integers(0, 256, size=N, dtype=np.uint8).tobytes()
    cuts = VectorizedChunker(CFG).cut_points(data)
    return np.diff(np.concatenate([[0], cuts]))[:-1]  # drop the tail chunk


def test_mean_matches_geometric_model(sizes):
    """E[size] = min + ECS·(1 - exp(-(max-min)/ECS)-ish); the simple
    min + ECS approximation holds within 5% when max >> ECS."""
    expected = CFG.min_size + ECS
    assert abs(sizes.mean() - expected) / expected < 0.05, sizes.mean()


def test_forced_cut_rate_matches_model(sizes):
    """P(size == max) ~ exp(-(max-min)/ECS)."""
    span = CFG.max_size - CFG.min_size
    expected = np.exp(-span / ECS)
    measured = float(np.mean(sizes == CFG.max_size))
    assert measured == pytest.approx(expected, abs=3e-3)


def test_interior_sizes_fit_geometric(sizes):
    """KS test of (size - min) against the geometric/exponential law,
    on the un-truncated region."""
    interior = sizes[(sizes > CFG.min_size) & (sizes < CFG.max_size)] - CFG.min_size
    # Exponential approximation of the geometric with scale ECS.
    result = sps.kstest(interior, "expon", args=(0, ECS))
    # With ~10k samples even small discreteness effects give tiny
    # p-values; bound the KS distance instead (0.02 = very close fit).
    assert result.statistic < 0.02, result


def test_no_positional_bias(sizes):
    """Chunk sizes must not correlate with stream position (a blocked
    implementation bug would show up here)."""
    idx = np.arange(len(sizes))
    rho, _p = sps.spearmanr(idx, sizes)
    assert abs(rho) < 0.02, rho


def test_gear_distribution_comparable():
    data = np.random.default_rng(7).integers(0, 256, size=2_000_000, dtype=np.uint8).tobytes()
    cuts = GearChunker(CFG).cut_points(data)
    sizes = np.diff(np.concatenate([[0], cuts]))[:-1]
    expected = CFG.min_size + ECS
    assert abs(sizes.mean() - expected) / expected < 0.1, sizes.mean()


def test_low_entropy_input_not_degenerate():
    """ASCII-ish input (high bits zero) must still cut near 1/ECS —
    the finaliser's job.  A raw mod-2^64 Karp-Rabin low-bit mask would
    collapse here."""
    rng = np.random.default_rng(3)
    data = rng.integers(32, 127, size=2_000_000, dtype=np.uint8).tobytes()
    cuts = VectorizedChunker(CFG).cut_points(data)
    mean = len(data) / len(cuts)
    assert 0.8 * (CFG.min_size + ECS) < mean < 1.6 * (CFG.min_size + ECS), mean
