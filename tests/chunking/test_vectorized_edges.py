"""Edge-condition tests specific to the vectorised chunker."""

import numpy as np
import pytest

from repro.chunking import ChunkerConfig, ReferenceChunker, VectorizedChunker

from .conftest import random_bytes


def test_block_size_must_exceed_window():
    with pytest.raises(ValueError):
        VectorizedChunker(ChunkerConfig(expected_size=256, window=48), block_size=48)


def test_block_size_one_more_than_window():
    cfg = ChunkerConfig(expected_size=256, window=16)
    data = random_bytes(5_000, seed=1)
    tight = VectorizedChunker(cfg, block_size=17)
    wide = VectorizedChunker(cfg)
    assert np.array_equal(tight.candidates(data), wide.candidates(data))


def test_input_exactly_window_length():
    cfg = ChunkerConfig(expected_size=256, window=16)
    data = random_bytes(16, seed=2)
    v = VectorizedChunker(cfg)
    r = ReferenceChunker(cfg)
    assert np.array_equal(v.candidates(data), r.candidates(data))
    assert list(v.cut_points(data)) == [16]


def test_input_one_byte_short_of_window():
    cfg = ChunkerConfig(expected_size=256, window=16)
    data = random_bytes(15, seed=3)
    assert VectorizedChunker(cfg).candidates(data).size == 0


def test_power_table_cache_reused_across_calls():
    cfg = ChunkerConfig(expected_size=256, window=16)
    v = VectorizedChunker(cfg)
    a = random_bytes(50_000, seed=4)
    b = random_bytes(30_000, seed=5)
    first = v.cut_points(a)
    table_id = id(v._pow_minv)
    v.cut_points(b)  # shorter input: cache must be reused, not rebuilt
    assert id(v._pow_minv) == table_id
    assert np.array_equal(v.cut_points(a), first)  # cache is content-neutral


def test_non_power_of_two_ecs_mean():
    """ECS=768 (the paper's Fig. 10 point) really averages ~768+min."""
    cfg = ChunkerConfig(expected_size=768)
    data = random_bytes(3_000_000, seed=6)
    cuts = VectorizedChunker(cfg).cut_points(data)
    mean = len(data) / len(cuts)
    assert 700 < mean < 1700, mean


def test_non_power_of_two_matches_reference():
    cfg = ChunkerConfig(expected_size=768, window=16, min_size=64, max_size=4096)
    data = random_bytes(100_000, seed=7)
    assert np.array_equal(
        ReferenceChunker(cfg).cut_points(data),
        VectorizedChunker(cfg).cut_points(data),
    )


def test_memoryview_input():
    cfg = ChunkerConfig(expected_size=256, window=16)
    data = random_bytes(20_000, seed=8)
    v = VectorizedChunker(cfg)
    assert np.array_equal(v.cut_points(data), v.cut_points(memoryview(data)))
