"""Edge-condition tests specific to the vectorised chunker."""

import numpy as np
import pytest

from repro.chunking import ChunkerConfig, ReferenceChunker, VectorizedChunker

from .conftest import random_bytes


def test_block_size_must_exceed_window():
    with pytest.raises(ValueError):
        VectorizedChunker(ChunkerConfig(expected_size=256, window=48), block_size=48)


def test_block_size_one_more_than_window():
    cfg = ChunkerConfig(expected_size=256, window=16)
    data = random_bytes(5_000, seed=1)
    tight = VectorizedChunker(cfg, block_size=17)
    wide = VectorizedChunker(cfg)
    assert np.array_equal(tight.candidates(data), wide.candidates(data))


def test_input_exactly_window_length():
    cfg = ChunkerConfig(expected_size=256, window=16)
    data = random_bytes(16, seed=2)
    v = VectorizedChunker(cfg)
    r = ReferenceChunker(cfg)
    assert np.array_equal(v.candidates(data), r.candidates(data))
    assert list(v.cut_points(data)) == [16]


def test_input_one_byte_short_of_window():
    cfg = ChunkerConfig(expected_size=256, window=16)
    data = random_bytes(15, seed=3)
    assert VectorizedChunker(cfg).candidates(data).size == 0


def test_power_table_cache_reused_across_calls():
    cfg = ChunkerConfig(expected_size=256, window=16)
    v = VectorizedChunker(cfg)
    a = random_bytes(50_000, seed=4)
    b = random_bytes(30_000, seed=5)
    first = v.cut_points(a)
    table_id = id(v._pow_minv)
    v.cut_points(b)  # shorter input: cache must be reused, not rebuilt
    assert id(v._pow_minv) == table_id
    assert np.array_equal(v.cut_points(a), first)  # cache is content-neutral


def test_non_power_of_two_ecs_mean():
    """ECS=768 (the paper's Fig. 10 point) really averages ~768+min."""
    cfg = ChunkerConfig(expected_size=768)
    data = random_bytes(3_000_000, seed=6)
    cuts = VectorizedChunker(cfg).cut_points(data)
    mean = len(data) / len(cuts)
    assert 700 < mean < 1700, mean


def test_non_power_of_two_matches_reference():
    cfg = ChunkerConfig(expected_size=768, window=16, min_size=64, max_size=4096)
    data = random_bytes(100_000, seed=7)
    assert np.array_equal(
        ReferenceChunker(cfg).cut_points(data),
        VectorizedChunker(cfg).cut_points(data),
    )


def test_memoryview_input():
    cfg = ChunkerConfig(expected_size=256, window=16)
    data = random_bytes(20_000, seed=8)
    v = VectorizedChunker(cfg)
    assert np.array_equal(v.cut_points(data), v.cut_points(memoryview(data)))


def test_modinv_rejects_even_multiplier():
    from repro.chunking.vectorized import _modinv_pow2

    for even in (0, 2, 0x9E3779B97F4A7C16):
        with pytest.raises(ValueError, match="odd"):
            _modinv_pow2(even)


def test_modinv_verified_for_odd_multipliers():
    from repro.chunking.vectorized import _modinv_pow2

    for a in (1, 3, 0x9E3779B97F4A7C15, (1 << 64) - 1):
        assert (a * _modinv_pow2(a)) & ((1 << 64) - 1) == 1


def test_power_table_cache_keyed_by_multiplier():
    """Two differently-seeded configs in one process must not share
    power tables — a shared-cache regression would silently corrupt one
    chunker's hashes with the other's multiplier."""
    cfg_a = ChunkerConfig(expected_size=256, window=16, seed=0x1111)
    cfg_b = ChunkerConfig(expected_size=256, window=16, seed=0x2222)
    data = random_bytes(80_000, seed=7)
    # Expected cuts from fresh single-config processes (reference spec).
    expect_a = ReferenceChunker(cfg_a).cut_points(data)
    expect_b = ReferenceChunker(cfg_b).cut_points(data)
    va, vb = VectorizedChunker(cfg_a), VectorizedChunker(cfg_b)
    # Interleave calls so a mis-keyed cache would cross-contaminate.
    assert np.array_equal(va.cut_points(data), expect_a)
    assert np.array_equal(vb.cut_points(data), expect_b)
    assert np.array_equal(va.cut_points(data), expect_a)
    assert id(va._pow_minv) != id(vb._pow_minv)
    # Different seeds must really produce different cut decisions for
    # the contamination check above to have teeth.
    assert not np.array_equal(expect_a, expect_b)


def test_power_table_cache_shared_for_same_multiplier():
    cfg = ChunkerConfig(expected_size=256, window=16)
    data = random_bytes(40_000, seed=8)
    v1, v2 = VectorizedChunker(cfg), VectorizedChunker(cfg)
    v1.cut_points(data)
    v2.cut_points(data)
    assert v1._pow_minv is v2._pow_minv  # one table per multiplier
