"""The reference chunker is the spec; the vectorised chunker must match it.

These are the most important chunking tests in the repository: every
higher layer assumes the fast chunker implements exactly the documented
Karp–Rabin cut condition.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chunking import ChunkerConfig, ReferenceChunker, VectorizedChunker

from .conftest import buffers, random_bytes

SMALL = ChunkerConfig(expected_size=256, min_size=64, max_size=1024, window=16)


@given(buffers)
@settings(max_examples=50, deadline=None)
def test_candidates_identical(data):
    ref = ReferenceChunker(SMALL)
    vec = VectorizedChunker(SMALL)
    assert np.array_equal(ref.candidates(data), vec.candidates(data))


@given(buffers)
@settings(max_examples=50, deadline=None)
def test_cut_points_identical(data):
    ref = ReferenceChunker(SMALL)
    vec = VectorizedChunker(SMALL)
    assert np.array_equal(ref.cut_points(data), vec.cut_points(data))


@given(st.integers(0, 2**32 - 1), st.sampled_from([17, 100, 333, 4096]))
@settings(max_examples=25, deadline=None)
def test_block_size_does_not_change_candidates(seed, block):
    """Blocked evaluation must be globally exact (content-defined)."""
    data = random_bytes(20_000, seed=seed)
    whole = VectorizedChunker(SMALL, block_size=1 << 30)
    blocked = VectorizedChunker(SMALL, block_size=block)
    assert np.array_equal(whole.candidates(data), blocked.candidates(data))


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_different_seeds_give_different_cuts(seed):
    data = random_bytes(50_000, seed=seed)
    a = VectorizedChunker(ChunkerConfig(expected_size=256, window=16, seed=1))
    b = VectorizedChunker(ChunkerConfig(expected_size=256, window=16, seed=2))
    ca, cb = a.cut_points(data), b.cut_points(data)
    # Same trailing cut, but interior boundaries should disagree.
    assert not np.array_equal(ca, cb)


def test_equivalence_on_structured_data():
    """Low-entropy input (the hash-bias trap for mod-2^64 Karp-Rabin)."""
    data = (b"\x00" * 1000 + b"ab" * 800 + bytes(range(256)) * 20) * 3
    ref = ReferenceChunker(SMALL)
    vec = VectorizedChunker(SMALL)
    assert np.array_equal(ref.cut_points(data), vec.cut_points(data))


def test_input_shorter_than_window():
    cfg = ChunkerConfig(expected_size=256, window=48)
    data = b"short"
    ref, vec = ReferenceChunker(cfg), VectorizedChunker(cfg)
    assert ref.candidates(data).size == 0
    assert vec.candidates(data).size == 0
    # Still one chunk covering everything.
    assert list(ref.cut_points(data)) == [5]
    assert list(vec.cut_points(data)) == [5]
