"""Batched (NumPy) kernels must be byte-identical to the scalar specs.

The scalar loops are the executable specification; these tests prove
the vectorised kernels never diverge from them — on hypothesis-random
buffers, on lengths that straddle the vectorised chunker's internal
block boundary (``n % block ∈ {0, 1, window-1}``), and on the 137-byte
tiny-window streaming case from PR 1.
"""

import io

import numpy as np
import pytest
from hypothesis import given, settings

from repro.chunking import (
    ChunkerConfig,
    FastCDCChunker,
    GearChunker,
    ReferenceChunker,
    VectorizedChunker,
    batched_enabled,
)

from .conftest import buffers, random_bytes

SMALL = ChunkerConfig(expected_size=256, min_size=64, max_size=1024, window=16)


@settings(max_examples=40, deadline=None)
@given(data=buffers)
def test_gear_scalar_batched_identical(data):
    b = GearChunker(SMALL, batched=True)
    s = GearChunker(SMALL, batched=False)
    assert np.array_equal(b.candidates(data), s.candidates(data))
    assert np.array_equal(b.cut_points(data), s.cut_points(data))


@settings(max_examples=40, deadline=None)
@given(data=buffers)
def test_fastcdc_scalar_batched_identical(data):
    b = FastCDCChunker(SMALL, batched=True)
    s = FastCDCChunker(SMALL, batched=False)
    assert np.array_equal(b.cut_points(data), s.cut_points(data))


@settings(max_examples=40, deadline=None)
@given(data=buffers)
def test_karp_rabin_scalar_batched_identical(data):
    b = VectorizedChunker(SMALL)
    s = ReferenceChunker(SMALL)
    assert np.array_equal(b.candidates(data), s.candidates(data))
    assert np.array_equal(b.cut_points(data), s.cut_points(data))


@pytest.mark.parametrize("window", [4, 16, 48, 64])
@pytest.mark.parametrize("rem_kind", ["zero", "one", "window_minus_one"])
def test_block_boundary_straddle(window, rem_kind):
    """Lengths with ``n % block ∈ {0, 1, window-1}`` around a tiny
    vectorised block size: candidate positions must stay globally exact
    across the internal block seam."""
    cfg = ChunkerConfig(expected_size=256, min_size=64, max_size=1024, window=window)
    block = 1024
    rem = {"zero": 0, "one": 1, "window_minus_one": max(0, window - 1)}[rem_kind]
    for blocks in (1, 3):
        n = blocks * block + rem
        data = random_bytes(n, seed=1000 + window + rem)
        v = VectorizedChunker(cfg, block_size=block)
        r = ReferenceChunker(cfg)
        assert np.array_equal(v.candidates(data), r.candidates(data)), (window, n)
        assert np.array_equal(v.cut_points(data), r.cut_points(data)), (window, n)


@pytest.mark.parametrize(
    "make_pair",
    [
        lambda cfg: (GearChunker(cfg, batched=True), GearChunker(cfg, batched=False)),
        lambda cfg: (
            FastCDCChunker(cfg, batched=True),
            FastCDCChunker(cfg, batched=False),
        ),
        lambda cfg: (VectorizedChunker(cfg), ReferenceChunker(cfg)),
    ],
    ids=["gear", "fastcdc", "karp-rabin"],
)
def test_tiny_window_137_byte_stream(make_pair):
    """The 137 B streaming window from PR 1: batched and scalar kernels
    agree chunk-for-chunk even when reads are pathologically small."""
    cfg = ChunkerConfig(expected_size=256, min_size=64, max_size=1024, window=16)
    batched, scalar = make_pair(cfg)
    data = random_bytes(50_000, seed=137)
    whole = [tuple(c) for c in _stream_cuts(batched, data, window_bytes=1 << 20)]
    tiny_b = [tuple(c) for c in _stream_cuts(batched, data, window_bytes=137)]
    tiny_s = [tuple(c) for c in _stream_cuts(scalar, data, window_bytes=137)]
    assert tiny_b == whole
    assert tiny_s == whole


def _stream_cuts(chunker, data, window_bytes):
    for batch in chunker.chunk_stream(io.BytesIO(data), window_bytes=window_bytes):
        for c in batch:
            yield (c.offset, c.size)


def test_env_knob_forces_scalar(monkeypatch):
    monkeypatch.setenv("REPRO_SCALAR_CHUNKING", "1")
    assert GearChunker(SMALL).batched is False
    assert FastCDCChunker(SMALL).batched is False
    monkeypatch.delenv("REPRO_SCALAR_CHUNKING")
    assert GearChunker(SMALL).batched is True
    assert batched_enabled(None) is True


def test_explicit_override_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALAR_CHUNKING", "1")
    assert GearChunker(SMALL, batched=True).batched is True
