"""Unit tests for cut-point selection and the SplitMix64 generator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chunking._select import select_cut_points, splitmix64


class TestSplitMix64:
    def test_deterministic(self):
        a, b = splitmix64(42), splitmix64(42)
        assert [a.next() for _ in range(5)] == [b.next() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert splitmix64(1).next() != splitmix64(2).next()

    def test_next_odd_is_odd(self):
        rng = splitmix64(7)
        for _ in range(20):
            assert rng.next_odd() & 1

    def test_values_fit_64_bits(self):
        rng = splitmix64(0)
        for _ in range(100):
            assert 0 <= rng.next() < 1 << 64


def cuts(candidates, n, min_size=10, max_size=50):
    return list(
        select_cut_points(np.asarray(candidates, dtype=np.int64), n, min_size, max_size)
    )


class TestSelection:
    def test_empty_input(self):
        assert cuts([], 0) == []

    def test_no_candidates_forces_max_size(self):
        assert cuts([], 120) == [50, 100, 120]

    def test_candidate_in_window_is_used(self):
        assert cuts([30], 120) == [30, 80, 120]

    def test_candidate_below_min_ignored(self):
        assert cuts([5], 120) == [50, 100, 120]

    def test_candidate_at_exactly_min_size(self):
        assert cuts([10], 120) == [10, 60, 110, 120]

    def test_candidate_at_exactly_max_size(self):
        assert cuts([50], 120) == [50, 100, 120]

    def test_tail_shorter_than_min_not_split(self):
        # tail of 9 bytes after cut at 50: no candidate can split it
        assert cuts([50, 55], 59) == [50, 59]

    def test_tail_candidate_splits(self):
        assert cuts([30, 45], 49) == [30, 45, 49]

    def test_consecutive_candidates_respect_min(self):
        assert cuts([12, 14, 16, 40], 60) == [12, 40, 60]

    @given(
        cands=st.lists(st.integers(1, 1000), max_size=50).map(sorted),
        n=st.integers(1, 1000),
        min_size=st.integers(1, 40),
        extra=st.integers(0, 100),
    )
    @settings(max_examples=150, deadline=None)
    def test_contract_property(self, cands, n, min_size, extra):
        max_size = min_size + extra
        out = cuts([c for c in cands if c <= n], n, min_size, max_size)
        assert out[-1] == n
        assert all(a < b for a, b in zip(out, out[1:]))
        sizes = np.diff(np.concatenate([[0], out]))
        assert np.all(sizes[:-1] >= min_size) or len(sizes) == 1
        assert np.all(sizes <= max_size) or out == [n] and n <= max_size
        # every chunk except possibly the final one obeys max_size
        assert np.all(sizes[:-1] <= max_size)
        assert sizes[-1] <= max_size
