"""Unit and property tests for the Bloom filter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import BloomFilter, optimal_bits, optimal_num_hashes, sha1


def test_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        BloomFilter(0)
    with pytest.raises(ValueError):
        BloomFilter(-5)


def test_rejects_bad_num_hashes():
    with pytest.raises(ValueError):
        BloomFilter(64, num_hashes=0)


def test_empty_filter_contains_nothing():
    bf = BloomFilter(1024)
    assert sha1(b"anything") not in bf
    assert bf.fill_ratio() == 0.0


def test_no_false_negatives_small():
    bf = BloomFilter(4096)
    digests = [sha1(str(i).encode()) for i in range(200)]
    for d in digests:
        bf.add(d)
    for d in digests:
        assert d in bf


@given(st.sets(st.integers(0, 10**6), min_size=1, max_size=300))
@settings(max_examples=30, deadline=None)
def test_no_false_negatives_property(keys):
    bf = BloomFilter.for_expected_items(len(keys), fp_rate=0.01)
    digests = [sha1(str(k).encode()) for k in keys]
    for d in digests:
        bf.add(d)
    assert all(d in bf for d in digests)


def test_false_positive_rate_near_theoretical():
    n = 2000
    bf = BloomFilter.for_expected_items(n, fp_rate=0.01)
    for i in range(n):
        bf.add(sha1(f"in-{i}".encode()))
    trials = 5000
    fps = sum(1 for i in range(trials) if sha1(f"out-{i}".encode()) in bf)
    measured = fps / trials
    # Within 3x of the 1% design point: loose but catches broken probing.
    assert measured < 0.03, f"FP rate {measured:.4f} too high"


def test_stats_counters():
    bf = BloomFilter(1024)
    d = sha1(b"x")
    bf.add(d)
    assert d in bf
    assert sha1(b"y") not in bf or True  # query recorded either way
    assert bf.stats.adds == 1
    assert bf.stats.queries == 2
    assert bf.stats.positives >= 1
    assert bf.stats.negatives == bf.stats.queries - bf.stats.positives


def test_for_expected_items_sizing():
    bf = BloomFilter.for_expected_items(10_000, fp_rate=0.01)
    # ~9.6 bits/item for 1% -> ~12 KB
    assert 8_000 < bf.size_bytes < 20_000
    assert 1 <= bf.num_hashes <= 16


def test_optimal_bits_monotone_in_items():
    assert optimal_bits(1000, 0.01) < optimal_bits(10_000, 0.01)


def test_optimal_bits_rejects_bad_rate():
    with pytest.raises(ValueError):
        optimal_bits(100, 0.0)
    with pytest.raises(ValueError):
        optimal_bits(100, 1.0)


def test_optimal_num_hashes_bounds():
    assert optimal_num_hashes(100, 0) == 1
    assert 1 <= optimal_num_hashes(10**9, 10) <= 16


def test_theoretical_fp_rate_increases_with_items():
    bf = BloomFilter(1024)
    assert bf.theoretical_fp_rate(100) < bf.theoretical_fp_rate(10_000)


def test_fill_ratio_grows():
    bf = BloomFilter(256)
    before = bf.fill_ratio()
    for i in range(50):
        bf.add(sha1(str(i).encode()))
    assert bf.fill_ratio() > before


def test_for_expected_items_zero_items():
    bf = BloomFilter.for_expected_items(0)
    assert bf.size_bytes >= 8
    assert sha1(b"x") not in bf
