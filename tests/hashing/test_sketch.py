"""Tests for the Count-Min sketch."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import CountMinSketch, sha1


def test_rejects_bad_dimensions():
    with pytest.raises(ValueError):
        CountMinSketch(width=8)
    with pytest.raises(ValueError):
        CountMinSketch(depth=0)


def test_rejects_bad_count():
    with pytest.raises(ValueError):
        CountMinSketch().add(sha1(b"x"), count=0)


def test_unseen_estimates_zero():
    cms = CountMinSketch()
    assert cms.estimate(sha1(b"never")) == 0
    assert sha1(b"never") not in cms


def test_single_item_counting():
    cms = CountMinSketch()
    d = sha1(b"item")
    for _ in range(5):
        cms.add(d)
    assert cms.estimate(d) >= 5  # never under-estimates
    assert d in cms
    assert cms.items_added == 5


def test_add_with_count():
    cms = CountMinSketch()
    cms.add(sha1(b"x"), count=7)
    assert cms.estimate(sha1(b"x")) >= 7


@given(st.dictionaries(st.integers(0, 10**6), st.integers(1, 20), min_size=1, max_size=100))
@settings(max_examples=25, deadline=None)
def test_never_underestimates(true_counts):
    cms = CountMinSketch(width=1 << 12)
    for key, count in true_counts.items():
        cms.add(sha1(str(key).encode()), count)
    for key, count in true_counts.items():
        assert cms.estimate(sha1(str(key).encode())) >= count


def test_overestimation_is_bounded_at_low_load():
    cms = CountMinSketch(width=1 << 14, depth=4)
    for i in range(1000):
        cms.add(sha1(f"k{i}".encode()))
    # At ~6% load, most estimates should be exact.
    exact = sum(1 for i in range(1000) if cms.estimate(sha1(f"k{i}".encode())) == 1)
    assert exact > 900


def test_size_bytes():
    cms = CountMinSketch(width=1024, depth=4)
    assert cms.size_bytes == 1024 * 4 * 4  # uint32 counters
