"""Unit tests for SHA-1 digest helpers."""

import hashlib

from hypothesis import given
from hypothesis import strategies as st

from repro.hashing import (
    HASH_SIZE,
    StagedHasher,
    blake2b20,
    blake2b20_many,
    hex_short,
    sha1,
    sha1_many,
    sha1_spans,
)


def test_sha1_matches_hashlib():
    assert sha1(b"hello") == hashlib.sha1(b"hello").digest()


def test_sha1_length():
    assert len(sha1(b"")) == HASH_SIZE == 20


def test_sha1_accepts_memoryview():
    data = b"some chunk bytes"
    assert sha1(memoryview(data)) == sha1(data)


@given(st.lists(st.binary(max_size=64), max_size=8))
def test_sha1_spans_equals_concatenation(parts):
    assert sha1_spans(parts) == sha1(b"".join(parts))


def test_sha1_spans_empty():
    assert sha1_spans([]) == sha1(b"")


def test_sha1_spans_mixed_views():
    parts = [b"abc", memoryview(b"def"), b""]
    assert sha1_spans(parts) == sha1(b"abcdef")


def test_hex_short_prefix():
    d = sha1(b"x")
    assert hex_short(d, 8) == d.hex()[:8]
    assert len(hex_short(d)) == 10


@given(st.binary(max_size=128), st.binary(max_size=128))
def test_distinct_inputs_distinct_digests(a, b):
    # SHA-1 collisions are not going to appear from hypothesis.
    if a != b:
        assert sha1(a) != sha1(b)
    else:
        assert sha1(a) == sha1(b)


def test_sha1_many_matches_scalar():
    parts = [b"", b"a", b"chunk one", memoryview(b"chunk two")]
    assert sha1_many(parts) == [sha1(p) for p in parts]


def test_sha1_many_empty():
    assert sha1_many([]) == []


def test_sha1_many_accepts_generator_of_views():
    buf = memoryview(b"abcdefghij")
    spans = (buf[i : i + 2] for i in range(0, 10, 2))
    assert sha1_many(spans) == [sha1(buf[i : i + 2]) for i in range(0, 10, 2)]


def test_blake2b20_width_and_value():
    assert len(blake2b20(b"x")) == HASH_SIZE
    assert blake2b20(b"x") == hashlib.blake2b(b"x", digest_size=20).digest()
    assert blake2b20(b"x") != sha1(b"x")  # distinct family, never aliased


def test_blake2b20_many_matches_scalar():
    parts = [b"", b"a", memoryview(b"bb")]
    assert blake2b20_many(parts) == [blake2b20(p) for p in parts]


def test_staged_hasher_returns_canonical_sha1():
    h = StagedHasher()
    for data in (b"", b"alpha", memoryview(b"beta"), b"alpha"):
        assert h.digest(data) == sha1(data)


def test_staged_hasher_memoises_duplicates():
    h = StagedHasher()
    chunks = [b"one", b"two", b"one", b"one", b"three", b"two"]
    digests = h.digest_many(chunks)
    assert digests == [sha1(c) for c in chunks]
    assert h.unique_seen == 3
    assert h.probe_hits == 3  # the three repeats never re-ran SHA-1


def test_staged_hasher_distinct_instances_independent():
    a, b = StagedHasher(), StagedHasher()
    a.digest(b"shared")
    assert b.probe_hits == 0
    assert b.digest(b"shared") == sha1(b"shared")
    assert b.probe_hits == 0  # first sight in *this* instance
