"""Unit tests for SHA-1 digest helpers."""

import hashlib

from hypothesis import given
from hypothesis import strategies as st

from repro.hashing import HASH_SIZE, hex_short, sha1, sha1_spans


def test_sha1_matches_hashlib():
    assert sha1(b"hello") == hashlib.sha1(b"hello").digest()


def test_sha1_length():
    assert len(sha1(b"")) == HASH_SIZE == 20


def test_sha1_accepts_memoryview():
    data = b"some chunk bytes"
    assert sha1(memoryview(data)) == sha1(data)


@given(st.lists(st.binary(max_size=64), max_size=8))
def test_sha1_spans_equals_concatenation(parts):
    assert sha1_spans(parts) == sha1(b"".join(parts))


def test_sha1_spans_empty():
    assert sha1_spans([]) == sha1(b"")


def test_sha1_spans_mixed_views():
    parts = [b"abc", memoryview(b"def"), b""]
    assert sha1_spans(parts) == sha1(b"abcdef")


def test_hex_short_prefix():
    d = sha1(b"x")
    assert hex_short(d, 8) == d.hex()[:8]
    assert len(hex_short(d)) == 10


@given(st.binary(max_size=128), st.binary(max_size=128))
def test_distinct_inputs_distinct_digests(a, b):
    # SHA-1 collisions are not going to appear from hypothesis.
    if a != b:
        assert sha1(a) != sha1(b)
    else:
        assert sha1(a) == sha1(b)
