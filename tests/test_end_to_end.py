"""End-to-end system tests: real directory backend, incremental backup
sessions, cross-component integration.
"""

import numpy as np

from repro.core import DedupConfig, MHDDeduplicator
from repro.baselines import CDCDeduplicator
from repro.storage import DirectoryBackend, DiskModel, verify_store
from repro.workloads import BackupFile, EditConfig, mutate, tiny_corpus


def rand(n, seed):
    return np.random.default_rng(seed).integers(0, 256, size=n, dtype=np.uint8).tobytes()


class TestDirectoryBackendEndToEnd:
    """The paper's prototype layout: one real file per object on disk."""

    def test_mhd_on_real_filesystem(self, tmp_path):
        backend = DirectoryBackend(tmp_path / "store")
        d = MHDDeduplicator(DedupConfig(ecs=1024, sd=8, bloom_bytes=1 << 18), backend)
        files = tiny_corpus().files()[:40]
        stats = d.process(files)
        # objects really are on the host filesystem
        assert (tmp_path / "store" / DiskModel.CHUNK).is_dir()
        assert (tmp_path / "store" / DiskModel.MANIFEST).is_dir()
        assert (tmp_path / "store" / DiskModel.HOOK).is_dir()
        for f in files[::7]:
            assert d.restore(f.file_id) == f.data
        assert verify_store(backend, check_entry_hashes=True).ok
        assert stats.chunk_inodes == len(list((tmp_path / "store" / DiskModel.CHUNK).iterdir()))

    def test_store_survives_process_boundary(self, tmp_path):
        """A fresh deduplicator instance can restore from the same
        directory — the store is self-contained on disk."""
        backend = DirectoryBackend(tmp_path / "store")
        files = [BackupFile("a", rand(50_000, 1)), BackupFile("b", rand(50_000, 2))]
        MHDDeduplicator(DedupConfig(ecs=1024, sd=8), backend).process(files)

        # simulate a new process: new deduplicator over the same dir
        backend2 = DirectoryBackend(tmp_path / "store")
        reader = MHDDeduplicator(DedupConfig(ecs=1024, sd=8), backend2)
        for f in files:
            assert reader.restore(f.file_id) == f.data


class TestIncrementalSessions:
    def test_nightly_backup_convergence(self):
        """DER grows with history; every generation stays restorable."""
        rng = np.random.default_rng(7)
        d = MHDDeduplicator(DedupConfig(ecs=1024, sd=8, bloom_bytes=1 << 18))
        content = rand(300_000, 8)
        generations = []
        for g in range(5):
            generations.append(content)
            d.ingest(BackupFile(f"gen{g}", content))
            content = mutate(content, rng, EditConfig(change_rate=0.1))
        stats = d.finalize()
        for g, data in enumerate(generations):
            assert d.restore(f"gen{g}") == data
        # ~90% of each later generation dedups against the previous one
        assert stats.data_only_der > 2.5
        assert d.verify_integrity(check_entry_hashes=True).ok

    def test_interleaved_machines(self):
        """Cross-machine dedup of the shared base image."""
        base_os = rand(200_000, 9)
        d = MHDDeduplicator(DedupConfig(ecs=1024, sd=8, bloom_bytes=1 << 18))
        for m in range(3):
            user = rand(60_000, 10 + m)
            d.ingest(BackupFile(f"pc{m}/os", base_os))
            d.ingest(BackupFile(f"pc{m}/user", user))
        stats = d.finalize()
        # the OS image is stored about once, not three times
        assert stats.stored_chunk_bytes < len(base_os) * 1.4 + 3 * 60_000
        for m in range(3):
            assert d.restore(f"pc{m}/os") == base_os


class TestCrossAlgorithmConsistency:
    def test_stats_der_close_to_trace_oracle(self):
        """CDC's byte counters agree with the trace oracle's."""
        from repro.chunking import VectorizedChunker
        from repro.workloads import trace_corpus

        files = tiny_corpus().files()[:80]
        config = DedupConfig(ecs=1024, sd=8, cache_manifests=512)
        d = CDCDeduplicator(config)
        stats = d.process(files)
        oracle = trace_corpus(files, VectorizedChunker(config.small_chunker_config()))
        assert stats.stored_chunk_bytes == oracle.unique_bytes

    def test_meter_reads_match_restore_traffic(self):
        files = tiny_corpus().files()[:20]
        d = MHDDeduplicator(DedupConfig(ecs=1024, sd=8))
        d.process(files)
        before = d.meter.count(DiskModel.CHUNK, "read")
        total = sum(len(d.restore(f.file_id)) for f in files)
        read_bytes = d.meter.nbytes(DiskModel.CHUNK, "read")
        assert total == sum(f.size for f in files)
        assert d.meter.count(DiskModel.CHUNK, "read") > before
        assert read_bytes >= total  # restore plus earlier HHR reloads


class TestWarmStart:
    def test_second_session_dedups_against_first(self, tmp_path):
        """Two backup sessions in separate 'processes' over one store:
        the second session's warm start makes it find the first
        session's data."""
        config = DedupConfig(ecs=1024, sd=8, bloom_bytes=1 << 18)
        base = rand(200_000, 20)

        session1 = MHDDeduplicator(config, DirectoryBackend(tmp_path / "s"))
        stats1 = session1.process([BackupFile("day1/img", base)])

        edited = mutate(base, np.random.default_rng(3), EditConfig(change_rate=0.1))
        session2 = MHDDeduplicator(config, DirectoryBackend(tmp_path / "s"))
        assert session2.warm_start() > 0
        stats2 = session2.process([BackupFile("day2/img", edited)])
        # stored_chunk_bytes reads the *shared* backend, so session 2's
        # new bytes are the delta — most of day2 deduplicated away.
        new_bytes = stats2.stored_chunk_bytes - stats1.stored_chunk_bytes
        assert new_bytes < len(edited) * 0.4
        assert stats2.duplicate_chunks > 0
        assert session2.restore("day2/img") == edited
        assert session2.restore("day1/img") == base

    def test_cold_second_session_finds_nothing(self, tmp_path):
        """Without warm start the bloom filter rejects everything."""
        config = DedupConfig(ecs=1024, sd=8, bloom_bytes=1 << 18)
        base = rand(200_000, 21)
        MHDDeduplicator(config, DirectoryBackend(tmp_path / "s")).process(
            [BackupFile("day1/img", base)]
        )
        cold = MHDDeduplicator(config, DirectoryBackend(tmp_path / "s"))
        stats = cold.process([BackupFile("day2/img", base)])
        assert stats.duplicate_chunks == 0  # bloom empty -> all misses

    def test_warm_start_across_real_process_boundary(self, tmp_path):
        """Generation 1 is ingested by a *separate OS process*; this
        process warm-starts over the directory it left behind and must
        deduplicate generation 2 against it."""
        import os
        import subprocess
        import sys

        store = tmp_path / "s"
        base = rand(200_000, 30)
        (tmp_path / "gen1.bin").write_bytes(base)
        script = (
            "import sys\n"
            "from repro.core import DedupConfig, MHDDeduplicator\n"
            "from repro.storage import DirectoryBackend\n"
            "from repro.workloads import BackupFile\n"
            "d = MHDDeduplicator(DedupConfig(ecs=1024, sd=8, bloom_bytes=1 << 18),\n"
            "                    DirectoryBackend(sys.argv[1]))\n"
            "d.process([BackupFile.from_path(sys.argv[2], 'day1/img')])\n"
        )
        env = dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path))
        subprocess.run(
            [sys.executable, "-c", script, str(store), str(tmp_path / "gen1.bin")],
            check=True,
            env=env,
        )

        edited = mutate(base, np.random.default_rng(31), EditConfig(change_rate=0.1))
        session2 = MHDDeduplicator(
            DedupConfig(ecs=1024, sd=8, bloom_bytes=1 << 18), DirectoryBackend(store)
        )
        assert session2.warm_start() > 0
        stats = session2.process([BackupFile("day2/img", edited)])
        assert stats.duplicate_chunks > 0
        assert session2.restore("day2/img") == edited
        assert session2.restore("day1/img") == base

    def test_si_mhd_warm_start(self, tmp_path):
        from repro.core import SIMHDDeduplicator

        config = DedupConfig(ecs=1024, sd=8)
        base = rand(150_000, 22)
        SIMHDDeduplicator(config, DirectoryBackend(tmp_path / "s")).process(
            [BackupFile("a", base)]
        )
        session2 = SIMHDDeduplicator(config, DirectoryBackend(tmp_path / "s"))
        assert session2.warm_start() > 0
        stats = session2.process([BackupFile("b", base)])
        assert stats.duplicate_chunks > 0
        assert session2.restore("b") == base
