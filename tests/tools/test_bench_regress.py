"""Unit tests for the benchmark regression gate."""

import json

import pytest

from tools.bench_regress import collect_metrics, compare_file, main


def bench(scale="tiny", **metrics):
    """A minimal BENCH payload with throughput numbers buried in it."""
    return {
        "bench": "x",
        "scale": scale,
        "runs": {"algo": dict(metrics)},
    }


def write(dirpath, name, payload):
    dirpath.mkdir(parents=True, exist_ok=True)
    (dirpath / name).write_text(json.dumps(payload))


class TestCollectMetrics:
    def test_finds_throughput_keys_anywhere(self):
        payload = {
            "runs": {"a": {"throughput_ratio": 0.5}},
            "extra": {"levels": [{"throughput_mb_s": 9.0}, {"throughput_mb_s": 10.0}]},
            "noise": {"p99_seconds": 1.0},
        }
        found = collect_metrics(payload)
        assert found == {
            "runs.a.throughput_ratio": 0.5,
            "extra.levels[0].throughput_mb_s": 9.0,
            "extra.levels[1].throughput_mb_s": 10.0,
        }

    def test_non_numeric_values_ignored(self):
        assert collect_metrics({"throughput_ratio": "fast"}) == {}


class TestCompareFile:
    def test_within_threshold_passes(self):
        base = bench(throughput_ratio=1.0)
        cur = bench(throughput_ratio=0.85)
        assert compare_file(cur, base, threshold=0.20) == []

    def test_regression_beyond_threshold_reported(self):
        base = bench(throughput_ratio=1.0)
        cur = bench(throughput_ratio=0.70)
        (msg,) = compare_file(cur, base, threshold=0.20)
        assert "throughput_ratio" in msg and "30.0% drop" in msg

    def test_improvement_never_flags(self):
        base = bench(throughput_ratio=1.0)
        cur = bench(throughput_ratio=5.0)
        assert compare_file(cur, base, threshold=0.20) == []

    def test_metric_missing_from_current_is_skipped(self):
        base = bench(throughput_ratio=1.0)
        cur = {"bench": "x", "scale": "tiny"}
        assert compare_file(cur, base, threshold=0.20) == []


class TestMain:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        write(tmp_path / "base", "BENCH_x.json", bench(throughput_ratio=1.0))
        write(tmp_path / "res", "BENCH_x.json", bench(throughput_ratio=0.95))
        code = main(
            ["--results", str(tmp_path / "res"), "--baseline", str(tmp_path / "base")]
        )
        assert code == 0
        assert "ok BENCH_x.json" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        write(tmp_path / "base", "BENCH_x.json", bench(throughput_ratio=1.0))
        write(tmp_path / "res", "BENCH_x.json", bench(throughput_ratio=0.5))
        code = main(
            ["--results", str(tmp_path / "res"), "--baseline", str(tmp_path / "base")]
        )
        assert code == 1
        assert "REGRESSED BENCH_x.json" in capsys.readouterr().out

    def test_scale_mismatch_skipped(self, tmp_path, capsys):
        write(tmp_path / "base", "BENCH_x.json", bench(scale="small", throughput_ratio=1.0))
        write(tmp_path / "res", "BENCH_x.json", bench(scale="tiny", throughput_ratio=0.1))
        code = main(
            ["--results", str(tmp_path / "res"), "--baseline", str(tmp_path / "base")]
        )
        assert code == 0
        assert "scale mismatch" in capsys.readouterr().out

    def test_missing_fresh_run_skipped_not_failed(self, tmp_path, capsys):
        write(tmp_path / "base", "BENCH_x.json", bench(throughput_ratio=1.0))
        (tmp_path / "res").mkdir()
        code = main(
            ["--results", str(tmp_path / "res"), "--baseline", str(tmp_path / "base")]
        )
        assert code == 0
        assert "no fresh run" in capsys.readouterr().out

    def test_empty_baseline_is_a_noop(self, tmp_path):
        (tmp_path / "base").mkdir()
        (tmp_path / "res").mkdir()
        assert (
            main(["--results", str(tmp_path / "res"), "--baseline", str(tmp_path / "base")])
            == 0
        )

    def test_update_baseline_copies_results(self, tmp_path):
        write(tmp_path / "res", "BENCH_x.json", bench(throughput_ratio=1.0))
        code = main(
            [
                "--results",
                str(tmp_path / "res"),
                "--baseline",
                str(tmp_path / "base"),
                "--update-baseline",
            ]
        )
        assert code == 0
        assert (tmp_path / "base" / "BENCH_x.json").exists()

    def test_looser_threshold_tolerates_more(self, tmp_path):
        write(tmp_path / "base", "BENCH_x.json", bench(throughput_ratio=1.0))
        write(tmp_path / "res", "BENCH_x.json", bench(throughput_ratio=0.65))
        args = ["--results", str(tmp_path / "res"), "--baseline", str(tmp_path / "base")]
        assert main(args) == 1
        assert main([*args, "--threshold", "0.5"]) == 0

    def test_committed_baseline_is_readable(self):
        from tools.bench_regress import DEFAULT_BASELINE, load_bench

        files = sorted(DEFAULT_BASELINE.glob("BENCH_*.json"))
        assert files, "repo should ship a committed bench baseline"
        for path in files:
            payload = load_bench(path)
            assert collect_metrics(payload), f"{path.name} carries no throughput metrics"


def envelope(bench_name="x", scale="tiny", extra=None):
    payload = {"bench": bench_name, "scale": scale, "git_sha": "deadbeef"}
    if extra is not None:
        payload["extra"] = extra
    return payload


class TestValidate:
    def test_valid_envelope_passes(self, tmp_path, capsys):
        write(tmp_path / "res", "BENCH_x.json", envelope())
        assert main(["--validate", "--results", str(tmp_path / "res")]) == 0
        assert "ok BENCH_x.json" in capsys.readouterr().out

    def test_missing_envelope_key_fails(self, tmp_path, capsys):
        bad = envelope()
        del bad["git_sha"]
        write(tmp_path / "res", "BENCH_x.json", bad)
        assert main(["--validate", "--results", str(tmp_path / "res")]) == 1
        assert "git_sha" in capsys.readouterr().out

    def test_registered_bench_requires_extra_series(self, tmp_path, capsys):
        write(
            tmp_path / "res",
            "BENCH_cluster_scaling.json",
            envelope("cluster_scaling", extra={"shard_counts": [1, 2]}),
        )
        assert main(["--validate", "--results", str(tmp_path / "res")]) == 1
        out = capsys.readouterr().out
        assert "der_loss" in out and "rebalance" in out

    def test_registered_bench_full_payload_passes(self, tmp_path, capsys):
        extra = {
            "shard_counts": [1, 2],
            "der_loss": {"1": 0.0, "2": 0.1},
            "clusters": {},
            "rebalance": {
                "segments_moved": 3,
                "bytes_moved": 100,
                "recipes_updated": 2,
                "seconds": 0.5,
                "residual_hot_bytes": 50,
            },
        }
        write(
            tmp_path / "res",
            "BENCH_cluster_scaling.json",
            envelope("cluster_scaling", extra=extra),
        )
        assert main(["--validate", "--results", str(tmp_path / "res")]) == 0

    def test_incomplete_rebalance_record_fails(self, tmp_path, capsys):
        extra = {
            "shard_counts": [1],
            "der_loss": {},
            "clusters": {},
            "rebalance": {"segments_moved": 3},
        }
        write(
            tmp_path / "res",
            "BENCH_cluster_scaling.json",
            envelope("cluster_scaling", extra=extra),
        )
        assert main(["--validate", "--results", str(tmp_path / "res")]) == 1
        assert "bytes_moved" in capsys.readouterr().out

    def test_empty_results_dir_fails(self, tmp_path):
        (tmp_path / "res").mkdir()
        assert main(["--validate", "--results", str(tmp_path / "res")]) == 1

    def test_unreadable_json_fails(self, tmp_path, capsys):
        d = tmp_path / "res"
        d.mkdir()
        (d / "BENCH_broken.json").write_text("{not json")
        assert main(["--validate", "--results", str(d)]) == 1
        assert "INVALID" in capsys.readouterr().out
