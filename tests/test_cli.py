"""Tests for the repro-dedup command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main

FAST = ["--machines", "2", "--generations", "2", "--ecs", "1024", "--sd", "8"]


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_default_algo(capsys):
    assert main(["run", *FAST]) == 0
    out = capsys.readouterr().out
    assert "bf-mhd results" in out
    assert "real DER" in out


@pytest.mark.parametrize("algo", ["cdc", "bimodal", "subchunk", "sparse-indexing"])
def test_run_each_algo(algo, capsys):
    assert main(["run", "--algo", algo, *FAST]) == 0
    assert f"{algo} results" in capsys.readouterr().out


def test_list_names_every_algorithm(capsys):
    from repro.registry import available

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    lines = [ln for ln in out.splitlines() if ln.strip()]
    assert len(lines) == len(available())
    for name in available():
        assert any(ln.startswith(name) for ln in lines)
    # Every row carries a human description, not just the name.
    for ln in lines:
        name, _, desc = ln.partition("  ")
        assert desc.strip(), f"missing description for {name!r}"


def test_run_with_verify(capsys):
    assert main(["run", "--verify", *FAST]) == 0
    assert "restore byte-identically" in capsys.readouterr().out


def test_compare(capsys):
    assert main(["compare", *FAST]) == 0
    out = capsys.readouterr().out
    for algo in ("bf-mhd", "cdc", "bimodal", "subchunk", "sparse-indexing"):
        assert algo in out


def test_trace(capsys):
    assert main(["trace", *FAST]) == 0
    out = capsys.readouterr().out
    assert "duplicate slices (L)" in out
    assert "DAD" in out


def test_run_on_real_directory(tmp_path, capsys):
    rng = np.random.default_rng(1)
    shared = rng.integers(0, 256, size=50_000, dtype=np.uint8).tobytes()
    (tmp_path / "a.bin").write_bytes(shared)
    (tmp_path / "b.bin").write_bytes(shared + b"tail")
    sub = tmp_path / "sub"
    sub.mkdir()
    (sub / "c.bin").write_bytes(rng.integers(0, 256, size=10_000, dtype=np.uint8).tobytes())
    assert main(["run", "--verify", "--input-dir", str(tmp_path), "--ecs", "1024", "--sd", "4"]) == 0
    out = capsys.readouterr().out
    assert "all 3 files restore byte-identically" in out


def test_input_dir_empty_fails(tmp_path):
    with pytest.raises(SystemExit):
        main(["run", "--input-dir", str(tmp_path / "nope")])


class TestPersistentStore:
    def test_run_with_store_dir_and_fsck(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["run", *FAST, "--store-dir", store, "--fsck"]) == 0
        out = capsys.readouterr().out
        assert "integrity OK" in out
        assert "store persisted" in out

    def test_restore_list(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["run", *FAST, "--store-dir", store])
        capsys.readouterr()
        assert main(["restore", "--store-dir", store, "--list"]) == 0
        out = capsys.readouterr().out
        assert "pc00/gen000" in out

    def test_restore_all_files_byte_identical(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        outdir = str(tmp_path / "out")
        main(["run", *FAST, "--store-dir", store])
        assert main(["restore", "--store-dir", store, "--output-dir", outdir]) == 0
        # cross-check against the generator
        from repro.workloads import BackupCorpus, CorpusConfig

        corpus = BackupCorpus(
            CorpusConfig(
                machines=2, generations=2, os_count=2,
                os_bytes=1 << 20, app_bytes=1 << 18, user_bytes=1 << 19,
                mean_file=1 << 16, seed=2013,
            )
        )
        import os

        for f in corpus:
            path = os.path.join(outdir, f.file_id)
            with open(path, "rb") as fh:
                assert fh.read() == f.data

    def test_restore_selected_file(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        outdir = str(tmp_path / "out")
        main(["run", *FAST, "--store-dir", store])
        capsys.readouterr()
        main(["restore", "--store-dir", store, "--list"])
        first = capsys.readouterr().out.splitlines()[0]
        assert main(["restore", "--store-dir", store, "--output-dir", outdir, first]) == 0

    def test_restore_unknown_file_fails(self, tmp_path):
        store = str(tmp_path / "store")
        main(["run", *FAST, "--store-dir", store])
        assert main(["restore", "--store-dir", store, "no/such/file"]) == 1


class TestGC:
    def test_gc_expires_generation(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["run", *FAST, "--store-dir", store])
        capsys.readouterr()
        assert main(["gc", "--store-dir", store, "--delete", "*/gen000/*"]) == 0
        out = capsys.readouterr().out
        assert "deleted pc00/gen000" in out
        assert "reclaimed" in out
        assert "integrity OK" in out

    def test_gc_sweep_only(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["run", *FAST, "--store-dir", store])
        capsys.readouterr()
        assert main(["gc", "--store-dir", store]) == 0
        out = capsys.readouterr().out
        assert "reclaimed 0" in out

    def test_gc_unmatched_pattern_fails(self, tmp_path):
        store = str(tmp_path / "store")
        main(["run", *FAST, "--store-dir", store])
        assert main(["gc", "--store-dir", store, "--delete", "zzz*"]) == 1

    def test_restore_after_gc(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        outdir = str(tmp_path / "out")
        main(["run", *FAST, "--store-dir", store])
        main(["gc", "--store-dir", store, "--delete", "*/gen000/*"])
        capsys.readouterr()
        assert main(["restore", "--store-dir", store, "--output-dir", outdir]) == 0
        out = capsys.readouterr().out
        assert "restored" in out


class TestStats:
    def test_stats_summarises_store(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["run", *FAST, "--store-dir", store])
        capsys.readouterr()
        assert main(["stats", "--store-dir", store]) == 0
        out = capsys.readouterr().out
        assert "chunk" in out and "manifest" in out and "hook" in out
        assert "chunk data" in out

    def test_stats_with_fsck(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["run", *FAST, "--store-dir", store])
        capsys.readouterr()
        assert main(["stats", "--store-dir", store, "--fsck"]) == 0
        assert "integrity OK" in capsys.readouterr().out


class TestGenCorpus:
    def test_gen_corpus_roundtrips_through_input_dir(self, tmp_path, capsys):
        outdir = str(tmp_path / "corpus")
        assert main(["gen-corpus", "--output-dir", outdir,
                     "--machines", "2", "--generations", "1"]) == 0
        assert "wrote" in capsys.readouterr().out
        # the materialised corpus is valid --input-dir input
        assert main(["run", "--input-dir", outdir, "--ecs", "1024",
                     "--sd", "8", "--verify"]) == 0

    def test_gen_corpus_deterministic(self, tmp_path):
        import hashlib, os

        def tree_hash(root):
            h = hashlib.sha1()
            for dirpath, _dirs, names in sorted(os.walk(root)):
                for name in sorted(names):
                    path = os.path.join(dirpath, name)
                    h.update(os.path.relpath(path, root).encode())
                    with open(path, "rb") as fh:
                        h.update(fh.read())
            return h.hexdigest()

        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        main(["gen-corpus", "--output-dir", a, "--machines", "2", "--generations", "1"])
        main(["gen-corpus", "--output-dir", b, "--machines", "2", "--generations", "1"])
        assert tree_hash(a) == tree_hash(b)


class TestInspect:
    def test_inspect_recipe(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["run", *FAST, "--store-dir", store])
        capsys.readouterr()
        main(["restore", "--store-dir", store, "--list"])
        first = capsys.readouterr().out.splitlines()[0]
        assert main(["inspect", "--store-dir", store, "--file", first]) == 0
        out = capsys.readouterr().out
        assert "recipe" in out and "container" in out

    def test_inspect_with_manifests(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["run", *FAST, "--store-dir", store])
        capsys.readouterr()
        main(["restore", "--store-dir", store, "--list"])
        first = capsys.readouterr().out.splitlines()[0]
        assert main(["inspect", "--store-dir", store, "--file", first, "--manifests"]) == 0
        out = capsys.readouterr().out
        assert "manifest" in out
        assert "hook" in out

    def test_inspect_missing_file(self, tmp_path):
        store = str(tmp_path / "store")
        main(["run", *FAST, "--store-dir", store])
        assert main(["inspect", "--store-dir", store, "--file", "nope"]) == 1


def test_verbose_flag_enables_logging(tmp_path, capsys, caplog):
    import logging

    with caplog.at_level(logging.INFO, logger="repro.dedup"):
        assert main(["-v", "run", *FAST]) == 0
    assert any("finalized" in r.message for r in caplog.records)


def test_gc_keep_last(tmp_path, capsys):
    store = str(tmp_path / "store")
    main(["run", *FAST, "--store-dir", store])
    capsys.readouterr()
    assert main(["gc", "--store-dir", store, "--keep-last", "1"]) == 0
    out = capsys.readouterr().out
    assert "deleted pc00/gen000" in out
    # the newest generation survives
    capsys.readouterr()
    main(["restore", "--store-dir", store, "--list"])
    listing = capsys.readouterr().out
    assert "gen001" in listing and "gen000" not in listing


def test_run_with_profile(capsys):
    assert main(["run", "--profile", "server-fleet", "--ecs", "2048", "--sd", "16"]) == 0
    assert "bf-mhd results" in capsys.readouterr().out


class TestTelemetry:
    def test_run_writes_trace_and_metrics(self, tmp_path, capsys):
        trace = str(tmp_path / "t.jsonl")
        prom = str(tmp_path / "m.prom")
        assert main(["run", *FAST, "--trace", trace, "--metrics", prom]) == 0
        out = capsys.readouterr().out
        assert f"trace written to {trace}" in out
        assert f"metrics written to {prom}" in out

        from repro.obs import load_trace, summarize

        spans, metrics = load_trace(trace)
        summary = summarize(spans)
        assert {"run", "file", "chunk", "hash", "index", "store"} <= {
            r.name for r in summary.rows
        }
        # Per-stage self-times account for the whole run within 5%.
        assert summary.coverage == pytest.approx(1.0, abs=0.05)
        assert metrics["ingest.files"] > 0

        with open(prom, encoding="utf-8") as fh:
            for line in fh:
                assert line.startswith(("# TYPE ", "repro_")), line

    def test_trace_view_renders_table(self, tmp_path, capsys):
        trace = str(tmp_path / "t.jsonl")
        main(["run", *FAST, "--trace", trace])
        capsys.readouterr()
        assert main(["trace-view", trace]) == 0
        out = capsys.readouterr().out
        assert "stage" in out and "(run)" in out
        assert "stage self-times cover" in out

    def test_trace_view_show_metrics(self, tmp_path, capsys):
        trace = str(tmp_path / "t.jsonl")
        main(["run", *FAST, "--trace", trace])
        capsys.readouterr()
        assert main(["trace-view", trace, "--show-metrics"]) == 0
        out = capsys.readouterr().out
        assert "final metrics" in out
        assert "ingest.files" in out

    def test_trace_view_missing_file_fails(self, tmp_path, capsys):
        assert main(["trace-view", str(tmp_path / "nope.jsonl")]) == 1
        assert "invalid trace" in capsys.readouterr().err

    def test_trace_view_garbage_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["trace-view", str(bad)]) == 1
        assert "invalid trace" in capsys.readouterr().err

    def test_progress_heartbeats_on_stderr(self, capsys):
        assert main(["run", *FAST, "--progress"]) == 0
        err = capsys.readouterr().err
        assert "DER so far" in err

    def test_run_without_telemetry_flags_prints_no_trace_lines(self, capsys):
        assert main(["run", *FAST]) == 0
        out = capsys.readouterr().out
        assert "trace written" not in out
        assert "metrics written" not in out


class TestFaultsAndFsck:
    def test_chaos_run_survives_with_retries(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main([
            "run", *FAST, "--store-dir", store, "--fsync", "data",
            "--fault-rate", "0.02", "--fault-seed", "7", "--retries", "4",
            "--verify", "--fsck",
        ]) == 0
        out = capsys.readouterr().out
        assert "faults injected (seed 7)" in out
        assert "transient backend errors" in out
        assert "restore byte-identically" in out
        assert "integrity OK" in out

    def test_chaos_without_store_dir_uses_memory(self, capsys):
        assert main(["run", *FAST, "--fault-rate", "0.01", "--retries", "4"]) == 0
        assert "faults injected" in capsys.readouterr().out

    def test_fsck_clean_store(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["run", *FAST, "--store-dir", store])
        capsys.readouterr()
        assert main(["fsck", "--store-dir", store]) == 0
        assert "integrity OK" in capsys.readouterr().out
        assert main(["fsck", "--store-dir", store, "--repair", "--check-hashes"]) == 0
        out = capsys.readouterr().out
        assert "recovery OK" in out and "0 repairs" in out

    def test_fsck_detects_and_repairs_damage(self, tmp_path, capsys):
        import os

        store = str(tmp_path / "store")
        main(["run", *FAST, "--store-dir", store])
        capsys.readouterr()
        mdir = os.path.join(store, "manifest")
        victim = os.path.join(mdir, sorted(os.listdir(mdir))[0])
        with open(victim, "rb") as fh:
            raw = fh.read()
        with open(victim, "wb") as fh:
            fh.write(raw[: len(raw) // 2])

        assert main(["fsck", "--store-dir", store]) == 1
        assert "ERROR" in capsys.readouterr().out

        assert main(["fsck", "--store-dir", store, "--repair"]) == 0
        out = capsys.readouterr().out
        assert "recovery OK" in out
        assert "quarantined" in out

        # Repair is durable: a plain fsck now passes again.
        assert main(["fsck", "--store-dir", store]) == 0
