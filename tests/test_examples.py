"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; a broken example is a
documentation bug.  Each is run in-process with scaled-down arguments
where supported.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert names == {
        "quickstart.py",
        "fleet_backup.py",
        "algorithm_comparison.py",
        "tune_sample_distance.py",
        "distributed_fleet.py",
        "retention_lifecycle.py",
    }


def test_quickstart():
    r = run_example("quickstart.py")
    assert r.returncode == 0, r.stderr[-500:]
    assert "restore file-3: OK" in r.stdout
    assert "real DER" in r.stdout


def test_fleet_backup():
    r = run_example("fleet_backup.py", "--machines", "2", "--generations", "2")
    assert r.returncode == 0, r.stderr[-500:]
    assert "hysteresis re-chunking" in r.stdout
    assert "fits in RAM" in r.stdout


@pytest.mark.slow
def test_algorithm_comparison():
    r = run_example("algorithm_comparison.py", "--ecs", "2048", "--sd", "16")
    assert r.returncode == 0, r.stderr[-500:]
    for algo in ("cdc", "bimodal", "subchunk", "sparse-indexing", "bf-mhd"):
        assert algo in r.stdout


@pytest.mark.slow
def test_tune_sample_distance():
    r = run_example("tune_sample_distance.py")
    assert r.returncode == 0, r.stderr[-500:]
    assert "sampling-distance sweep" in r.stdout


def test_retention_lifecycle():
    r = run_example("retention_lifecycle.py", "--days", "3")
    assert r.returncode == 0, r.stderr[-500:]
    assert "retention" in r.stdout
    assert "restore byte-identically" in r.stdout


def test_distributed_fleet():
    r = run_example("distributed_fleet.py", "--workers", "2")
    assert r.returncode == 0, r.stderr[-500:]
    assert "speedup" in r.stdout
    assert "cross-machine duplicates" in r.stdout
