"""Tests for retention policies."""

import pytest

from repro.core import DedupConfig, MHDDeduplicator
from repro.storage import (
    RetentionPolicy,
    apply_retention,
    default_generation_of,
    plan_retention,
    verify_store,
)
from repro.workloads import tiny_corpus


class TestGenerationExtraction:
    def test_standard_ids(self):
        assert default_generation_of("pc03/gen007/user/file.bin") == 7
        assert default_generation_of("pc00/gen000/os0/file0001") == 0

    def test_no_generation(self):
        assert default_generation_of("some/other/path") is None

    def test_gen_component_must_be_delimited(self):
        assert default_generation_of("xgen5/file") is None
        assert default_generation_of("a/gen12") == 12


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetentionPolicy(keep_last=0)
        with pytest.raises(ValueError):
            RetentionPolicy(keep_every=-1)

    def test_keep_last(self):
        p = RetentionPolicy(keep_last=2)
        assert p.kept_generations([0, 1, 2, 3]) == {2, 3}

    def test_keep_every_adds_grandfathers(self):
        p = RetentionPolicy(keep_last=2, keep_every=3)
        assert p.kept_generations(list(range(8))) == {0, 3, 6, 7}

    def test_fewer_generations_than_keep_last(self):
        p = RetentionPolicy(keep_last=10)
        assert p.kept_generations([0, 1]) == {0, 1}

    def test_empty(self):
        assert RetentionPolicy().kept_generations([]) == set()


class TestPlan:
    def test_plan_expires_old_generations(self):
        ids = [f"pc00/gen{g:03d}/f" for g in range(5)]
        victims = plan_retention(ids, RetentionPolicy(keep_last=2))
        assert victims == [f"pc00/gen{g:03d}/f" for g in range(3)]

    def test_plan_never_touches_ungenerationed_ids(self):
        ids = ["manual-backup.img", "pc00/gen000/f", "pc00/gen001/f"]
        victims = plan_retention(ids, RetentionPolicy(keep_last=1))
        assert "manual-backup.img" not in victims

    def test_custom_extractor(self):
        ids = ["day-1", "day-2", "day-3"]
        victims = plan_retention(
            ids,
            RetentionPolicy(keep_last=1),
            generation_of=lambda s: int(s.split("-")[1]),
        )
        assert victims == ["day-1", "day-2"]


class TestApply:
    def test_apply_reclaims_and_preserves_survivors(self):
        files = tiny_corpus().files()
        d = MHDDeduplicator(DedupConfig(ecs=1024, sd=8))
        d.process(files)
        ids = [f.file_id for f in files]
        stored_before = d.chunks.stored_bytes()

        expired, report = apply_retention(
            d.backend, ids, RetentionPolicy(keep_last=1)
        )
        assert expired
        assert all("gen002" not in f for f in expired)  # newest gen kept
        assert report.bytes_reclaimed > 0
        assert d.chunks.stored_bytes() < stored_before
        # all surviving files restore exactly; store verifies clean
        for f in files:
            if f.file_id not in expired:
                assert d.restore(f.file_id) == f.data
        assert verify_store(d.backend, check_entry_hashes=True).ok


def test_keep_every_alone():
    p = RetentionPolicy(keep_last=1, keep_every=2)
    assert p.kept_generations([0, 1, 2, 3, 4, 5]) == {0, 2, 4, 5}
