"""Integrity-verification tests, including failure injection.

Every corruption we can inject must be detected; a healthy store from
any deduplicator must verify clean.
"""

import numpy as np
import pytest

from repro.baselines import (
    BimodalDeduplicator,
    CDCDeduplicator,
    SparseIndexingDeduplicator,
    SubChunkDeduplicator,
)
from repro.core import DedupConfig, MHDDeduplicator
from repro.hashing import sha1
from repro.storage import DiskModel, verify_store
from repro.workloads import BackupFile, tiny_corpus

ALL = [
    CDCDeduplicator,
    BimodalDeduplicator,
    SubChunkDeduplicator,
    SparseIndexingDeduplicator,
    MHDDeduplicator,
]


def rand(n, seed):
    return np.random.default_rng(seed).integers(0, 256, size=n, dtype=np.uint8).tobytes()


def build_store(cls=MHDDeduplicator, n_files=6):
    d = cls(DedupConfig(ecs=512, sd=4, bloom_bytes=1 << 16, window=16))
    base = rand(60_000, 1)
    files = [BackupFile("base", base)]
    for i in range(1, n_files):
        files.append(BackupFile(f"f{i}", rand(5_000, i) + base[10_000:40_000]))
    d.process(files)
    return d


@pytest.mark.parametrize("cls", ALL, ids=[c.name for c in ALL])
def test_healthy_store_verifies_clean(cls):
    d = cls(DedupConfig(ecs=1024, sd=8, bloom_bytes=1 << 18))
    d.process(tiny_corpus().files()[:60])
    report = d.verify_integrity(check_entry_hashes=True)
    assert report.ok, report.errors[:5]
    assert report.manifests_checked > 0
    assert report.file_manifests_checked == 60
    assert "OK" in report.summary()


def test_verify_requires_finalized():
    d = MHDDeduplicator(DedupConfig(ecs=512, sd=4))
    d.ingest(BackupFile("a", rand(1000, 1)))
    with pytest.raises(RuntimeError):
        d.verify_integrity()


class TestFailureInjection:
    def test_detects_corrupted_container_bytes(self):
        d = build_store()
        # flip a byte inside a stored container
        backend = d.backend
        key = backend.keys(DiskModel.CHUNK)[0]
        data = bytearray(backend.get(DiskModel.CHUNK, key))
        data[len(data) // 2] ^= 0xFF
        backend.put(DiskModel.CHUNK, key, bytes(data))
        report = verify_store(backend, check_entry_hashes=True)
        assert not report.ok
        assert any("digest mismatch" in e for e in report.errors)

    def test_shallow_check_misses_byte_corruption(self):
        """Without entry-hash checking, byte flips are invisible —
        documents why check_entry_hashes exists."""
        d = build_store()
        backend = d.backend
        key = backend.keys(DiskModel.CHUNK)[0]
        data = bytearray(backend.get(DiskModel.CHUNK, key))
        data[len(data) // 2] ^= 0xFF
        backend.put(DiskModel.CHUNK, key, bytes(data))
        assert verify_store(backend, check_entry_hashes=False).ok

    def test_detects_missing_container(self):
        d = build_store()
        backend = d.backend
        key = backend.keys(DiskModel.CHUNK)[0]
        backend._data[DiskModel.CHUNK].pop(key)  # simulate lost file
        report = verify_store(backend)
        assert not report.ok
        assert any("missing" in e for e in report.errors)

    def test_detects_dangling_hook(self):
        d = build_store()
        backend = d.backend
        backend.put(DiskModel.HOOK, sha1(b"rogue"), sha1(b"no-such-manifest"))
        report = verify_store(backend)
        assert not report.ok
        assert any("dangling" in e for e in report.errors)

    def test_detects_hook_digest_dropped_from_manifest(self):
        d = build_store()
        backend = d.backend
        hook_key = backend.keys(DiskModel.HOOK)[0]
        manifest_id = backend.get(DiskModel.HOOK, hook_key)
        # repoint the hook at a manifest that does not contain it
        other = [
            k for k in backend.keys(DiskModel.MANIFEST) if k != manifest_id
        ]
        if not other:
            pytest.skip("store produced a single manifest")
        from repro.storage import Manifest

        target = Manifest.from_bytes(backend.get(DiskModel.MANIFEST, other[0]))
        if hook_key in target:
            pytest.skip("digest happens to exist in the other manifest")
        backend.put(DiskModel.HOOK, hook_key, other[0])
        report = verify_store(backend)
        assert not report.ok
        assert any("no longer present" in e for e in report.errors)

    def test_detects_truncated_manifest(self):
        d = build_store()
        backend = d.backend
        key = backend.keys(DiskModel.MANIFEST)[0]
        raw = backend.get(DiskModel.MANIFEST, key)
        backend.put(DiskModel.MANIFEST, key, raw[: len(raw) - 10])
        report = verify_store(backend)
        assert not report.ok

    def test_detects_file_manifest_beyond_container(self):
        d = build_store()
        backend = d.backend
        from repro.storage import FileManifest, FileManifestStore

        fm = FileManifest("evil")
        some_container = backend.keys(DiskModel.CHUNK)[0]
        fm.append(some_container, 0, 10**9)
        backend.put(DiskModel.FILE_MANIFEST, FileManifestStore.key_for("evil"), fm.to_bytes())
        report = verify_store(backend)
        assert not report.ok
        assert any("beyond container" in e for e in report.errors)

    def test_detects_manifest_under_wrong_key(self):
        d = build_store()
        backend = d.backend
        key = backend.keys(DiskModel.MANIFEST)[0]
        raw = backend.get(DiskModel.MANIFEST, key)
        backend.put(DiskModel.MANIFEST, sha1(b"wrong-key"), raw)
        report = verify_store(backend)
        assert not report.ok
        assert any("wrong key" in e for e in report.errors)
