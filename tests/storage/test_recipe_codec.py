"""Tests for file-recipe compression."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import sha1
from repro.storage import FileExtent, FileManifest
from repro.storage.recipe_codec import compression_ratio, decode_recipe, encode_recipe

C = [sha1(f"c{i}".encode()) for i in range(6)]


def test_empty_manifest_roundtrip():
    fm = FileManifest("empty")
    assert decode_recipe(encode_recipe(fm)).extents == []


def test_simple_roundtrip():
    fm = FileManifest("f")
    fm.extents.append(FileExtent(C[0], 0, 100))
    fm.extents.append(FileExtent(C[1], 50, 200))
    out = decode_recipe(encode_recipe(fm))
    assert out.file_id == "f"
    assert out.extents == fm.extents


def test_bad_magic_rejected():
    with pytest.raises(ValueError):
        decode_recipe(b"XXXXgarbage")


def test_unicode_file_id():
    fm = FileManifest("pc00/gen001/ユーザー/файл.bin")
    fm.extents.append(FileExtent(C[0], 7, 9))
    assert decode_recipe(encode_recipe(fm)).file_id == fm.file_id


_extents = st.lists(
    st.tuples(
        st.integers(0, 5),  # container index
        st.integers(0, 2**40),  # offset
        st.integers(1, 2**32),  # size
    ),
    max_size=60,
)


@given(_extents)
@settings(max_examples=80, deadline=None)
def test_roundtrip_property(raw_extents):
    fm = FileManifest("prop")
    for ci, off, size in raw_extents:
        fm.extents.append(FileExtent(C[ci], off, size))
    out = decode_recipe(encode_recipe(fm))
    assert out.extents == fm.extents


def test_adjacent_runs_compress_well():
    """Backup-shaped recipes (long adjacent runs in one container)
    must compress by a lot — the FAST'13 claim."""
    fm = FileManifest("run-heavy")
    pos = 0
    for _ in range(500):
        fm.extents.append(FileExtent(C[0], pos, 4096))
        pos += 4096
    assert compression_ratio(fm) > 8


def test_random_recipes_still_shrink():
    import numpy as np

    rng = np.random.default_rng(0)
    fm = FileManifest("random")
    for _ in range(300):
        fm.extents.append(
            FileExtent(
                C[int(rng.integers(0, 6))],
                int(rng.integers(0, 2**30)),
                int(rng.integers(1, 2**20)),
            )
        )
    assert compression_ratio(fm) > 1.0


def test_real_dedup_recipes_compress():
    """Recipes of later backup generations fragment (duplicate runs
    alternate with fresh edits) and those are exactly the ones the
    codec wins on; every real recipe round-trips exactly."""
    from repro.baselines import CDCDeduplicator
    from repro.core import DedupConfig
    from repro.workloads import tiny_corpus

    files = tiny_corpus().files()
    d = CDCDeduplicator(DedupConfig(ecs=512, sd=8))
    d.process(files)
    fragmented = []
    for f in files:
        fm = d.file_manifests.get(f.file_id)
        assert decode_recipe(encode_recipe(fm)).extents == fm.extents
        if len(fm.extents) > 1:
            fragmented.append(compression_ratio(fm))
    assert fragmented, "corpus produced no fragmented recipes"
    assert sum(fragmented) / len(fragmented) > 1.3


def test_compression_level_plumbs_through():
    fm = FileManifest("lvl")
    pos = 0
    for _ in range(200):
        fm.extents.append(FileExtent(C[0], pos, 1024))
        pos += 1024
    fast = len(encode_recipe(fm, level=1))
    best = len(encode_recipe(fm, level=9))
    assert best <= fast
