"""Property-based tests for manifest structures.

Serialisation round-trips and mutation chains over randomly generated
entry layouts — the HHR mutation path in particular must preserve the
tiling invariant through arbitrary split sequences.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import sha1
from repro.storage import (
    ENTRY_SIZE,
    MHD_ENTRY_SIZE,
    Manifest,
    ManifestEntry,
    MultiEntry,
    MultiManifest,
)

MID = sha1(b"m")
CID = sha1(b"c")
CONTAINERS = [sha1(f"c{i}".encode()) for i in range(4)]


@st.composite
def tiled_entries(draw):
    """Contiguous entries starting at 0 (the manifest invariant)."""
    sizes = draw(st.lists(st.integers(1, 10_000), min_size=0, max_size=30))
    entries = []
    pos = 0
    for i, size in enumerate(sizes):
        entries.append(
            ManifestEntry(
                sha1(f"e{i}".encode()), pos, size, is_hook=draw(st.booleans())
            )
        )
        pos += size
    return entries


@given(tiled_entries(), st.sampled_from([ENTRY_SIZE, MHD_ENTRY_SIZE]))
@settings(max_examples=60, deadline=None)
def test_manifest_roundtrip_property(entries, entry_size):
    m = Manifest(MID, CID, entries, entry_size=entry_size)
    m2 = Manifest.from_bytes(m.to_bytes())
    if entries:  # empty manifests can't carry their entry size
        assert m2.entry_size == entry_size
    assert [(e.digest, e.offset, e.size) for e in m2.entries] == [
        (e.digest, e.offset, e.size) for e in entries
    ]
    if entry_size == MHD_ENTRY_SIZE:
        assert [e.is_hook for e in m2.entries] == [e.is_hook for e in entries]
    assert len(m.to_bytes()) == m.byte_size()


@given(
    tiled_entries(),
    st.data(),
)
@settings(max_examples=60, deadline=None)
def test_split_chains_preserve_tiling(entries, data):
    """Random sequences of HHR-style splits keep the manifest tiled."""
    m = Manifest(MID, CID, entries)
    total = sum(e.size for e in entries)
    for _round in range(data.draw(st.integers(0, 4))):
        if not m.entries:
            break
        i = data.draw(st.integers(0, len(m.entries) - 1))
        victim = m.entries[i]
        if victim.size < 2:
            continue
        cut = data.draw(st.integers(1, victim.size - 1))
        parts = [
            ManifestEntry(sha1(b"p1" + victim.digest), victim.offset, cut),
            ManifestEntry(
                sha1(b"p2" + victim.digest), victim.offset + cut, victim.size - cut
            ),
        ]
        m.replace_entry(i, parts)
        # find stays consistent with positions after every mutation
        for j, e in enumerate(m.entries):
            assert m.find(e.digest) is not None
    m.validate_tiling(total if entries else None)


@st.composite
def multi_entries(draw):
    out = []
    for i in range(draw(st.integers(0, 25))):
        out.append(
            MultiEntry(
                sha1(f"d{i}".encode()),
                CONTAINERS[draw(st.integers(0, 3))],
                draw(st.integers(0, 2**40)),
                draw(st.integers(1, 2**30)),
            )
        )
    return out


@given(multi_entries())
@settings(max_examples=60, deadline=None)
def test_multi_manifest_roundtrip_property(entries):
    m = MultiManifest(MID, entries)
    m2 = MultiManifest.from_bytes(m.to_bytes())
    assert m2.entries == entries
    assert len(m.to_bytes()) == m.byte_size()
    # group count never exceeds entry count; group sizes sum to total
    groups = m.groups()
    assert sum(count for _c, count in groups) == len(entries)
    assert len(groups) <= max(1, len(entries))
