"""Backend contract tests, run against both implementations."""

import pytest

from repro.storage import INODE_SIZE, DirectoryBackend, MemoryBackend


@pytest.fixture(params=["memory", "directory"])
def backend(request, tmp_path):
    if request.param == "memory":
        return MemoryBackend()
    return DirectoryBackend(tmp_path / "store")


KEY1 = b"\x01" * 20
KEY2 = b"\x02" * 20


def test_put_get_roundtrip(backend):
    backend.put("chunk", KEY1, b"payload")
    assert backend.get("chunk", KEY1) == b"payload"


def test_get_missing_raises_keyerror(backend):
    with pytest.raises(KeyError):
        backend.get("chunk", KEY1)


def test_exists(backend):
    assert not backend.exists("chunk", KEY1)
    backend.put("chunk", KEY1, b"x")
    assert backend.exists("chunk", KEY1)


def test_namespaces_are_isolated(backend):
    backend.put("chunk", KEY1, b"a")
    backend.put("hook", KEY1, b"b")
    assert backend.get("chunk", KEY1) == b"a"
    assert backend.get("hook", KEY1) == b"b"
    assert backend.object_count("chunk") == 1


def test_overwrite_replaces(backend):
    backend.put("chunk", KEY1, b"old")
    backend.put("chunk", KEY1, b"new longer payload")
    assert backend.get("chunk", KEY1) == b"new longer payload"
    assert backend.object_count("chunk") == 1


def test_object_count_and_bytes(backend):
    backend.put("chunk", KEY1, b"abc")
    backend.put("chunk", KEY2, b"defgh")
    assert backend.object_count("chunk") == 2
    assert backend.bytes_stored("chunk") == 8
    assert backend.inode_bytes("chunk") == 2 * INODE_SIZE


def test_keys(backend):
    backend.put("chunk", KEY1, b"a")
    backend.put("chunk", KEY2, b"b")
    assert sorted(backend.keys("chunk")) == [KEY1, KEY2]
    assert backend.keys("empty-ns") == []


def test_total_stored_includes_inodes(backend):
    backend.put("chunk", KEY1, b"1234")
    backend.put("hook", KEY2, b"56")
    assert backend.total_stored() == 4 + 2 + 2 * INODE_SIZE
    assert backend.total_stored(["chunk"]) == 4 + INODE_SIZE


def test_namespaces_listing(backend):
    assert backend.namespaces() == []
    backend.put("chunk", KEY1, b"a")
    assert backend.namespaces() == ["chunk"]


def test_empty_namespace_counts(backend):
    assert backend.object_count("nothing") == 0
    assert backend.bytes_stored("nothing") == 0


def test_delete_existing(backend):
    backend.put("chunk", KEY1, b"x")
    assert backend.delete("chunk", KEY1) is True
    assert not backend.exists("chunk", KEY1)
    assert backend.object_count("chunk") == 0


def test_delete_missing_returns_false(backend):
    assert backend.delete("chunk", KEY1) is False
    assert backend.delete("never-seen-namespace", KEY1) is False


def test_delete_is_namespace_scoped(backend):
    backend.put("chunk", KEY1, b"a")
    backend.put("hook", KEY1, b"b")
    backend.delete("chunk", KEY1)
    assert backend.exists("hook", KEY1)
