"""Backend contract tests, run against both implementations."""

import pytest

from repro.storage import INODE_SIZE, DirectoryBackend, MemoryBackend


@pytest.fixture(params=["memory", "directory"])
def backend(request, tmp_path):
    if request.param == "memory":
        return MemoryBackend()
    return DirectoryBackend(tmp_path / "store")


KEY1 = b"\x01" * 20
KEY2 = b"\x02" * 20


def test_put_get_roundtrip(backend):
    backend.put("chunk", KEY1, b"payload")
    assert backend.get("chunk", KEY1) == b"payload"


def test_get_missing_raises_keyerror(backend):
    with pytest.raises(KeyError):
        backend.get("chunk", KEY1)


def test_exists(backend):
    assert not backend.exists("chunk", KEY1)
    backend.put("chunk", KEY1, b"x")
    assert backend.exists("chunk", KEY1)


def test_namespaces_are_isolated(backend):
    backend.put("chunk", KEY1, b"a")
    backend.put("hook", KEY1, b"b")
    assert backend.get("chunk", KEY1) == b"a"
    assert backend.get("hook", KEY1) == b"b"
    assert backend.object_count("chunk") == 1


def test_overwrite_replaces(backend):
    backend.put("chunk", KEY1, b"old")
    backend.put("chunk", KEY1, b"new longer payload")
    assert backend.get("chunk", KEY1) == b"new longer payload"
    assert backend.object_count("chunk") == 1


def test_object_count_and_bytes(backend):
    backend.put("chunk", KEY1, b"abc")
    backend.put("chunk", KEY2, b"defgh")
    assert backend.object_count("chunk") == 2
    assert backend.bytes_stored("chunk") == 8
    assert backend.inode_bytes("chunk") == 2 * INODE_SIZE


def test_keys(backend):
    backend.put("chunk", KEY1, b"a")
    backend.put("chunk", KEY2, b"b")
    assert sorted(backend.keys("chunk")) == [KEY1, KEY2]
    assert backend.keys("empty-ns") == []


def test_total_stored_includes_inodes(backend):
    backend.put("chunk", KEY1, b"1234")
    backend.put("hook", KEY2, b"56")
    assert backend.total_stored() == 4 + 2 + 2 * INODE_SIZE
    assert backend.total_stored(["chunk"]) == 4 + INODE_SIZE


def test_namespaces_listing(backend):
    assert backend.namespaces() == []
    backend.put("chunk", KEY1, b"a")
    assert backend.namespaces() == ["chunk"]


def test_empty_namespace_counts(backend):
    assert backend.object_count("nothing") == 0
    assert backend.bytes_stored("nothing") == 0


def test_delete_existing(backend):
    backend.put("chunk", KEY1, b"x")
    assert backend.delete("chunk", KEY1) is True
    assert not backend.exists("chunk", KEY1)
    assert backend.object_count("chunk") == 0


def test_delete_missing_returns_false(backend):
    assert backend.delete("chunk", KEY1) is False
    assert backend.delete("never-seen-namespace", KEY1) is False


def test_delete_is_namespace_scoped(backend):
    backend.put("chunk", KEY1, b"a")
    backend.put("hook", KEY1, b"b")
    backend.delete("chunk", KEY1)
    assert backend.exists("hook", KEY1)


class TestDirectoryDurability:
    """Atomic-put semantics and stray-file tolerance (DirectoryBackend only)."""

    def test_invalid_fsync_policy_rejected(self, tmp_path):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            DirectoryBackend(tmp_path / "s", fsync="always")

    @pytest.mark.parametrize("fsync", ["none", "data", "full"])
    def test_put_roundtrips_under_every_fsync_policy(self, tmp_path, fsync):
        b = DirectoryBackend(tmp_path / "s", fsync=fsync)
        b.put("chunk", KEY1, b"payload")
        assert b.get("chunk", KEY1) == b"payload"

    def test_put_leaves_no_temp_files(self, tmp_path):
        import os

        b = DirectoryBackend(tmp_path / "s")
        for i in range(20):
            b.put("chunk", bytes([i]) * 20, b"x" * i)
        names = os.listdir(tmp_path / "s" / "chunk")
        assert len(names) == 20
        assert not any(n.endswith(".tmp") for n in names)

    def test_failed_put_cleans_up_its_temp_file(self, tmp_path, monkeypatch):
        import os

        b = DirectoryBackend(tmp_path / "s")
        b.put("chunk", KEY1, b"ok")  # create the namespace dir

        def no_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", no_replace)
        with pytest.raises(OSError):
            b.put("chunk", KEY2, b"doomed")
        monkeypatch.undo()
        assert os.listdir(tmp_path / "s" / "chunk") == [KEY1.hex()]

    def test_stray_files_are_invisible_to_reads(self, tmp_path):
        import os

        b = DirectoryBackend(tmp_path / "s")
        b.put("chunk", KEY1, b"real")
        d = tmp_path / "s" / "chunk"
        (d / ".ghost123.tmp").write_bytes(b"interrupted put")
        (d / "README.txt").write_bytes(b"foreign file")
        assert b.keys("chunk") == [KEY1]
        assert b.object_count("chunk") == 1
        assert b.bytes_stored("chunk") == 4
        assert b.namespaces() == ["chunk"]
        # ...but still physically present until purged.
        assert len(os.listdir(d)) == 3

    def test_odd_hex_and_uppercase_names_are_skipped(self, tmp_path):
        b = DirectoryBackend(tmp_path / "s")
        b.put("chunk", KEY1, b"real")
        d = tmp_path / "s" / "chunk"
        (d / "abc").write_bytes(b"odd-length hex")
        (d / ("A" * 40)).write_bytes(b"uppercase hex")
        (d / "zz11").write_bytes(b"not hex")
        assert b.keys("chunk") == [KEY1]

    def test_purge_incomplete_removes_only_non_objects(self, tmp_path):
        import os

        b = DirectoryBackend(tmp_path / "s")
        b.put("chunk", KEY1, b"real")
        b.put("hook", KEY2, b"also real")
        (tmp_path / "s" / "chunk" / ".x1.tmp").write_bytes(b"a")
        (tmp_path / "s" / "hook" / ".x2.tmp").write_bytes(b"b")
        (tmp_path / "s" / "hook" / "notes.txt").write_bytes(b"c")
        assert b.purge_incomplete() == 3
        assert b.get("chunk", KEY1) == b"real"
        assert b.get("hook", KEY2) == b"also real"
        assert os.listdir(tmp_path / "s" / "hook") == [KEY2.hex()]
        assert b.purge_incomplete() == 0
