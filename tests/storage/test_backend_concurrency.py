"""Concurrency hammer for DirectoryBackend and PrefixedBackend views.

DirectoryBackend documents a same-process concurrency guarantee: puts
are atomic (unique mkstemp temp + os.replace), so concurrent writers —
including writers racing on the *same* key — never produce a torn
object, and readers always observe complete payloads.  These tests
hammer that guarantee with thread fleets over overlapping namespaces,
the exact shape the multi-tenant service produces (many sessions, one
physical store).
"""

import threading

import pytest

from repro.storage import DirectoryBackend, MemoryBackend, PrefixedBackend


def _key(i: int) -> bytes:
    return i.to_bytes(4, "big") * 5  # 20-byte hex-friendly key


def _payload(i: int, writer: int) -> bytes:
    # Self-describing payload: any torn read is detectable because the
    # content encodes its own identity and has a fixed checkable shape.
    body = bytes([writer]) * 512
    return i.to_bytes(4, "big") + bytes([writer]) + body


class TestDirectoryBackendHammer:
    N_THREADS = 8
    N_KEYS = 64

    def test_overlapping_namespace_writers(self, tmp_path):
        """N threads put into the same two namespaces; every key must
        come back complete and equal to one writer's payload."""
        backend = DirectoryBackend(tmp_path / "store")
        errors: list[BaseException] = []
        start = threading.Barrier(self.N_THREADS)

        def writer(w: int) -> None:
            try:
                start.wait()
                for i in range(self.N_KEYS):
                    ns = "chunk" if i % 2 == 0 else "manifest"
                    backend.put(ns, _key(i), _payload(i, w))
                    # Read-back of a key someone else may be rewriting
                    # concurrently: must always be a complete payload.
                    got = backend.get(ns, _key(i))
                    assert len(got) == len(_payload(i, 0)), "torn read"
                    assert got[:4] == i.to_bytes(4, "big")
                    assert got[5:] == bytes([got[4]]) * 512
            except BaseException as e:  # noqa: BLE001 - collected for the main thread
                errors.append(e)

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors

        # Post-conditions: every key exists exactly once, holds one
        # writer's complete payload, and no temp strays leaked.
        for i in range(self.N_KEYS):
            ns = "chunk" if i % 2 == 0 else "manifest"
            got = backend.get(ns, _key(i))
            w = got[4]
            assert got == _payload(i, w)
        assert backend.object_count("chunk") == self.N_KEYS // 2
        assert backend.object_count("manifest") == self.N_KEYS // 2
        assert backend.purge_incomplete() == 0

    def test_concurrent_tenant_views_stay_disjoint(self, tmp_path):
        """Writers behind different PrefixedBackend views over one
        physical store can never observe each other's objects."""
        inner = DirectoryBackend(tmp_path / "store")
        tenants = [PrefixedBackend(inner, f"tenant.t{w}.") for w in range(4)]
        start = threading.Barrier(len(tenants))
        errors: list[BaseException] = []

        def writer(w: int) -> None:
            try:
                start.wait()
                view = tenants[w]
                for i in range(32):
                    view.put("chunk", _key(i), _payload(i, w))
                for i in range(32):
                    assert view.get("chunk", _key(i)) == _payload(i, w)
            except BaseException as e:  # noqa: BLE001
                errors.append(e)

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(len(tenants))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors

        # Same logical key, four different physical objects.
        for w, view in enumerate(tenants):
            assert view.object_count("chunk") == 32
            assert view.get("chunk", _key(0))[4] == w
            assert view.namespaces() == ["chunk"]
        assert sorted(inner.namespaces()) == [f"tenant.t{w}.chunk" for w in range(4)]


class TestPrefixedBackend:
    def test_namespace_mapping_roundtrip(self):
        inner = MemoryBackend()
        view = PrefixedBackend(inner, "tenant.alice.")
        view.put("chunk", b"k" * 20, b"data")
        assert inner.get("tenant.alice.chunk", b"k" * 20) == b"data"
        assert view.get("chunk", b"k" * 20) == b"data"
        assert view.exists("chunk", b"k" * 20)
        assert view.keys("chunk") == [b"k" * 20]
        assert view.object_count("chunk") == 1
        assert view.bytes_stored("chunk") == 4
        assert view.namespaces() == ["chunk"]
        assert view.delete("chunk", b"k" * 20)
        assert not view.exists("chunk", b"k" * 20)

    def test_views_are_disjoint(self):
        inner = MemoryBackend()
        a = PrefixedBackend(inner, "tenant.a.")
        b = PrefixedBackend(inner, "tenant.b.")
        a.put("hook", b"h" * 20, b"\x01" * 20)
        assert not b.exists("hook", b"h" * 20)
        assert b.keys("hook") == []
        assert b.namespaces() == []
        assert a.namespaces() == ["hook"]

    def test_rejects_bad_prefix(self):
        inner = MemoryBackend()
        with pytest.raises(ValueError):
            PrefixedBackend(inner, "")
        with pytest.raises(ValueError):
            PrefixedBackend(inner, "ten/ant.")

    def test_purge_scoped_to_prefix(self, tmp_path):
        """A tenant view's purge must not delete another tenant's
        in-flight temp files."""
        inner = DirectoryBackend(tmp_path / "store")
        a = PrefixedBackend(inner, "tenant.a.")
        b = PrefixedBackend(inner, "tenant.b.")
        a.put("chunk", b"k" * 20, b"data")
        b.put("chunk", b"k" * 20, b"data")
        # Plant a fake in-flight stray in each tenant's namespace dir.
        for t in ("a", "b"):
            stray = tmp_path / "store" / f"tenant.{t}.chunk" / ".inflight.tmp"
            stray.write_bytes(b"partial")
        assert a.purge_incomplete() == 1
        assert (tmp_path / "store" / "tenant.b.chunk" / ".inflight.tmp").exists()
        assert b.purge_incomplete() == 1
        assert inner.purge_incomplete() == 0

    def test_memory_backend_purge_is_zero(self):
        view = PrefixedBackend(MemoryBackend(), "tenant.x.")
        assert view.purge_incomplete() == 0
