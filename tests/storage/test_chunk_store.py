"""Tests for the DiskChunk container store."""

import pytest

from repro.hashing import sha1
from repro.storage import DiskChunkStore, DiskModel, MemoryBackend

CID = sha1(b"container-1")


@pytest.fixture
def store():
    return DiskChunkStore(MemoryBackend(), DiskModel())


@pytest.fixture
def metered():
    meter = DiskModel()
    return DiskChunkStore(MemoryBackend(), meter), meter


def test_append_returns_offsets(store):
    w = store.open_container(CID)
    assert w.append(b"aaa") == 0
    assert w.append(b"bb") == 3
    assert w.size == 5


def test_read_open_container(store):
    w = store.open_container(CID)
    w.append(b"hello world")
    assert store.read(CID, 6, 5) == b"world"
    assert not w.closed


def test_read_closed_container(store):
    w = store.open_container(CID)
    w.append(b"hello world")
    w.close()
    assert w.closed
    assert store.read(CID, 0, 5) == b"hello"
    assert store.size(CID) == 11


def test_close_is_idempotent(metered):
    store, meter = metered
    w = store.open_container(CID)
    w.append(b"data")
    w.close()
    w.close()
    assert meter.count(DiskModel.CHUNK, "write") == 1


def test_append_after_close_fails(store):
    w = store.open_container(CID)
    w.close()
    with pytest.raises(RuntimeError):
        w.append(b"late")


def test_duplicate_container_id_rejected(store):
    store.open_container(CID)
    with pytest.raises(ValueError):
        store.open_container(CID)


def test_duplicate_after_close_rejected(store):
    w = store.open_container(CID)
    w.append(b"x")
    w.close()
    with pytest.raises(ValueError):
        store.open_container(CID)


def test_empty_container_occupies_nothing(metered):
    store, meter = metered
    w = store.open_container(CID)
    w.close()
    assert store.count() == 0
    assert meter.count(DiskModel.CHUNK, "write") == 0


def test_write_metered_once_per_container(metered):
    store, meter = metered
    w = store.open_container(CID)
    w.append(b"a" * 100)
    w.append(b"b" * 200)
    w.close()
    assert meter.count(DiskModel.CHUNK, "write") == 1
    assert meter.nbytes(DiskModel.CHUNK, "write") == 300


def test_reads_metered_even_when_open(metered):
    store, meter = metered
    w = store.open_container(CID)
    w.append(b"0123456789")
    store.read(CID, 2, 4)
    w.close()
    store.read(CID, 0, 3)
    assert meter.count(DiskModel.CHUNK, "read") == 2
    assert meter.nbytes(DiskModel.CHUNK, "read") == 7


def test_read_beyond_extent_fails(store):
    w = store.open_container(CID)
    w.append(b"short")
    w.close()
    with pytest.raises(ValueError):
        store.read(CID, 3, 10)


def test_read_invalid_extent(store):
    with pytest.raises(ValueError):
        store.read(CID, -1, 5)


def test_exists(store):
    assert not store.exists(CID)
    w = store.open_container(CID)
    assert store.exists(CID)
    w.append(b"x")
    w.close()
    assert store.exists(CID)


def test_stored_bytes(store):
    w = store.open_container(CID)
    w.append(b"abcdef")
    w.close()
    assert store.stored_bytes() == 6
    assert store.count() == 1
