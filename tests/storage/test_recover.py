"""Tests for the crash-recovery pass (:func:`repro.storage.recover`)."""

import os

import numpy as np
import pytest

from repro.core import DedupConfig, MHDDeduplicator
from repro.hashing import sha1
from repro.storage import (
    QUARANTINE_PREFIX,
    DirectoryBackend,
    DiskChunkStore,
    DiskModel,
    FileManifestStore,
    MemoryBackend,
    recover,
    verify_store,
)
from repro.workloads import BackupFile, EditConfig, mutate


def rand(n, seed):
    return np.random.default_rng(seed).integers(0, 256, size=n, dtype=np.uint8).tobytes()


def cfg():
    return DedupConfig(ecs=512, sd=4, bloom_bytes=1 << 16, cache_manifests=16, window=16)


@pytest.fixture
def populated(tmp_path):
    """A real on-disk store with shared data across four files."""
    backend = DirectoryBackend(tmp_path / "store")
    d = MHDDeduplicator(cfg(), backend)
    rng = np.random.default_rng(0)
    base = rand(60_000, 1)
    files = {
        "a": rand(50_000, 2),
        "b": base,
        "b2": mutate(base, rng, EditConfig(change_rate=0.1)),
        "c": rand(30_000, 3),
    }
    d.process([BackupFile(k, v) for k, v in files.items()])
    return backend, files, tmp_path / "store"


def obj_path(root, namespace, key):
    return os.path.join(root, namespace, key.hex())


def restore_all(backend):
    meter = DiskModel()
    fms = FileManifestStore(backend, meter)
    chunks = DiskChunkStore(backend, meter)
    return {fid: fms.get(fid).restore(chunks) for fid in fms.list_ids()}


class TestCleanStore:
    def test_noop_and_idempotent(self, populated):
        backend, files, _ = populated
        report = recover(backend)
        assert report.repairs == 0
        assert report.ok
        assert report.actions == []
        assert recover(backend, check_hashes=True).repairs == 0
        assert restore_all(backend) == files

    def test_memory_backend_supported(self):
        backend = MemoryBackend()
        d = MHDDeduplicator(cfg(), backend)
        d.process([BackupFile("x", rand(20_000, 9))])
        assert recover(backend).repairs == 0


class TestStrays:
    def test_tmp_debris_is_purged(self, populated):
        backend, files, root = populated
        stray = os.path.join(root, "chunk", ".abc123.tmp")
        with open(stray, "wb") as fh:
            fh.write(b"half-written junk")
        report = recover(backend)
        assert report.tmp_purged == 1
        assert report.ok
        assert not os.path.exists(stray)
        assert restore_all(backend) == files


class TestTornManifest:
    def test_quarantined_with_its_hooks(self, populated):
        backend, files, root = populated
        key = sorted(backend.keys(DiskModel.MANIFEST))[0]
        path = obj_path(root, DiskModel.MANIFEST, key)
        with open(path, "rb") as fh:
            raw = fh.read()
        with open(path, "wb") as fh:
            fh.write(raw[: len(raw) // 2])

        hooks_before = backend.object_count(DiskModel.HOOK)
        report = recover(backend)
        assert report.manifests_quarantined == 1
        assert report.hooks_deleted >= 1
        assert report.ok
        # Quarantined, not destroyed: the torn bytes are preserved.
        assert backend.get(QUARANTINE_PREFIX + DiskModel.MANIFEST, key) == raw[: len(raw) // 2]
        assert not backend.exists(DiskModel.MANIFEST, key)
        assert backend.object_count(DiskModel.HOOK) < hooks_before
        # Manifests only steer dedup decisions — every file still restores.
        assert restore_all(backend) == files


class TestMissingContainer:
    def test_dependents_quarantined(self, populated):
        backend, files, root = populated
        # MHD containers are keyed by sha1(file_id).
        victim = sha1(b"c")
        os.remove(obj_path(root, DiskModel.CHUNK, victim))

        report = recover(backend)
        assert report.manifests_quarantined >= 1
        assert report.file_manifests_quarantined == 1
        assert report.ok
        survivors = restore_all(backend)
        assert "c" not in survivors
        assert survivors == {k: v for k, v in files.items() if k != "c"}


class TestBadHooks:
    def test_wrong_size_hook_deleted(self, populated):
        backend, files, _ = populated
        backend.put(DiskModel.HOOK, sha1(b"bogus-hook"), b"short")
        report = recover(backend)
        assert report.hooks_deleted == 1
        assert report.ok

    def test_dangling_hook_deleted(self, populated):
        backend, _, _ = populated
        backend.put(DiskModel.HOOK, sha1(b"dangler"), bytes(sha1(b"no-such-manifest")))
        report = recover(backend)
        assert report.hooks_deleted == 1
        assert report.ok


class TestWrongKey:
    def test_manifest_under_wrong_key_quarantined(self, populated):
        backend, _, _ = populated
        key = sorted(backend.keys(DiskModel.MANIFEST))[0]
        raw = backend.get(DiskModel.MANIFEST, key)
        wrong = sha1(b"not-the-manifest-id")
        backend.delete(DiskModel.MANIFEST, key)
        backend.put(DiskModel.MANIFEST, wrong, raw)
        report = recover(backend)
        assert report.manifests_quarantined == 1
        assert report.ok

    def test_file_manifest_under_wrong_key_quarantined(self, populated):
        backend, files, _ = populated
        key = FileManifestStore.key_for("a")
        raw = backend.get(DiskModel.FILE_MANIFEST, key)
        wrong = sha1(b"not-a-file-id")
        backend.delete(DiskModel.FILE_MANIFEST, key)
        backend.put(DiskModel.FILE_MANIFEST, wrong, raw)
        report = recover(backend)
        assert report.file_manifests_quarantined == 1
        assert report.ok
        assert "a" not in restore_all(backend)


class TestBitFlip:
    def test_check_hashes_quarantines_corrupt_container(self, populated):
        backend, files, root = populated
        victim = sha1(b"a")
        raw = bytearray(backend.get(DiskModel.CHUNK, victim))
        raw[100] ^= 0x40
        with open(obj_path(root, DiskModel.CHUNK, victim), "wb") as fh:
            fh.write(raw)

        # Structural pass alone cannot see silent corruption.
        assert recover(backend).containers_quarantined == 0

        report = recover(backend, check_hashes=True)
        assert report.containers_quarantined == 1
        assert report.file_manifests_quarantined == 1  # 'a' lost its bytes
        assert report.ok
        assert backend.exists(QUARANTINE_PREFIX + DiskModel.CHUNK, victim)
        survivors = restore_all(backend)
        assert "a" not in survivors
        assert survivors == {k: v for k, v in files.items() if k != "a"}


class TestReport:
    def test_summary_mentions_status(self, populated):
        backend, _, _ = populated
        report = recover(backend)
        assert "recovery OK" in report.summary()
        assert "0 repairs" in report.summary()

    def test_not_ok_without_integrity_walk(self):
        from repro.storage import RecoveryReport

        assert not RecoveryReport().ok

    def test_quarantine_is_invisible_to_verify(self, populated):
        backend, _, root = populated
        key = sorted(backend.keys(DiskModel.MANIFEST))[0]
        path = obj_path(root, DiskModel.MANIFEST, key)
        with open(path, "ab") as fh:
            fh.write(b"\x00" * 7)  # corrupt trailing bytes
        recover(backend)
        assert verify_store(backend, deep=True).ok
