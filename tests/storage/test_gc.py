"""Tests for retention / garbage collection."""

import numpy as np
import pytest

from repro.baselines import SparseIndexingDeduplicator
from repro.core import DedupConfig, MHDDeduplicator
from repro.storage import DiskModel, verify_store
from repro.storage.gc import delete_file, sweep
from repro.workloads import BackupFile, EditConfig, mutate


def rand(n, seed):
    return np.random.default_rng(seed).integers(0, 256, size=n, dtype=np.uint8).tobytes()


def cfg(**kw):
    defaults = dict(ecs=512, sd=4, bloom_bytes=1 << 16, cache_manifests=16, window=16)
    defaults.update(kw)
    return DedupConfig(**defaults)


@pytest.fixture
def populated():
    """Three unrelated files plus one derived generation."""
    d = MHDDeduplicator(cfg())
    rng = np.random.default_rng(0)
    base = rand(80_000, 1)
    files = {
        "a": rand(60_000, 2),
        "b": base,
        "b2": mutate(base, rng, EditConfig(change_rate=0.1)),
        "c": rand(40_000, 3),
    }
    d.process([BackupFile(k, v) for k, v in files.items()])
    return d, files


class TestDeleteFile:
    def test_delete_existing(self, populated):
        d, _ = populated
        assert delete_file(d.backend, "a")
        with pytest.raises(KeyError):
            d.file_manifests.get("a")

    def test_delete_missing_returns_false(self, populated):
        d, _ = populated
        assert not delete_file(d.backend, "nope")

    def test_delete_leaves_chunks_until_sweep(self, populated):
        d, _ = populated
        before = d.chunks.stored_bytes()
        delete_file(d.backend, "a")
        assert d.chunks.stored_bytes() == before


class TestSweep:
    def test_noop_on_fully_referenced_store(self, populated):
        d, files = populated
        report = sweep(d.backend)
        assert report.containers_deleted == 0
        assert report.bytes_reclaimed == 0
        for k, v in files.items():
            assert d.restore(k) == v

    def test_reclaims_unreferenced_file(self, populated):
        d, files = populated
        stored_before = d.chunks.stored_bytes()
        delete_file(d.backend, "a")
        report = sweep(d.backend)
        assert report.containers_deleted == 1
        assert report.bytes_reclaimed == pytest.approx(len(files["a"]), rel=0.05)
        assert d.chunks.stored_bytes() < stored_before
        # survivors intact
        for k in ("b", "b2", "c"):
            assert d.restore(k) == files[k]

    def test_shared_data_pinned_by_derived_file(self, populated):
        """Deleting 'b' must NOT reclaim bytes b2 still references."""
        d, files = populated
        delete_file(d.backend, "b")
        report = sweep(d.backend)
        assert d.restore("b2") == files["b2"]
        # b's container survives because b2 references most of it
        assert report.containers_deleted == 0
        assert report.bytes_pinned > 0

    def test_deleting_whole_lineage_reclaims_everything(self, populated):
        d, files = populated
        for k in files:
            delete_file(d.backend, k)
        report = sweep(d.backend)
        assert d.chunks.count() == 0
        assert d.manifests.count() == 0
        assert d.hooks.count() == 0
        assert report.bytes_reclaimed > 0

    def test_swept_store_verifies_clean(self, populated):
        d, _ = populated
        delete_file(d.backend, "a")
        delete_file(d.backend, "b")
        sweep(d.backend)
        report = verify_store(d.backend, check_entry_hashes=True)
        assert report.ok, report.errors[:5]

    def test_sweep_is_idempotent(self, populated):
        d, _ = populated
        delete_file(d.backend, "a")
        first = sweep(d.backend)
        second = sweep(d.backend)
        assert first.containers_deleted >= 0
        assert second.containers_deleted == 0
        assert second.bytes_reclaimed == 0

    def test_report_summary(self, populated):
        d, _ = populated
        delete_file(d.backend, "a")
        report = sweep(d.backend)
        assert "reclaimed" in report.summary()


class TestSweepMultiManifest:
    """GC over SparseIndexing's multi-container manifests."""

    def test_partial_manifest_rewritten_and_verifies(self):
        d = SparseIndexingDeduplicator(cfg(ecs=512, sd=4))
        files = {f"f{i}": rand(50_000, 10 + i) for i in range(4)}
        d.process([BackupFile(k, v) for k, v in files.items()])
        delete_file(d.backend, "f0")
        delete_file(d.backend, "f1")
        sweep(d.backend)
        report = verify_store(d.backend, check_entry_hashes=True)
        assert report.ok, report.errors[:5]
        for k in ("f2", "f3"):
            assert d.restore(k) == files[k]

    def test_full_cleanup(self):
        d = SparseIndexingDeduplicator(cfg(ecs=512, sd=4))
        files = {f"f{i}": rand(30_000, 20 + i) for i in range(3)}
        d.process([BackupFile(k, v) for k, v in files.items()])
        for k in files:
            delete_file(d.backend, k)
        sweep(d.backend)
        assert d.chunks.count() == 0
        assert d.backend.object_count(DiskModel.MANIFEST) == 0
        assert d.hooks.count() == 0


class TestSweepEdgeCases:
    def test_dangling_hook_removed(self, populated):
        """A hook pointing at a manifest that never existed is swept."""
        from repro.hashing import sha1

        d, _ = populated
        d.backend.put(DiskModel.HOOK, sha1(b"rogue"), sha1(b"ghost-manifest"))
        sweep(d.backend)
        assert not d.backend.exists(DiskModel.HOOK, sha1(b"rogue"))

    def test_sweep_empty_store(self):
        from repro.storage import MemoryBackend

        report = sweep(MemoryBackend())
        assert report.containers_deleted == 0
        assert report.bytes_reclaimed == 0


class TestPinnedBytesAccounting:
    """Shared extents must be union-counted, not summed (regression)."""

    @staticmethod
    def _store_with_shared_extents():
        from repro.hashing import sha1
        from repro.storage import FileExtent, FileManifest, FileManifestStore, MemoryBackend

        backend = MemoryBackend()
        cid = sha1(b"container")
        backend.put(DiskModel.CHUNK, cid, bytes(200))
        recipes = {
            "f1": [FileExtent(cid, 0, 100)],
            # f2 shares f1's extent exactly and extends it — the dedup case.
            "f2": [FileExtent(cid, 0, 100), FileExtent(cid, 100, 50)],
        }
        for fid, extents in recipes.items():
            backend.put(
                DiskModel.FILE_MANIFEST,
                FileManifestStore.key_for(fid),
                FileManifest(fid, extents).to_bytes(),
            )
        return backend

    def test_shared_extents_are_union_counted(self):
        backend = self._store_with_shared_extents()
        report = sweep(backend)
        assert report.containers_kept == 1
        assert report.containers_deleted == 0
        # 200 B container, [0,150) referenced: 50 B pinned.  Summing the
        # three extents (250 B) used to clamp this to 0.
        assert report.bytes_pinned == 50

    def test_union_bytes_merges_overlaps(self):
        from repro.storage.gc import _union_bytes

        assert _union_bytes([(0, 10)]) == 10
        assert _union_bytes([(0, 10), (10, 20)]) == 20
        assert _union_bytes([(0, 10), (5, 15)]) == 15
        assert _union_bytes([(0, 10), (0, 10), (0, 10)]) == 10
        assert _union_bytes([(20, 30), (0, 5), (25, 40)]) == 25
        assert _union_bytes([(0, 50), (10, 20)]) == 50
