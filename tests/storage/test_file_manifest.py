"""Tests for FileManifests: coalescing, restore, persistence."""

import pytest

from repro.hashing import sha1
from repro.storage import (
    DiskChunkStore,
    DiskModel,
    FileExtent,
    FileManifest,
    FileManifestStore,
    MemoryBackend,
)

C1 = sha1(b"c1")
C2 = sha1(b"c2")


def test_extent_validation():
    with pytest.raises(ValueError):
        FileExtent(C1, -1, 5)
    with pytest.raises(ValueError):
        FileExtent(C1, 0, 0)


class TestCoalescing:
    def test_adjacent_same_container_merges(self):
        fm = FileManifest("f")
        fm.append(C1, 0, 100)
        fm.append(C1, 100, 50)
        assert len(fm.extents) == 1
        assert fm.extents[0] == FileExtent(C1, 0, 150)

    def test_gap_does_not_merge(self):
        fm = FileManifest("f")
        fm.append(C1, 0, 100)
        fm.append(C1, 150, 50)
        assert len(fm.extents) == 2

    def test_different_container_does_not_merge(self):
        fm = FileManifest("f")
        fm.append(C1, 0, 100)
        fm.append(C2, 100, 50)
        assert len(fm.extents) == 2

    def test_total_size(self):
        fm = FileManifest("f")
        fm.append(C1, 0, 100)
        fm.append(C2, 0, 50)
        assert fm.total_size == 150


class TestRestore:
    def test_restore_across_containers(self):
        meter = DiskModel()
        chunks = DiskChunkStore(MemoryBackend(), meter)
        w1 = chunks.open_container(C1)
        w1.append(b"hello ")
        w1.close()
        w2 = chunks.open_container(C2)
        w2.append(b"xxworldxx")
        w2.close()
        fm = FileManifest("greeting")
        fm.append(C1, 0, 6)
        fm.append(C2, 2, 5)
        assert fm.restore(chunks) == b"hello world"
        assert meter.count(DiskModel.CHUNK, "read") == 2


class TestSerialization:
    def test_roundtrip(self):
        fm = FileManifest("machine-3/day-5/file.bin")
        fm.append(C1, 0, 100)
        fm.append(C2, 7, 42)
        fm2 = FileManifest.from_bytes(fm.to_bytes())
        assert fm2.file_id == fm.file_id
        assert fm2.extents == fm.extents

    def test_byte_size_matches(self):
        fm = FileManifest("f")
        fm.append(C1, 0, 1)
        assert fm.byte_size() == len(fm.to_bytes())


class TestStore:
    def test_put_get_meters(self):
        meter = DiskModel()
        store = FileManifestStore(MemoryBackend(), meter)
        fm = FileManifest("a/b")
        fm.append(C1, 0, 10)
        store.put(fm)
        got = store.get("a/b")
        assert got.extents == fm.extents
        assert meter.count(DiskModel.FILE_MANIFEST, "write") == 1
        assert meter.count(DiskModel.FILE_MANIFEST, "read") == 1
        assert store.count() == 1
        assert store.stored_bytes() == fm.byte_size()
