"""Tests for fault injection and the retry/backoff layer."""

import pytest

from repro.obs import runtime_anomalies
from repro.storage import (
    BackendError,
    CrashPoint,
    FaultInjectingBackend,
    FaultSpec,
    MemoryBackend,
    RetryingBackend,
    RetryPolicy,
    TransientBackendError,
)

KEY1 = b"\x01" * 20
KEY2 = b"\x02" * 20


def injected(*specs, **kw):
    return FaultInjectingBackend(MemoryBackend(), schedule=specs, **kw)


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSpec("meteor")

    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            FaultSpec("crash", op="putt")

    def test_rejects_negative_at(self):
        with pytest.raises(ValueError):
            FaultSpec("crash", at=-1)

    def test_matches_filters(self):
        spec = FaultSpec("crash", op="put", namespace="chunk")
        assert spec.matches("put", "chunk")
        assert not spec.matches("get", "chunk")
        assert not spec.matches("put", "hook")
        assert FaultSpec("crash").matches("delete", "anything")


class TestFaultInjectingBackend:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            FaultInjectingBackend(MemoryBackend(), transient_rate=1.0)

    def test_no_faults_is_transparent(self):
        b = injected()
        b.put("chunk", KEY1, b"data")
        assert b.get("chunk", KEY1) == b"data"
        assert b.delete("chunk", KEY1)
        assert not b.faults_injected

    def test_io_error_has_no_side_effect(self):
        b = injected(FaultSpec("io_error", op="put"))
        with pytest.raises(BackendError):
            b.put("chunk", KEY1, b"data")
        assert not b.inner.exists("chunk", KEY1)
        assert b.faults_injected["io_error"] == 1

    def test_transient_is_retryable_subtype(self):
        b = injected(FaultSpec("transient", op="put"))
        with pytest.raises(TransientBackendError):
            b.put("chunk", KEY1, b"data")

    def test_torn_put_lands_strict_prefix_then_crashes(self):
        b = injected(FaultSpec("torn", op="put"))
        payload = bytes(range(200))
        with pytest.raises(CrashPoint):
            b.put("chunk", KEY1, payload)
        landed = b.inner.get("chunk", KEY1)
        assert len(landed) < len(payload)
        assert payload.startswith(landed)
        assert b.faults_injected["torn"] == 1

    def test_bit_flip_corrupts_exactly_one_bit(self):
        b = injected(FaultSpec("bit_flip", op="put"))
        payload = bytes(64)
        b.put("chunk", KEY1, payload)  # no exception: silent corruption
        landed = b.inner.get("chunk", KEY1)
        assert landed != payload
        diff = [x ^ y for x, y in zip(landed, payload, strict=True) if x != y]
        assert len(diff) == 1 and diff[0].bit_count() == 1

    def test_crash_before_leaves_nothing(self):
        b = injected(FaultSpec("crash", op="put"))
        with pytest.raises(CrashPoint):
            b.put("chunk", KEY1, b"data")
        assert not b.inner.exists("chunk", KEY1)

    def test_crash_after_completes_the_write(self):
        b = injected(FaultSpec("crash_after", op="put"))
        with pytest.raises(CrashPoint):
            b.put("chunk", KEY1, b"data")
        assert b.inner.get("chunk", KEY1) == b"data"

    def test_crash_after_completes_the_delete(self):
        b = injected(FaultSpec("crash_after", op="delete"))
        b.put("chunk", KEY1, b"data")
        with pytest.raises(CrashPoint):
            b.delete("chunk", KEY1)
        assert not b.inner.exists("chunk", KEY1)

    def test_torn_get_truncates_but_store_is_intact(self):
        b = injected(FaultSpec("torn", op="get"))
        b.put("chunk", KEY1, bytes(range(100)))
        assert len(b.get("chunk", KEY1)) < 100
        assert b.get("chunk", KEY1) == bytes(range(100))  # spec fired once

    def test_spec_counts_only_matching_ops(self):
        # at=1 counts *put* ops in the hook namespace only.
        b = injected(FaultSpec("io_error", op="put", namespace="hook", at=1))
        b.put("chunk", KEY1, b"a")
        b.put("hook", KEY1, b"b")  # hook put #0 — no fault
        b.get("hook", KEY1)
        with pytest.raises(BackendError):
            b.put("hook", KEY2, b"c")  # hook put #1 — fires

    def test_each_spec_fires_once_and_independently(self):
        b = injected(
            FaultSpec("transient", op="put", at=0),
            FaultSpec("transient", op="put", at=0),
        )
        with pytest.raises(TransientBackendError):
            b.put("chunk", KEY1, b"a")
        # Second spec also saw op #0 pass by, so it never fires again.
        b.put("chunk", KEY1, b"a")
        b.put("chunk", KEY2, b"b")
        assert b.faults_injected["transient"] == 1

    def test_transient_rate_is_seed_deterministic(self):
        def run(seed):
            b = FaultInjectingBackend(MemoryBackend(), seed=seed, transient_rate=0.3)
            outcomes = []
            for i in range(64):
                try:
                    b.put("chunk", bytes([i]) * 20, b"x")
                    outcomes.append(True)
                except TransientBackendError:
                    outcomes.append(False)
            return outcomes

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_reads_of_metadata_are_never_injected(self):
        b = FaultInjectingBackend(MemoryBackend(), seed=0, transient_rate=0.99)
        for _ in range(50):  # exists/keys/counts bypass the weather
            assert not b.exists("chunk", KEY1)
            assert b.keys("chunk") == []
            assert b.object_count("chunk") == 0
            assert b.bytes_stored("chunk") == 0
            assert b.namespaces() == []


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_delay_grows_and_caps(self):
        p = RetryPolicy(attempts=8, base_delay=0.1, multiplier=2.0, max_delay=0.5)
        assert p.delay(0) == pytest.approx(0.1)
        assert p.delay(1) == pytest.approx(0.2)
        assert p.delay(2) == pytest.approx(0.4)
        assert p.delay(3) == pytest.approx(0.5)  # capped
        assert p.delay(6) == pytest.approx(0.5)


class TestRetryingBackend:
    def retrier(self, *specs, attempts=4):
        sleeps = []
        b = RetryingBackend(
            injected(*specs),
            RetryPolicy(attempts=attempts, base_delay=0.01),
            sleep=sleeps.append,
        )
        return b, sleeps

    def test_absorbs_transient_faults(self):
        b, sleeps = self.retrier(
            FaultSpec("transient", op="put", at=0),
            FaultSpec("transient", op="put", at=1),
        )
        b.put("chunk", KEY1, b"data")
        assert b.get("chunk", KEY1) == b"data"
        assert b.retries == 2
        assert b.giveups == 0
        assert sleeps == [pytest.approx(0.01), pytest.approx(0.02)]

    def test_exhausts_budget_and_reraises(self):
        before = runtime_anomalies().get("anomaly.backend.retry_exhausted", 0)
        specs = [FaultSpec("transient", op="put", at=i) for i in range(3)]
        b, sleeps = self.retrier(*specs, attempts=3)
        with pytest.raises(TransientBackendError):
            b.put("chunk", KEY1, b"data")
        assert b.giveups == 1
        assert len(sleeps) == 2  # no sleep after the final attempt
        after = runtime_anomalies().get("anomaly.backend.retry_exhausted", 0)
        assert after == before + 1

    def test_permanent_errors_pass_through(self):
        b, sleeps = self.retrier(FaultSpec("io_error", op="put"))
        with pytest.raises(BackendError):
            b.put("chunk", KEY1, b"data")
        assert sleeps == [] and b.retries == 0

    def test_crash_points_pass_through(self):
        b, sleeps = self.retrier(FaultSpec("crash", op="put"))
        with pytest.raises(CrashPoint):
            b.put("chunk", KEY1, b"data")
        assert sleeps == []

    def test_keyerror_passes_through(self):
        b, sleeps = self.retrier()
        with pytest.raises(KeyError):
            b.get("chunk", KEY1)
        assert sleeps == []

    def test_full_contract_delegates(self):
        b, _ = self.retrier()
        b.put("chunk", KEY1, b"abc")
        assert b.exists("chunk", KEY1)
        assert b.keys("chunk") == [KEY1]
        assert b.object_count("chunk") == 1
        assert b.bytes_stored("chunk") == 3
        assert b.namespaces() == ["chunk"]
        assert b.delete("chunk", KEY1)
