"""Tests for the multi-container manifest (SubChunk / SparseIndexing)."""

import pytest

from repro.hashing import sha1
from repro.storage import DiskModel, MemoryBackend
from repro.storage.multi_manifest import (
    GROUP_HEADER_SIZE,
    MultiEntry,
    MultiManifest,
    MultiManifestStore,
)

MID = sha1(b"mm")
C1, C2 = sha1(b"c1"), sha1(b"c2")


def entry(tag, cid, off, size):
    return MultiEntry(sha1(tag), cid, off, size)


class TestEntry:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultiEntry(b"short", C1, 0, 1)
        with pytest.raises(ValueError):
            MultiEntry(sha1(b"x"), b"short", 0, 1)
        with pytest.raises(ValueError):
            entry(b"x", C1, 0, 0)


class TestManifest:
    def test_find_and_contains(self):
        m = MultiManifest(MID, [entry(b"a", C1, 0, 5), entry(b"b", C1, 5, 5)])
        assert m.find(sha1(b"b")) == 1
        assert sha1(b"a") in m
        assert m.find(sha1(b"z")) is None
        assert len(m) == 2

    def test_append_marks_dirty_and_indexes(self):
        m = MultiManifest(MID)
        assert not m.dirty
        _ = m.index  # force index build
        m.append(entry(b"a", C1, 0, 5))
        assert m.dirty
        assert m.find(sha1(b"a")) == 0

    def test_duplicate_digest_keeps_first(self):
        m = MultiManifest(MID)
        m.append(entry(b"a", C1, 0, 5))
        m.append(entry(b"a", C2, 0, 5))
        assert m.find(sha1(b"a")) == 0

    def test_groups_coalesce_consecutive_containers(self):
        m = MultiManifest(
            MID,
            [
                entry(b"a", C1, 0, 5),
                entry(b"b", C1, 5, 5),
                entry(b"c", C2, 0, 5),
                entry(b"d", C1, 10, 5),
            ],
        )
        assert m.groups() == [(C1, 2), (C2, 1), (C1, 1)]

    def test_byte_size_formula(self):
        """36 B/entry + 28 B/group, the paper's SubChunk cost model."""
        m = MultiManifest(MID, [entry(b"a", C1, 0, 5), entry(b"b", C2, 0, 5)])
        assert m.byte_size() == 24 + 2 * GROUP_HEADER_SIZE + 2 * 36
        assert len(m.to_bytes()) == m.byte_size()

    def test_roundtrip(self):
        m = MultiManifest(
            MID,
            [
                entry(b"a", C1, 0, 100),
                entry(b"b", C1, 100, 50),
                entry(b"c", C2, 7, 42),
            ],
        )
        m2 = MultiManifest.from_bytes(m.to_bytes())
        assert m2.manifest_id == MID
        assert m2.entries == m.entries

    def test_empty_roundtrip(self):
        m2 = MultiManifest.from_bytes(MultiManifest(MID).to_bytes())
        assert len(m2) == 0


class TestStore:
    def test_put_get_meters(self):
        meter = DiskModel()
        store = MultiManifestStore(MemoryBackend(), meter)
        m = MultiManifest(MID, [entry(b"a", C1, 0, 5)])
        store.put(m)
        assert not m.dirty
        assert store.exists(MID)
        got = store.get(MID)
        assert got.entries == m.entries
        assert meter.count(DiskModel.MANIFEST, "write") == 1
        assert meter.count(DiskModel.MANIFEST, "read") == 1
