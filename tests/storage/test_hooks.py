"""Tests for the Hook store."""

import pytest

from repro.hashing import sha1
from repro.storage import DiskModel, HookStore, MemoryBackend

H = sha1(b"hook-digest")
M1 = sha1(b"manifest-1")
M2 = sha1(b"manifest-2")


@pytest.fixture
def hooks():
    meter = DiskModel()
    return HookStore(MemoryBackend(), meter), meter


def test_put_get(hooks):
    store, meter = hooks
    store.put(H, M1)
    assert store.get(H) == M1
    assert meter.count(DiskModel.HOOK, "write") == 1
    assert meter.count(DiskModel.HOOK, "read") == 1


def test_put_rejects_bad_manifest_id(hooks):
    store, _ = hooks
    with pytest.raises(ValueError):
        store.put(H, b"tiny")


def test_hooks_are_write_once(hooks):
    store, meter = hooks
    store.put(H, M1)
    store.put(H, M2)  # ignored: hooks are immutable
    assert store.get(H) == M1
    assert meter.count(DiskModel.HOOK, "write") == 1


def test_query_meters(hooks):
    store, meter = hooks
    assert not store.query(H)
    store.put(H, M1)
    assert store.query(H)
    assert meter.count(DiskModel.HOOK, "query") == 2


def test_lookup_miss(hooks):
    store, meter = hooks
    assert store.lookup(H) is None
    assert meter.count(DiskModel.HOOK, "query") == 1
    assert meter.count(DiskModel.HOOK, "read") == 0


def test_lookup_hit(hooks):
    store, meter = hooks
    store.put(H, M1)
    assert store.lookup(H) == M1
    assert meter.count(DiskModel.HOOK, "read") == 1


def test_counts(hooks):
    store, _ = hooks
    store.put(H, M1)
    store.put(sha1(b"other"), M2)
    assert store.count() == 2
    assert store.stored_bytes() == 40  # two 20-byte addresses
