"""Tests for the disk-access meter."""

import pytest

from repro.storage import INODE_SIZE, DiskModel


def test_inode_size_constant():
    assert INODE_SIZE == 256  # the paper's Section IV assumption


def test_record_and_count():
    m = DiskModel()
    m.record(DiskModel.HOOK, "query", 0)
    m.record(DiskModel.HOOK, "read", 20)
    m.record(DiskModel.MANIFEST, "read", 500)
    assert m.count() == 3
    assert m.count(DiskModel.HOOK) == 2
    assert m.count(DiskModel.HOOK, "read") == 1
    assert m.nbytes(DiskModel.MANIFEST) == 500
    assert m.total_bytes == 520


def test_record_multi_count():
    m = DiskModel()
    m.record(DiskModel.CHUNK, "write", 4096, count=4)
    assert m.count(DiskModel.CHUNK, "write") == 4
    assert m.nbytes(DiskModel.CHUNK) == 4096


def test_record_rejects_negative_bytes():
    m = DiskModel()
    with pytest.raises(ValueError):
        m.record(DiskModel.CHUNK, "write", -1)


def test_snapshot_is_frozen():
    m = DiskModel()
    m.record(DiskModel.CHUNK, "write", 10)
    snap = m.snapshot()
    m.record(DiskModel.CHUNK, "write", 10)
    assert snap.count() == 1
    assert m.count() == 2


def test_snapshot_subtraction_gives_phase_delta():
    m = DiskModel()
    m.record(DiskModel.CHUNK, "write", 10)
    before = m.snapshot()
    m.record(DiskModel.CHUNK, "write", 30)
    m.record(DiskModel.HOOK, "query", 0)
    delta = m.snapshot() - before
    assert delta.count() == 2
    assert delta.nbytes(DiskModel.CHUNK) == 30
    assert delta.count(DiskModel.HOOK, "query") == 1


def test_breakdown_structure():
    m = DiskModel()
    m.record(DiskModel.HOOK, "write", 20)
    m.record(DiskModel.HOOK, "write", 20)
    m.record(DiskModel.MANIFEST, "read", 100)
    bd = m.breakdown()
    assert bd[DiskModel.HOOK]["write"] == 2
    assert bd[DiskModel.MANIFEST]["read"] == 1


def test_merge():
    a, b = DiskModel(), DiskModel()
    a.record(DiskModel.CHUNK, "write", 5)
    b.record(DiskModel.CHUNK, "write", 7)
    b.record(DiskModel.HOOK, "query", 0)
    a.merge([b])
    assert a.count() == 3
    assert a.nbytes(DiskModel.CHUNK) == 12


def test_snapshot_subtraction_clamps_negative_deltas():
    """Subtracting a *newer* snapshot from an older one (caller bug or
    meter reset) drops the negative pairs instead of reporting
    nonsense, and reports the anomaly through the telemetry channel."""
    from repro.obs import runtime_anomalies

    m = DiskModel()
    m.record(DiskModel.CHUNK, "write", 10)
    old = m.snapshot()
    m.record(DiskModel.CHUNK, "write", 10)
    m.record(DiskModel.HOOK, "query", 0)
    new = m.snapshot()

    before = runtime_anomalies().get("anomaly.io_snapshot.negative_delta", 0)
    delta = old - new  # wrong order
    assert delta.count() == 0
    assert delta.nbytes() == 0
    after = runtime_anomalies()["anomaly.io_snapshot.negative_delta"]
    assert after == before + 1
    # The correct order still works and stays silent.
    ok = new - old
    assert ok.count() == 2
    assert runtime_anomalies()["anomaly.io_snapshot.negative_delta"] == after


def test_snapshot_subtraction_keeps_positive_pairs_on_partial_skew():
    """Only the negative pairs are dropped; untouched namespaces survive."""
    a, b = DiskModel(), DiskModel()
    a.record(DiskModel.CHUNK, "write", 10)
    a.record(DiskModel.HOOK, "write", 5)
    b.record(DiskModel.HOOK, "write", 5)
    b.record(DiskModel.HOOK, "write", 5)
    delta = a.snapshot() - b.snapshot()  # hook pair is negative, chunk positive
    assert delta.count(DiskModel.CHUNK, "write") == 1
    assert delta.count(DiskModel.HOOK, "write") == 0


def test_attach_registry_mirrors_records():
    """With a registry attached the meter double-books every record as
    ``disk.<ns>.<op>`` counters; detaching stops the mirror."""
    from repro.obs import MetricsRegistry

    reg = MetricsRegistry()
    m = DiskModel()
    m.attach_registry(reg)
    m.record(DiskModel.CHUNK, "write", 100)
    m.record(DiskModel.CHUNK, "write", 50, count=2)
    assert reg.counter("disk.chunk.write.ops").value == 3
    assert reg.counter("disk.chunk.write.bytes").value == 150
    m.attach_registry(None)
    m.record(DiskModel.CHUNK, "write", 100)
    assert reg.counter("disk.chunk.write.ops").value == 3
