"""Tests for the disk-access meter."""

import pytest

from repro.storage import INODE_SIZE, DiskModel


def test_inode_size_constant():
    assert INODE_SIZE == 256  # the paper's Section IV assumption


def test_record_and_count():
    m = DiskModel()
    m.record(DiskModel.HOOK, "query", 0)
    m.record(DiskModel.HOOK, "read", 20)
    m.record(DiskModel.MANIFEST, "read", 500)
    assert m.count() == 3
    assert m.count(DiskModel.HOOK) == 2
    assert m.count(DiskModel.HOOK, "read") == 1
    assert m.nbytes(DiskModel.MANIFEST) == 500
    assert m.total_bytes == 520


def test_record_multi_count():
    m = DiskModel()
    m.record(DiskModel.CHUNK, "write", 4096, count=4)
    assert m.count(DiskModel.CHUNK, "write") == 4
    assert m.nbytes(DiskModel.CHUNK) == 4096


def test_record_rejects_negative_bytes():
    m = DiskModel()
    with pytest.raises(ValueError):
        m.record(DiskModel.CHUNK, "write", -1)


def test_snapshot_is_frozen():
    m = DiskModel()
    m.record(DiskModel.CHUNK, "write", 10)
    snap = m.snapshot()
    m.record(DiskModel.CHUNK, "write", 10)
    assert snap.count() == 1
    assert m.count() == 2


def test_snapshot_subtraction_gives_phase_delta():
    m = DiskModel()
    m.record(DiskModel.CHUNK, "write", 10)
    before = m.snapshot()
    m.record(DiskModel.CHUNK, "write", 30)
    m.record(DiskModel.HOOK, "query", 0)
    delta = m.snapshot() - before
    assert delta.count() == 2
    assert delta.nbytes(DiskModel.CHUNK) == 30
    assert delta.count(DiskModel.HOOK, "query") == 1


def test_breakdown_structure():
    m = DiskModel()
    m.record(DiskModel.HOOK, "write", 20)
    m.record(DiskModel.HOOK, "write", 20)
    m.record(DiskModel.MANIFEST, "read", 100)
    bd = m.breakdown()
    assert bd[DiskModel.HOOK]["write"] == 2
    assert bd[DiskModel.MANIFEST]["read"] == 1


def test_merge():
    a, b = DiskModel(), DiskModel()
    a.record(DiskModel.CHUNK, "write", 5)
    b.record(DiskModel.CHUNK, "write", 7)
    b.record(DiskModel.HOOK, "query", 0)
    a.merge([b])
    assert a.count() == 3
    assert a.nbytes(DiskModel.CHUNK) == 12
