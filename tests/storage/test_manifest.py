"""Tests for Manifest structure, mutation (HHR splits) and persistence."""

import pytest

from repro.hashing import sha1
from repro.storage import (
    ENTRY_SIZE,
    MANIFEST_HEADER_SIZE,
    MHD_ENTRY_SIZE,
    DiskModel,
    Manifest,
    ManifestEntry,
    ManifestStore,
    MemoryBackend,
)

MID = sha1(b"manifest")
CID = sha1(b"container")


def entry(tag: bytes, offset: int, size: int, hook: bool = False) -> ManifestEntry:
    return ManifestEntry(sha1(tag), offset, size, hook)


@pytest.fixture
def manifest():
    return Manifest(
        MID,
        CID,
        [entry(b"a", 0, 100, hook=True), entry(b"b", 100, 300), entry(b"c", 400, 50)],
    )


class TestEntry:
    def test_rejects_bad_digest(self):
        with pytest.raises(ValueError):
            ManifestEntry(b"short", 0, 10)

    def test_rejects_bad_extent(self):
        with pytest.raises(ValueError):
            entry(b"a", -1, 10)
        with pytest.raises(ValueError):
            entry(b"a", 0, 0)

    def test_end(self):
        assert entry(b"a", 5, 10).end == 15

    def test_with_hook(self):
        e = entry(b"a", 0, 10)
        assert not e.is_hook
        assert e.with_hook(True).is_hook


class TestManifestLookup:
    def test_find(self, manifest):
        assert manifest.find(sha1(b"b")) == 1
        assert manifest.find(sha1(b"zzz")) is None

    def test_contains(self, manifest):
        assert sha1(b"a") in manifest
        assert sha1(b"nope") not in manifest

    def test_len(self, manifest):
        assert len(manifest) == 3

    def test_duplicate_digest_finds_first(self):
        m = Manifest(MID, CID, [entry(b"x", 0, 10), entry(b"x", 10, 10)])
        assert m.find(sha1(b"x")) == 0


class TestMutation:
    def test_append_updates_index(self, manifest):
        manifest.find(sha1(b"a"))  # force index build
        manifest.append(entry(b"d", 450, 25))
        assert manifest.find(sha1(b"d")) == 3
        assert manifest.dirty

    def test_replace_entry_valid_split(self, manifest):
        reps = [entry(b"b1", 100, 120), entry(b"b2", 220, 100), entry(b"b3", 320, 80)]
        manifest.replace_entry(1, reps)
        assert len(manifest) == 5
        assert manifest.find(sha1(b"b2")) == 2
        manifest.validate_tiling(450)
        assert manifest.dirty

    def test_replace_entry_must_tile(self, manifest):
        with pytest.raises(ValueError):
            manifest.replace_entry(1, [entry(b"b1", 100, 100)])  # short
        with pytest.raises(ValueError):
            manifest.replace_entry(
                1, [entry(b"b1", 100, 100), entry(b"b2", 250, 150)]  # gap
            )
        with pytest.raises(ValueError):
            manifest.replace_entry(1, [])

    def test_validate_tiling_detects_gap(self):
        m = Manifest(MID, CID, [entry(b"a", 0, 10), entry(b"b", 15, 5)])
        with pytest.raises(AssertionError):
            m.validate_tiling()

    def test_validate_tiling_total(self, manifest):
        manifest.validate_tiling(450)
        with pytest.raises(AssertionError):
            manifest.validate_tiling(451)


class TestSizes:
    def test_hook_count(self, manifest):
        assert manifest.hook_count() == 1

    def test_byte_size_mhd(self, manifest):
        assert manifest.byte_size() == MANIFEST_HEADER_SIZE + 3 * MHD_ENTRY_SIZE

    def test_byte_size_baseline(self):
        m = Manifest(MID, CID, [entry(b"a", 0, 10)], entry_size=ENTRY_SIZE)
        assert m.byte_size() == MANIFEST_HEADER_SIZE + ENTRY_SIZE

    def test_entry_size_validation(self):
        with pytest.raises(ValueError):
            Manifest(MID, CID, entry_size=40)

    def test_serialized_length_matches_byte_size(self, manifest):
        assert len(manifest.to_bytes()) == manifest.byte_size()


class TestSerialization:
    @pytest.mark.parametrize("entry_size", [ENTRY_SIZE, MHD_ENTRY_SIZE])
    def test_roundtrip(self, entry_size):
        m = Manifest(
            MID,
            CID,
            [entry(b"a", 0, 100, hook=True), entry(b"b", 100, 55)],
            entry_size=entry_size,
        )
        m2 = Manifest.from_bytes(m.to_bytes())
        assert m2.manifest_id == MID
        assert m2.chunk_id == CID
        assert m2.entry_size == entry_size
        assert [e.digest for e in m2.entries] == [e.digest for e in m.entries]
        assert [e.offset for e in m2.entries] == [0, 100]
        if entry_size == MHD_ENTRY_SIZE:
            assert m2.entries[0].is_hook and not m2.entries[1].is_hook

    def test_empty_roundtrip(self):
        m = Manifest(MID, CID)
        m2 = Manifest.from_bytes(m.to_bytes())
        assert len(m2) == 0


class TestStore:
    def test_put_get_meters(self):
        meter = DiskModel()
        store = ManifestStore(MemoryBackend(), meter)
        m = Manifest(MID, CID, [entry(b"a", 0, 10)])
        store.put(m)
        assert not m.dirty
        got = store.get(MID)
        assert got.entries[0].digest == sha1(b"a")
        assert meter.count(DiskModel.MANIFEST, "write") == 1
        assert meter.count(DiskModel.MANIFEST, "read") == 1
        assert meter.nbytes(DiskModel.MANIFEST, "write") == m.byte_size()

    def test_exists_and_counts(self):
        meter = DiskModel()
        store = ManifestStore(MemoryBackend(), meter)
        assert not store.exists(MID)
        store.put(Manifest(MID, CID, [entry(b"a", 0, 10)]))
        assert store.exists(MID)
        assert store.count() == 1
        assert store.stored_bytes() > 0
